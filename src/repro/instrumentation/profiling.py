"""Deterministic-ish cProfile capture for benchmark triage.

The benchbed's ``--profile`` hook runs a benchmark once under
:mod:`cProfile` and reduces the raw stats to a compact hotspot table —
the top functions by cumulative time, each as a flat JSON-friendly
record.  The table is meant for flame-style triage ("where did the
cycles go between these two artifacts?"), not for machine comparison:
profile payloads are excluded from the artifact comparison payload
because timings are machine-dependent.
"""

from __future__ import annotations

import cProfile
import pstats
from pathlib import Path
from typing import Any, Callable

#: Rows kept in a hotspot table, by cumulative time.
DEFAULT_TOP = 20


def _location(func_key: tuple[str, int, str]) -> str:
    """Render a pstats function key as ``file:line(name)``.

    Paths are shortened to their last two components so tables stay
    readable and artifacts do not leak absolute build paths.
    """
    filename, line, name = func_key
    if filename.startswith("<"):  # builtins, comprehensions, exec
        return f"{filename}({name})"
    short = "/".join(Path(filename).parts[-2:])
    return f"{short}:{line}({name})"


def hotspot_table(
    stats: pstats.Stats, top: int = DEFAULT_TOP
) -> list[dict[str, Any]]:
    """Reduce profiler stats to the ``top`` rows by cumulative time."""
    rows = []
    for func_key, (cc, nc, tt, ct, _callers) in stats.stats.items():
        rows.append(
            {
                "function": _location(func_key),
                "calls": nc,
                "primitive_calls": cc,
                "total_time_s": round(tt, 6),
                "cumulative_time_s": round(ct, 6),
            }
        )
    rows.sort(key=lambda row: row["cumulative_time_s"], reverse=True)
    return rows[:top]


def profile_call(
    func: Callable[..., Any],
    *args: Any,
    top: int = DEFAULT_TOP,
    **kwargs: Any,
) -> tuple[Any, list[dict[str, Any]]]:
    """Call ``func`` under cProfile; return ``(result, hotspots)``.

    ``hotspots`` is the :func:`hotspot_table` of the run.  Exceptions
    from ``func`` propagate unchanged (the profiler is still disabled).
    """
    profiler = cProfile.Profile()
    profiler.enable()
    try:
        result = func(*args, **kwargs)
    finally:
        profiler.disable()
    stats = pstats.Stats(profiler)
    return result, hotspot_table(stats, top=top)
