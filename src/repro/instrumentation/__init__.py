"""Run instrumentation: link/latency/drop probes and ASCII heatmaps."""

from repro.instrumentation.heatmap import render_grid, render_legend, render_shaded
from repro.instrumentation.trace import (
    EventKind,
    FlightRecorder,
    HopTiming,
    TraceEvent,
)
from repro.instrumentation.probes import (
    ActivityProbe,
    DropProbe,
    DropRecord,
    LatencyMatrixProbe,
    LinkUtilizationProbe,
    WatchdogAlarm,
    WatchdogProbe,
)

__all__ = [
    "ActivityProbe",
    "DropProbe",
    "EventKind",
    "FlightRecorder",
    "HopTiming",
    "TraceEvent",
    "DropRecord",
    "LatencyMatrixProbe",
    "LinkUtilizationProbe",
    "WatchdogAlarm",
    "WatchdogProbe",
    "render_grid",
    "render_legend",
    "render_shaded",
]
