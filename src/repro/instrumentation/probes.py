"""Simulation probes: observe a run without perturbing it.

Probes attach to a :class:`~repro.core.simulator.Simulator` *before*
``run()`` and collect spatial/behavioural detail the aggregate
statistics hide — per-link utilisation, per-node latency, VC-class
occupancy.  They read counters the core already maintains (link send
counts, delivery callbacks) so the simulation hot path stays untouched.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field

from repro.core.simulator import Simulator
from repro.core.types import Direction, NodeId, Packet


class ActivityProbe:
    """Per-cycle and per-node view of the activity-driven scheduler.

    Subscribes to ``Network.on_cycle_stepped`` — the observer the
    scheduler fires at the end of every cycle with the routers it
    actually stepped — so the probe sees exactly what the active-set
    scheduler did, without touching the stepping hot path.  Works under
    ``full_sweep=True`` as well (every router appears every cycle),
    which makes the probe's output itself differentially comparable.
    """

    def __init__(self, simulator: Simulator) -> None:
        self.simulator = simulator
        #: Number of routers stepped at each cycle, in cycle order.
        self.active_counts: list[int] = []
        #: Cumulative steps per node over the observed window.
        self.steps_per_node: dict[NodeId, int] = defaultdict(int)
        if simulator.network.on_cycle_stepped is not None:
            raise RuntimeError("network already has a cycle observer attached")
        simulator.network.on_cycle_stepped = self._observe

    def _observe(self, cycle: int, stepped) -> None:
        self.active_counts.append(len(stepped))
        per_node = self.steps_per_node
        for router in stepped:
            per_node[router.node] += 1

    @property
    def cycles_observed(self) -> int:
        return len(self.active_counts)

    def duty_cycle(self) -> float:
        """Observed stepped fraction of the router-cycle budget."""
        if not self.active_counts:
            return 0.0
        slots = len(self.simulator.network.routers) * len(self.active_counts)
        return sum(self.active_counts) / slots

    def peak_active(self) -> int:
        return max(self.active_counts, default=0)

    def idle_cycles(self) -> int:
        """Cycles in which no router at all needed stepping."""
        return sum(1 for n in self.active_counts if n == 0)

    def hottest_nodes(self, count: int = 5) -> list[tuple[NodeId, int]]:
        ranked = sorted(self.steps_per_node.items(), key=lambda item: -item[1])
        return ranked[:count]


class LinkUtilizationProbe:
    """Per-link flit rate over the whole run.

    Utilisation is ``flits sent / simulated cycles`` per directed link;
    1.0 means the link carried a flit every cycle.
    """

    def __init__(self, simulator: Simulator) -> None:
        self.simulator = simulator
        self._baseline: dict[tuple[NodeId, Direction], int] = {}
        for node, router in simulator.network.routers.items():
            for direction, port in router.outputs.items():
                self._baseline[(node, direction)] = port.link.sends

    def utilization(self) -> dict[tuple[NodeId, Direction], float]:
        """Flits per cycle for every directed link, post-run."""
        cycles = max(1, self.simulator.network.cycle)
        result = {}
        for node, router in self.simulator.network.routers.items():
            for direction, port in router.outputs.items():
                sends = port.link.sends - self._baseline[(node, direction)]
                result[(node, direction)] = sends / cycles
        return result

    def hottest_links(self, count: int = 5) -> list[tuple[NodeId, Direction, float]]:
        ranked = sorted(
            ((n, d, u) for (n, d), u in self.utilization().items()),
            key=lambda item: -item[2],
        )
        return ranked[:count]

    def node_throughput(self) -> dict[NodeId, float]:
        """Total outbound flits/cycle per router (heatmap input)."""
        per_node: dict[NodeId, float] = defaultdict(float)
        for (node, _), util in self.utilization().items():
            per_node[node] += util
        return dict(per_node)


class LatencyMatrixProbe:
    """Per-(source, destination) latency and per-node averages."""

    def __init__(self, simulator: Simulator) -> None:
        self.simulator = simulator
        self._samples: dict[tuple[NodeId, NodeId], list[int]] = defaultdict(list)
        simulator.delivery_listeners.append(self._record)

    def _record(self, packet: Packet) -> None:
        if packet.measured:
            self._samples[(packet.src, packet.dest)].append(packet.latency)

    def matrix(self) -> dict[tuple[NodeId, NodeId], float]:
        return {
            pair: sum(vals) / len(vals) for pair, vals in self._samples.items()
        }

    def per_source(self) -> dict[NodeId, float]:
        """Average latency of traffic *originating* at each node."""
        sums: dict[NodeId, list[int]] = defaultdict(list)
        for (src, _), vals in self._samples.items():
            sums[src].extend(vals)
        return {n: sum(v) / len(v) for n, v in sums.items()}

    def per_destination(self) -> dict[NodeId, float]:
        sums: dict[NodeId, list[int]] = defaultdict(list)
        for (_, dest), vals in self._samples.items():
            sums[dest].extend(vals)
        return {n: sum(v) / len(v) for n, v in sums.items()}

    def worst_pairs(self, count: int = 5) -> list[tuple[NodeId, NodeId, float]]:
        ranked = sorted(
            ((s, d, m) for (s, d), m in self.matrix().items()),
            key=lambda item: -item[2],
        )
        return ranked[:count]


@dataclass
class DropRecord:
    packet_id: int
    src: NodeId
    dest: NodeId
    age: int


class DropProbe:
    """Collects every dropped packet with its age at discard time."""

    def __init__(self, simulator: Simulator) -> None:
        self.simulator = simulator
        self.records: list[DropRecord] = []
        simulator.drop_listeners.append(self._record)

    def _record(self, packet: Packet) -> None:
        self.records.append(
            DropRecord(
                packet_id=packet.pid,
                src=packet.src,
                dest=packet.dest,
                age=(packet.dropped_cycle or 0) - packet.created_cycle,
            )
        )

    def drops_by_destination(self) -> dict[NodeId, int]:
        out: dict[NodeId, int] = defaultdict(int)
        for record in self.records:
            out[record.dest] += 1
        return dict(out)

    def drops_through_region(self) -> dict[NodeId, int]:
        """Drop counts keyed by source — where lost traffic came from."""
        out: dict[NodeId, int] = defaultdict(int)
        for record in self.records:
            out[record.src] += 1
        return dict(out)


@dataclass
class WatchdogAlarm:
    """One no-progress alarm: when it fired and what the network looked like."""

    cycle: int
    stalled_for: int
    active_routers: int

    @property
    def livelock_suspected(self) -> bool:
        """Routers kept stepping without delivering — spinning, not stuck."""
        return self.active_routers > 0


class WatchdogProbe:
    """Deadlock/livelock watchdog for fault campaigns.

    Subscribes to ``Network.on_cycle_stepped`` (the same single-observer
    hook :class:`ActivityProbe` uses) plus the simulator's delivery and
    drop listeners.  *Progress* is any packet leaving the network —
    delivered or dropped; a stretch of ``stall_window`` cycles in which
    routers are still being stepped but nothing leaves raises one alarm
    (re-armed by the next progress event).  Stepping-without-progress is
    exactly the signature that separates a livelocked or deadlocked
    post-fault network from a merely idle one: an idle network has no
    active routers, so it never alarms.

    The probe only observes — the simulator's own drain timeout remains
    the mechanism that aborts a wedged run (now with a stranded-packet
    census via :class:`~repro.core.simulator.DrainTimeoutError`).
    """

    def __init__(self, simulator: Simulator, stall_window: int = 500) -> None:
        if stall_window <= 0:
            raise ValueError("stall_window must be positive")
        self.simulator = simulator
        self.stall_window = stall_window
        self.alarms: list[WatchdogAlarm] = []
        self.max_stall = 0
        self._progress_events = 0
        self._seen_progress_events = 0
        self._last_progress_cycle = 0
        self._armed = True
        if simulator.network.on_cycle_stepped is not None:
            raise RuntimeError("network already has a cycle observer attached")
        simulator.network.on_cycle_stepped = self._observe
        simulator.delivery_listeners.append(self._on_progress)
        simulator.drop_listeners.append(self._on_progress)

    def _on_progress(self, packet: Packet) -> None:
        self._progress_events += 1

    def _observe(self, cycle: int, stepped) -> None:
        if self._progress_events > self._seen_progress_events:
            self._seen_progress_events = self._progress_events
            self._last_progress_cycle = cycle
            self._armed = True
            return
        if not stepped:
            # Idle network: nothing in flight, nothing to watch.
            self._last_progress_cycle = cycle
            return
        stalled_for = cycle - self._last_progress_cycle
        if stalled_for > self.max_stall:
            self.max_stall = stalled_for
        if self._armed and stalled_for >= self.stall_window:
            self.alarms.append(
                WatchdogAlarm(
                    cycle=cycle,
                    stalled_for=stalled_for,
                    active_routers=len(stepped),
                )
            )
            self._armed = False

    @property
    def triggered(self) -> bool:
        return bool(self.alarms)
