"""Flit-level flight recorder.

When a :class:`FlightRecorder` is attached to a network, the routers
emit an event for every buffer entry, crossbar traversal and ejection.
The recorder reconstructs per-packet journeys — which routers a worm
visited, how long its head waited at each — turning "average latency
went up" into "heads queue 9 cycles at (3,2) for the East output".

Tracing is strictly opt-in: the hot path pays a single ``is not None``
check per event when no recorder is attached.
"""

from __future__ import annotations

import enum
from collections import defaultdict
from dataclasses import dataclass, field

from repro.core.types import Flit, NodeId


class EventKind(enum.Enum):
    INJECT = "inject"
    BUFFER = "buffer"  # flit written into a VC
    TRAVERSE = "traverse"  # flit crossed a crossbar / left the router
    EJECT = "eject"  # flit consumed by the destination PE


@dataclass(frozen=True)
class TraceEvent:
    """One flit event."""

    cycle: int
    kind: EventKind
    packet_id: int
    flit_seq: int
    node: NodeId
    detail: str = ""


@dataclass
class HopTiming:
    """Derived per-hop head-flit timing at one router."""

    node: NodeId
    arrived: int
    departed: int

    @property
    def dwell(self) -> int:
        return self.departed - self.arrived


class FlightRecorder:
    """Collects trace events and reconstructs packet journeys."""

    def __init__(self, max_events: int = 1_000_000) -> None:
        self.max_events = max_events
        self.events: list[TraceEvent] = []
        #: Events discarded once ``max_events`` was reached.  Non-zero
        #: means every reconstruction below may be missing the tail of the
        #: run — check :attr:`truncated` before trusting a journey.
        self.dropped_events = 0
        self._by_packet: dict[int, list[TraceEvent]] = defaultdict(list)

    @property
    def truncated(self) -> bool:
        """True when at least one event was discarded at the cap."""
        return self.dropped_events > 0

    # -- emission (called from the routers) -----------------------------

    def record(
        self,
        cycle: int,
        kind: EventKind,
        flit: Flit,
        node: NodeId,
        detail: str = "",
    ) -> None:
        if len(self.events) >= self.max_events:
            self.dropped_events += 1
            return
        event = TraceEvent(cycle, kind, flit.packet.pid, flit.seq, node, detail)
        self.events.append(event)
        self._by_packet[event.packet_id].append(event)

    # -- reconstruction ---------------------------------------------------

    def packet_events(self, pid: int) -> list[TraceEvent]:
        return list(self._by_packet.get(pid, []))

    def journey(self, pid: int) -> list[NodeId]:
        """The routers the packet's head flit visited, in order."""
        path: list[NodeId] = []
        for event in self._by_packet.get(pid, []):
            if event.flit_seq != 0:
                continue
            if event.kind in (EventKind.INJECT, EventKind.BUFFER, EventKind.EJECT):
                if not path or path[-1] != event.node:
                    path.append(event.node)
        return path

    def hop_timings(self, pid: int) -> list[HopTiming]:
        """Head-flit dwell time at each visited router."""
        arrivals: dict[NodeId, int] = {}
        timings: list[HopTiming] = []
        for event in self._by_packet.get(pid, []):
            if event.flit_seq != 0:
                continue
            if event.kind in (EventKind.INJECT, EventKind.BUFFER):
                arrivals.setdefault(event.node, event.cycle)
            elif event.kind in (EventKind.TRAVERSE, EventKind.EJECT):
                if event.node in arrivals:
                    timings.append(
                        HopTiming(event.node, arrivals.pop(event.node), event.cycle)
                    )
        return timings

    def slowest_hops(self, count: int = 10) -> list[tuple[int, HopTiming]]:
        """The (packet, hop) pairs with the longest head dwell times."""
        ranked: list[tuple[int, HopTiming]] = []
        for pid in self._by_packet:
            for timing in self.hop_timings(pid):
                ranked.append((pid, timing))
        ranked.sort(key=lambda item: -item[1].dwell)
        return ranked[:count]

    def dwell_by_node(self) -> dict[NodeId, float]:
        """Average head dwell per router — a congestion heatmap input."""
        sums: dict[NodeId, list[int]] = defaultdict(list)
        for pid in self._by_packet:
            for timing in self.hop_timings(pid):
                sums[timing.node].append(timing.dwell)
        return {n: sum(v) / len(v) for n, v in sums.items()}

    def format_journey(self, pid: int) -> str:
        """Human-readable one-packet flight log.

        When the recorder hit its event cap the log ends with an explicit
        truncation note, so a partial trace cannot masquerade as the
        packet's complete flight.
        """
        lines = [f"packet {pid}:"]
        for event in self._by_packet.get(pid, []):
            lines.append(
                f"  c{event.cycle:>6} {event.kind.value:>8} flit {event.flit_seq}"
                f" @ {event.node} {event.detail}"
            )
        if self.truncated:
            lines.append(
                f"  [trace truncated: {self.dropped_events} event(s) dropped"
                f" past the {self.max_events}-event cap; journey may be"
                " incomplete]"
            )
        return "\n".join(lines)
