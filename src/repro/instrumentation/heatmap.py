"""ASCII heatmaps of mesh-shaped data.

Renders ``{NodeId: value}`` maps as a mesh-aligned grid, either as
numbers or as shade characters — enough to see a congestion tree or a
dead router at a glance in a terminal.
"""

from __future__ import annotations

from repro.core.types import NodeId

#: Shade ramp from idle to saturated.
SHADES = " .:-=+*#%@"


def render_grid(
    values: dict[NodeId, float],
    width: int,
    height: int,
    fmt: str = "{:6.2f}",
    missing: str = "     -",
) -> str:
    """Numeric grid, one row of routers per line (y grows downward)."""
    lines = []
    for y in range(height):
        cells = []
        for x in range(width):
            node = NodeId(x, y)
            if node in values:
                cells.append(fmt.format(values[node]))
            else:
                cells.append(missing)
        lines.append(" ".join(cells))
    return "\n".join(lines)


def render_shaded(
    values: dict[NodeId, float],
    width: int,
    height: int,
    maximum: float | None = None,
) -> str:
    """Shade-character grid normalised to ``maximum`` (default: data max)."""
    if maximum is None:
        maximum = max(values.values(), default=1.0) or 1.0
    lines = []
    for y in range(height):
        row = []
        for x in range(width):
            value = values.get(NodeId(x, y), 0.0)
            level = min(len(SHADES) - 1, int(value / maximum * (len(SHADES) - 1)))
            row.append(SHADES[level] * 2)
        lines.append("".join(row))
    return "\n".join(lines)


def render_legend(maximum: float) -> str:
    return f"scale: '{SHADES[0]}' = 0.0  ..  '{SHADES[-1]}' = {maximum:.2f}"
