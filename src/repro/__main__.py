"""Command-line interface: ``python -m repro`` runs simulations.

A single operating point::

    python -m repro --router roco --routing xy --rate 0.2
    python -m repro --router generic --traffic transpose --rate 0.15 --size 8
    python -m repro --router roco --faults 2 --fault-class critical

Sweep mode — give several rates and/or seeds and the grid fans out over
a worker pool with an on-disk result cache (repeat invocations skip
already-simulated points)::

    python -m repro --router roco --rates 0.05,0.15,0.25 --num-seeds 3 \
        --workers 0 --cache-dir ~/.cache/repro

``--workers 0`` means "all cores"; parallel runs produce records
identical to serial ones (see docs/parallel-execution.md).

Benchmark mode — run the registered benchmark suite through the
benchbed (see docs/benchmarking.md), or compare two artifact sets::

    python -m repro bench --quick --filter "fig8*" --out bench-results
    python -m repro bench --quick --baseline benchmarks/baseline --no-wall
    python -m repro bench compare benchmarks/baseline bench-results

Audit mode — run with per-cycle invariant checking, shrink failures to
minimal reproducers, or replay one (see docs/auditing.md)::

    python -m repro audit --router roco --rate 0.2 --faults 2
    python -m repro audit --rate 0.3 --shrink repro.json
    python -m repro audit --replay repro.json
    python -m repro audit --grid

Resilient sweeps — supervise jobs with deadlines/retries, journal
completed work, and resume an interrupted campaign without duplicating
simulations (see docs/resilient-execution.md)::

    python -m repro --rates 0.05,0.15 --num-seeds 5 --workers 0 \
        --cache-dir ~/.cache/repro --job-timeout 120 --max-retries 2
    python -m repro --rates 0.05,0.15 --num-seeds 5 --workers 0 \
        --cache-dir ~/.cache/repro --resume
    python -m repro chaos --grid

Serve mode — run simulations as a service: an HTTP job server that
dedupes identical concurrent requests onto one simulation, shares the
on-disk cache with batch sweeps, and streams progress as NDJSON (see
docs/serving.md)::

    python -m repro serve --workers 4 --cache-dir ~/.cache/repro
    python -m repro serve submit '{"kind": "experiment", "config": {"rate": 0.1}}'
    python -m repro serve status
    python -m repro serve --smoke
"""

from __future__ import annotations

import argparse
import random
import sys

from repro.core.config import SimulationConfig
from repro.core.simulator import run_simulation
from repro.core.types import NodeId
from repro.faults.injector import random_faults
from repro.faults.schedule import FaultSchedule
from repro.harness.campaign import run_campaign
from repro.harness.parallel import (
    ParallelExecutor,
    ProgressPrinter,
    ResultCache,
    is_failure_record,
)
from repro.harness.sweeps import Sweep
from repro.routers import ROUTER_CLASSES
from repro.traffic import TRAFFIC_CLASSES


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Cycle-accurate NoC simulation of the RoCo router and baselines",
    )
    parser.add_argument(
        "--router", choices=sorted(ROUTER_CLASSES), default="roco"
    )
    parser.add_argument(
        "--routing", choices=["xy", "xy-yx", "adaptive"], default="xy"
    )
    parser.add_argument(
        "--traffic", choices=sorted(TRAFFIC_CLASSES), default="uniform"
    )
    parser.add_argument(
        "--rate", type=float, default=0.2, help="injection rate (flits/node/cycle)"
    )
    parser.add_argument("--size", type=int, default=8, help="mesh is size x size")
    parser.add_argument(
        "--topology",
        choices=["mesh", "torus"],
        default="mesh",
        help="torus requires --router generic with XY routing",
    )
    parser.add_argument("--packets", type=int, default=2000, help="measured packets")
    parser.add_argument("--warmup", type=int, default=300)
    parser.add_argument("--seed", type=int, default=1)
    parser.add_argument(
        "--shards",
        default=None,
        metavar="WxH",
        help=(
            "partition the mesh into WxH tile worker processes "
            "(bit-identical; see docs/sharded-scaling.md)"
        ),
    )
    parser.add_argument(
        "--faults", type=int, default=0, help="number of random permanent faults"
    )
    parser.add_argument(
        "--fault-class",
        choices=["critical", "non-critical"],
        default="critical",
        help="Figure-11 (router-centric) vs Figure-12 (message-centric) population",
    )
    campaign = parser.add_argument_group(
        "fault campaign", "inject faults mid-run instead of before wiring"
    )
    campaign.add_argument(
        "--fault-schedule",
        default=None,
        metavar="FILE",
        help="JSON fault-schedule file (see docs/fault-model.md) to run mid-simulation",
    )
    campaign.add_argument(
        "--mtbf",
        type=float,
        default=None,
        metavar="CYCLES",
        help="sample --faults arrivals with this mean time between failures",
    )
    campaign.add_argument(
        "--weibull-shape",
        type=float,
        default=None,
        metavar="K",
        help="Weibull shape for --mtbf arrivals (default: exponential)",
    )
    campaign.add_argument(
        "--transient",
        type=int,
        default=None,
        metavar="CYCLES",
        help="make scheduled faults transient, healing after this many cycles",
    )
    sweep = parser.add_argument_group(
        "sweep mode", "run a grid of points instead of a single simulation"
    )
    sweep.add_argument(
        "--rates",
        type=_rate_list,
        default=None,
        metavar="R1,R2,...",
        help="comma-separated injection rates to sweep (overrides --rate)",
    )
    sweep.add_argument(
        "--num-seeds",
        type=int,
        default=1,
        metavar="N",
        help="sweep N consecutive seeds starting at --seed",
    )
    execution = parser.add_argument_group(
        "execution", "worker pool and result cache (sweep mode)"
    )
    execution.add_argument(
        "--workers",
        type=int,
        default=None,
        metavar="N",
        help="worker processes for sweeps (0 = all cores; default serial)",
    )
    execution.add_argument(
        "--cache-dir",
        default=None,
        metavar="DIR",
        help="directory for the on-disk result cache (enables caching)",
    )
    execution.add_argument(
        "--no-cache",
        action="store_true",
        help="ignore --cache-dir and always simulate",
    )
    resilience = parser.add_argument_group(
        "resilience",
        "fault-tolerant sweep supervision (see docs/resilient-execution.md)",
    )
    resilience.add_argument(
        "--job-timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help="per-job wall-clock deadline (pooled runs; enables supervision)",
    )
    resilience.add_argument(
        "--max-retries",
        type=int,
        default=None,
        metavar="N",
        help="retries per job before quarantining it (enables supervision)",
    )
    resilience.add_argument(
        "--speculative",
        action="store_true",
        help="re-execute stragglers speculatively on idle workers",
    )
    resilience.add_argument(
        "--journal",
        default=None,
        metavar="FILE",
        help=(
            "sweep journal path (default: <cache-dir>/journal.jsonl "
            "when --cache-dir is set)"
        ),
    )
    resilience.add_argument(
        "--resume",
        action="store_true",
        help=(
            "resume an interrupted sweep from its journal: completed "
            "jobs are served from the cache, quarantined failures are "
            "replayed, nothing is simulated twice"
        ),
    )
    return parser


def _rate_list(text: str) -> list[float]:
    try:
        return [float(part) for part in text.split(",") if part.strip()]
    except ValueError as exc:
        raise argparse.ArgumentTypeError(f"bad rate list {text!r}") from exc


def _build_schedule(args) -> FaultSchedule | None:
    """Resolve the campaign flags into a schedule (or None)."""
    if args.fault_schedule is not None:
        return FaultSchedule.from_json(args.fault_schedule)
    if args.mtbf is not None:
        nodes = [
            NodeId(x, y) for y in range(args.size) for x in range(args.size)
        ]
        return FaultSchedule.sampled(
            nodes,
            count=args.faults,
            seed=args.seed,
            mtbf=args.mtbf,
            critical=args.fault_class == "critical",
            weibull_shape=args.weibull_shape,
            duration=args.transient,
        )
    return None


def _campaign_args_valid(args) -> str | None:
    """Return an error message when the campaign flags are inconsistent."""
    if args.fault_schedule is not None and args.mtbf is not None:
        return "--fault-schedule and --mtbf are mutually exclusive"
    if args.mtbf is not None and args.faults <= 0:
        return "--mtbf needs --faults N to know how many arrivals to sample"
    if args.transient is not None and args.transient <= 0:
        return "--transient must be a positive cycle count"
    if (
        args.transient is not None
        and args.fault_schedule is None
        and args.mtbf is None
    ):
        return "--transient requires --mtbf or --fault-schedule"
    if args.weibull_shape is not None and args.mtbf is None:
        return "--weibull-shape requires --mtbf"
    return None


def _run_single(args) -> int:
    schedule = _build_schedule(args)
    config = SimulationConfig(
        width=args.size,
        height=args.size,
        topology=args.topology,
        router=args.router,
        routing=args.routing,
        traffic=args.traffic,
        injection_rate=args.rate,
        warmup_packets=args.warmup,
        measure_packets=args.packets,
        seed=args.seed,
        shards=args.shards,
    )
    campaign = None
    if schedule is not None:
        for event in schedule:
            healing = (
                f", heals at {event.clear_cycle}" if event.transient else ""
            )
            print(
                f"fault @ cycle {event.cycle}: {event.fault.component.value} "
                f"at {event.fault.node} ({event.fault.module} module){healing}"
            )
        campaign = run_campaign(config, schedule)
        result = campaign.result
    else:
        faults = []
        if args.faults:
            nodes = [
                NodeId(x, y) for y in range(args.size) for x in range(args.size)
            ]
            faults = random_faults(
                nodes,
                args.faults,
                random.Random(args.seed),
                critical=args.fault_class == "critical",
            )
            for fault in faults:
                print(
                    f"fault: {fault.component.value} at {fault.node} "
                    f"({fault.module} module)"
                )
        result = run_simulation(config, faults=faults)
    print(result.summary_line())
    print(
        f"  latency p50/p95/p99: {result.latency.p50:.1f} / "
        f"{result.latency.p95:.1f} / {result.latency.p99:.1f} cycles; "
        f"throughput {result.throughput:.3f} flits/node/cycle; "
        f"{result.cycles} cycles simulated"
    )
    if campaign is not None:
        for line in campaign.summary_lines():
            print(f"  {line}")
    return 0


def _build_resilience(args, cache) -> tuple[object, object] | tuple[None, None]:
    """Resolve the resilience flags into (policy, journal)."""
    wants_policy = (
        args.job_timeout is not None
        or args.max_retries is not None
        or args.speculative
        or args.resume
        or args.journal is not None
    )
    if not wants_policy:
        return None, None
    from repro.harness.resilient import RetryPolicy, SweepJournal

    policy_kwargs = {"speculative": args.speculative}
    if args.job_timeout is not None:
        policy_kwargs["job_timeout"] = args.job_timeout
    if args.max_retries is not None:
        policy_kwargs["max_retries"] = args.max_retries
    policy = RetryPolicy(**policy_kwargs)
    journal_path = args.journal
    if journal_path is None and cache is not None:
        journal_path = cache.directory / "journal.jsonl"
    journal = None
    if journal_path is not None:
        journal = SweepJournal(journal_path, resume=args.resume)
    return policy, journal


def _run_sweep(args) -> int:
    schedule = _build_schedule(args)
    if args.faults and schedule is None:
        print(
            "error: static --faults is not supported in sweep mode "
            "(use --mtbf or --fault-schedule for campaigns)",
            file=sys.stderr,
        )
        return 2
    rates = args.rates if args.rates else [args.rate]
    seeds = list(range(args.seed, args.seed + args.num_seeds))
    sweep = Sweep(
        axes={"injection_rate": rates, "seed": seeds},
        base={
            "width": args.size,
            "height": args.size,
            "topology": args.topology,
            "router": args.router,
            "routing": args.routing,
            "traffic": args.traffic,
            "warmup_packets": args.warmup,
            "measure_packets": args.packets,
            **({"shards": args.shards} if args.shards else {}),
        },
        schedule=schedule,
    )
    cache = None
    if args.cache_dir and not args.no_cache:
        cache = ResultCache(args.cache_dir)
    policy, journal = _build_resilience(args, cache)
    executor = ParallelExecutor(
        workers=args.workers,
        cache=cache,
        progress=ProgressPrinter(),
        policy=policy,
        journal=journal,
    )
    supervised = ", supervised" if policy is not None else ""
    print(
        f"sweep: {sweep.size} points ({len(rates)} rates x {len(seeds)} seeds), "
        f"{executor.workers} worker(s){supervised}"
        + (f", cache at {cache.directory}" if cache else "")
        + (f", journal at {journal.path}" if journal is not None else ""),
        file=sys.stderr,
    )
    records = sweep.run(executor=executor)
    for record in records:
        if is_failure_record(record):
            print(
                f"        FAILED [{record['kind']}] {record['error_type']} "
                f"after {record['attempts']} attempt(s): {record['message']}"
            )
            continue
        print(
            f"{record['router']:>14s} {record['routing']:>8s} "
            f"{record['traffic']:>12s} rate={record['injection_rate']:.2f} "
            f"seed={record['seed']} lat={record['average_latency']:7.2f} cyc "
            f"tput={record['throughput']:.3f} "
            f"E/pkt={record['energy_per_packet_nj']:6.3f} nJ"
        )
    stats = executor.last_stats
    print(
        f"done: {stats.describe()}, {stats.elapsed_seconds:.1f}s",
        file=sys.stderr,
    )
    if cache is not None:
        print(f"cache: {cache.summary()}", file=sys.stderr)
    if journal is not None:
        journal.close()
    return 0


def main(argv: list[str] | None = None) -> int:
    argv = list(sys.argv[1:]) if argv is None else list(argv)
    if argv[:1] == ["audit"]:
        # Invariant-audited runs, shrinking and reproducer replay; its
        # argument surface is separate from the simulation flags above.
        from repro.audit.cli import audit_main

        return audit_main(argv[1:])
    if argv[:1] == ["bench"]:
        # Benchbed subcommand: registry runner + regression gate.  Its
        # argument surface is separate from the simulation flags above.
        from repro.harness.benchbed import bench_main

        return bench_main(argv[1:])
    if argv[:1] == ["shards"]:
        # Sharded execution subcommand: tile-process runs and the
        # sharded-vs-reference equivalence grid (docs/sharded-scaling.md).
        from repro.harness.sharded import sharded_main

        return sharded_main(argv[1:])
    if argv[:1] == ["serve"]:
        # Job-server subcommand: simulation-as-a-service with request
        # dedupe and supervised execution (docs/serving.md).
        from repro.serve.cli import serve_main

        return serve_main(argv[1:])
    if argv[:1] == ["chaos"]:
        # Chaos subcommand: differential fault-injection grid for the
        # resilient execution layer (docs/resilient-execution.md).
        from repro.harness.chaos import chaos_main

        return chaos_main(argv[1:])
    args = build_parser().parse_args(argv)
    if args.num_seeds < 1:
        print("error: --num-seeds must be >= 1", file=sys.stderr)
        return 2
    campaign_error = _campaign_args_valid(args)
    if campaign_error is not None:
        print(f"error: {campaign_error}", file=sys.stderr)
        return 2
    if args.resume and args.journal is None and not args.cache_dir:
        print(
            "error: --resume needs --journal FILE or --cache-dir DIR "
            "to locate the sweep journal",
            file=sys.stderr,
        )
        return 2
    if args.rates is not None or args.num_seeds > 1:
        return _run_sweep(args)
    return _run_single(args)


if __name__ == "__main__":
    sys.exit(main())
