"""Command-line interface: ``python -m repro`` runs one simulation.

Examples::

    python -m repro --router roco --routing xy --rate 0.2
    python -m repro --router generic --traffic transpose --rate 0.15 --size 8
    python -m repro --router roco --faults 2 --fault-class critical
"""

from __future__ import annotations

import argparse
import random
import sys

from repro.core.config import SimulationConfig
from repro.core.simulator import run_simulation
from repro.core.types import NodeId
from repro.faults.injector import random_faults
from repro.routers import ROUTER_CLASSES
from repro.traffic import TRAFFIC_CLASSES


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Cycle-accurate NoC simulation of the RoCo router and baselines",
    )
    parser.add_argument(
        "--router", choices=sorted(ROUTER_CLASSES), default="roco"
    )
    parser.add_argument(
        "--routing", choices=["xy", "xy-yx", "adaptive"], default="xy"
    )
    parser.add_argument(
        "--traffic", choices=sorted(TRAFFIC_CLASSES), default="uniform"
    )
    parser.add_argument(
        "--rate", type=float, default=0.2, help="injection rate (flits/node/cycle)"
    )
    parser.add_argument("--size", type=int, default=8, help="mesh is size x size")
    parser.add_argument(
        "--topology",
        choices=["mesh", "torus"],
        default="mesh",
        help="torus requires --router generic with XY routing",
    )
    parser.add_argument("--packets", type=int, default=2000, help="measured packets")
    parser.add_argument("--warmup", type=int, default=300)
    parser.add_argument("--seed", type=int, default=1)
    parser.add_argument(
        "--faults", type=int, default=0, help="number of random permanent faults"
    )
    parser.add_argument(
        "--fault-class",
        choices=["critical", "non-critical"],
        default="critical",
        help="Figure-11 (router-centric) vs Figure-12 (message-centric) population",
    )
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    config = SimulationConfig(
        width=args.size,
        height=args.size,
        topology=args.topology,
        router=args.router,
        routing=args.routing,
        traffic=args.traffic,
        injection_rate=args.rate,
        warmup_packets=args.warmup,
        measure_packets=args.packets,
        seed=args.seed,
    )
    faults = []
    if args.faults:
        nodes = [
            NodeId(x, y) for y in range(args.size) for x in range(args.size)
        ]
        faults = random_faults(
            nodes,
            args.faults,
            random.Random(args.seed),
            critical=args.fault_class == "critical",
        )
        for fault in faults:
            print(
                f"fault: {fault.component.value} at {fault.node} "
                f"({fault.module} module)"
            )
    result = run_simulation(config, faults=faults)
    print(result.summary_line())
    print(
        f"  latency p50/p95/p99: {result.latency.p50:.1f} / "
        f"{result.latency.p95:.1f} / {result.latency.p99:.1f} cycles; "
        f"throughput {result.throughput:.3f} flits/node/cycle; "
        f"{result.cycles} cycles simulated"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
