"""Baseline 2x2 switch allocator without the Mirroring Effect.

Used by the mirror-allocation ablation: a plain two-stage separable
allocator over the same 2-port / 2-direction module.  Each input port
blindly nominates one ready VC (a single v:1 arbiter per port, no
per-direction local winners), then each direction picks among the
nominating ports.  Unlike the Mirror allocator this provides no
maximal-matching guarantee: a port whose nominee loses its direction
idles even when its other VCs wanted the free direction.
"""

from __future__ import annotations

from repro.arbiters.mirror import MirrorGrant
from repro.arbiters.round_robin import RoundRobinArbiter


class SequentialAllocator:
    """Drop-in (non-maximal) replacement for :class:`MirrorAllocator`."""

    def __init__(self, num_vcs: int) -> None:
        self.num_vcs = num_vcs
        self._port_stage = [RoundRobinArbiter(num_vcs) for _ in range(2)]
        self._direction_stage = [RoundRobinArbiter(2) for _ in range(2)]

    def allocate(self, requests: list[list[list[bool]]]) -> list[MirrorGrant]:
        if len(requests) != 2 or any(len(r) != 2 for r in requests):
            raise ValueError("sequential allocator expects a 2x2 request matrix")
        # Stage 1: one nominee per port, chosen blind to direction load.
        nominees: list[tuple[int, int] | None] = [None, None]
        for port in range(2):
            flat = [
                requests[port][0][vc] or requests[port][1][vc]
                for vc in range(self.num_vcs)
            ]
            if not any(flat):
                continue
            vc = self._port_stage[port].grant(flat)
            slot = 0 if requests[port][0][vc] else 1
            nominees[port] = (slot, vc)
        # Stage 2: each direction grants one nominating port.
        grants: list[MirrorGrant] = []
        for slot in range(2):
            lines = [
                nominees[port] is not None and nominees[port][0] == slot
                for port in range(2)
            ]
            if not any(lines):
                continue
            port = self._direction_stage[slot].grant(lines)
            grants.append(MirrorGrant(port, slot, nominees[port][1]))
        return grants
