"""The Mirroring Effect switch allocator (paper Section 3.3, Figure 4).

Each RoCo module owns a 2x2 crossbar: two input ports, two output
directions (East/West for the Row-Module, North/South for the
Column-Module).  The allocator works in two stages:

* **Local stage** — every input port runs *two* v:1 arbiters, one per
  output direction, producing that port's winning VC for each direction.
* **Global stage** — a single 2:1 arbiter decides the direction granted to
  port 1; port 2's grant is the *mirror image* (the opposite direction).
  The global arbiter also sees port 2's state so the mirrored pair always
  realises a maximal matching on the 2x2 switch.

Compared to iterative separable allocation this needs one global arbiter
per module instead of one per output port, and never leaves a servable
request unserved (the matching is maximal by construction).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.arbiters.round_robin import RoundRobinArbiter


@dataclass(frozen=True)
class MirrorGrant:
    """One crossbar passage granted for this cycle."""

    port: int
    direction_slot: int
    vc_index: int


class MirrorAllocator:
    """Maximal-matching allocator for one 2x2 RoCo module.

    Directions are abstracted to slots 0 and 1 (the module maps them onto
    East/West or North/South).  ``num_vcs`` is the VC count per input
    port.
    """

    def __init__(self, num_vcs: int) -> None:
        self.num_vcs = num_vcs
        # Two local v:1 arbiters per port: [port][direction_slot].
        self._local = [
            [RoundRobinArbiter(num_vcs), RoundRobinArbiter(num_vcs)] for _ in range(2)
        ]
        # The single global 2:1 arbiter of Figure 4 (direction of port 1).
        self._global = RoundRobinArbiter(2)

    def allocate(self, requests: list[list[list[bool]]]) -> list[MirrorGrant]:
        """Run one allocation cycle.

        ``requests[port][direction_slot][vc]`` is True when that VC's front
        flit wants that output.  Returns at most one grant per port and at
        most one per direction (mirrored), maximising the match count.
        """
        if len(requests) != 2 or any(len(r) != 2 for r in requests):
            raise ValueError("mirror allocator expects a 2-port, 2-direction matrix")

        # Local stage: winning VC per (port, direction), None when idle.
        local: list[list[int | None]] = [[None, None], [None, None]]
        for port in range(2):
            for slot in range(2):
                if any(requests[port][slot]):
                    local[port][slot] = self._local[port][slot].grant(
                        requests[port][slot]
                    )

        p1_has = [local[0][0] is not None, local[0][1] is not None]
        p2_has = [local[1][0] is not None, local[1][1] is not None]

        grants: list[MirrorGrant] = []
        if p1_has[0] or p1_has[1]:
            slot1 = self._choose_port1_slot(p1_has, p2_has)
            grants.append(MirrorGrant(0, slot1, local[0][slot1]))
            mirror_slot = 1 - slot1
            if p2_has[mirror_slot]:
                grants.append(MirrorGrant(1, mirror_slot, local[1][mirror_slot]))
        elif p2_has[0] or p2_has[1]:
            # Port 1 idle: the global arbiter serves port 2 directly.
            slot2 = self._global.grant(p2_has)
            grants.append(MirrorGrant(1, slot2, local[1][slot2]))
        return grants

    def _choose_port1_slot(self, p1_has: list[bool], p2_has: list[bool]) -> int:
        """Pick port 1's direction, maximising the mirrored match count.

        When both directions yield the same match count the 2:1 global
        arbiter's rotating priority breaks the tie fairly.
        """
        scores = []
        for slot in range(2):
            if not p1_has[slot]:
                scores.append(-1)
            else:
                scores.append(1 + (1 if p2_has[1 - slot] else 0))
        if scores[0] == scores[1]:
            return self._global.grant([True, True])
        winner = 0 if scores[0] > scores[1] else 1
        # Keep the global arbiter's state consistent with the decision.
        self._global.grant([winner == 0, winner == 1])
        return winner


def matching_size(requests: list[list[list[bool]]], grants: list[MirrorGrant]) -> int:
    """Number of crossbar passages realised; used by tests to check maximality."""
    return len(grants)


def max_possible_matching(requests: list[list[list[bool]]]) -> int:
    """Brute-force maximum matching size on the 2x2 request matrix."""
    has = [[any(requests[p][s]) for s in range(2)] for p in range(2)]
    best = 0
    # Enumerate assignments: each port takes one direction slot or none,
    # with distinct slots.
    for s1 in (None, 0, 1):
        for s2 in (None, 0, 1):
            if s1 is not None and s1 == s2:
                continue
            size = 0
            if s1 is not None and has[0][s1]:
                size += 1
            if s2 is not None and has[1][s2]:
                size += 1
            best = max(best, size)
    return best
