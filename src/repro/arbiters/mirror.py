"""The Mirroring Effect switch allocator (paper Section 3.3, Figure 4).

Each RoCo module owns a 2x2 crossbar: two input ports, two output
directions (East/West for the Row-Module, North/South for the
Column-Module).  The allocator works in two stages:

* **Local stage** — every input port runs *two* v:1 arbiters, one per
  output direction, producing that port's winning VC for each direction.
* **Global stage** — a single 2:1 arbiter decides the direction granted to
  port 1; port 2's grant is the *mirror image* (the opposite direction).
  The global arbiter also sees port 2's state so the mirrored pair always
  realises a maximal matching on the 2x2 switch.

Compared to iterative separable allocation this needs one global arbiter
per module instead of one per output port, and never leaves a servable
request unserved (the matching is maximal by construction).
"""

from __future__ import annotations

from typing import NamedTuple

from repro.arbiters.round_robin import RoundRobinArbiter


class MirrorGrant(NamedTuple):
    """One crossbar passage granted for this cycle."""

    port: int
    direction_slot: int
    vc_index: int


class MirrorAllocator:
    """Maximal-matching allocator for one 2x2 RoCo module.

    Directions are abstracted to slots 0 and 1 (the module maps them onto
    East/West or North/South).  ``num_vcs`` is the VC count per input
    port.
    """

    def __init__(self, num_vcs: int) -> None:
        self.num_vcs = num_vcs
        # Two local v:1 arbiters per port: [port][direction_slot].
        self._local = [
            [RoundRobinArbiter(num_vcs), RoundRobinArbiter(num_vcs)] for _ in range(2)
        ]
        # The single global 2:1 arbiter of Figure 4 (direction of port 1).
        self._global = RoundRobinArbiter(2)

    def allocate(self, requests: list[list[list[bool]]]) -> list[MirrorGrant]:
        """Run one allocation cycle.

        ``requests[port][direction_slot][vc]`` is True when that VC's front
        flit wants that output.  Returns at most one grant per port and at
        most one per direction (mirrored), maximising the match count.
        """
        if len(requests) != 2 or len(requests[0]) != 2 or len(requests[1]) != 2:
            raise ValueError("mirror allocator expects a 2-port, 2-direction matrix")

        # Local stage: winning VC per (port, direction), None when idle.
        # Every requesting (port, slot) runs its arbiter — losing slots
        # still advance rotating priority, exactly as in hardware.
        p1_req, p2_req = requests
        local = self._local
        l00 = local[0][0].grant(p1_req[0]) if True in p1_req[0] else None
        l01 = local[0][1].grant(p1_req[1]) if True in p1_req[1] else None
        l10 = local[1][0].grant(p2_req[0]) if True in p2_req[0] else None
        l11 = local[1][1].grant(p2_req[1]) if True in p2_req[1] else None

        p2_has = (l10 is not None, l11 is not None)

        if l00 is not None or l01 is not None:
            slot1 = self._choose_port1_slot(
                (l00 is not None, l01 is not None), p2_has
            )
            grants = [MirrorGrant(0, slot1, l00 if slot1 == 0 else l01)]
            if slot1 == 0:
                if l11 is not None:
                    grants.append(MirrorGrant(1, 1, l11))
            elif l10 is not None:
                grants.append(MirrorGrant(1, 0, l10))
            return grants
        if p2_has[0] or p2_has[1]:
            # Port 1 idle: the global arbiter serves port 2 directly.
            slot2 = self._global.grant(p2_has)
            return [MirrorGrant(1, slot2, l10 if slot2 == 0 else l11)]
        return []

    def _choose_port1_slot(self, p1_has: list[bool], p2_has: list[bool]) -> int:
        """Pick port 1's direction, maximising the mirrored match count.

        When both directions yield the same match count the 2:1 global
        arbiter's rotating priority breaks the tie fairly.
        """
        score0 = (2 if p2_has[1] else 1) if p1_has[0] else -1
        score1 = (2 if p2_has[0] else 1) if p1_has[1] else -1
        if score0 == score1:
            return self._global.grant((True, True))
        winner = 0 if score0 > score1 else 1
        # Keep the global arbiter's state consistent with the decision.
        self._global.grant((winner == 0, winner == 1))
        return winner


def matching_size(requests: list[list[list[bool]]], grants: list[MirrorGrant]) -> int:
    """Number of crossbar passages realised; used by tests to check maximality."""
    return len(grants)


def max_possible_matching(requests: list[list[list[bool]]]) -> int:
    """Brute-force maximum matching size on the 2x2 request matrix."""
    has = [[any(requests[p][s]) for s in range(2)] for p in range(2)]
    best = 0
    # Enumerate assignments: each port takes one direction slot or none,
    # with distinct slots.
    for s1 in (None, 0, 1):
        for s2 in (None, 0, 1):
            if s1 is not None and s1 == s2:
                continue
            size = 0
            if s1 is not None and has[0][s1]:
                size += 1
            if s2 is not None and has[1][s2]:
                size += 1
            best = max(best, size)
    return best
