"""Round-robin arbiter — the workhorse of both VA and SA stages."""

from __future__ import annotations

from collections.abc import Sequence

from repro.arbiters.base import Arbiter


class RoundRobinArbiter(Arbiter):
    """Rotating-priority arbiter.

    After a grant, the line *after* the winner becomes highest priority,
    which gives strong fairness (every persistent requester is served
    within ``num_requesters`` grants).
    """

    def __init__(self, num_requesters: int) -> None:
        super().__init__(num_requesters)
        self._next = 0

    def grant(self, requests: Sequence[bool]) -> int | None:
        n = self.num_requesters
        if len(requests) != n:
            self._check(requests)
        idx = self._next
        for _ in range(n):
            if idx >= n:
                idx -= n
            if requests[idx]:
                self._next = idx + 1 if idx + 1 < n else 0
                return idx
            idx += 1
        return None

    def peek(self, requests: Sequence[bool]) -> int | None:
        """Like :meth:`grant` but without advancing priority state."""
        self._check(requests)
        n = self.num_requesters
        for offset in range(n):
            idx = (self._next + offset) % n
            if requests[idx]:
                return idx
        return None
