"""Matrix (least-recently-served) arbiter.

Keeps a triangular priority matrix: ``_beats[i][j]`` is True when line
``i`` currently outranks line ``j``.  A winner is the requester that
outranks every other requester; granting demotes the winner below all
others.  This is the classic LRS arbiter used in VC allocators when
stronger fairness than round-robin is wanted.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.arbiters.base import Arbiter


class MatrixArbiter(Arbiter):
    """Least-recently-served arbiter with a full priority matrix."""

    def __init__(self, num_requesters: int) -> None:
        super().__init__(num_requesters)
        self._beats = [
            [i < j for j in range(num_requesters)] for i in range(num_requesters)
        ]

    def grant(self, requests: Sequence[bool]) -> int | None:
        self._check(requests)
        winner = None
        for i in range(self.num_requesters):
            if not requests[i]:
                continue
            if all(
                self._beats[i][j]
                for j in range(self.num_requesters)
                if j != i and requests[j]
            ):
                winner = i
                break
        if winner is None:
            return None
        for j in range(self.num_requesters):
            if j != winner:
                self._beats[winner][j] = False
                self._beats[j][winner] = True
        return winner
