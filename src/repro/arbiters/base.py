"""Arbiter interface.

An arbiter picks one winner among the requesters of a shared resource
each cycle.  Implementations differ in their fairness discipline; all are
stateful because hardware arbiters carry priority state between cycles.
"""

from __future__ import annotations

import abc
from collections.abc import Sequence
from typing import TypeVar

T = TypeVar("T")


class Arbiter(abc.ABC):
    """Single-resource arbiter over a fixed number of request lines."""

    def __init__(self, num_requesters: int) -> None:
        if num_requesters < 1:
            raise ValueError("arbiter needs at least one request line")
        self.num_requesters = num_requesters

    @abc.abstractmethod
    def grant(self, requests: Sequence[bool]) -> int | None:
        """Return the index of the winning request line, or None if idle.

        ``requests`` must have exactly ``num_requesters`` entries.
        Granting updates the arbiter's internal priority state.
        """

    def _check(self, requests: Sequence[bool]) -> None:
        if len(requests) != self.num_requesters:
            raise ValueError(
                f"expected {self.num_requesters} request lines, got {len(requests)}"
            )
