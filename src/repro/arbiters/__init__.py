"""Arbitration primitives: round-robin, matrix (LRS) and the RoCo Mirror allocator."""

from repro.arbiters.base import Arbiter
from repro.arbiters.matrix import MatrixArbiter
from repro.arbiters.mirror import MirrorAllocator, MirrorGrant, max_possible_matching
from repro.arbiters.round_robin import RoundRobinArbiter

__all__ = [
    "Arbiter",
    "MatrixArbiter",
    "MirrorAllocator",
    "MirrorGrant",
    "RoundRobinArbiter",
    "max_possible_matching",
]
