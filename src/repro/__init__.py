"""repro — reproduction of the RoCo Decoupled Router (ISCA 2006).

A flit-level, cycle-accurate Network-on-Chip simulator implementing the
Row-Column (RoCo) Decoupled Router of Kim et al. alongside the two
baselines the paper compares against (a generic 2-stage VC router and
the Path-Sensitive router), with the paper's routing algorithms, traffic
patterns, 90 nm energy model, permanent-fault model with hardware
recycling, and the combined Performance-Energy-Fault-tolerance (PEF)
metric.

Quickstart::

    from repro import SimulationConfig, run_simulation

    result = run_simulation(SimulationConfig(router="roco", routing="xy",
                                             traffic="uniform",
                                             injection_rate=0.2))
    print(result.average_latency, result.energy_per_packet_nj)
"""

from repro.core.config import RouterConfig, SimulationConfig
from repro.core.simulator import (
    DeadlockError,
    DrainTimeoutError,
    SimulationResult,
    Simulator,
    run_simulation,
)
from repro.core.types import Direction, DropReason, NodeId, Packet, RoutingMode
from repro.energy import EnergyModel, EnergyReport
from repro.faults import (
    Component,
    ComponentFault,
    FaultEvent,
    FaultSchedule,
    RuntimeFaultEngine,
    apply_faults,
    random_faults,
)
from repro.metrics import PEFBreakdown, energy_delay_product, pef
from repro.routers import ROUTER_CLASSES
from repro.traffic import TRAFFIC_CLASSES, make_traffic

__version__ = "1.0.0"

__all__ = [
    "Component",
    "ComponentFault",
    "DeadlockError",
    "Direction",
    "DrainTimeoutError",
    "DropReason",
    "EnergyModel",
    "EnergyReport",
    "FaultEvent",
    "FaultSchedule",
    "NodeId",
    "PEFBreakdown",
    "Packet",
    "ROUTER_CLASSES",
    "RouterConfig",
    "RoutingMode",
    "RuntimeFaultEngine",
    "SimulationConfig",
    "SimulationResult",
    "Simulator",
    "TRAFFIC_CLASSES",
    "apply_faults",
    "energy_delay_product",
    "make_traffic",
    "pef",
    "random_faults",
    "run_simulation",
    "__version__",
]
