"""90 nm activity-based energy model (paper Section 5.2 substitution)."""

from repro.energy.model import EnergyModel, EnergyReport
from repro.energy.profiles import (
    CROSSPOINTS,
    PROFILES,
    RouterEnergyProfile,
    profile_for,
)

__all__ = [
    "CROSSPOINTS",
    "EnergyModel",
    "EnergyReport",
    "PROFILES",
    "RouterEnergyProfile",
    "profile_for",
]
