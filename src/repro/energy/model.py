"""Activity-based energy accounting.

Exactly mirrors the paper's methodology (Section 5.2): the simulator
counts component activations; each activation is multiplied by the
synthesized (here: analytically estimated) per-event energy, and leakage
accrues per router per cycle.  Energy-per-packet divides the network
total over the measurement window by the packets delivered in it.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.statistics import ActivityCounters
from repro.energy.profiles import RouterEnergyProfile, profile_for


@dataclass(frozen=True)
class EnergyReport:
    """Energy totals for one measurement window, in Joules."""

    dynamic: float
    leakage: float
    delivered_packets: int

    @property
    def total(self) -> float:
        return self.dynamic + self.leakage

    @property
    def per_packet(self) -> float:
        """Energy consumed per delivered packet (the paper's Figure 13)."""
        if not self.delivered_packets:
            return 0.0
        return self.total / self.delivered_packets

    @property
    def per_packet_nj(self) -> float:
        return self.per_packet * 1e9


class EnergyModel:
    """Computes an :class:`EnergyReport` from simulator activity."""

    def __init__(self, architecture: str, num_routers: int) -> None:
        self.profile: RouterEnergyProfile = profile_for(architecture)
        self.num_routers = num_routers

    def dynamic_energy(self, activity: ActivityCounters) -> float:
        p = self.profile
        return (
            activity.buffer_writes * p.buffer_write
            + activity.buffer_reads * p.buffer_read
            + activity.crossbar_traversals * p.crossbar_traversal
            + activity.va_requests * p.va_request
            + activity.sa_requests * p.sa_request
            + activity.link_flits * p.link_flit
            + activity.early_ejections * p.early_ejection
        )

    def leakage_energy(self, cycles: int) -> float:
        return cycles * self.num_routers * self.profile.leakage_per_cycle

    def report(
        self, activity: ActivityCounters, cycles: int, delivered_packets: int
    ) -> EnergyReport:
        return EnergyReport(
            dynamic=self.dynamic_energy(activity),
            leakage=self.leakage_energy(cycles),
            delivered_packets=delivered_packets,
        )
