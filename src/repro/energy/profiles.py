"""Per-component energy profiles for the three router architectures.

The paper synthesises structural RTL in a TSMC 90 nm library (1 V,
500 MHz) and back-annotates per-component dynamic and leakage numbers
into the simulator.  Without a synthesis flow we substitute first-order
analytical estimates with the same *structural scaling*, which is what
drives the paper's relative results:

* **Crossbar** traversal energy scales with the crosspoint count loading
  each traversal: 25 for the generic 5x5, 8 for the Path-Sensitive
  decomposed 4x4 (half the connections), 4 for a RoCo 2x2 module.
* **VC allocator** energy scales with arbiter width (Figure 2): the
  generic router needs 5v:1 arbiters (v = 3 -> 15:1), RoCo only 2v:1
  (6:1), Path-Sensitive sits between.
* **Switch allocator** energy similarly: two-stage v:1 + 5:1 for the
  generic router versus the mirror allocator's v:1 pairs + single 2:1
  global arbiter per module.
* **Buffers** are identical across designs (the paper equalises total
  buffering at 60 flits/router), so per-access energies match.
* **Leakage** scales with gate count: the generic router's bigger
  crossbar and arbiters leak more than the two compact RoCo modules.

Absolute magnitudes are anchored to published 90 nm Orion-class numbers
(~0.3 pJ/bit buffer access, ~0.04 pJ/bit/crosspoint-row crossbar,
~0.05 pJ/bit/mm links) for 128-bit flits, which lands total energy per
packet in the same few-tenths-of-a-nJ regime as the paper's Figure 13.
"""

from __future__ import annotations

from dataclasses import dataclass

PICOJOULE = 1e-12


@dataclass(frozen=True)
class RouterEnergyProfile:
    """Energy cost of one event of each kind, in Joules."""

    architecture: str
    buffer_write: float
    buffer_read: float
    crossbar_traversal: float
    va_request: float
    sa_request: float
    link_flit: float
    early_ejection: float
    #: Static power burnt by one router every cycle, in Joules.
    leakage_per_cycle: float


#: Crosspoint counts per design (Figure 1 structures).
CROSSPOINTS = {"generic": 25, "path_sensitive": 8, "roco": 4}

#: Per-traversal crossbar scaling: one traversal drives an input row and
#: an output column, so energy scales with in-ports + out-ports (the
#: Orion first-order model), not with the full crosspoint matrix.
CROSSBAR_SCALE = {"generic": 10, "path_sensitive": 6, "roco": 4}

#: Widest VA arbiter per design, for v = 3 VCs (Figure 2 accounting).
VA_ARBITER_WIDTH = {"generic": 15, "path_sensitive": 9, "roco": 6}

#: Effective SA arbitration width (stage-1 fan-in + global stage).
SA_ARBITER_WIDTH = {"generic": 8, "path_sensitive": 5, "roco": 5}

#: Baseline energy scalers (Joules per unit of the scaling variable).
_BUFFER_WRITE = 10.0 * PICOJOULE  # per 128-bit flit
_BUFFER_READ = 8.0 * PICOJOULE
_CROSSBAR_PER_PORT = 1.0 * PICOJOULE  # per flit per loaded port row/column
_VA_PER_WIDTH = 0.10 * PICOJOULE  # per request per arbiter input
_SA_PER_WIDTH = 0.06 * PICOJOULE
_LINK_FLIT = 6.5 * PICOJOULE  # 1 mm inter-tile wire, 128 bits
#: Ejecting a flit straight off the input demux costs roughly one
#: buffer-read-equivalent of wire/mux switching.
_EARLY_EJECT = 2.0 * PICOJOULE
#: Router leakage at 90 nm / 500 MHz: ~1 mW -> 2 pJ per 2 ns cycle,
#: scaled mildly by crossbar + arbiter gate count.
_LEAKAGE_BASE = 1.70 * PICOJOULE
_LEAKAGE_PER_CROSSPOINT = 0.02 * PICOJOULE


def _profile(architecture: str) -> RouterEnergyProfile:
    xpoints = CROSSPOINTS[architecture]
    return RouterEnergyProfile(
        architecture=architecture,
        buffer_write=_BUFFER_WRITE,
        buffer_read=_BUFFER_READ,
        crossbar_traversal=CROSSBAR_SCALE[architecture] * _CROSSBAR_PER_PORT,
        va_request=VA_ARBITER_WIDTH[architecture] * _VA_PER_WIDTH,
        sa_request=SA_ARBITER_WIDTH[architecture] * _SA_PER_WIDTH,
        link_flit=_LINK_FLIT,
        early_ejection=_EARLY_EJECT,
        leakage_per_cycle=_LEAKAGE_BASE + xpoints * _LEAKAGE_PER_CROSSPOINT,
    )


PROFILES: dict[str, RouterEnergyProfile] = {
    name: _profile(name) for name in CROSSPOINTS
}


def profile_for(architecture: str) -> RouterEnergyProfile:
    """The energy profile of a router architecture."""
    try:
        return PROFILES[architecture]
    except KeyError:
        raise ValueError(f"no energy profile for {architecture!r}") from None
