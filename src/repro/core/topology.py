"""Topology abstraction: 2D mesh and 2D torus.

The paper targets "regular topologies such as 2D mesh and torus"
(Section 1).  A topology answers two questions: which neighbour (if
any) lies in a given direction, and how traffic may route between two
nodes.  The mesh has open borders; the torus wraps both dimensions,
which halves the average hop count but closes ring cycles that wormhole
switching must break with *dateline* VC classes (see
:func:`torus_ring_class`).
"""

from __future__ import annotations

import abc

from repro.core.types import Direction, NodeId


class Topology(abc.ABC):
    """Neighbourhood structure of a ``width x height`` node grid."""

    name = "base"

    def __init__(self, width: int, height: int) -> None:
        self.width = width
        self.height = height

    def contains(self, node: NodeId) -> bool:
        return 0 <= node.x < self.width and 0 <= node.y < self.height

    @abc.abstractmethod
    def neighbor(self, node: NodeId, direction: Direction) -> NodeId | None:
        """The adjacent node in ``direction``, or None at an open border."""

    @abc.abstractmethod
    def distance(self, a: NodeId, b: NodeId) -> int:
        """Minimal hop count between two nodes."""


class MeshTopology(Topology):
    """Open-border 2D mesh."""

    name = "mesh"

    def neighbor(self, node: NodeId, direction: Direction) -> NodeId | None:
        if direction is Direction.LOCAL:
            return node
        candidate = node.neighbor(direction)
        return candidate if self.contains(candidate) else None

    def distance(self, a: NodeId, b: NodeId) -> int:
        return abs(a.x - b.x) + abs(a.y - b.y)


class TorusTopology(Topology):
    """Wrap-around 2D torus: every node has all four neighbours."""

    name = "torus"

    def neighbor(self, node: NodeId, direction: Direction) -> NodeId | None:
        if direction is Direction.LOCAL:
            return node
        raw = node.neighbor(direction)
        return NodeId(raw.x % self.width, raw.y % self.height)

    def distance(self, a: NodeId, b: NodeId) -> int:
        return ring_distance(a.x, b.x, self.width) + ring_distance(
            a.y, b.y, self.height
        )


def ring_distance(a: int, b: int, k: int) -> int:
    """Minimal distance between positions ``a`` and ``b`` on a k-ring."""
    direct = abs(a - b)
    return min(direct, k - direct)


def ring_direction(a: int, b: int, k: int, positive: Direction, negative: Direction):
    """Minimal-direction step from ``a`` towards ``b`` on a k-ring.

    Returns None when aligned.  Ties (distance exactly k/2) go the
    positive way, a fixed convention so every router agrees on a
    packet's path.
    """
    if a == b:
        return None
    forward = (b - a) % k
    backward = (a - b) % k
    return positive if forward <= backward else negative


def torus_ring_class(src: int, cur: int, dest: int, k: int) -> int:
    """Dateline VC class of a packet travelling one torus dimension.

    Rings close channel-dependency cycles, so wormhole switching needs
    two VC classes per dimension: packets start in class 0 and switch
    to class 1 after crossing the *dateline* (the wrap edge between
    position ``k-1`` and ``0``), which cuts the cycle (Dally-Seitz).

    The class is stateless: given the source, current position and the
    fixed minimal direction from source to destination, whether the
    dateline has been crossed is arithmetic.  Note that the class of the
    final channel (``cur == dest``) still matters — a flit that wrapped
    en route must be admitted into a class-1 VC even at its destination
    column, or the ring cycle re-closes.
    """
    if src == dest:
        return 0
    forward = (dest - src) % k
    backward = (src - dest) % k
    travelled = (cur - src) % k if forward <= backward else (src - cur) % k
    if forward <= backward:
        # Travelling in +x: dateline sits between k-1 and 0, i.e. the
        # packet crossed it once its absolute position wrapped below src.
        crossed = src + travelled >= k
    else:
        crossed = src - travelled < 0
    return 1 if crossed else 0


def make_topology(name: str, width: int, height: int) -> Topology:
    """Instantiate a topology by name ("mesh" or "torus")."""
    kinds = {"mesh": MeshTopology, "torus": TorusTopology}
    try:
        return kinds[name](width, height)
    except KeyError:
        raise ValueError(
            f"unknown topology {name!r}; choose from {sorted(kinds)}"
        ) from None
