"""The flit-level cycle-accurate simulator (paper Section 5.1).

Orchestrates a run: packet generation per the traffic pattern, injection
through per-node sources, network cycle stepping, termination detection
(drain in healthy networks, inactivity timeout in faulty ones — the
paper stops a faulty run after twice the fault-free completion time),
and the final energy accounting.
"""

from __future__ import annotations

import heapq
import random
from collections import deque
from dataclasses import dataclass, field

from repro.core.config import SimulationConfig
from repro.core.network import Network
from repro.core.statistics import SchedulerCounters, StatsCollector
from repro.core.types import (
    DropReason,
    Flit,
    NodeId,
    Packet,
    RoutingMode,
    make_packet_flits,
)
from repro.energy.model import EnergyModel, EnergyReport
from repro.faults.injector import ComponentFault, apply_faults
from repro.faults.runtime import RuntimeFaultEngine
from repro.faults.schedule import FaultSchedule
from repro.metrics.latency import LatencySummary
from repro.metrics.pef import pef
from repro.routing.xyyx import choose_variant
from repro.traffic import TrafficPattern, make_traffic


class DeadlockError(RuntimeError):
    """Raised when a fault-free network stops making progress entirely."""


@dataclass
class StrandedCensus:
    """Snapshot of outstanding traffic when a run fails to drain.

    ``per_node`` counts outstanding packets by the node holding them
    (source queue or buffered flits); ``dead_modules`` maps faulted nodes
    to their dead granularity (module names, or ``("node",)`` for a
    whole-router kill); ``unreachable`` counts stranded packets whose
    destination the reachability pass says cannot be reached any more.
    """

    outstanding: int
    per_node: dict[NodeId, int]
    oldest_age: int
    dead_modules: dict[NodeId, tuple[str, ...]]
    unreachable: int

    def describe(self) -> str:
        hottest = sorted(self.per_node.items(), key=lambda kv: -kv[1])[:5]
        spots = ", ".join(f"{node}:{count}" for node, count in hottest)
        dead = ", ".join(
            f"{node}[{'+'.join(parts)}]"
            for node, parts in sorted(
                self.dead_modules.items(), key=lambda kv: (kv[0].y, kv[0].x)
            )
        )
        return (
            f"{self.outstanding} packets outstanding "
            f"(oldest {self.oldest_age} cycles, {self.unreachable} unreachable); "
            f"hottest nodes: {spots or 'none'}; "
            f"dead: {dead or 'none'}"
        )


class DrainTimeoutError(DeadlockError):
    """No-progress drain timeout, with a census of the stranded traffic."""

    def __init__(self, message: str, census: StrandedCensus) -> None:
        super().__init__(f"{message}: {census.describe()}")
        self.census = census


class Source:
    """Per-node packet source: a generation queue feeding the PE port."""

    __slots__ = ("node", "router", "queue", "current", "vc")

    def __init__(self, node: NodeId, router) -> None:
        self.node = node
        self.router = router
        #: Generated packets waiting to start injection.
        self.queue: deque[Packet] = deque()
        #: Flits of the packet currently being streamed into its VC.
        self.current: deque[Flit] | None = None
        self.vc = None

    def inject(self, network: Network, cycle: int) -> None:
        """Advance injection by at most one flit (PE link bandwidth)."""
        if self.current is None and self.queue:
            self._start_next_packet(network, cycle)
        if not self.current:
            return
        flit = self.current[0]
        if flit.packet.dropped_cycle is not None:
            if self.vc.owner_pid == flit.packet.pid:
                self.vc.release_owner()
            self.current = None
            self.vc = None
            return
        if self.vc.credits(cycle) <= 0:
            return
        self.current.popleft()
        self.vc.reserve_slot(cycle)
        self.vc.push(flit)
        # Source injection is one of the two scheduler wake events (the
        # other is an inbound link launch): the router must allocate for
        # this flit in the current cycle, exactly as under a full sweep.
        self.router.wake()
        flit.arrival = cycle
        if network.trace is not None:
            from repro.instrumentation.trace import EventKind

            network.trace.record(cycle, EventKind.INJECT, flit, self.node)
        if flit.is_head:
            self.vc.active_pid = flit.packet.pid
        network.stats.activity.buffer_writes += 1
        if not self.current:
            # Tail pushed: release the VC for the next worm.
            self.vc.release_owner()
            self.current = None
            self.vc = None

    def _start_next_packet(self, network: Network, cycle: int) -> None:
        packet = self.queue[0]
        if not self.router.injection_possible(packet):
            # The packet can never leave this PE (e.g. the only module
            # able to start its route is dead) — it is lost.
            self.queue.popleft()
            network.drop_packet(packet, cycle, DropReason.INJECTION_BLOCKED)
            return
        admission = self.router.injection_vc_for(packet)
        if admission is None:
            return
        vc, route = admission
        vc.claim(packet.pid)
        self.queue.popleft()
        packet.injected_cycle = cycle
        flits = make_packet_flits(packet)
        flits[0].route = route
        self.current = deque(flits)
        self.vc = vc

    @property
    def backlog(self) -> int:
        queued = sum(p.size for p in self.queue)
        return queued + (len(self.current) if self.current else 0)


@dataclass
class SimulationResult:
    """Everything a finished run reports."""

    config: SimulationConfig
    average_latency: float
    latency: LatencySummary
    average_hops: float
    injected_packets: int
    delivered_packets: int
    dropped_packets: int
    completion_probability: float
    throughput: float
    cycles: int
    energy: EnergyReport
    contention_row: float
    contention_column: float
    contention_overall: float
    faults: list[ComponentFault] = field(default_factory=list)
    #: Activity-driven scheduler telemetry (duty cycle, wake/sleep
    #: counts).  Deliberately *not* part of the exported result record:
    #: it describes how the run was executed, not what it simulated, and
    #: it legitimately differs between the two schedulers.
    scheduler: SchedulerCounters = field(default_factory=SchedulerCounters)
    #: Packet-conservation accounting over *all* packets (warm-up
    #: included), keyed by DropReason value.  Like ``scheduler``, these
    #: are not part of the exported result record (the record's schema
    #: is pinned by the golden fixture and the result cache); consumers
    #: wanting resilience detail read them off the result object or via
    #: repro.metrics.resilience.PacketAccounting.
    generated_packets: int = 0
    total_delivered: int = 0
    total_dropped: int = 0
    drops_by_reason: dict = field(default_factory=dict)
    #: Sharded runs only (repro.harness.sharded): one SchedulerCounters
    #: per tile, in tile row-major order.  Empty for single-process
    #: runs; like ``scheduler``, excluded from the exported record.
    tile_scheduler: list = field(default_factory=list)

    @property
    def conserved(self) -> bool:
        """Delivered + dropped(reason) == generated (nothing leaked)."""
        return (
            self.generated_packets == self.total_delivered + self.total_dropped
            and sum(self.drops_by_reason.values()) == self.total_dropped
        )

    @property
    def energy_per_packet_nj(self) -> float:
        return self.energy.per_packet_nj

    @property
    def edp(self) -> float:
        """Energy-Delay Product in nJ x cycles."""
        return self.average_latency * self.energy_per_packet_nj

    @property
    def pef(self) -> float:
        """Performance-Energy-Fault-tolerance metric (nJ x cycles / prob)."""
        return pef(
            self.average_latency,
            self.energy_per_packet_nj,
            self.completion_probability,
        )

    def summary_line(self) -> str:
        return (
            f"{self.config.router:>14s} {self.config.routing.value:>8s} "
            f"{self.config.traffic:>12s} rate={self.config.injection_rate:.2f} "
            f"lat={self.average_latency:7.2f} cyc "
            f"E/pkt={self.energy_per_packet_nj:6.3f} nJ "
            f"compl={self.completion_probability:5.3f} pef={self.pef:8.2f}"
        )


class Simulator:
    """One end-to-end simulation run."""

    def __init__(
        self,
        config: SimulationConfig,
        traffic: TrafficPattern | None = None,
        faults: list[ComponentFault] | None = None,
        *,
        schedule: FaultSchedule | None = None,
        full_sweep: bool = False,
    ) -> None:
        self.config = config
        self.rng = random.Random(config.seed)
        self.network = Network(config, full_sweep=full_sweep)
        self.traffic = traffic if traffic is not None else make_traffic(config.traffic)
        self.traffic.bind(config, self.rng, self.network.nodes)
        self.faults = list(faults) if faults else []
        apply_faults(self.network, self.faults)
        self.network.wire()
        self.sources = {
            node: Source(node, self.network.router_at(node))
            for node in self.network.nodes
        }
        #: Runtime fault campaign.  An empty schedule leaves every hot
        #: path untouched (the per-cycle check is two falsy deques), so
        #: campaign-with-no-events runs are bit-identical to plain runs.
        self.schedule = schedule if schedule else None
        self._pending_events = deque(self.schedule.events) if self.schedule else deque()
        self._expiries: list = []  # heap of (clear_cycle, seq, fault)
        self._expiry_seq = 0
        if self.schedule is not None:
            #: pid -> live Packet, so runtime eviction can resolve VC
            #: ownership claims; maintained only when a schedule exists.
            self._packet_registry: dict[int, Packet] | None = {}
            self._fault_engine: RuntimeFaultEngine | None = RuntimeFaultEngine(
                self.network, self._packet_registry.get
            )
        else:
            self._packet_registry = None
            self._fault_engine = None
        self._refresh_gen_sources()
        self._source_list = list(self.sources.values())
        self._generated = 0
        self._outstanding = 0
        self._next_pid = 0
        #: External observers (instrumentation probes) notified on
        #: packet completion events; see repro.instrumentation.
        self.delivery_listeners: list = []
        self.drop_listeners: list = []
        self.network.on_packet_delivered = self._on_packet_delivered
        self.network.on_packet_dropped = self._on_packet_dropped
        #: Runtime invariant auditing (repro.audit), opt-in via
        #: ``config.audit``.  Constructed here but attached at run()
        #: time so observers installed in between are chained, not
        #: rejected.
        if config.audit:
            from repro.audit.engine import AuditEngine

            self.audit: AuditEngine | None = AuditEngine(self)
        else:
            self.audit = None

    @property
    def generated(self) -> int:
        """Packets created so far (audit/diagnostic accounting)."""
        return self._generated

    @property
    def outstanding(self) -> int:
        """Packets created but not yet delivered or dropped."""
        return self._outstanding

    def _refresh_gen_sources(self) -> None:
        """(Re)compute the nodes able to inject, in node order.

        Without a runtime schedule fault state is permanent once applied,
        so this is computed exactly once; the runtime fault engine calls
        it again after every event batch, keeping the rng-draw sequence
        identical to filtering inline each cycle.
        """
        self._gen_sources = [
            (node, source)
            for node, source in self.sources.items()
            if source.router.accepting_any_injection()
        ]

    # ------------------------------------------------------------------

    def run(self, progress=None, progress_every: int = 5000) -> SimulationResult:
        """Simulate to completion and return the result record.

        ``progress(cycle, generated, outstanding)`` is invoked every
        ``progress_every`` cycles — useful for paper-scale runs where a
        pure-Python simulation takes minutes.  The reported counts are
        *post-step* values: they reflect generation, injection, delivery
        and drops up to and including ``cycle``.
        """
        config = self.config
        stats = self.network.stats
        if self.audit is not None:
            self.audit.attach()
        last_progress_cycle = 0
        last_signature = (-1, -1)
        cycle = 0
        for cycle in range(config.max_cycles):
            if self._pending_events or self._expiries:
                self._process_fault_events(cycle)
            if self._generated < config.total_packets:
                self._generate(cycle)
            for source in self._source_list:
                # Inlined idle filter: inject() on a source with nothing
                # queued and no worm in flight is a no-op.
                if source.queue or source.current:
                    source.inject(self.network, cycle)
            self.network.step(cycle)
            if progress is not None and cycle and cycle % progress_every == 0:
                progress(cycle, self._generated, self._outstanding)

            signature = (
                stats.activity.crossbar_traversals + stats.activity.buffer_writes,
                self._outstanding,
            )
            if signature != last_signature:
                last_signature = signature
                last_progress_cycle = cycle
            if self._generated >= config.total_packets and self._outstanding == 0:
                break
            if cycle - last_progress_cycle > config.drain_timeout:
                if self.network.has_faults:
                    break  # The paper's inactivity termination rule.
                raise DrainTimeoutError(
                    f"no progress for {config.drain_timeout} cycles at cycle "
                    f"{cycle}",
                    self.stranded_census(cycle),
                )
        self._drop_survivors(cycle)
        if self.audit is not None:
            self.audit.final_check(cycle)
        return self._build_result(cycle + 1)

    # ------------------------------------------------------------------
    # Runtime fault campaign
    # ------------------------------------------------------------------

    def _process_fault_events(self, cycle: int) -> None:
        """Heal due transients and strike due events, in schedule order.

        Runs at the top of the cycle — before generation and injection —
        so a schedule firing entirely at cycle 0 produces exactly the
        state a static ``apply_faults`` run starts from.
        """
        engine = self._fault_engine
        touched = False
        while self._expiries and self._expiries[0][0] <= cycle:
            _, _, fault = heapq.heappop(self._expiries)
            engine.clear(fault, cycle)
            touched = True
        while self._pending_events and self._pending_events[0].cycle <= cycle:
            event = self._pending_events.popleft()
            engine.apply(event.fault, cycle)
            self.faults.append(event.fault)
            if event.duration is not None:
                self._expiry_seq += 1
                heapq.heappush(
                    self._expiries,
                    (cycle + event.duration, self._expiry_seq, event.fault),
                )
            touched = True
        if touched:
            self._refresh_gen_sources()

    def stranded_census(self, cycle: int) -> StrandedCensus:
        """Census of outstanding traffic (drain-timeout diagnostics)."""
        per_node: dict[NodeId, int] = {}
        oldest: int | None = None
        unreachable = 0
        reach = self.network.reachability if self.network.has_faults else None

        def tally(node: NodeId, packet: Packet) -> None:
            nonlocal oldest, unreachable
            per_node[node] = per_node.get(node, 0) + 1
            age = cycle - packet.created_cycle
            if oldest is None or age > oldest:
                oldest = age
            if reach is not None and not reach.reachable(
                node, packet.dest, packet.yx_first
            ):
                unreachable += 1

        for node, source in self.sources.items():
            for packet in source.queue:
                tally(node, packet)
            if source.current:
                tally(node, source.current[0].packet)
        counted: set[int] = set()
        for node, router in self.network.routers.items():
            for vc in router.all_vcs():
                for flit in vc.queue:
                    packet = flit.packet
                    if packet.pid in counted or packet.dropped_cycle is not None:
                        continue
                    counted.add(packet.pid)
                    tally(node, packet)
        dead_modules: dict[NodeId, tuple[str, ...]] = {}
        for node, router in self.network.routers.items():
            if router.dead:
                dead_modules[node] = ("node",)
                continue
            modules = getattr(router, "modules", None)
            if modules is not None:
                dead = tuple(name for name, m in modules.items() if m.dead)
                if dead:
                    dead_modules[node] = dead
        return StrandedCensus(
            outstanding=self._outstanding,
            per_node=per_node,
            oldest_age=oldest if oldest is not None else 0,
            dead_modules=dead_modules,
            unreachable=unreachable,
        )

    # ------------------------------------------------------------------

    def _generate(self, cycle: int) -> None:
        config = self.config
        arrivals = self.traffic.arrivals
        for node, source in self._gen_sources:
            if self._generated >= config.total_packets:
                return
            for _ in range(arrivals(node, cycle)):
                source.queue.append(self._create_packet(node, cycle))
                if self._generated >= config.total_packets:
                    return

    def _create_packet(self, src: NodeId, cycle: int) -> Packet:
        dest = self.traffic.destination(src)
        if self._generated == self.config.warmup_packets:
            self.network.stats.start_measurement(cycle)
        packet = Packet(
            pid=self._next_pid,
            src=src,
            dest=dest,
            size=self.config.flits_per_packet,
            created_cycle=cycle,
        )
        self._next_pid += 1
        self._generated += 1
        self._outstanding += 1
        if self._packet_registry is not None:
            self._packet_registry[packet.pid] = packet
        packet.measured = self.network.stats.packet_created(packet)
        if self.config.routing is RoutingMode.XY_YX:
            blocked = self.network.node_blocked if self.network.has_faults else None
            packet.yx_first = choose_variant(src, dest, self.rng, blocked)
        return packet

    def _on_packet_done(self, packet: Packet) -> None:
        self._outstanding -= 1
        if self._packet_registry is not None:
            self._packet_registry.pop(packet.pid, None)

    def _on_packet_delivered(self, packet: Packet) -> None:
        self._on_packet_done(packet)
        for listener in self.delivery_listeners:
            listener(packet)

    def _on_packet_dropped(self, packet: Packet) -> None:
        self._on_packet_done(packet)
        for listener in self.drop_listeners:
            listener(packet)

    def _drop_survivors(self, cycle: int) -> None:
        """Count packets still in flight / queued at termination as lost.

        In faulty runs each survivor is classified by the reachability
        pass: UNREACHABLE when no live routing path to its destination
        remains (stranded by the topology), UNDELIVERED when a path
        existed but the run ended first.
        """
        if self._outstanding == 0:
            return
        reach = self.network.reachability if self.network.has_faults else None

        def reason_for(node: NodeId, packet: Packet) -> DropReason:
            if reach is not None and not reach.reachable(
                node, packet.dest, packet.yx_first
            ):
                return DropReason.UNREACHABLE
            return DropReason.UNDELIVERED

        for node, source in self.sources.items():
            for packet in list(source.queue):
                self.network.drop_packet(packet, cycle, reason_for(node, packet))
            source.queue.clear()
            if source.current:
                packet = source.current[0].packet
                self.network.drop_packet(packet, cycle, reason_for(node, packet))
                source.current = None
                source.vc = None
        # Anything still threaded through the network.
        for node, router in self.network.routers.items():
            for vc in router.all_vcs():
                while vc.queue:
                    flit = vc.queue[0]
                    if flit.packet.dropped_cycle is None:
                        self.network.drop_packet(
                            flit.packet, cycle, reason_for(node, flit.packet)
                        )
                    else:
                        vc.queue.popleft()
        self._outstanding = 0

    # ------------------------------------------------------------------

    def _build_result(self, cycles: int) -> SimulationResult:
        stats = self.network.stats
        model = EnergyModel(self.config.router, self.config.num_nodes)
        energy = model.report(
            stats.activity, stats.measured_cycles, stats.delivered_packets
        )
        return SimulationResult(
            config=self.config,
            average_latency=stats.average_latency,
            latency=LatencySummary.from_samples(stats.latencies),
            average_hops=stats.average_hops,
            injected_packets=stats.injected_packets,
            delivered_packets=stats.delivered_packets,
            dropped_packets=stats.dropped_packets,
            completion_probability=stats.completion_probability,
            throughput=stats.throughput_flits_per_node_cycle,
            cycles=cycles,
            energy=energy,
            contention_row=stats.contention.row_probability,
            contention_column=stats.contention.column_probability,
            contention_overall=stats.contention.overall_probability,
            faults=self.faults,
            scheduler=stats.scheduler,
            generated_packets=self._generated,
            total_delivered=stats.total_delivered,
            total_dropped=stats.total_dropped,
            drops_by_reason={
                reason.value: count
                for reason, count in sorted(
                    stats.drops_by_reason.items(), key=lambda kv: kv[0].value
                )
            },
        )


def run_simulation(
    config: SimulationConfig,
    traffic: TrafficPattern | None = None,
    faults: list[ComponentFault] | None = None,
    *,
    schedule: FaultSchedule | None = None,
    full_sweep: bool = False,
) -> SimulationResult:
    """Convenience one-call entry point: build, run, return the result.

    ``faults`` are applied statically before the run; ``schedule``
    delivers runtime fault events to the live network mid-run (the two
    compose).  ``full_sweep=True`` disables activity-driven scheduling
    and steps every router every cycle — slower, but useful for
    differential validation of the active-set scheduler.

    ``config.backend`` selects the execution engine: ``"object"`` runs
    this module's reference :class:`Simulator`; ``"soa"`` dispatches to
    the struct-of-arrays fast path (:mod:`repro.core.soa`), which is
    bit-identical on its supported envelope and raises
    ``BackendUnsupportedError`` outside it (see docs/vectorized-core.md).
    """
    if config.shards is not None and config.shards != (1, 1):
        from repro.harness.sharded import run_sharded_simulation

        return run_sharded_simulation(
            config,
            traffic=traffic,
            faults=faults,
            schedule=schedule,
            full_sweep=full_sweep,
        )
    if config.backend != "object":
        from repro.core.soa.engine import run_soa_simulation

        return run_soa_simulation(
            config,
            traffic=traffic,
            faults=faults,
            schedule=schedule,
            full_sweep=full_sweep,
        )
    return Simulator(
        config,
        traffic=traffic,
        faults=faults,
        schedule=schedule,
        full_sweep=full_sweep,
    ).run()
