"""Fundamental data types shared by every subsystem of the simulator.

The vocabulary here mirrors the paper's: a *packet* is the unit of routing
(four 128-bit flits by default), a *flit* is the unit of flow control, and
*ports* are the five physical directions of a 2D-mesh router (the four
cardinal directions plus the connection to the local Processing Element).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field


class Direction(enum.IntEnum):
    """Physical port direction of a 2D-mesh router.

    The integer values are stable and used as indices into port arrays.
    ``LOCAL`` is the connection to the attached Processing Element (PE).
    """

    NORTH = 0
    EAST = 1
    SOUTH = 2
    WEST = 3
    LOCAL = 4

    @property
    def opposite(self) -> "Direction":
        """The direction a flit *arrives from* when sent *towards* ``self``.

        A flit forwarded out of the EAST output port of one router enters
        the WEST input port of its neighbour.  ``LOCAL`` is its own
        opposite (injection/ejection share the PE interface).
        """
        if self is Direction.LOCAL:
            return Direction.LOCAL
        return Direction((self + 2) % 4)

    @property
    def is_row(self) -> bool:
        """True for East/West — traffic handled by RoCo's Row-Module."""
        return self in (Direction.EAST, Direction.WEST)

    @property
    def is_column(self) -> bool:
        """True for North/South — traffic handled by RoCo's Column-Module."""
        return self in (Direction.NORTH, Direction.SOUTH)


#: The four cardinal directions, in index order.
CARDINALS = (Direction.NORTH, Direction.EAST, Direction.SOUTH, Direction.WEST)


class RoutingMode(enum.Enum):
    """The three routing algorithms evaluated in the paper (Section 5.4)."""

    XY = "xy"
    XY_YX = "xy-yx"
    ADAPTIVE = "adaptive"


class FlitType(enum.IntEnum):
    """Position of a flit within its packet."""

    HEAD = 0
    BODY = 1
    TAIL = 2


class DropReason(enum.Enum):
    """Why a packet was removed from the network without being delivered.

    Every dropped packet carries exactly one reason, so the conservation
    invariant (delivered + in-flight + dropped-by-reason == generated)
    can be audited per cause.  See docs/fault-model.md for the glossary.
    """

    #: The source PE could not start the worm: the local injection path
    #: (module or whole router) is dead.
    INJECTION_BLOCKED = "injection_blocked"
    #: A head flit stalled on an unallocatable faulty resource past the
    #: configured ``fault_drop_timeout``.
    STALL_TIMEOUT = "stall_timeout"
    #: Flits were buffered inside a module/router when it died; the worm
    #: was salvaged out of the network at the fault event.
    BUFFERED_IN_DEAD = "buffered_in_dead"
    #: A worm stretched across a link/VC that a runtime fault severed
    #: mid-flight (its head was already committed downstream).
    ROUTE_SEVERED = "route_severed"
    #: A flit arrived off a link into a VC that died while it was flying.
    ARRIVED_AT_DEAD = "arrived_at_dead"
    #: Evicted when a runtime BUFFER fault shrank its virtual channel to
    #: the single-slot virtual-queuing mode.
    FAULT_EVICTED = "fault_evicted"
    #: Still outstanding at end of run with no live path to its
    #: destination (reachability classified it as stranded).
    UNREACHABLE = "unreachable"
    #: Still outstanding at end of run although a live path existed
    #: (ran out of simulated cycles / drain budget).
    UNDELIVERED = "undelivered"
    #: Dropped by a caller that did not state a cause (external tools).
    UNSPECIFIED = "unspecified"


@dataclass(frozen=True)
class NodeId:
    """Coordinates of a router in the mesh.

    ``x`` grows towards the East, ``y`` grows towards the South, so node
    (0, 0) is the North-West corner.  Frozen so it can key dictionaries.
    """

    x: int
    y: int

    def neighbor(self, direction: Direction) -> "NodeId":
        """The coordinates of the adjacent node in ``direction``."""
        if direction is Direction.NORTH:
            return NodeId(self.x, self.y - 1)
        if direction is Direction.SOUTH:
            return NodeId(self.x, self.y + 1)
        if direction is Direction.EAST:
            return NodeId(self.x + 1, self.y)
        if direction is Direction.WEST:
            return NodeId(self.x - 1, self.y)
        return self

    def __str__(self) -> str:
        return f"({self.x},{self.y})"


@dataclass
class Packet:
    """The unit of routing: a worm of ``size`` flits sharing one path.

    Latency bookkeeping lives here: ``created_cycle`` is when the source PE
    generated the packet (source queueing counts towards latency, as in the
    paper's end-to-end definition) and ``delivered_cycle`` is when the tail
    flit reached the destination PE.
    """

    pid: int
    src: NodeId
    dest: NodeId
    size: int
    created_cycle: int
    injected_cycle: int | None = None
    delivered_cycle: int | None = None
    dropped_cycle: int | None = None
    #: Why the packet was dropped; None while alive or once delivered.
    drop_reason: "DropReason | None" = None
    #: Chosen only for XY-YX routing: True when the packet travels Y-first.
    yx_first: bool = False
    #: Number of flits of this packet delivered so far (for integrity checks).
    flits_delivered: int = 0
    #: Links the worm's head flit actually crossed.  Incremented at every
    #: launch onto an inter-router link, so delivered packets report real
    #: traversals rather than the minimal src->dest distance (which a
    #: detour — post-fault double-routing, non-minimal adaptive paths —
    #: would under-report).
    hops: int = 0
    #: True when created during the measurement phase (post-warm-up).
    measured: bool = False

    @property
    def latency(self) -> int:
        """End-to-end latency in cycles; only valid once delivered."""
        if self.delivered_cycle is None:
            raise ValueError(f"packet {self.pid} has not been delivered")
        return self.delivered_cycle - self.created_cycle


class Flit:
    """The unit of flow control and buffering.

    ``route`` is the output direction at the router the flit currently
    occupies; ``lookahead_route`` is the pre-computed output direction at
    the *next* router (look-ahead routing, Section 3.1).  Both are carried
    by the head flit and inherited by the body/tail flits of the worm.
    """

    __slots__ = (
        "packet",
        "seq",
        "ftype",
        "route",
        "lookahead_route",
        "vc_hint",
        "arrival",
        "is_head",
        "closes_worm",
    )

    def __init__(self, packet: Packet, seq: int, ftype: FlitType) -> None:
        self.packet = packet
        self.seq = seq
        self.ftype = ftype
        self.route: Direction | None = None
        self.lookahead_route: Direction | None = None
        #: Downstream VC (or EJECT sentinel) selected by the upstream VA.
        self.vc_hint = None
        #: Cycle the flit entered its current buffer (routers without
        #: look-ahead routing charge head flits an RC cycle after this).
        self.arrival = -1
        #: Position flags, precomputed once — read on every pipeline hop.
        self.is_head = ftype is FlitType.HEAD
        self.closes_worm = ftype is FlitType.TAIL or seq == packet.size - 1

    @property
    def is_tail(self) -> bool:
        return self.ftype is FlitType.TAIL

    @property
    def dest(self) -> NodeId:
        return self.packet.dest

    @property
    def src(self) -> NodeId:
        return self.packet.src

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Flit(pid={self.packet.pid}, seq={self.seq}, {self.ftype.name}, "
            f"{self.src}->{self.dest}, route={self.route})"
        )


def make_packet_flits(packet: Packet) -> list[Flit]:
    """Split ``packet`` into its worm of flits (HEAD, BODY..., TAIL).

    A single-flit packet is emitted as a lone HEAD flit that also acts as
    the tail (``is_tail`` is derived from position, so callers should use
    ``seq == packet.size - 1`` for single-flit worms; we simply mark it
    TAIL-typed HEAD by convention of ``FlitType.HEAD`` plus last-seq).
    """
    if packet.size < 1:
        raise ValueError("packet size must be >= 1 flit")
    flits = []
    for seq in range(packet.size):
        if seq == 0:
            ftype = FlitType.HEAD
        elif seq == packet.size - 1:
            ftype = FlitType.TAIL
        else:
            ftype = FlitType.BODY
        flits.append(Flit(packet, seq, ftype))
    if packet.size == 1:
        # A lone flit must close the wormhole it opens.
        flits[0].ftype = FlitType.HEAD
        # Mark it as tail through a dedicated attribute-free convention:
        # routers treat `seq == size - 1` as the tail condition as well.
    return flits


def is_worm_tail(flit: Flit) -> bool:
    """True when ``flit`` closes its packet's wormhole.

    Handles the single-flit-packet case where the head is also the tail.
    The flag is derived once at construction (``Flit.closes_worm``); hot
    paths read the attribute directly.
    """
    return flit.closes_worm
