"""Virtual-channel buffers.

A :class:`VirtualChannel` is a FIFO flit queue plus the state a wormhole
router tracks for it:

* on the *input* side — the output direction granted by routing
  computation and the downstream VC granted by VC allocation for the worm
  currently draining;
* on the *admission* side — ownership (which packet the VC is currently
  allocated to by an upstream VA) and the credit count upstream switch
  allocators check before launching a flit towards it.

Credit accounting is centralised here rather than mirrored per upstream
neighbour because RoCo path-set VCs can legally receive traffic from more
than one neighbour (e.g. a ``tyx`` VC accepts turned flits from both the
North and South inputs).  The credit round-trip delay of a real router is
preserved: a slot freed by a departing flit only becomes visible to
upstream allocators :data:`CREDIT_LATENCY` cycles later.

Reallocation is non-atomic — a VC becomes allocatable to a new packet as
soon as the previous packet's tail has been *launched towards* it, so the
queue may briefly hold the tail of one worm followed by the head of the
next.
"""

from __future__ import annotations

from collections import deque

from repro.core.types import Direction, Flit, is_worm_tail

#: Cycles between a flit departing a VC and the freed slot becoming
#: visible upstream (switch traversal + credit wire).
CREDIT_LATENCY = 2


class VirtualChannel:
    """One VC buffer of an input port (or path set).

    ``vc_class`` is a free-form label used by routers that restrict which
    traffic may occupy a VC: the RoCo router uses the paper's Table-1
    classes (``dx``, ``dy``, ``txy``, ``tyx``, ``injxy``, ``injyx``) and
    the Path-Sensitive router uses quadrant labels.  The generic router
    leaves it empty.
    """

    __slots__ = (
        "port",
        "index",
        "depth",
        "vc_class",
        "queue",
        "out_dir",
        "out_vc",
        "faulty",
        "dead",
        "hold_until",
        "active_pid",
        "accepts_from",
        "escape",
        "final_only",
        "input_dir",
        "owner_pid",
        "expected",
        "_available",
        "_releases",
    )

    def __init__(self, port: int, index: int, depth: int, vc_class: str = "") -> None:
        self.port = port
        self.index = index
        self.depth = depth
        self.vc_class = vc_class
        self.queue: deque[Flit] = deque()
        #: Output direction of the worm currently draining (None until the
        #: head flit at the front has been routed).
        self.out_dir: Direction | None = None
        #: Downstream VC granted by VA for the draining worm.
        self.out_vc: "VirtualChannel | int | None" = None
        #: Set by the fault injector; a faulty buffer operates in the
        #: degraded Virtual Queuing mode (see repro.faults.recovery).
        self.faulty = False
        #: True once the owning module/router died; dead VCs accept no
        #: traffic and flits arriving off a link into one are dropped.
        self.dead = False
        #: Earliest cycle at which the front flit may compete for the
        #: switch; models recovery-mechanism handshake penalties.
        self.hold_until = 0
        #: Packet id of the worm currently draining (purge bookkeeping).
        self.active_pid: int | None = None
        #: Arrival input directions admitted into this VC (class routers).
        self.accepts_from: tuple[Direction, ...] = ()
        #: True for deadlock-free escape VCs (adaptive routing discipline).
        self.escape = False
        #: True when only packets in their final dimension may enter
        #: (the XY-YX extra-dx partition of Section 3.1).
        self.final_only = False
        #: Physical input direction feeding this VC; LOCAL for injection
        #: VCs, None for multi-arrival VCs (set per flit on arrival).
        self.input_dir: Direction | None = None
        #: Packet currently holding this VC from the upstream VA's view.
        self.owner_pid: int | None = None
        #: Flits committed towards this VC but still in flight on a link.
        #: The local PE source must not start a worm while arrivals are
        #: pending, or its zero-latency pushes would interleave worms.
        self.expected = 0
        #: Credits as seen by upstream switch allocators.
        self._available = depth
        #: Freed slots waiting out the credit round-trip: release cycles.
        self._releases: deque[int] = deque()

    # -- capacity / credits ------------------------------------------------

    @property
    def occupancy(self) -> int:
        return len(self.queue)

    @property
    def empty(self) -> bool:
        return not self.queue

    @property
    def effective_depth(self) -> int:
        """Usable depth; a faulty buffer degrades to a single bypass slot."""
        return 1 if self.faulty else self.depth

    def credits(self, cycle: int) -> int:
        """Slots upstream may launch into as of ``cycle``."""
        self._refresh(cycle)
        return self._available

    def reserve_slot(self, cycle: int) -> None:
        """Consume a credit (upstream SA grant); flit is now committed."""
        self._refresh(cycle)
        if self._available <= 0:
            raise RuntimeError(f"credit underflow on {self!r}")
        self._available -= 1

    def refund_slot(self) -> None:
        """Return a credit for a grant that never launched (purged worm)."""
        self._available += 1

    def schedule_release(self, cycle: int) -> None:
        """A flit left this VC; its slot frees after the credit round-trip."""
        self._releases.append(cycle + CREDIT_LATENCY)

    def _refresh(self, cycle: int) -> None:
        while self._releases and self._releases[0] <= cycle:
            self._releases.popleft()
            self._available += 1

    def shrink_for_fault(self) -> None:
        """Re-base credits after this buffer is marked faulty (depth -> 1)."""
        self.rebase_credits()

    def rebase_credits(self) -> None:
        """Recompute credits from first principles after a capacity change.

        Slots already consumed by buffered flits, by flits committed but
        still in flight (``expected``) and by releases waiting out the
        credit round-trip are all accounted for, so the eventual steady
        state is exactly ``effective_depth`` free slots for an empty VC.
        """
        self._available = (
            self.effective_depth - len(self.queue) - self.expected - len(self._releases)
        )

    # -- admission-side ownership ------------------------------------------

    def claim(self, pid: int) -> None:
        if self.owner_pid is not None:
            raise RuntimeError(f"{self!r} already owned by packet {self.owner_pid}")
        self.owner_pid = pid

    def release_owner(self) -> None:
        self.owner_pid = None

    def injectable(self, cycle: int) -> bool:
        """Whether the local PE source may start a new worm here now."""
        return self.owner_pid is None and self.expected == 0 and self.credits(cycle) > 0

    # -- worm state ----------------------------------------------------------

    @property
    def front(self) -> Flit | None:
        return self.queue[0] if self.queue else None

    @property
    def routed(self) -> bool:
        """True once the draining worm has an assigned output direction."""
        return self.out_dir is not None

    @property
    def allocated(self) -> bool:
        """True once the draining worm also holds a downstream VC."""
        return self.out_vc is not None

    def push(self, flit: Flit) -> None:
        if len(self.queue) >= self.effective_depth:
            raise OverflowError(
                f"VC p{self.port}v{self.index} overflow (depth {self.effective_depth})"
            )
        self.queue.append(flit)

    def pop(self, cycle: int) -> Flit:
        """Forward the front flit out of the buffer.

        Schedules the credit release and clears the worm state when the
        departing flit is the tail, making the VC re-allocatable.
        """
        flit = self.queue.popleft()
        self.schedule_release(cycle)
        if flit.closes_worm:
            self.out_dir = None
            self.out_vc = None
            self.active_pid = None
        return flit

    def assign_route(self, direction: Direction) -> None:
        self.out_dir = direction

    def reset(self) -> None:
        """Drop all contents and worm state (used when discarding packets)."""
        self.queue.clear()
        self.out_dir = None
        self.out_vc = None
        self.active_pid = None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        cls = f":{self.vc_class}" if self.vc_class else ""
        return (
            f"VC(p{self.port}v{self.index}{cls}, occ={self.occupancy}/"
            f"{self.effective_depth}, out={self.out_dir})"
        )
