"""Static layout tables for the struct-of-arrays backend.

The SoA engine (repro.core.soa.engine) works on flat integer-indexed
state: routers are row-major node indices, VC buffers are global *slot*
ids, directions are their ``Direction`` int values and the early-eject
pseudo-target is ``EJECT_CODE``.  Everything structural — slot
numbering, neighbour wiring, admission candidates, injection orders,
route candidates — is derived here by introspecting a throwaway
*object-model* :class:`~repro.core.network.Network` built from the same
config.  That makes the tables correct by construction: the SoA engine
consults exactly the candidate lists and iteration orders the reference
implementation would compute, so any future change to VC configurations
or routing flows into the fast path automatically.

Slot numbering is the canonical enumeration order used everywhere
(engine, state bridge, conformance tests): routers in creation
(row-major) order, VCs within a router in ``all_vcs()`` order.

Admission/route tables are cached lazily per (router, input, dest)
key — the throwaway network is kept alive for cache misses — so the
build cost is O(nodes) up front and O(1) amortised per lookup, rather
than O(nodes²) eagerly.
"""

from __future__ import annotations

from dataclasses import astuple

from repro.core.network import Network
from repro.core.types import CARDINALS, Direction, NodeId, Packet

#: Integer codes for the slot-state arrays.  ``NONE_CODE`` stands for
#: Python ``None`` (no route / no downstream VC / no owner);
#: ``EJECT_CODE`` is the early-ejection pseudo-target.
NONE_CODE = -1
EJECT_CODE = -2

#: ``int(Direction.LOCAL)`` — spelled out for the hot loops.
LOCAL = 4


class SoALayout:
    """Flattened structural view of one network configuration."""

    def __init__(self, config) -> None:
        self.config = config
        self.arch = config.router
        self.mode = config.routing
        self.width = config.width
        self.height = config.height
        self.N = config.num_nodes
        self.F = config.flits_per_packet
        net = Network(config)
        net.wire()
        self._net = net
        self.nodes: list[NodeId] = net.nodes
        self.node_index = {node: n for n, node in enumerate(self.nodes)}
        self._routers = net._router_list

        self.slot_of: dict[int, int] = {}
        self.router_slots: list[list[int]] = []
        self.slot_router: list[int] = []
        self.slot_pidx: list[int] = []
        self.slot_escape: list[bool] = []
        for n, router in enumerate(self._routers):
            slots = []
            for vc in router.all_vcs():
                s = len(self.slot_router)
                self.slot_of[id(vc)] = s
                self.slot_router.append(n)
                self.slot_pidx.append(vc.index)
                self.slot_escape.append(vc.escape)
                slots.append(s)
            self.router_slots.append(slots)
        self.S = len(self.slot_router)

        #: nbr[n][d] — node index of the neighbour in direction d, -1 at
        #: a mesh border.
        self.nbr: list[list[int]] = []
        for node in self.nodes:
            row = []
            for d in CARDINALS:
                other = net.neighbor_of(node, d)
                row.append(self.node_index[other] if other is not None else -1)
            self.nbr.append(row)

        if self.arch == "generic":
            #: gen_port_slots[n][d] — slots of input port d (0..4).
            self.gen_port_slots = [
                tuple(
                    tuple(self.slot_of[id(vc)] for vc in router.ports[Direction(d)])
                    for d in range(5)
                )
                for router in self._routers
            ]
            #: fc_slots[n][d] — downstream facing-port slots feeding the
            #: adaptive free-credit signal (empty tuple at a border).
            self.fc_slots = []
            for router in self._routers:
                per_dir = []
                for d in CARDINALS:
                    port = router.outputs.get(d)
                    if port is None:
                        per_dir.append(())
                    else:
                        per_dir.append(
                            tuple(
                                self.slot_of[id(vc)]
                                for vc in port.downstream.ports[port.input_dir]
                            )
                        )
                self.fc_slots.append(tuple(per_dir))
        else:
            #: roco_ports[n][module][port] — slots in the allocate-phase
            #: walk order (modules dict order: ROW then COLUMN; ports 0
            #: then 1).  This *interleaves* differently from slot order,
            #: which follows the Table-1 spec order of ``all_vcs()``.
            self.roco_ports = [
                tuple(
                    tuple(
                        tuple(self.slot_of[id(vc)] for vc in port_vcs)
                        for port_vcs in module.ports
                    )
                    for module in router.modules.values()
                )
                for router in self._routers
            ]
            #: Output direction of crossbar slot 0 per module (slot 1 is
            #: the opposite): EAST for the Row-Module, NORTH for Column.
            self.mod_slot0_dir = (int(Direction.EAST), int(Direction.NORTH))
        self.mirror = config.router_config.mirror_allocation
        self.lookahead = config.router_config.lookahead_routing
        self.vcs_per_port = config.router_config.vcs_per_port

        self._cand: dict[int, tuple] = {}
        self._inj: dict[int, tuple] = {}
        self._routes: dict[int, tuple] = {}
        self._escape: dict[int, int] = {}

    # ------------------------------------------------------------------

    def _fake_packet(self, src: int, dest: int, yx: int) -> Packet:
        packet = Packet(
            pid=-1,
            src=self.nodes[src],
            dest=self.nodes[dest],
            size=self.F,
            created_cycle=0,
        )
        packet.yx_first = bool(yx)
        return packet

    def roco_admission(self, m: int, din: int, dest: int, yx: int) -> tuple:
        """Downstream admission candidates, exactly as ``vc_candidates``.

        Returns ``((target, route), ...)`` with ``target`` a slot id or
        :data:`EJECT_CODE` and ``route`` the committed look-ahead
        direction int at router ``m`` — in the object model's candidate
        order, which the VC allocator's first-wins tie-break depends on.
        """
        key = ((m * 4 + din) * self.N + dest) * 2 + yx
        entries = self._cand.get(key)
        if entries is None:
            raw = self._routers[m].vc_candidates(
                Direction(din), self._fake_packet(m, dest, yx)
            )
            entries = tuple(
                (
                    EJECT_CODE
                    if route is Direction.LOCAL
                    else self.slot_of[id(target)],
                    int(route),
                )
                for target, route in raw
            )
            self._cand[key] = entries
        return entries

    def roco_injection(self, n: int, dest: int, yx: int) -> tuple:
        """Injection-VC candidates of ``injection_vc_for``, in scan order.

        Credit/ownership checks happen at run time; this is only the
        structural iteration order (route-major, then ``all_vcs()``
        filtered by the Injxy/Injyx class).
        """
        key = (n * self.N + dest) * 2 + yx
        entries = self._inj.get(key)
        if entries is None:
            router = self._routers[n]
            packet = self._fake_packet(n, dest, yx)
            built = []
            for route in self._net.routing.candidates(router.node, packet):
                module = router.module_for(route)
                cls = "injxy" if route.is_row else "injyx"
                for vc in module.all_vcs():
                    if vc.vc_class == cls:
                        built.append((self.slot_of[id(vc)], int(route)))
            entries = tuple(built)
            self._inj[key] = entries
        return entries

    def route_candidates(self, n: int, dest: int, yx: int) -> tuple:
        """``routing.candidates`` as direction ints (adaptive: escape first)."""
        key = (n * self.N + dest) * 2 + yx
        entries = self._routes.get(key)
        if entries is None:
            entries = tuple(
                int(d)
                for d in self._net.routing.candidates(
                    self.nodes[n], self._fake_packet(n, dest, yx)
                )
            )
            self._routes[key] = entries
        return entries

    def escape_route(self, n: int, dest: int) -> int:
        """``routing.escape_direction`` (generic adaptive escape VCs)."""
        key = n * self.N + dest
        route = self._escape.get(key)
        if route is None:
            route = int(
                self._net.routing.escape_direction(
                    self.nodes[n], self._fake_packet(n, dest, 0)
                )
            )
            self._escape[key] = route
        return route

    # ------------------------------------------------------------------

    def describe(self) -> dict:
        """Summary used by docs/tests (slot counts, table sizes)."""
        return {
            "arch": self.arch,
            "nodes": self.N,
            "slots": self.S,
            "slots_per_router": self.S // self.N,
            "flits_per_packet": self.F,
        }


#: Layouts are pure structural tables (plus lazily-growing pure caches),
#: so instances are shared across simulator runs keyed by every config
#: field the tables are derived from.  Seed, traffic and rates are
#: deliberately absent — they never reach the wiring or routing tables.
_layout_cache: dict[tuple, SoALayout] = {}


def build_layout(config) -> SoALayout:
    key = (
        config.router,
        config.topology,
        config.routing,
        config.width,
        config.height,
        config.flits_per_packet,
        astuple(config.router_config),
    )
    layout = _layout_cache.get(key)
    if layout is None:
        layout = _layout_cache[key] = SoALayout(config)
    return layout
