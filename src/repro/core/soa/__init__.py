"""Struct-of-arrays fast backend (``SimulationConfig(backend="soa")``).

See docs/vectorized-core.md.  Public surface:

* :class:`~repro.core.soa.engine.SoASimulator` /
  :func:`~repro.core.soa.engine.run_soa_simulation` — the engine;
* :class:`~repro.core.soa.state.SoAState` with
  :func:`~repro.core.soa.state.encode_state` /
  :func:`~repro.core.soa.state.decode_state` — the object ↔ array
  state bridge used by audit/probe consumers and the property tests;
* :class:`~repro.core.soa.errors.BackendUnsupportedError` — raised for
  configurations outside the vectorized envelope.
"""

from repro.core.soa.errors import SOA_ROUTERS, BackendUnsupportedError, ensure_supported
from repro.core.soa.layout import EJECT_CODE, LOCAL, NONE_CODE, SoALayout, build_layout

__all__ = [
    "BackendUnsupportedError",
    "SOA_ROUTERS",
    "ensure_supported",
    "SoALayout",
    "build_layout",
    "NONE_CODE",
    "EJECT_CODE",
    "LOCAL",
    "SoASimulator",
    "run_soa_simulation",
    "SoAState",
    "encode_state",
    "decode_state",
    "states_equal",
    "state_diff",
    "run_cycles",
]


def __getattr__(name):
    # Lazy: the engine/state modules import numpy-adjacent machinery and
    # the full router stack; plain error/layout consumers skip that cost.
    if name in ("SoASimulator", "run_soa_simulation"):
        from repro.core.soa import engine

        return getattr(engine, name)
    if name in (
        "SoAState",
        "encode_state",
        "decode_state",
        "states_equal",
        "state_diff",
        "run_cycles",
    ):
        from repro.core.soa import state

        return getattr(state, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
