"""The struct-of-arrays fast backend (``backend="soa"``).

A transliteration of the object-model hot loop (Simulator / Network /
routers / arbiters) onto flat integer state: one *slot* per virtual
channel (see :mod:`repro.core.soa.layout`), flits identified as
``fid = pid * flits_per_packet + seq``, directions as their ``Direction``
int values, and the EJECT pseudo-target as :data:`EJECT_CODE`.  All
structural decisions (admission candidate order, injection scan order,
route candidates) come from layout tables built by introspecting a real
object-model network, so the kernels only replicate the *dynamic* logic:
credit bookkeeping, the VC/switch allocators, and link advancement.

The contract is bit-identity with the object backend on the supported
envelope (see :func:`repro.core.soa.errors.ensure_supported`), pinned by
tests/test_backend_conformance.py.  Every loop below mirrors a specific
reference code path, including its quirks — the one-cycle-stale credit
view of ``injection_vc_for``, the discarded re-requests of final-round
VA losers (which still bump ``va_requests``), and the contention tally
that walks *all* of a router's VCs once per allocator invocation.

Speed comes from what is *not* here: no per-flit objects, no per-call
candidate list construction, no dict-keyed port lookups, no trace hooks
— plus activity-driven scheduling identical to the object scheduler's.
"""

from __future__ import annotations

import random

from repro.core.config import SimulationConfig
from repro.core.soa.errors import ensure_supported
from repro.core.soa.layout import EJECT_CODE, LOCAL, NONE_CODE, build_layout
from repro.core.statistics import (
    ActivityCounters,
    ContentionCounters,
    SchedulerCounters,
    StatsCollector,
)
from repro.core.types import DropReason, RoutingMode
from repro.energy.model import EnergyModel
from repro.metrics.latency import LatencySummary
from repro.routing.xyyx import choose_variant
from repro.traffic import TrafficPattern, make_traffic

# Re-exported for callers that catch the object backend's exceptions.
from repro.core.simulator import (  # noqa: F401  (re-export)
    DrainTimeoutError,
    SimulationResult,
    StrandedCensus,
)


def _rr(state: list[int], idx: int, requests) -> int | None:
    """One round-robin grant on arbiter ``idx`` of an int-state vector.

    Mirrors :class:`repro.arbiters.round_robin.RoundRobinArbiter.grant`:
    scan from the stored priority pointer, grant the first requester,
    advance the pointer past the winner.
    """
    n = len(requests)
    i = state[idx]
    for _ in range(n):
        if i >= n:
            i -= n
        if requests[i]:
            state[idx] = i + 1 if i + 1 < n else 0
            return i
        i += 1
    return None


def _mirror_allocate(state: list[int], requests) -> list[tuple[int, int, int]]:
    """MirrorAllocator.allocate on an int-state vector.

    ``state`` is ``[l00, l01, l10, l11, global]`` — the four local v:1
    arbiters (port x direction-slot) and the single global 2:1 arbiter.
    Returns ``(port, direction_slot, vc_index)`` grants.
    """
    p1_req, p2_req = requests
    l00 = _rr(state, 0, p1_req[0]) if True in p1_req[0] else None
    l01 = _rr(state, 1, p1_req[1]) if True in p1_req[1] else None
    l10 = _rr(state, 2, p2_req[0]) if True in p2_req[0] else None
    l11 = _rr(state, 3, p2_req[1]) if True in p2_req[1] else None
    p2_has = (l10 is not None, l11 is not None)
    if l00 is not None or l01 is not None:
        score0 = (2 if p2_has[1] else 1) if l00 is not None else -1
        score1 = (2 if p2_has[0] else 1) if l01 is not None else -1
        if score0 == score1:
            slot1 = _rr(state, 4, (True, True))
        else:
            slot1 = 0 if score0 > score1 else 1
            # Keep the global arbiter's state consistent with the choice.
            _rr(state, 4, (slot1 == 0, slot1 == 1))
        grants = [(0, slot1, l00 if slot1 == 0 else l01)]
        if slot1 == 0:
            if l11 is not None:
                grants.append((1, 1, l11))
        elif l10 is not None:
            grants.append((1, 0, l10))
        return grants
    if p2_has[0] or p2_has[1]:
        slot2 = _rr(state, 4, p2_has)
        return [(1, slot2, l10 if slot2 == 0 else l11)]
    return []


def _sequential_allocate(state: list[int], requests) -> list[tuple[int, int, int]]:
    """SequentialAllocator.allocate (mirror-ablation) on int state.

    ``state`` is ``[port0, port1, dir0, dir1]``.
    """
    num_vcs = len(requests[0][0])
    nominees: list[tuple[int, int] | None] = [None, None]
    for port in range(2):
        flat = [requests[port][0][v] or requests[port][1][v] for v in range(num_vcs)]
        if not any(flat):
            continue
        vc = _rr(state, port, flat)
        slot = 0 if requests[port][0][vc] else 1
        nominees[port] = (slot, vc)
    grants: list[tuple[int, int, int]] = []
    for slot in range(2):
        lines = [
            nominees[port] is not None and nominees[port][0] == slot
            for port in range(2)
        ]
        if not any(lines):
            continue
        port = _rr(state, 2 + slot, lines)
        grants.append((port, slot, nominees[port][1]))
    return grants


class SoASimulator:
    """One end-to-end run on the struct-of-arrays backend.

    Drop-in equivalent of :class:`repro.core.simulator.Simulator` for
    the supported envelope; :meth:`run` returns the same
    :class:`SimulationResult`.
    """

    def __init__(
        self,
        config: SimulationConfig,
        traffic: TrafficPattern | None = None,
        faults=None,
        *,
        schedule=None,
        full_sweep: bool = False,
    ) -> None:
        ensure_supported(config, faults=faults, schedule=schedule)
        self.config = config
        self.layout = build_layout(config)
        self.full_sweep = full_sweep
        self.rng = random.Random(config.seed)
        self.traffic = traffic if traffic is not None else make_traffic(config.traffic)
        self.traffic.bind(config, self.rng, self.layout.nodes)
        #: True when the pattern inherits the base Bernoulli ``arrivals``
        #: verbatim — lets _generate inline the draw.
        self._bernoulli = type(self.traffic).arrivals is TrafficPattern.arrivals
        self.faults: list = []
        lay = self.layout
        self.N = lay.N
        self.S = lay.S
        self.F = lay.F
        self.V = lay.vcs_per_port
        depth = config.router_config.buffer_depth

        # -- per-slot (VC) state -----------------------------------------
        S = self.S
        self.q: list[list[int]] = [[] for _ in range(S)]
        self.out_dir = [NONE_CODE] * S
        self.out_vc = [NONE_CODE] * S
        self.apid = [NONE_CODE] * S  # active_pid
        self.owner = [NONE_CODE] * S  # owner_pid
        self.expected = [0] * S
        self.avail = [depth] * S
        self.rel: list[list[int]] = [[] for _ in range(S)]

        # -- per-router state ---------------------------------------------
        N = self.N
        self.r_active = [False] * N
        self.sa_win: list[list[tuple[int, int, int]]] = [[] for _ in range(N)]
        #: Routers with pending SA winners, in ascending (row-major)
        #: order — appended by ``_commit`` on a router's first grant of
        #: the cycle (allocate runs in ascending order), drained by the
        #: traversal phase.  Lets phase 2 skip the full router scan.
        self.sa_routers: list[int] = []
        #: RoCo's O(1) quiescence snapshot (``_alloc_occupied``).
        self.r_occupied = [False] * N
        #: Per-router occupancy bitmask over the allocate-phase walk
        #: order: bit i of ``occ_mask[n]`` is set iff the queue of
        #: ``bit_slot[n][i]`` is non-empty.  Because bits are assigned in
        #: walk order, iterating set bits ascending IS the reference VA
        #: walk restricted to occupied VCs — and skipping empty VCs is
        #: observably a no-op on every reference path (including
        #: full-sweep, whose unconditional loops only ``continue`` on
        #: them).  Maintained at the four queue-mutation sites: link
        #: delivery and switch traversal (both inlined in _net_step),
        #: _inject, and the defensive RoCo eject.
        self.occ_mask = [0] * N
        self.bit_slot: list[list[int]] = []
        self.slot_bitmask = [0] * S
        if lay.arch == "generic":
            for n in range(N):
                walk = [s for port in lay.gen_port_slots[n] for s in port]
                self.bit_slot.append(walk)
                for i, s in enumerate(walk):
                    self.slot_bitmask[s] = 1 << i
            # [sa1 x5 | sa2 x5] round-robin pointers per router.
            self.arb = [[0] * 10 for _ in range(N)]
            self._allocate = self._allocate_generic
            # Admission for a mesh generic router is every VC of the
            # facing input port, route computed locally (None).
            self._gen_adm = [
                tuple(
                    tuple((t, NONE_CODE) for t in lay.gen_port_slots[m][d])
                    for d in range(5)
                )
                for m in range(N)
            ]
        else:
            for n in range(N):
                walk = [
                    s
                    for module in lay.roco_ports[n]
                    for port in module
                    for s in port
                ]
                self.bit_slot.append(walk)
                for i, s in enumerate(walk):
                    self.slot_bitmask[s] = 1 << i
            # Two modules x (5 mirror pointers or 4 sequential pointers).
            width = 5 if lay.mirror else 4
            self.arb = [[[0] * width, [0] * width] for _ in range(N)]
            self._allocate = self._allocate_roco
            #: Bits of one module's slots within ``occ_mask`` (module mi
            #: occupies bits ``mi*2V .. mi*2V+2V-1``).
            self._mod_bits = 2 * self.V
            self._mod_mask = (1 << self._mod_bits) - 1
        self._va_iterations = 2 if lay.arch == "roco" else 1

        # -- link / wake state (shared: the wake bucket IS the link) ------
        #: cycle -> [(receiver_node, input_dir, fid), ...] in launch order.
        self.wake: dict[int, list[tuple[int, int, int]]] = {}

        # -- per-source state ---------------------------------------------
        self.s_queue: list[list[int]] = [[] for _ in range(N)]
        #: fid of the next flit of the worm being streamed, or -1.
        self.s_cur = [NONE_CODE] * N
        self.s_vc = [NONE_CODE] * N
        #: Sources with work (queue non-empty or a worm streaming) — the
        #: run loop's inject scan visits only these.  ``Source.inject``
        #: is a strict no-op (no rng, no state) for an idle source.
        self.src_busy: set[int] = set()

        # -- per-packet / per-flit arrays ----------------------------------
        self.p_src: list[int] = []
        self.p_dest: list[int] = []
        self.p_created: list[int] = []
        self.p_injected: list[int] = []
        self.p_delivered: list[int] = []
        self.p_dropped: list[int] = []
        self.p_yx: list[int] = []
        self.p_fdel: list[int] = []
        self.p_hops: list[int] = []
        self.p_meas: list[bool] = []
        self.f_route: list[int] = []
        self.f_look: list[int] = []
        self.f_hint: list[int] = []
        self.f_arrival: list[int] = []

        # -- run accounting (flushed into a StatsCollector at the end) ----
        self.generated = 0
        self.outstanding = 0
        self.net_cycle = 0  # Network.cycle: set at step time, stale during injection
        self._measuring = False
        self._measure_start: int | None = None
        self.latencies: list[int] = []
        self.hops_list: list[int] = []
        self.injected_packets = 0
        self.delivered_packets = 0
        self.dropped_packets = 0
        self.delivered_flits = 0
        self.total_delivered = 0
        self.total_dropped = 0
        self.drops_by_reason: dict[DropReason, int] = {}
        self.measured_cycles = 0
        # ActivityCounters fields, as locals-friendly ints.
        self.bw = 0  # buffer_writes
        self.br = 0  # buffer_reads
        self.xb = 0  # crossbar_traversals
        self.va = 0  # va_requests
        self.sa = 0  # sa_requests
        self.lf = 0  # link_flits
        self.ee = 0  # early_ejections
        # ContentionCounters fields.
        self.row_req = 0
        self.row_cont = 0
        self.col_req = 0
        self.col_cont = 0
        # SchedulerCounters fields.
        self.sched_cycles = 0
        self.sched_steps = 0
        self.sched_slots = 0
        self.sched_wakeups = 0
        self.sched_sleeps = 0

    # ------------------------------------------------------------------
    # Credits / scheduling primitives
    # ------------------------------------------------------------------

    def _credits(self, s: int, cycle: int) -> int:
        """``VirtualChannel.credits``: lazily mature pending releases."""
        rel = self.rel[s]
        if rel and rel[0] <= cycle:
            avail = self.avail[s]
            while rel and rel[0] <= cycle:
                del rel[0]
                avail += 1
            self.avail[s] = avail
        return self.avail[s]

    def _wake(self, n: int) -> None:
        """``BaseRouter.wake``: join the active set, count the wakeup."""
        if not self.r_active[n]:
            self.r_active[n] = True
            self.sched_wakeups += 1

    # ------------------------------------------------------------------
    # Generation and injection (Simulator._generate / Source.inject)
    # ------------------------------------------------------------------

    def _generate(self, cycle: int) -> None:
        total = self.config.total_packets
        s_queue = self.s_queue
        nodes = self.layout.nodes
        if self._bernoulli:
            # The pattern uses the base-class Bernoulli arrivals: one
            # rng.random() per node per cycle against a constant rate —
            # inlined with the identical draw sequence.
            rnd = self.rng.random
            rate = self.traffic.packet_rate
            for n in range(self.N):
                if self.generated >= total:
                    return
                if rnd() < rate:
                    s_queue[n].append(self._create_packet(n, nodes[n], cycle))
                    self.src_busy.add(n)
            return
        arrivals = self.traffic.arrivals
        for n, node in enumerate(nodes):
            if self.generated >= total:
                return
            for _ in range(arrivals(node, cycle)):
                s_queue[n].append(self._create_packet(n, node, cycle))
                self.src_busy.add(n)
                if self.generated >= total:
                    return

    def _create_packet(self, n: int, node, cycle: int) -> int:
        dest_node = self.traffic.destination(node)
        if self.generated == self.config.warmup_packets:
            self._measuring = True
            self._measure_start = cycle
        pid = self.generated
        self.generated += 1
        self.outstanding += 1
        self.p_src.append(n)
        self.p_dest.append(self.layout.node_index[dest_node])
        self.p_created.append(cycle)
        self.p_injected.append(NONE_CODE)
        self.p_delivered.append(NONE_CODE)
        self.p_dropped.append(NONE_CODE)
        self.p_fdel.append(0)
        self.p_hops.append(0)
        measured = self._measuring
        if measured:
            self.injected_packets += 1
        self.p_meas.append(measured)
        yx = False
        if self.config.routing is RoutingMode.XY_YX:
            yx = choose_variant(node, dest_node, self.rng, None)
        self.p_yx.append(1 if yx else 0)
        F = self.F
        none_row = [NONE_CODE] * F
        self.f_route.extend(none_row)
        self.f_look.extend(none_row)
        self.f_hint.extend(none_row)
        self.f_arrival.extend(none_row)
        return pid

    def _inject(self, n: int, cycle: int) -> None:
        """``Source.inject``: advance injection by at most one flit."""
        if self.s_cur[n] == NONE_CODE and self.s_queue[n]:
            self._start_next(n, cycle)
        fid = self.s_cur[n]
        if fid == NONE_CODE:
            return
        s = self.s_vc[n]
        if self._credits(s, cycle) <= 0:
            return
        self.avail[s] -= 1  # reserve_slot (already refreshed by _credits)
        self.q[s].append(fid)
        self.occ_mask[n] |= self.slot_bitmask[s]
        self._wake(n)
        self.f_arrival[fid] = cycle
        F = self.F
        pid, seq = divmod(fid, F)
        if seq == 0:
            self.apid[s] = pid
        self.bw += 1
        if seq == F - 1:
            # Tail pushed: release the VC for the next worm.
            self.owner[s] = NONE_CODE
            self.s_cur[n] = NONE_CODE
            self.s_vc[n] = NONE_CODE
            if not self.s_queue[n]:
                self.src_busy.discard(n)
        else:
            self.s_cur[n] = fid + 1

    def _start_next(self, n: int, cycle: int) -> None:
        """``Source._start_next_packet``: claim an injection VC.

        Reference quirk preserved: ``injectable``/``credits`` here read
        ``Network.cycle``, which is still the *previous* cycle's value
        during the injection phase (the network only advances its clock
        inside ``step``) — so the admission view is one cycle stale
        while the streaming credit check above is current.
        """
        pid = self.s_queue[n][0]
        stale = self.net_cycle
        lay = self.layout
        if lay.arch == "generic":
            admission = None
            for s in lay.gen_port_slots[n][4]:
                if (
                    self.owner[s] == NONE_CODE
                    and self.expected[s] == 0
                    and self._credits(s, stale) > 0
                ):
                    admission = (s, NONE_CODE)
                    break
        else:
            admission = None
            best_credits = -1
            for s, route in lay.roco_injection(n, self.p_dest[pid], self.p_yx[pid]):
                if (
                    self.owner[s] == NONE_CODE
                    and self.expected[s] == 0
                    and self._credits(s, stale) > 0
                ):
                    credit = self._credits(s, stale)
                    if credit > best_credits:
                        admission, best_credits = (s, route), credit
        if admission is None:
            return
        s, route = admission
        self.owner[s] = pid
        del self.s_queue[n][0]
        self.p_injected[pid] = cycle
        head = pid * self.F
        self.f_route[head] = route
        self.s_cur[n] = head
        self.s_vc[n] = s

    # ------------------------------------------------------------------
    # Network step (Network.step)
    # ------------------------------------------------------------------

    def _net_step(self, cycle: int) -> None:
        self.net_cycle = cycle
        full = self.full_sweep
        bucket = self.wake.pop(cycle, None)
        due: dict[int, list[tuple[int, int]]] | None = None
        if bucket:
            due = {}
            for n, din, fid in bucket:
                lst = due.get(n)
                if lst is None:
                    due[n] = [(din, fid)]
                else:
                    lst.append((din, fid))
                if not full:
                    self._wake(n)
        if full:
            stepped = range(self.N)
            num_stepped = self.N
        else:
            r_active = self.r_active
            stepped = [n for n in range(self.N) if r_active[n]]
            num_stepped = len(stepped)
        self.sched_cycles += 1
        self.sched_steps += num_stepped
        self.sched_slots += self.N

        # Phase 1: link delivery, routers in row-major order, links in
        # CARDINALS order within a router (deliver_due sorts its dirs).
        # Every router with arrivals is in the stepped set — it was
        # woken above (active) or stepped unconditionally (full sweep) —
        # so iterating the due map in node order IS the reference walk
        # restricted to routers that actually receive a flit.
        # (``BaseRouter._accept_flit``, inlined for the hot path.)
        if due:
            F = self.F
            q = self.q
            occ = self.occ_mask
            sbm = self.slot_bitmask
            f_hint = self.f_hint
            f_route = self.f_route
            f_look = self.f_look
            f_arrival = self.f_arrival
            expected = self.expected
            apid = self.apid
            bw = 0
            for n in sorted(due):
                arrivals = due[n]
                if len(arrivals) > 1:
                    arrivals.sort()
                for _din, fid in arrivals:
                    t = f_hint[fid]
                    f_route[fid] = f_look[fid]
                    f_look[fid] = NONE_CODE
                    if t == EJECT_CODE:
                        self._eject(n, fid, cycle, early=True)
                        continue
                    q[t].append(fid)
                    occ[n] |= sbm[t]
                    expected[t] -= 1
                    f_arrival[fid] = cycle
                    if fid % F == 0:
                        apid[t] = fid // F
                    bw += 1
            self.bw += bw

        # Phase 2: switch traversal of last cycle's SA winners — only
        # routers on the sa_routers list have any, and the sleep pass
        # never deactivates a router with pending winners, so the list
        # (ascending by construction) is the reference walk's non-empty
        # subsequence.  (``BaseRouter._launch``, inlined; the stale
        # check guarantees ``t == out_vc[s]``.)
        if self.sa_routers:
            routers = self.sa_routers
            self.sa_routers = []
            sa_win = self.sa_win
            q = self.q
            occ = self.occ_mask
            sbm = self.slot_bitmask
            out_dir = self.out_dir
            out_vc = self.out_vc
            avail = self.avail
            expected = self.expected
            apid = self.apid
            owner = self.owner
            rel = self.rel
            f_hint = self.f_hint
            p_hops = self.p_hops
            nbr = self.layout.nbr
            wake = self.wake
            F = self.F
            release_at = cycle + 2
            out_bucket = wake.get(release_at)
            if out_bucket is None:
                out_bucket = wake[release_at] = []
            moved = 0
            for n in routers:
                winners = sa_win[n]
                sa_win[n] = []
                for s, od, t in winners:
                    qs = q[s]
                    if not qs or out_dir[s] != od or out_vc[s] != t:
                        # Stale grant (purged worm): refund the reservation.
                        if t >= 0:
                            avail[t] += 1
                            expected[t] -= 1
                        continue
                    fid = qs.pop(0)
                    if not qs:
                        occ[n] &= ~sbm[s]
                    rel[s].append(release_at)  # pop(): schedule_release
                    closes = fid % F == F - 1
                    if closes:
                        out_dir[s] = NONE_CODE
                        out_vc[s] = NONE_CODE
                        apid[s] = NONE_CODE
                    moved += 1
                    if od == LOCAL:
                        self._eject(n, fid, cycle, early=False)
                        continue
                    f_hint[fid] = t
                    if fid % F == 0:
                        p_hops[fid // F] += 1
                    out_bucket.append((nbr[n][od], (od + 2) % 4, fid))
                    self.lf += 1
                    if closes and t >= 0:
                        owner[t] = NONE_CODE
            self.br += moved
            self.xb += moved

        # Phase 3: allocation (RC + VA + SA), per architecture.  The
        # allocators' empty-router work is a pure no-op in both modes,
        # so the mask gates the call itself; RoCo's quiescence snapshot
        # (``_alloc_occupied``, taken at allocate entry) lands here.
        occ = self.occ_mask
        allocate = self._allocate
        if full:
            for n in stepped:
                if occ[n]:
                    allocate(n, cycle)
        elif self.layout.arch == "roco":
            r_occupied = self.r_occupied
            for n in stepped:
                if occ[n]:
                    r_occupied[n] = True
                    allocate(n, cycle)
                else:
                    r_occupied[n] = False
        else:
            for n in stepped:
                if occ[n]:
                    allocate(n, cycle)

        # Sleep pass (active scheduler only).  RoCo judges occupancy by
        # the allocate-entry snapshot (deliberately stale across any
        # queue change after allocate); the generic router re-probes.
        if not full:
            sa_win = self.sa_win
            r_active = self.r_active
            busy = self.r_occupied if self.layout.arch == "roco" else occ
            for n in stepped:
                if not sa_win[n] and not busy[n]:
                    r_active[n] = False
                    self.sched_sleeps += 1

        # StatsCollector.tick()
        if self._measuring:
            self.measured_cycles += 1

    # ------------------------------------------------------------------
    # Flit movement (accept / launch / eject)
    # ------------------------------------------------------------------

    def _eject(self, n: int, fid: int, cycle: int, early: bool) -> None:
        """``Network.eject``: consume a flit at its destination PE."""
        pid = fid // self.F
        if self.p_dropped[pid] != NONE_CODE:
            return
        if early:
            self.ee += 1
        self.p_fdel[pid] += 1
        measured = self.p_meas[pid]
        if measured:
            self.delivered_flits += 1
        if fid % self.F == self.F - 1:
            self.p_delivered[pid] = cycle
            self.total_delivered += 1
            if measured:
                self.delivered_packets += 1
                self.latencies.append(cycle - self.p_created[pid])
                self.hops_list.append(self.p_hops[pid])
            self.outstanding -= 1

    # ------------------------------------------------------------------
    # VC allocation (BaseRouter._request_vc_allocation / _resolve_*)
    # ------------------------------------------------------------------

    def _request_vc_alloc(
        self, n: int, s: int, od: int, fid: int, requests: list, cycle: int
    ):
        """Returns True (staged/granted), False (all owned), None (hard)."""
        self.va += 1
        if od == LOCAL:
            self.out_vc[s] = EJECT_CODE
            self.out_dir[s] = LOCAL
            return True
        lay = self.layout
        m = lay.nbr[n][od]
        if m < 0:
            return None
        din = (od + 2) % 4
        if lay.arch == "generic":
            candidates = self._gen_adm[m][din]
        else:
            pid = fid // self.F
            candidates = lay.roco_admission(m, din, self.p_dest[pid], self.p_yx[pid])
        if not candidates:
            return None
        staged = {req[3] for req in requests}
        owner = self.owner
        best_t = None
        best_route = NONE_CODE
        best_key = (-1, -1)
        for t, route in candidates:
            if t == EJECT_CODE:
                best_t, best_route = t, route
                break
            if owner[t] != NONE_CODE:
                continue
            key = (0 if t in staged else 1, self._credits(t, cycle))
            if key > best_key:
                best_t, best_route, best_key = t, route, key
        if best_t is None:
            return False
        if best_t == EJECT_CODE:
            self.out_vc[s] = EJECT_CODE
            self.out_dir[s] = od
            self.f_look[fid] = best_route
            return True
        requests.append((s, od, fid, best_t, best_route))
        return True

    def _resolve_vc_allocations(self, n: int, requests: list, cycle: int) -> None:
        F = self.F
        for _ in range(self._va_iterations):
            if not requests:
                return
            groups: dict[int, list] = {}
            for req in requests:
                groups.setdefault(req[3], []).append(req)
            losers: list[tuple[int, int, int]] = []
            for group in groups.values():
                pick = cycle % len(group)
                for i, (s, od, fid, t, route) in enumerate(group):
                    if i == pick:
                        self.owner[t] = fid // F  # claim()
                        self.out_vc[s] = t
                        self.out_dir[s] = od
                        self.f_look[fid] = route
                    else:
                        losers.append((s, od, fid))
            requests = []
            for s, od, fid in losers:
                # Final-iteration losers re-request into a discarded
                # list — observable only as va_requests bumps, exactly
                # like the reference.
                self._request_vc_alloc(n, s, od, fid, requests, cycle)

    def _commit(self, n: int, s: int, cycle: int) -> None:
        """``BaseRouter._commit_switch_grant``."""
        t = self.out_vc[s]
        if t >= 0:
            self._credits(t, cycle)  # reserve_slot refreshes first
            self.avail[t] -= 1
            self.expected[t] += 1
        win = self.sa_win[n]
        if not win:
            self.sa_routers.append(n)
        win.append((s, self.out_dir[s], t))

    # ------------------------------------------------------------------
    # Generic-router allocate (GenericRouter.allocate)
    # ------------------------------------------------------------------

    def _allocate_generic(self, n: int, cycle: int) -> None:
        # Caller guarantees occ_mask[n] != 0 (the empty-router walk is a
        # pure no-op in both scheduler modes).
        mask = self.occ_mask[n]
        F = self.F
        q = self.q
        out_vc = self.out_vc
        apid = self.apid
        f_arrival = self.f_arrival
        bit_slot = self.bit_slot[n]
        va_requests: list = []
        newly: set[int] = set()
        m = mask
        while m:
            b = m & -m
            m ^= b
            s = bit_slot[b.bit_length() - 1]
            fid = q[s][0]
            if fid % F:
                continue  # not a head flit
            if apid[s] == NONE_CODE:
                apid[s] = fid // F
            if out_vc[s] == NONE_CODE:
                if f_arrival[fid] >= cycle:
                    continue  # post-arrival RC cycle
                self._gen_route_and_request(n, s, fid, va_requests, cycle)
                newly.add(s)
        if va_requests:
            self._resolve_vc_allocations(n, va_requests, cycle)

        # SA stage 1: one nominee per input port; Peh-Dally speculation.
        V = self.V
        out_dir = self.out_dir
        avail = self.avail
        rel = self.rel
        arb = self.arb[n]
        pmask = (1 << V) - 1
        nominees: dict[int, int] = {}
        speculative: dict[int, bool] = {}
        for d in range(5):
            base = d * V
            sub = (mask >> base) & pmask
            if not sub:
                continue
            ready = [False] * V
            num_requests = 0
            mm = sub
            while mm:
                b = mm & -mm
                mm ^= b
                i = b.bit_length() - 1
                t = out_vc[bit_slot[base + i]]
                if t == NONE_CODE:
                    continue
                if t >= 0:
                    # Inlined credits(cycle) > 0 with lazy release refresh.
                    r = rel[t]
                    if r and r[0] <= cycle:
                        a = avail[t]
                        while r and r[0] <= cycle:
                            del r[0]
                            a += 1
                        avail[t] = a
                    if avail[t] <= 0:
                        continue
                ready[i] = True
                num_requests += 1
            if not num_requests:
                continue
            self.sa += num_requests
            non_spec = [
                r and bit_slot[base + i] not in newly for i, r in enumerate(ready)
            ]
            if any(non_spec):
                winner = _rr(arb, d, non_spec)
                speculative[d] = False
            else:
                winner = _rr(arb, d, ready)
                speculative[d] = True
            nominees[d] = bit_slot[base + winner]

        # SA stage 2: one grant per output, non-speculative first.  The
        # contention tally runs first, as in the reference: every
        # buffered worm with a committed cardinal output is a standing
        # request on that crossbar output (Figure 3).
        c = [0, 0, 0, 0]
        mm = mask
        while mm:
            b = mm & -mm
            mm ^= b
            od = out_dir[bit_slot[b.bit_length() - 1]]
            if od >= 0 and od != LOCAL:
                c[od] += 1
        cn, ce, cs, cw = c
        self.row_req += ce + cw
        self.row_cont += (ce if ce > 1 else 0) + (cw if cw > 1 else 0)
        self.col_req += cn + cs
        self.col_cont += (cn if cn > 1 else 0) + (cs if cs > 1 else 0)
        requests_per_output: dict[int, list[int]] = {}
        for d, s in nominees.items():
            requests_per_output.setdefault(out_dir[s], []).append(d)
        for od, requesters in requests_per_output.items():
            non_spec_req = [d for d in requesters if not speculative[d]]
            pool = non_spec_req if non_spec_req else requesters
            lines = [p in pool for p in range(5)]
            winner = _rr(arb, 5 + od, lines)
            if winner is not None:
                self._commit(n, nominees[winner], cycle)

    def _gen_route_and_request(
        self, n: int, s: int, fid: int, va_requests: list, cycle: int
    ) -> None:
        """``GenericRouter._route_and_request`` (fault-free paths)."""
        lay = self.layout
        pid = fid // self.F
        dest = self.p_dest[pid]
        if lay.slot_escape[s] and lay.mode is RoutingMode.ADAPTIVE:
            candidates = (lay.escape_route(n, dest),)
        else:
            candidates = lay.route_candidates(n, dest, self.p_yx[pid])
        if len(candidates) > 1:
            # _order_by_congestion: stable sort by free downstream credits.
            candidates = sorted(
                candidates, key=lambda d: -self._free_credits(n, d, cycle)
            )
        for od in candidates:
            if self._request_vc_alloc(n, s, od, fid, va_requests, cycle):
                return

    def _free_credits(self, n: int, d: int, cycle: int) -> int:
        total = 0
        for s in self.layout.fc_slots[n][d]:
            total += self._credits(s, cycle)
        return total

    # ------------------------------------------------------------------
    # RoCo allocate (RoCoRouter.allocate)
    # ------------------------------------------------------------------

    def _allocate_roco(self, n: int, cycle: int) -> None:
        # Caller guarantees occ_mask[n] != 0 and has already taken the
        # ``_alloc_occupied`` snapshot (r_occupied) at phase entry —
        # deliberately before the VA walk, whose defensive ejects may
        # empty queues, so quiescence stays conservatively False for
        # one extra cycle exactly like the reference.
        mask = self.occ_mask[n]
        F = self.F
        q = self.q
        out_vc = self.out_vc
        apid = self.apid
        f_arrival = self.f_arrival
        bit_slot = self.bit_slot[n]
        lookahead = self.layout.lookahead
        va_requests: list = []
        m = mask
        while m:
            b = m & -m
            m ^= b
            s = bit_slot[b.bit_length() - 1]
            fid = q[s][0]
            if fid % F:
                continue
            if apid[s] == NONE_CODE:
                apid[s] = fid // F
            if out_vc[s] == NONE_CODE:
                if not lookahead and f_arrival[fid] >= cycle:
                    continue  # ablation: RC charged post-arrival
                self._roco_request_worm(n, s, fid, va_requests, cycle)
        if va_requests:
            self._resolve_vc_allocations(n, va_requests, cycle)

        V = self.V
        out_dir = self.out_dir
        avail = self.avail
        rel = self.rel
        expected = self.expected
        sa_routers = self.sa_routers
        win = self.sa_win[n]
        mirror = self.layout.mirror
        mod_slot0 = self.layout.mod_slot0_dir
        mod_bits = self._mod_bits
        mod_mask = self._mod_mask
        # Re-read: the VA walk's defensive ejects may have cleared bits,
        # and both the reference SA walk and its contention tally probe
        # live queues.
        mask = self.occ_mask[n]
        counts = None
        for mi in (0, 1):
            shift = mi * mod_bits
            sub = (mask >> shift) & mod_mask
            if not sub:
                continue
            slot0_dir = mod_slot0[mi]
            # Ready requests as four V-wide bitmasks: (port, crossbar
            # direction-slot) with bit ``vc.index`` — the same matrix the
            # allocators consume, packed.
            r00 = r01 = r10 = r11 = 0
            ready_count = 0
            mm = sub
            while mm:
                b = mm & -mm
                mm ^= b
                i = b.bit_length() - 1
                s = bit_slot[shift + i]
                t = out_vc[s]
                if t == NONE_CODE:
                    continue
                if t >= 0:
                    # Inlined credits(cycle) > 0 with lazy release refresh.
                    r = rel[t]
                    if r and r[0] <= cycle:
                        a = avail[t]
                        while r and r[0] <= cycle:
                            del r[0]
                            a += 1
                        avail[t] = a
                    if avail[t] <= 0:
                        continue
                if i < V:
                    if out_dir[s] == slot0_dir:
                        r00 |= 1 << i
                    else:
                        r01 |= 1 << i
                elif out_dir[s] == slot0_dir:
                    r10 |= 1 << (i - V)
                else:
                    r11 |= 1 << (i - V)
                ready_count += 1
            if not ready_count:
                continue
            self.sa += ready_count
            # _tally_contention — the reference invokes it once per
            # module with ready VCs, each walk seeing identical state
            # (the SA loop mutates neither queues nor out_dir), so the
            # counts are computed once and applied per invocation.
            if counts is None:
                c = [0, 0, 0, 0]
                mm = mask
                while mm:
                    b = mm & -mm
                    mm ^= b
                    od = out_dir[bit_slot[b.bit_length() - 1]]
                    if od >= 0 and od != LOCAL:
                        c[od] += 1
                counts = c
            cn, ce, cs, cw = counts
            self.row_req += ce + cw
            self.row_cont += (ce if ce > 1 else 0) + (cw if cw > 1 else 0)
            self.col_req += cn + cs
            self.col_cont += (cn if cn > 1 else 0) + (cs if cs > 1 else 0)
            state = self.arb[n][mi]
            if mirror:
                # MirrorAllocator.allocate, inlined on the packed rows.
                # Local v:1 arbiters — each a round-robin scan from the
                # stored pointer over a non-empty request mask.
                if r00:
                    i = state[0]
                    while not r00 >> i & 1:
                        i += 1
                        if i >= V:
                            i = 0
                    state[0] = i + 1 if i + 1 < V else 0
                    l00 = i
                else:
                    l00 = -1
                if r01:
                    i = state[1]
                    while not r01 >> i & 1:
                        i += 1
                        if i >= V:
                            i = 0
                    state[1] = i + 1 if i + 1 < V else 0
                    l01 = i
                else:
                    l01 = -1
                if r10:
                    i = state[2]
                    while not r10 >> i & 1:
                        i += 1
                        if i >= V:
                            i = 0
                    state[2] = i + 1 if i + 1 < V else 0
                    l10 = i
                else:
                    l10 = -1
                if r11:
                    i = state[3]
                    while not r11 >> i & 1:
                        i += 1
                        if i >= V:
                            i = 0
                    state[3] = i + 1 if i + 1 < V else 0
                    l11 = i
                else:
                    l11 = -1
                # Global 2:1 arbiter + mirrored partner grants.  The
                # pointer is always 0/1, so each grant leaves it at
                # 1 - winner (see _mirror_allocate for the spelled-out
                # reference transliteration this compresses).
                if l00 >= 0 or l01 >= 0:
                    score0 = (2 if l11 >= 0 else 1) if l00 >= 0 else -1
                    score1 = (2 if l10 >= 0 else 1) if l01 >= 0 else -1
                    if score0 == score1:
                        slot1 = state[4]
                    else:
                        slot1 = 0 if score0 > score1 else 1
                    state[4] = 1 - slot1
                    if slot1 == 0:
                        granted = (
                            (bit_slot[shift + l00], bit_slot[shift + V + l11])
                            if l11 >= 0
                            else (bit_slot[shift + l00],)
                        )
                    elif l10 >= 0:
                        granted = (bit_slot[shift + l01], bit_slot[shift + V + l10])
                    else:
                        granted = (bit_slot[shift + l01],)
                else:
                    g = state[4]
                    slot2 = g if (l10 >= 0 if g == 0 else l11 >= 0) else 1 - g
                    state[4] = 1 - slot2
                    granted = (bit_slot[shift + V + (l10 if slot2 == 0 else l11)],)
                for gs in granted:
                    # ``_commit_switch_grant``, inlined (port-0 grant
                    # first, mirroring the reference's grants order).
                    t = out_vc[gs]
                    if t >= 0:
                        r = rel[t]
                        if r and r[0] <= cycle:
                            a = avail[t]
                            while r and r[0] <= cycle:
                                del r[0]
                                a += 1
                            avail[t] = a
                        avail[t] -= 1
                        expected[t] += 1
                    if not win:
                        sa_routers.append(n)
                    win.append((gs, out_dir[gs], t))
            else:
                requests = [
                    [
                        [bool(r00 >> v & 1) for v in range(V)],
                        [bool(r01 >> v & 1) for v in range(V)],
                    ],
                    [
                        [bool(r10 >> v & 1) for v in range(V)],
                        [bool(r11 >> v & 1) for v in range(V)],
                    ],
                ]
                for port, _slot, index in _sequential_allocate(state, requests):
                    self._commit(n, bit_slot[shift + port * V + index], cycle)

    def _roco_request_worm(
        self, n: int, s: int, fid: int, va_requests: list, cycle: int
    ) -> None:
        """``RoCoRouter._request_worm_allocation`` (fault-free paths)."""
        od = self.f_route[fid]
        if od == NONE_CODE or od == LOCAL:
            # Defensive: early ejection should have consumed this flit.
            qs = self.q[s]
            qs.pop(0)
            if not qs:
                self.occ_mask[n] &= ~self.slot_bitmask[s]
            self.rel[s].append(cycle + 2)
            if fid % self.F == self.F - 1:
                self.out_dir[s] = NONE_CODE
                self.out_vc[s] = NONE_CODE
                self.apid[s] = NONE_CODE
            self._eject(n, fid, cycle, early=True)
            return
        self._request_vc_alloc(n, s, od, fid, va_requests, cycle)

    # ------------------------------------------------------------------
    # Run loop (Simulator.run)
    # ------------------------------------------------------------------

    def run(self, progress=None, progress_every: int = 5000) -> SimulationResult:
        config = self.config
        total = config.total_packets
        drain_timeout = config.drain_timeout
        last_signature = (-1, -1)
        last_progress_cycle = 0
        cycle = 0
        src_busy = self.src_busy
        for cycle in range(config.max_cycles):
            if self.generated < total:
                self._generate(cycle)
            if src_busy:
                # Idle sources are strict no-ops in ``Source.inject``;
                # busy ones must run in node order.
                for n in sorted(src_busy):
                    self._inject(n, cycle)
            self._net_step(cycle)
            if progress is not None and cycle and cycle % progress_every == 0:
                progress(cycle, self.generated, self.outstanding)
            signature = (self.xb + self.bw, self.outstanding)
            if signature != last_signature:
                last_signature = signature
                last_progress_cycle = cycle
            if self.generated >= total and self.outstanding == 0:
                break
            if cycle - last_progress_cycle > drain_timeout:
                # The SoA envelope is fault-free, so this is always the
                # hard failure path (never the paper's inactivity rule).
                raise DrainTimeoutError(
                    f"no progress for {drain_timeout} cycles at cycle {cycle}",
                    self.stranded_census(cycle),
                )
        self._drop_survivors(cycle)
        return self._build_result(cycle + 1)

    def stranded_census(self, cycle: int) -> StrandedCensus:
        """``Simulator.stranded_census`` on array state (fault-free)."""
        nodes = self.layout.nodes
        per_node: dict = {}
        oldest: int | None = None

        def tally(n: int, pid: int) -> None:
            nonlocal oldest
            node = nodes[n]
            per_node[node] = per_node.get(node, 0) + 1
            age = cycle - self.p_created[pid]
            if oldest is None or age > oldest:
                oldest = age

        for n in range(self.N):
            for pid in self.s_queue[n]:
                tally(n, pid)
            if self.s_cur[n] != NONE_CODE:
                tally(n, self.s_cur[n] // self.F)
        counted: set[int] = set()
        for n in range(self.N):
            for s in self.layout.router_slots[n]:
                for fid in self.q[s]:
                    pid = fid // self.F
                    if pid in counted or self.p_dropped[pid] != NONE_CODE:
                        continue
                    counted.add(pid)
                    tally(n, pid)
        return StrandedCensus(
            outstanding=self.outstanding,
            per_node=per_node,
            oldest_age=oldest if oldest is not None else 0,
            dead_modules={},
            unreachable=0,
        )

    def _drop_survivors(self, cycle: int) -> None:
        """``Simulator._drop_survivors`` (fault-free: all UNDELIVERED)."""
        if self.outstanding == 0:
            return

        def drop(pid: int) -> None:
            if self.p_dropped[pid] != NONE_CODE or self.p_delivered[pid] != NONE_CODE:
                return
            self.p_dropped[pid] = cycle
            self.total_dropped += 1
            reason = DropReason.UNDELIVERED
            self.drops_by_reason[reason] = self.drops_by_reason.get(reason, 0) + 1
            if self.p_meas[pid]:
                self.dropped_packets += 1

        for n in range(self.N):
            for pid in self.s_queue[n]:
                drop(pid)
            self.s_queue[n] = []
            if self.s_cur[n] != NONE_CODE:
                drop(self.s_cur[n] // self.F)
                self.s_cur[n] = NONE_CODE
                self.s_vc[n] = NONE_CODE
        for s in range(self.S):
            for fid in self.q[s]:
                drop(fid // self.F)
            self.q[s] = []
        self.occ_mask = [0] * self.N
        self.src_busy.clear()
        self.outstanding = 0

    # ------------------------------------------------------------------
    # Result assembly (Simulator._build_result)
    # ------------------------------------------------------------------

    def _stats(self) -> StatsCollector:
        """Flush the flat counters into a real StatsCollector."""
        stats = StatsCollector(num_nodes=self.config.num_nodes)
        stats.measuring = self._measuring
        stats.measure_start_cycle = self._measure_start
        stats.latencies = self.latencies
        stats.hops = self.hops_list
        stats.injected_packets = self.injected_packets
        stats.delivered_packets = self.delivered_packets
        stats.dropped_packets = self.dropped_packets
        stats.delivered_flits = self.delivered_flits
        stats.total_delivered = self.total_delivered
        stats.total_dropped = self.total_dropped
        stats.drops_by_reason = dict(self.drops_by_reason)
        stats.measured_cycles = self.measured_cycles
        stats.activity = ActivityCounters(
            buffer_writes=self.bw,
            buffer_reads=self.br,
            crossbar_traversals=self.xb,
            va_requests=self.va,
            sa_requests=self.sa,
            link_flits=self.lf,
            early_ejections=self.ee,
        )
        stats.contention = ContentionCounters(
            row_requests=self.row_req,
            row_contended=self.row_cont,
            column_requests=self.col_req,
            column_contended=self.col_cont,
        )
        stats.scheduler = SchedulerCounters(
            cycles=self.sched_cycles,
            router_steps=self.sched_steps,
            router_slots=self.sched_slots,
            wakeups=self.sched_wakeups,
            sleeps=self.sched_sleeps,
            full_sweep=self.full_sweep,
        )
        return stats

    def _build_result(self, cycles: int) -> SimulationResult:
        stats = self._stats()
        model = EnergyModel(self.config.router, self.config.num_nodes)
        energy = model.report(
            stats.activity, stats.measured_cycles, stats.delivered_packets
        )
        return SimulationResult(
            config=self.config,
            average_latency=stats.average_latency,
            latency=LatencySummary.from_samples(stats.latencies),
            average_hops=stats.average_hops,
            injected_packets=stats.injected_packets,
            delivered_packets=stats.delivered_packets,
            dropped_packets=stats.dropped_packets,
            completion_probability=stats.completion_probability,
            throughput=stats.throughput_flits_per_node_cycle,
            cycles=cycles,
            energy=energy,
            contention_row=stats.contention.row_probability,
            contention_column=stats.contention.column_probability,
            contention_overall=stats.contention.overall_probability,
            faults=self.faults,
            scheduler=stats.scheduler,
            generated_packets=self.generated,
            total_delivered=stats.total_delivered,
            total_dropped=stats.total_dropped,
            drops_by_reason={
                reason.value: count
                for reason, count in sorted(
                    stats.drops_by_reason.items(), key=lambda kv: kv[0].value
                )
            },
        )


def run_soa_simulation(
    config: SimulationConfig,
    traffic: TrafficPattern | None = None,
    faults=None,
    *,
    schedule=None,
    full_sweep: bool = False,
) -> SimulationResult:
    """SoA-backend counterpart of :func:`repro.core.simulator.run_simulation`."""
    return SoASimulator(
        config,
        traffic=traffic,
        faults=faults,
        schedule=schedule,
        full_sweep=full_sweep,
    ).run()
