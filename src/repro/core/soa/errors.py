"""Supported-envelope policing for the struct-of-arrays backend.

The SoA backend (docs/vectorized-core.md) is a transliteration of the
object model's hot loop, bit-identical on the envelope it implements.
Anything outside that envelope must fail loudly *before* the run starts
— a silently-different fast path would poison every result built on it.
"""

from __future__ import annotations


class BackendUnsupportedError(RuntimeError):
    """A configuration/feature combination the requested backend lacks.

    Raised eagerly at dispatch time (``run_simulation`` /
    ``SoASimulator.__init__``) so callers can fall back to
    ``backend="object"`` instead of trusting a wrong answer.
    """

    def __init__(self, feature: str, detail: str = "") -> None:
        message = f"backend='soa' does not support {feature}"
        if detail:
            message += f" ({detail})"
        message += "; use backend='object'"
        super().__init__(message)
        self.feature = feature


#: Router architectures the SoA kernels implement.
SOA_ROUTERS = ("roco", "generic")


def ensure_supported(config, faults=None, schedule=None) -> None:
    """Raise :class:`BackendUnsupportedError` outside the SoA envelope.

    The envelope is: RoCo/generic routers on a fault-free mesh, any
    routing mode and traffic pattern, both schedulers, audit off.  The
    conformance grid (tests/test_backend_conformance.py) pins both the
    supported cells (bit-identical results) and these rejections.
    """
    if config.router not in SOA_ROUTERS:
        raise BackendUnsupportedError(
            f"router={config.router!r}", "only roco and generic are vectorized"
        )
    if config.topology != "mesh":
        raise BackendUnsupportedError(f"topology={config.topology!r}")
    if getattr(config, "shards", None) not in (None, (1, 1)):
        raise BackendUnsupportedError(
            f"shards={config.shards!r}",
            "tile workers run the object engine (see docs/sharded-scaling.md)",
        )
    if config.audit:
        raise BackendUnsupportedError(
            "audit=True",
            "the audit engine walks live object state; decode an exported "
            "SoAState instead (see docs/vectorized-core.md)",
        )
    if faults:
        raise BackendUnsupportedError(
            "static fault injection", f"{len(list(faults))} fault(s) requested"
        )
    if schedule is not None and getattr(schedule, "events", ()):
        raise BackendUnsupportedError(
            "runtime fault schedules", f"{len(schedule.events)} event(s) scheduled"
        )
