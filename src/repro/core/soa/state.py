"""The object <-> struct-of-arrays state bridge.

The SoA engine keeps no :class:`~repro.core.types.Flit` objects, so
consumers that walk live object state — the audit engine, probes,
ad-hoc debugging — cannot attach to it directly.  This module gives
them a sanctioned path instead:

* :func:`encode_state` captures the complete *dynamic* mid-run state of
  either backend as one canonical, hashable :class:`SoAState` value;
* :func:`decode_state` rebuilds a live object-model
  :class:`~repro.core.simulator.Simulator` from such a value, suitable
  for :class:`~repro.audit.engine.AuditEngine` checks or for continued
  (non-generating) stepping;
* :func:`states_equal` / :func:`state_diff` compare two captures.

Because both backends encode to the same canonical form, equality of
encodings is the cross-backend equivalence oracle used by the property
tests (tests/test_soa_state_properties.py): stepping and encoding must
commute.

Canonicalisation rules (what "the same state" means):

* **Credits** — release entries mature (``<= cycle``) at encode time
  are folded into the available count, exactly as the lazy
  ``credits()`` refresh would; only future releases are kept.  The two
  backends refresh at slightly different moments, so raw
  ``(_available, _releases)`` pairs are not comparable but the folded
  view is.
* **VC hints** — ``Flit.vc_hint`` is written at launch and consumed at
  link delivery, never cleared; buffered flits therefore carry stale
  hints that are unreadable garbage.  Hints are encoded only for flits
  in flight on a link and normalised to ``NONE_CODE`` everywhere else.
* **Dead packets** — delivered and dropped packets leave no flits
  behind; their bookkeeping lives in the statistics totals.  Only
  packets still alive in the system (source-queued, streaming, or with
  flits buffered / on a wire) get a row.
* **Link order** — the object model stores wire flits in per-link
  deques, the SoA engine in per-cycle wake buckets.  Both are flattened
  to ``(arrival_cycle, receiver, input_dir, fid)`` tuples and sorted;
  the order is total because inter-router links are single-lane (at
  most one flit per link per arrival cycle).
* **RNG** — deliberately *not* captured.  A decoded simulator carries a
  fresh ``random.Random(config.seed)``; stepping it through phases that
  draw (generation, XY-YX variant choice) diverges from the donor run.
  Network stepping (:meth:`Network.step` / ``_net_step``) draws
  nothing, which is exactly the scope of the commute guarantee.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, fields

from repro.core.simulator import Simulator
from repro.core.soa.engine import SoASimulator
from repro.core.soa.layout import EJECT_CODE, NONE_CODE
from repro.core.types import Direction, Packet, make_packet_flits
from repro.routers.base import EJECT


@dataclass(frozen=True)
class SoAState:
    """One backend-agnostic capture of a simulator's dynamic state.

    All fields are plain ints, strings and nested tuples: instances are
    hashable, directly comparable with ``==``, and printable.  Codes
    follow the SoA engine's conventions — routers and sources are
    row-major node indices, VCs are global slot ids (layout order),
    directions are ``Direction`` int values, ``NONE_CODE`` stands for
    ``None`` and ``EJECT_CODE`` for the early-ejection pseudo-target.
    """

    # -- structural header (guards decode against a mismatched config) --
    router: str
    routing: str
    width: int
    height: int
    flits_per_packet: int
    full_sweep: bool

    # -- scalars --
    cycle: int
    generated: int
    outstanding: int
    total_delivered: int
    total_dropped: int

    #: Live packets, sorted by pid:
    #: ``(pid, src, dest, created, injected, yx_first, flits_delivered,
    #: hops, measured)``.
    packets: tuple
    #: Live flits, sorted by fid: ``(fid, route, lookahead, hint,
    #: arrival)`` — ``hint`` is ``NONE_CODE`` unless the flit is on a
    #: wire (see module docstring).
    flits: tuple
    #: Per slot (layout order): ``(queue_fids, out_dir, out_vc,
    #: active_pid, owner_pid, expected, available, future_releases)``.
    vcs: tuple
    #: Wire flits, sorted: ``(arrival_cycle, receiver, input_dir, fid)``.
    links: tuple
    #: Per source node: ``(queued_pids, streaming_fid, claimed_slot)``.
    sources: tuple
    #: Per router: 1 if in the activity scheduler's active set.
    active: tuple
    #: Per router: pending SA winners ``(slot, out_dir, out_vc)`` in
    #: grant order (traversed next cycle).
    sa_winners: tuple
    #: Per router: RoCo's allocate-entry occupancy snapshot
    #: (``_alloc_occupied``); empty for the generic router.
    occupied: tuple
    #: Per router: round-robin arbiter pointers.  Generic: 10-tuple
    #: ``[SA1 x5 | SA2 x5]`` in Direction order.  RoCo: one tuple per
    #: module (ROW, COLUMN) — mirror ``(l00, l01, l10, l11, global)``,
    #: sequential ``(port0, port1, dir0, dir1)``.
    arbiters: tuple


# ----------------------------------------------------------------------
# Encoding
# ----------------------------------------------------------------------


def _fold_credits(available: int, releases, cycle: int) -> tuple[int, tuple]:
    """Apply the lazy ``credits()`` refresh without mutating the donor."""
    matured = 0
    future = []
    for at in releases:
        if at <= cycle:
            matured += 1
        else:
            future.append(at)
    return available + matured, tuple(future)


def _packet_row(pid, src, dest, created, injected, yx, fdel, hops, measured):
    return (pid, src, dest, created, injected, yx, fdel, hops, measured)


def encode_state(sim, cycle: int | None = None) -> SoAState:
    """Capture ``sim`` (either backend) as a canonical :class:`SoAState`.

    ``cycle`` defaults to the simulator's own clock (the last stepped
    cycle) and is only needed when encoding between phases of a
    hand-driven loop.
    """
    if isinstance(sim, SoASimulator):
        return _encode_soa(sim, cycle)
    if isinstance(sim, Simulator):
        return _encode_object(sim, cycle)
    raise TypeError(f"cannot encode {type(sim).__name__}: not a known backend")


def _encode_soa(sim: SoASimulator, cycle: int | None) -> SoAState:
    lay = sim.layout
    F = sim.F
    if cycle is None:
        cycle = sim.net_cycle

    wire_fids = set()
    links = []
    for at, bucket in sim.wake.items():
        for recv, din, fid in bucket:
            links.append((at, recv, din, fid))
            wire_fids.add(fid)
    links.sort()

    live_fids = set(wire_fids)
    for s in range(sim.S):
        live_fids.update(sim.q[s])
    sources = []
    for n in range(sim.N):
        cur = sim.s_cur[n]
        if cur != NONE_CODE:
            live_fids.update(range(cur, (cur // F + 1) * F))
        sources.append((tuple(sim.s_queue[n]), cur, sim.s_vc[n]))

    live_pids = {fid // F for fid in live_fids}
    for queued, _cur, _vc in sources:
        live_pids.update(queued)

    packets = tuple(
        _packet_row(
            pid,
            sim.p_src[pid],
            sim.p_dest[pid],
            sim.p_created[pid],
            sim.p_injected[pid],
            sim.p_yx[pid],
            sim.p_fdel[pid],
            sim.p_hops[pid],
            int(sim.p_meas[pid]),
        )
        for pid in sorted(live_pids)
    )
    flits = tuple(
        (
            fid,
            sim.f_route[fid],
            sim.f_look[fid],
            sim.f_hint[fid] if fid in wire_fids else NONE_CODE,
            sim.f_arrival[fid],
        )
        for fid in sorted(live_fids)
    )
    vcs = []
    for s in range(sim.S):
        avail, future = _fold_credits(sim.avail[s], sim.rel[s], cycle)
        vcs.append(
            (
                tuple(sim.q[s]),
                sim.out_dir[s],
                sim.out_vc[s],
                sim.apid[s],
                sim.owner[s],
                sim.expected[s],
                avail,
                future,
            )
        )

    if lay.arch == "roco":
        occupied = tuple(int(b) for b in sim.r_occupied)
        arbiters = tuple(
            (tuple(mod[0]), tuple(mod[1])) for mod in sim.arb
        )
    else:
        occupied = ()
        arbiters = tuple(tuple(row) for row in sim.arb)

    return SoAState(
        router=lay.arch,
        routing=sim.config.routing.value,
        width=lay.width,
        height=lay.height,
        flits_per_packet=F,
        full_sweep=sim.full_sweep,
        cycle=cycle,
        generated=sim.generated,
        outstanding=sim.outstanding,
        total_delivered=sim.total_delivered,
        total_dropped=sim.total_dropped,
        packets=packets,
        flits=flits,
        vcs=tuple(vcs),
        links=tuple(links),
        sources=tuple(sources),
        active=tuple(int(b) for b in sim.r_active),
        sa_winners=tuple(tuple(w) for w in sim.sa_win),
        occupied=occupied,
        arbiters=arbiters,
    )


def _object_tables(network):
    """Slot/node maps for a live object network, in layout order."""
    slot_of: dict[int, int] = {}
    vcs: list = []
    for router in network._router_list:
        for vc in router.all_vcs():
            slot_of[id(vc)] = len(vcs)
            vcs.append(vc)
    node_index = {node: n for n, node in enumerate(network.nodes)}
    return slot_of, vcs, node_index


def _code_target(target, slot_of) -> int:
    if target is None:
        return NONE_CODE
    if target is EJECT:
        return EJECT_CODE
    return slot_of[id(target)]


def _code_dir(direction) -> int:
    return NONE_CODE if direction is None else int(direction)


def _encode_object(sim: Simulator, cycle: int | None) -> SoAState:
    network = sim.network
    config = sim.config
    F = config.flits_per_packet
    if cycle is None:
        cycle = network.cycle
    slot_of, vcs, node_index = _object_tables(network)

    seen_packets: dict[int, Packet] = {}
    seen_flits: dict[int, object] = {}

    def note(flit) -> int:
        fid = flit.packet.pid * F + flit.seq
        seen_packets[flit.packet.pid] = flit.packet
        seen_flits[fid] = flit
        return fid

    links = []
    wire_fids = set()
    for router in network._router_list:
        for port in router.outputs.values():
            recv = node_index[port.downstream.node]
            din = int(port.input_dir)
            for at, flit in port.link._in_flight:
                fid = note(flit)
                wire_fids.add(fid)
                links.append((at, recv, din, fid))
    links.sort()

    vc_rows = []
    for vc in vcs:
        queue = tuple(note(flit) for flit in vc.queue)
        avail, future = _fold_credits(vc._available, vc._releases, cycle)
        vc_rows.append(
            (
                queue,
                _code_dir(vc.out_dir),
                _code_target(vc.out_vc, slot_of),
                NONE_CODE if vc.active_pid is None else vc.active_pid,
                NONE_CODE if vc.owner_pid is None else vc.owner_pid,
                vc.expected,
                avail,
                future,
            )
        )

    sources = []
    for node in network.nodes:
        source = sim.sources[node]
        for packet in source.queue:
            seen_packets[packet.pid] = packet
        if source.current:
            cur = note(source.current[0])
            for flit in source.current:
                note(flit)
            slot = slot_of[id(source.vc)]
        else:
            cur = NONE_CODE
            slot = NONE_CODE
        sources.append((tuple(p.pid for p in source.queue), cur, slot))

    packets = tuple(
        _packet_row(
            pid,
            node_index[p.src],
            node_index[p.dest],
            p.created_cycle,
            NONE_CODE if p.injected_cycle is None else p.injected_cycle,
            int(p.yx_first),
            p.flits_delivered,
            p.hops,
            int(p.measured),
        )
        for pid, p in sorted(seen_packets.items())
    )
    flits = tuple(
        (
            fid,
            _code_dir(flit.route),
            _code_dir(flit.lookahead_route),
            _code_target(flit.vc_hint, slot_of) if fid in wire_fids else NONE_CODE,
            flit.arrival,
        )
        for fid, flit in sorted(seen_flits.items())
    )

    sa_winners = tuple(
        tuple(
            (slot_of[id(vc)], int(out_dir), _code_target(out_vc, slot_of))
            for vc, out_dir, out_vc in router._sa_winners
        )
        for router in network._router_list
    )

    if config.router == "roco":
        occupied = tuple(
            int(router._alloc_occupied) for router in network._router_list
        )
        arbiters = tuple(
            _roco_arb(router) for router in network._router_list
        )
    else:
        occupied = ()
        arbiters = tuple(_generic_arb(router) for router in network._router_list)

    return SoAState(
        router=config.router,
        routing=config.routing.value,
        width=config.width,
        height=config.height,
        flits_per_packet=F,
        full_sweep=network.full_sweep,
        cycle=cycle,
        generated=sim.generated,
        outstanding=sim.outstanding,
        total_delivered=network.stats.total_delivered,
        total_dropped=network.stats.total_dropped,
        packets=packets,
        flits=flits,
        vcs=tuple(vc_rows),
        links=tuple(links),
        sources=tuple(sources),
        active=tuple(int(router.active) for router in network._router_list),
        sa_winners=sa_winners,
        occupied=occupied,
        arbiters=arbiters,
    )


def _generic_arb(router) -> tuple:
    return tuple(
        router._sa_stage1[Direction(d)]._next for d in range(5)
    ) + tuple(router._sa_stage2[Direction(d)]._next for d in range(5))


def _roco_arb(router) -> tuple:
    mods = []
    for module in router.modules.values():
        alloc = module.allocator
        if hasattr(alloc, "_global"):  # MirrorAllocator
            local = alloc._local
            mods.append(
                (
                    local[0][0]._next,
                    local[0][1]._next,
                    local[1][0]._next,
                    local[1][1]._next,
                    alloc._global._next,
                )
            )
        else:  # SequentialAllocator
            mods.append(
                (
                    alloc._port_stage[0]._next,
                    alloc._port_stage[1]._next,
                    alloc._direction_stage[0]._next,
                    alloc._direction_stage[1]._next,
                )
            )
    return tuple(mods)


# ----------------------------------------------------------------------
# Decoding
# ----------------------------------------------------------------------


def decode_state(state: SoAState, config) -> Simulator:
    """Rebuild a live object-model :class:`Simulator` from ``state``.

    The returned simulator's network is a faithful reconstruction of
    the captured mid-run state: the audit engine can snapshot and check
    it, and ``network.step(state.cycle + 1)`` advances it exactly as
    the donor would (see the commute property tests).  The rng is fresh
    (see the module docstring), so phases that draw — generation, the
    XY-YX coin flip — are out of the guarantee.
    """
    header = (
        config.router,
        config.routing.value,
        config.width,
        config.height,
        config.flits_per_packet,
    )
    expected = (
        state.router,
        state.routing,
        state.width,
        state.height,
        state.flits_per_packet,
    )
    if header != expected:
        raise ValueError(
            f"config {header} does not match encoded state {expected}"
        )
    sim = Simulator(config, full_sweep=state.full_sweep)
    network = sim.network
    F = state.flits_per_packet
    slot_of, vcs, _node_index = _object_tables(network)
    nodes = network.nodes
    routers = network._router_list

    def target_of(code: int):
        if code == NONE_CODE:
            return None
        if code == EJECT_CODE:
            return EJECT
        return vcs[code]

    def dir_of(code: int):
        return None if code == NONE_CODE else Direction(code)

    # Packets and their full flit worms (unused flits are just dropped).
    packets: dict[int, Packet] = {}
    flit_of: dict[int, object] = {}
    for pid, src, dest, created, injected, yx, fdel, hops, measured in state.packets:
        packet = Packet(
            pid=pid,
            src=nodes[src],
            dest=nodes[dest],
            size=F,
            created_cycle=created,
        )
        packet.injected_cycle = None if injected == NONE_CODE else injected
        packet.yx_first = bool(yx)
        packet.flits_delivered = fdel
        packet.hops = hops
        packet.measured = bool(measured)
        packets[pid] = packet
        for seq, flit in enumerate(make_packet_flits(packet)):
            flit_of[pid * F + seq] = flit
    for fid, route, look, hint, arrival in state.flits:
        flit = flit_of[fid]
        flit.route = dir_of(route)
        flit.lookahead_route = dir_of(look)
        flit.vc_hint = target_of(hint)
        flit.arrival = arrival

    # VC buffers, routes and credit ledgers.
    for vc, (queue, out_dir, out_vc, apid, owner, expected_n, avail, future) in zip(
        vcs, state.vcs
    ):
        for fid in queue:
            vc.queue.append(flit_of[fid])
        vc.out_dir = dir_of(out_dir)
        vc.out_vc = target_of(out_vc)
        vc.active_pid = None if apid == NONE_CODE else apid
        vc.owner_pid = None if owner == NONE_CODE else owner
        vc.expected = expected_n
        vc._available = avail
        vc._releases = deque(future)

    # Wire flits: per-link deques plus the landing-cycle wake bucket
    # (the latter is a no-op under the full-sweep scheduler).
    for at, recv, din, fid in state.links:
        receiver = routers[recv]
        input_dir = Direction(din)
        upstream = receiver._in_link_map[input_dir]
        upstream._in_flight.append((at, flit_of[fid]))
        upstream.sends += 1
        network.schedule_wake(receiver, input_dir, at)

    # Sources: waiting packets and the worm being streamed.
    for n, (queued, cur, slot) in enumerate(state.sources):
        source = sim.sources[nodes[n]]
        source.queue.extend(packets[pid] for pid in queued)
        if cur != NONE_CODE:
            pid = cur // F
            source.current = deque(
                flit_of[fid] for fid in range(cur, (pid + 1) * F)
            )
            source.vc = vcs[slot]

    # Router dynamic state: scheduler flags, pending SA winners,
    # quiescence snapshots and arbiter priority pointers.
    for n, router in enumerate(routers):
        router.active = bool(state.active[n])
        router._sa_winners = [
            (vcs[s], Direction(od), target_of(t))
            for s, od, t in state.sa_winners[n]
        ]
        arb = state.arbiters[n]
        if state.router == "roco":
            router._alloc_occupied = bool(state.occupied[n])
            for module, pointers in zip(router.modules.values(), arb):
                alloc = module.allocator
                if hasattr(alloc, "_global"):
                    l00, l01, l10, l11, g = pointers
                    alloc._local[0][0]._next = l00
                    alloc._local[0][1]._next = l01
                    alloc._local[1][0]._next = l10
                    alloc._local[1][1]._next = l11
                    alloc._global._next = g
                else:
                    p0, p1, d0, d1 = pointers
                    alloc._port_stage[0]._next = p0
                    alloc._port_stage[1]._next = p1
                    alloc._direction_stage[0]._next = d0
                    alloc._direction_stage[1]._next = d1
        else:
            for d in range(5):
                router._sa_stage1[Direction(d)]._next = arb[d]
                router._sa_stage2[Direction(d)]._next = arb[5 + d]

    # Scalars.
    network.cycle = state.cycle
    sim._generated = state.generated
    sim._next_pid = state.generated
    sim._outstanding = state.outstanding
    network.stats.total_delivered = state.total_delivered
    network.stats.total_dropped = state.total_dropped
    return sim


# ----------------------------------------------------------------------
# Comparison
# ----------------------------------------------------------------------


def states_equal(a: SoAState, b: SoAState) -> bool:
    """Whether two captures describe the same dynamic state."""
    return a == b


def state_diff(a: SoAState, b: SoAState) -> list[str]:
    """Human-readable description of where two captures differ.

    Returns one line per differing field; for tuple fields the first
    differing element is quoted.  Empty when the states are equal.
    """
    lines: list[str] = []
    for f in fields(SoAState):
        va, vb = getattr(a, f.name), getattr(b, f.name)
        if va == vb:
            continue
        if isinstance(va, tuple) and isinstance(vb, tuple):
            if len(va) != len(vb):
                lines.append(
                    f"{f.name}: lengths differ ({len(va)} vs {len(vb)})"
                )
                continue
            for i, (ea, eb) in enumerate(zip(va, vb)):
                if ea != eb:
                    lines.append(f"{f.name}[{i}]: {ea!r} != {eb!r}")
                    break
        else:
            lines.append(f"{f.name}: {va!r} != {vb!r}")
    return lines


# ----------------------------------------------------------------------
# Test/driver helper
# ----------------------------------------------------------------------


def run_cycles(sim, cycles: int, start: int = 0) -> int:
    """Advance either backend's run-loop body for ``cycles`` cycles.

    Replays exactly what ``run()`` does per cycle — generation,
    injection, one network step — without the termination/progress
    machinery, so tests can stop a run mid-flight and hand the state to
    :func:`encode_state`.  Returns the next cycle index (pass it back
    as ``start`` to continue).
    """
    end = start + cycles
    if isinstance(sim, SoASimulator):
        total = sim.config.total_packets
        for cycle in range(start, end):
            if sim.generated < total:
                sim._generate(cycle)
            if sim.src_busy:
                for n in sorted(sim.src_busy):
                    sim._inject(n, cycle)
            sim._net_step(cycle)
    else:
        total = sim.config.total_packets
        for cycle in range(start, end):
            if sim._generated < total:
                sim._generate(cycle)
            for source in sim._source_list:
                if source.queue or source.current:
                    source.inject(sim.network, cycle)
            sim.network.step(cycle)
    return end
