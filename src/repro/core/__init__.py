"""Core simulation substrate: types, buffers, links, network, simulator."""

from repro.core.buffer import CREDIT_LATENCY, VirtualChannel
from repro.core.channel import LINK_DELAY, Channel
from repro.core.config import RouterConfig, SimulationConfig
from repro.core.network import Network
from repro.core.simulator import (
    DeadlockError,
    DrainTimeoutError,
    SimulationResult,
    Simulator,
    StrandedCensus,
    run_simulation,
)
from repro.core.statistics import ActivityCounters, ContentionCounters, StatsCollector
from repro.core.types import (
    CARDINALS,
    Direction,
    Flit,
    FlitType,
    NodeId,
    Packet,
    RoutingMode,
    is_worm_tail,
    make_packet_flits,
)

__all__ = [
    "ActivityCounters",
    "CARDINALS",
    "CREDIT_LATENCY",
    "Channel",
    "ContentionCounters",
    "DeadlockError",
    "Direction",
    "DrainTimeoutError",
    "Flit",
    "FlitType",
    "LINK_DELAY",
    "Network",
    "NodeId",
    "Packet",
    "RouterConfig",
    "RoutingMode",
    "SimulationConfig",
    "SimulationResult",
    "Simulator",
    "StatsCollector",
    "StrandedCensus",
    "VirtualChannel",
    "is_worm_tail",
    "make_packet_flits",
    "run_simulation",
]
