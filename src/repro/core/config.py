"""Simulation configuration objects.

A single :class:`SimulationConfig` captures everything the paper's
simulator is "fully parameterizable" over (Section 5.1): network size,
routing algorithm, VCs per port, buffer depth, injection rate and traffic
type, flit size and flits per packet, plus the warm-up / measurement
phases.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.types import RoutingMode


def parse_shards(value) -> tuple[int, int]:
    """Normalise a shard spec (``"2x2"``, ``(2, 2)``, ``[1, 2]``).

    Returns the ``(tiles_x, tiles_y)`` tuple; geometric feasibility
    (divisibility, minimum tile extents) is checked by the shard planner
    at run time, where the mesh dimensions are known to matter.
    """
    if isinstance(value, str):
        parts = value.lower().split("x")
        if len(parts) != 2:
            raise ValueError(f"shards spec {value!r} is not of the form 'WxH'")
        try:
            value = (int(parts[0]), int(parts[1]))
        except ValueError:
            raise ValueError(
                f"shards spec {value!r} is not of the form 'WxH'"
            ) from None
    try:
        tiles_x, tiles_y = value
        tiles_x, tiles_y = int(tiles_x), int(tiles_y)
    except (TypeError, ValueError):
        raise ValueError(f"shards spec {value!r} is not a (tiles_x, tiles_y) pair")
    if tiles_x < 1 or tiles_y < 1:
        raise ValueError(f"shards {tiles_x}x{tiles_y}: tile counts must be >= 1")
    return (tiles_x, tiles_y)


@dataclass
class RouterConfig:
    """Static structural parameters of one router instance.

    The defaults reproduce the paper's fairness setup (Section 5.4): the
    generic router uses 3 VCs x 4-flit buffers on 5 ports (60 flits); the
    4-port Path-Sensitive and RoCo routers use 3 VCs x 5-flit buffers on 4
    path sets (60 flits).  Router implementations override ``buffer_depth``
    accordingly via :meth:`for_architecture`.
    """

    vcs_per_port: int = 3
    buffer_depth: int = 4
    flit_width_bits: int = 128
    #: Ablation switch: use the Mirroring Effect allocator for RoCo's
    #: 2x2 crossbars (Section 3.3).  False falls back to a plain
    #: two-stage separable allocator with no maximal-matching guarantee.
    mirror_allocation: bool = True
    #: Ablation switch: look-ahead routing (Section 3.1).  False charges
    #: RoCo and Path-Sensitive head flits the same post-arrival RC cycle
    #: the generic router pays.
    lookahead_routing: bool = True

    @classmethod
    def for_architecture(cls, architecture: str, **overrides) -> "RouterConfig":
        """Paper-default configuration for a named architecture.

        ``architecture`` is one of ``"generic"``, ``"path_sensitive"``,
        ``"roco"``.  Keyword overrides win over the defaults.
        """
        depths = {"generic": 4, "path_sensitive": 5, "roco": 5}
        if architecture not in depths:
            raise ValueError(f"unknown architecture {architecture!r}")
        params = {"buffer_depth": depths[architecture]}
        params.update(overrides)
        return cls(**params)


@dataclass
class SimulationConfig:
    """Full description of one simulation run."""

    #: Network is ``width x height``; the paper evaluates an 8x8 mesh.
    width: int = 8
    height: int = 8
    #: "mesh" (the paper's evaluation) or "torus".  Torus support is
    #: implemented for the generic router under XY routing, using
    #: Dally-Seitz dateline VC classes to break the ring cycles; the
    #: RoCo/Path-Sensitive VC structures are defined by the paper for
    #: meshes only.
    topology: str = "mesh"
    router: str = "roco"
    routing: RoutingMode = RoutingMode.XY
    traffic: str = "uniform"
    #: Offered load in flits/node/cycle (the paper's x-axis unit).
    injection_rate: float = 0.1
    flits_per_packet: int = 4
    router_config: RouterConfig | None = None
    #: Packets injected before measurement starts (paper: 20,000).
    warmup_packets: int = 500
    #: Packets measured after warm-up (paper: 1,000,000).
    measure_packets: int = 3000
    #: Hard ceiling on simulated cycles (guards faulty-network runs, where
    #: the paper stops after "twice the fault-free completion time").
    max_cycles: int = 200_000
    #: Cycles a head flit may stall against a dead resource before its
    #: packet is discarded (faulty networks only).
    fault_drop_timeout: int = 200
    #: Cycles of network-wide inactivity after the last injection that end
    #: the run early (drain detection).
    drain_timeout: int = 2_000
    seed: int = 1
    #: Opt-in runtime invariant auditing (repro.audit): per-cycle checks
    #: of flit conservation, credit accounting, wormhole ordering,
    #: allocation legality and flit location continuity.  Off by default —
    #: the hot path then pays nothing beyond an ``is not None`` check.
    audit: bool = False
    #: Execution backend: ``"object"`` is the reference per-flit object
    #: model; ``"soa"`` is the struct-of-arrays fast path
    #: (``repro.core.soa``), bit-identical on its supported envelope and
    #: raising ``BackendUnsupportedError`` outside it (see
    #: docs/vectorized-core.md).
    backend: str = "object"
    #: Tile the mesh into ``(tiles_x, tiles_y)`` rectangles, each
    #: simulated by its own worker process exchanging boundary flits and
    #: credits once per cycle (repro.harness.sharded); bit-identical to
    #: the single-process reference on its envelope.  Accepts a tuple or
    #: a ``"2x2"`` string; None (default) and ``(1, 1)`` run in-process.
    shards: tuple[int, int] | None = None

    def __post_init__(self) -> None:
        if self.router_config is None:
            self.router_config = RouterConfig.for_architecture(self.router)
        if isinstance(self.routing, str):
            self.routing = RoutingMode(self.routing)
        if self.width < 2 or self.height < 2:
            raise ValueError("mesh must be at least 2x2")
        if not 0.0 <= self.injection_rate <= 1.0:
            raise ValueError("injection rate must be within [0, 1] flits/node/cycle")
        if self.flits_per_packet < 1:
            raise ValueError("packets need at least one flit")
        if self.measure_packets < 1:
            # A run that can never start measurement would report vacuous
            # statistics (zero injected packets); reject it up front.
            raise ValueError("measure_packets must be >= 1")
        if self.warmup_packets < 0:
            raise ValueError("warmup_packets must be >= 0")
        if self.backend not in ("object", "soa"):
            raise ValueError(f"unknown backend {self.backend!r}")
        if self.shards is not None:
            self.shards = parse_shards(self.shards)
        if self.topology not in ("mesh", "torus"):
            raise ValueError(f"unknown topology {self.topology!r}")
        if self.topology == "torus":
            if self.router != "generic" or self.routing is not RoutingMode.XY:
                raise ValueError(
                    "torus support requires router='generic' with XY routing "
                    "(dateline VC classes; see docs/modeling-notes.md)"
                )
            if self.width < 3 or self.height < 3:
                raise ValueError("a torus needs at least 3 nodes per ring")

    @property
    def num_nodes(self) -> int:
        return self.width * self.height

    @property
    def total_packets(self) -> int:
        return self.warmup_packets + self.measure_packets

    @property
    def packet_injection_rate(self) -> float:
        """Per-node packet generation probability per cycle."""
        return self.injection_rate / self.flits_per_packet
