"""The 2D-mesh network: router grid, link phases and delivery bookkeeping.

The network advances all routers through the per-cycle phase order of
Section 5.1 of DESIGN.md: link delivery, switch traversal, allocation.
It also owns the run-wide statistics collector and the fault registry.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.core.config import SimulationConfig
from repro.core.statistics import StatsCollector
from repro.core.topology import make_topology
from repro.core.types import Direction, Flit, NodeId, Packet, is_worm_tail
from repro.routing import make_routing

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.routers.base import BaseRouter


class Network:
    """A ``width x height`` mesh of homogeneous routers."""

    def __init__(self, config: SimulationConfig) -> None:
        from repro.routers import make_router  # local import: cycle guard

        self.config = config
        self.topology = make_topology(config.topology, config.width, config.height)
        self.routing = make_routing(config.routing)
        self.routing.topology = self.topology
        self.stats = StatsCollector(num_nodes=config.num_nodes)
        self.cycle = 0
        self.has_faults = False
        self.routers: dict[NodeId, "BaseRouter"] = {}
        for y in range(config.height):
            for x in range(config.width):
                node = NodeId(x, y)
                self.routers[node] = make_router(config.router, node, self)
        self._router_list = list(self.routers.values())
        #: Set by the simulator: callbacks fired on packet completion.
        self.on_packet_delivered = None
        self.on_packet_dropped = None
        #: Optional FlightRecorder (repro.instrumentation.trace); when
        #: attached, routers emit per-flit events.
        self.trace = None

    # ------------------------------------------------------------------
    # Topology
    # ------------------------------------------------------------------

    def in_mesh(self, node: NodeId) -> bool:
        return self.topology.contains(node)

    def neighbor_of(self, node: NodeId, direction: Direction) -> NodeId | None:
        """The adjacent node in ``direction`` (wrap-aware), or None."""
        return self.topology.neighbor(node, direction)

    def router_at(self, node: NodeId) -> "BaseRouter":
        return self.routers[node]

    @property
    def nodes(self) -> list[NodeId]:
        return list(self.routers)

    def wire(self) -> None:
        """Finalise neighbour wiring; call after fault injection."""
        for router in self._router_list:
            router.wire()

    # ------------------------------------------------------------------
    # Cycle advance
    # ------------------------------------------------------------------

    def step(self, cycle: int) -> None:
        """Run one cycle's phases for every router."""
        self.cycle = cycle
        for router in self._router_list:
            router.deliver_incoming(cycle)
        for router in self._router_list:
            router.traverse(cycle)
        for router in self._router_list:
            router.allocate(cycle)
        self.stats.tick()

    # ------------------------------------------------------------------
    # Delivery and dropping
    # ------------------------------------------------------------------

    def eject(self, flit: Flit, node: NodeId, cycle: int, early: bool) -> None:
        """Consume a flit at its destination PE."""
        packet = flit.packet
        if packet.dropped_cycle is not None:
            return
        if early:
            self.stats.activity.early_ejections += 1
        if self.trace is not None:
            from repro.instrumentation.trace import EventKind

            self.trace.record(cycle, EventKind.EJECT, flit, node,
                              "early" if early else "via crossbar")
        packet.flits_delivered += 1
        self.stats.flit_delivered(packet.measured)
        if is_worm_tail(flit):
            packet.delivered_cycle = cycle
            self.stats.packet_delivered(
                packet,
                packet.measured,
                hops=self.topology.distance(packet.src, packet.dest),
            )
            if self.on_packet_delivered is not None:
                self.on_packet_delivered(packet)

    def drop_packet(self, packet: Packet, cycle: int) -> None:
        """Abort a worm network-wide (fault-timeout discard, Section 4.1)."""
        if packet.dropped_cycle is not None or packet.delivered_cycle is not None:
            return
        packet.dropped_cycle = cycle
        for router in self._router_list:
            router.purge_packet(packet.pid, cycle)
        self.stats.packet_dropped(packet, packet.measured)
        if self.on_packet_dropped is not None:
            self.on_packet_dropped(packet)

    # ------------------------------------------------------------------
    # Fault-awareness queries (handshake-signal knowledge, Section 4.1)
    # ------------------------------------------------------------------

    def can_transit(self, node: NodeId, direction: Direction) -> bool:
        """Whether ``node`` can currently forward traffic towards ``direction``."""
        router = self.routers[node]
        if router.dead:
            return False
        module_for = getattr(router, "module_for", None)
        if module_for is not None and direction is not Direction.LOCAL:
            return not module_for(direction).dead
        return True

    def node_blocked(self, node: NodeId) -> bool:
        """Conservative per-node health used by XY-YX variant selection."""
        router = self.routers[node]
        if router.dead:
            return True
        modules = getattr(router, "modules", None)
        if modules is not None:
            return any(m.dead for m in modules.values())
        return False
