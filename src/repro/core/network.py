"""The 2D-mesh network: router grid, link phases and delivery bookkeeping.

The network advances routers through the per-cycle phase order of
Section 5.1 of DESIGN.md: link delivery, switch traversal, allocation.
It also owns the run-wide statistics collector and the fault registry.

By default stepping is *activity-driven*: only routers in the active set
— those holding flits or owing a switch traversal — run their phases.
Dormant routers are woken by source injections (immediately, the same
cycle) and by neighbour link launches (via a timed wake scheduled for
the flit's arrival cycle, so receivers sleep through the wire delay).
The ``full_sweep=True`` escape hatch restores the original
step-every-router schedule; both produce bit-identical simulation
results (see docs/activity-scheduling.md and
tests/test_activity_scheduler.py).
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.core.config import SimulationConfig
from repro.core.statistics import StatsCollector
from repro.core.topology import make_topology
from repro.core.types import Direction, DropReason, Flit, NodeId, Packet, is_worm_tail
from repro.routing import make_routing

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.routers.base import BaseRouter


class Network:
    """A ``width x height`` mesh of homogeneous routers."""

    def __init__(self, config: SimulationConfig, full_sweep: bool = False) -> None:
        from repro.routers import make_router  # local import: cycle guard

        self.config = config
        self.topology = make_topology(config.topology, config.width, config.height)
        self.routing = make_routing(config.routing)
        self.routing.topology = self.topology
        self.stats = StatsCollector(num_nodes=config.num_nodes)
        self.cycle = 0
        self.has_faults = False
        #: True once :meth:`wire` ran; static fault injection must happen
        #: before, runtime injection (repro.faults.runtime) after.
        self.wired = False
        #: Escape hatch: step every router every cycle (the pre-activity
        #: schedule), used to differentially validate the active-set path.
        self.full_sweep = full_sweep
        self.stats.scheduler.full_sweep = full_sweep
        self.routers: dict[NodeId, "BaseRouter"] = {}
        self._build_routers(make_router)
        self._router_list = list(self.routers.values())
        #: Timed wakes: cycle -> routers that must rejoin the active set
        #: at that cycle (a flit launched towards them lands then).
        self._wake_queue: dict[int, list["BaseRouter"]] = {}
        #: Set by the simulator: callbacks fired on packet completion.
        self.on_packet_delivered = None
        self.on_packet_dropped = None
        #: Optional FlightRecorder (repro.instrumentation.trace); when
        #: attached, routers emit per-flit events.
        self.trace = None
        #: Optional observer ``(cycle, stepped_routers)`` fired at the end
        #: of every cycle with the routers that were actually stepped —
        #: consumed by instrumentation probes and the scheduler tests.
        self.on_cycle_stepped = None
        #: Lazily-built routing-aware reachability map (cold paths only).
        self._reachability = None

    def _build_routers(self, make_router) -> None:
        """Instantiate the router grid in row-major order.

        Overridden by the sharded tile engine (repro.core.shard), which
        builds only its rectangle plus a one-deep ghost halo.
        """
        config = self.config
        for y in range(config.height):
            for x in range(config.width):
                node = NodeId(x, y)
                self.routers[node] = make_router(config.router, node, self)

    # ------------------------------------------------------------------
    # Topology
    # ------------------------------------------------------------------

    def in_mesh(self, node: NodeId) -> bool:
        return self.topology.contains(node)

    def neighbor_of(self, node: NodeId, direction: Direction) -> NodeId | None:
        """The adjacent node in ``direction`` (wrap-aware), or None."""
        return self.topology.neighbor(node, direction)

    def router_at(self, node: NodeId) -> "BaseRouter":
        return self.routers[node]

    @property
    def nodes(self) -> list[NodeId]:
        return list(self.routers)

    def wire(self) -> None:
        """Finalise neighbour wiring; call after static fault injection."""
        for router in self._router_list:
            router.wire()
        self.wired = True

    def refresh_handshake(self, node: NodeId) -> None:
        """Recompute dead-port handshake state around ``node``.

        After a runtime fault (or recovery) changes what ``node`` can
        accept, its own outward view and every neighbour port pointing at
        it must be re-evaluated — the same computation :meth:`wire`
        performs, but scoped to one router's neighbourhood.
        """
        from repro.core.types import CARDINALS

        router = self.routers[node]
        for port in router.outputs.values():
            if port.downstream is not None:
                port.dead = not port.downstream.accepting(port.input_dir)
        for direction in CARDINALS:
            neighbor = self.neighbor_of(node, direction)
            if neighbor is None:
                continue
            back = self.routers[neighbor].outputs.get(direction.opposite)
            if back is not None and back.downstream is router:
                back.dead = not router.accepting(back.input_dir)

    # ------------------------------------------------------------------
    # Cycle advance
    # ------------------------------------------------------------------

    def schedule_wake(
        self, router: "BaseRouter", input_dir: Direction, cycle: int
    ) -> None:
        """Wake ``router`` at the start of ``cycle`` — a flit lands then
        on its ``input_dir`` link, so only that link needs draining.

        Launching is the one wake source that can be deferred: a flit
        spends the link delay on the wire, during which its receiver has
        nothing to do.  The full-sweep reference path skips the queue
        entirely — every router is stepped anyway, and keeping the
        reference free of scheduler bookkeeping keeps its cost equal to
        the original seed's.
        """
        if self.full_sweep:
            return
        bucket = self._wake_queue.get(cycle)
        if bucket is None:
            self._wake_queue[cycle] = [(router, input_dir)]
        else:
            bucket.append((router, input_dir))

    def step(self, cycle: int) -> None:
        """Run one cycle's phases for every *active* router.

        Timed wakes due this cycle are applied first, then the active
        list is frozen in router-creation (row-major) order — the same
        relative order the full sweep uses, which keeps cross-router
        arbitration (competing VC claims on a shared downstream)
        bit-identical between the two schedulers.  Source injections
        wake routers before ``step`` runs (the simulator generates
        traffic first), so a router injected into this cycle allocates
        this cycle, exactly as under the full sweep.
        """
        self.cycle = cycle
        if self.full_sweep:
            stepped = self._router_list
        else:
            due = self._wake_queue.pop(cycle, None)
            if due is not None:
                for router, input_dir in due:
                    if router._deliver_due != cycle:
                        router._deliver_due = cycle
                        router._due_dirs = [input_dir]
                    else:
                        router._due_dirs.append(input_dir)
                    router.wake()
            stepped = [r for r in self._router_list if r.active]
        scheduler = self.stats.scheduler
        scheduler.cycles += 1
        scheduler.router_steps += len(stepped)
        scheduler.router_slots += len(self._router_list)
        if self.full_sweep:
            for router in stepped:
                router.steps_taken += 1
                router.deliver_incoming(cycle)
        else:
            # Every in-flight flit scheduled a wake for its landing cycle
            # naming the link it lands on, so only routers in this cycle's
            # wake bucket can have arrivals — and only on their due links.
            for router in stepped:
                router.steps_taken += 1
                if router._deliver_due == cycle:
                    router.deliver_due(cycle)
        for router in stepped:
            router.traverse(cycle)
        for router in stepped:
            router.allocate(cycle)
        if not self.full_sweep:
            # Ground-truth drain check after all phases: anything a
            # purge or refund changed mid-cycle is re-inspected here.
            for router in stepped:
                if router.quiescent():
                    router.active = False
                    scheduler.sleeps += 1
        if self.on_cycle_stepped is not None:
            self.on_cycle_stepped(cycle, stepped)
        self.stats.tick()

    # ------------------------------------------------------------------
    # Delivery and dropping
    # ------------------------------------------------------------------

    def eject(self, flit: Flit, node: NodeId, cycle: int, early: bool) -> None:
        """Consume a flit at its destination PE."""
        packet = flit.packet
        if packet.dropped_cycle is not None:
            return
        if early:
            self.stats.activity.early_ejections += 1
        if self.trace is not None:
            from repro.instrumentation.trace import EventKind

            self.trace.record(cycle, EventKind.EJECT, flit, node,
                              "early" if early else "via crossbar")
        packet.flits_delivered += 1
        self.stats.flit_delivered(packet.measured)
        if flit.closes_worm:
            packet.delivered_cycle = cycle
            # Report the links the head actually crossed; a detour (e.g.
            # around a fault) makes this exceed the minimal distance.
            self.stats.packet_delivered(packet, packet.measured, hops=packet.hops)
            if self.on_packet_delivered is not None:
                self.on_packet_delivered(packet)

    def drop_packet(
        self,
        packet: Packet,
        cycle: int,
        reason: DropReason = DropReason.UNSPECIFIED,
    ) -> None:
        """Abort a worm network-wide (fault-timeout discard, Section 4.1)."""
        if packet.dropped_cycle is not None or packet.delivered_cycle is not None:
            return
        packet.dropped_cycle = cycle
        packet.drop_reason = reason
        for router in self._router_list:
            router.purge_packet(packet.pid, cycle)
        self.stats.packet_dropped(packet, packet.measured, reason)
        if self.on_packet_dropped is not None:
            self.on_packet_dropped(packet)

    # ------------------------------------------------------------------
    # Fault-awareness queries (handshake-signal knowledge, Section 4.1)
    # ------------------------------------------------------------------

    @property
    def reachability(self):
        """Routing-aware reachability queries (built on first use)."""
        if self._reachability is None:
            from repro.faults.reachability import ReachabilityMap

            self._reachability = ReachabilityMap(self)
        return self._reachability

    def invalidate_reachability(self) -> None:
        """Forget memoised reachability after a topology change."""
        if self._reachability is not None:
            self._reachability.invalidate()

    def can_transit(self, node: NodeId, direction: Direction) -> bool:
        """Whether ``node`` can currently forward traffic towards ``direction``."""
        router = self.routers[node]
        if router.dead:
            return False
        module_for = getattr(router, "module_for", None)
        if module_for is not None and direction is not Direction.LOCAL:
            return not module_for(direction).dead
        return True

    def node_blocked(self, node: NodeId) -> bool:
        """Conservative per-node health used by XY-YX variant selection."""
        router = self.routers[node]
        if router.dead:
            return True
        modules = getattr(router, "modules", None)
        if modules is not None:
            return any(m.dead for m in modules.values())
        return False
