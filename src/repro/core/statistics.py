"""Simulation statistics: latency, throughput, completion, activity.

The collector distinguishes a *warm-up* phase from the *measurement* phase
exactly like the paper (Section 5.4): only packets created after warm-up
contribute to latency and completion statistics, but activity counters for
the energy model run over the measurement window of cycles.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.types import DropReason, Packet


@dataclass
class ActivityCounters:
    """Per-network component activity, consumed by the energy model.

    Each field counts events whose energy cost the profile defines:
    buffer writes/reads (per flit), crossbar traversals (per flit),
    VA allocation attempts, SA arbitration requests, link flit
    traversals and early ejections.
    """

    buffer_writes: int = 0
    buffer_reads: int = 0
    crossbar_traversals: int = 0
    va_requests: int = 0
    sa_requests: int = 0
    link_flits: int = 0
    early_ejections: int = 0

    def merged(self, other: "ActivityCounters") -> "ActivityCounters":
        return ActivityCounters(
            buffer_writes=self.buffer_writes + other.buffer_writes,
            buffer_reads=self.buffer_reads + other.buffer_reads,
            crossbar_traversals=self.crossbar_traversals + other.crossbar_traversals,
            va_requests=self.va_requests + other.va_requests,
            sa_requests=self.sa_requests + other.sa_requests,
            link_flits=self.link_flits + other.link_flits,
            early_ejections=self.early_ejections + other.early_ejections,
        )


@dataclass
class SchedulerCounters:
    """Activity-driven scheduler bookkeeping (see docs/activity-scheduling.md).

    ``router_steps`` counts routers actually advanced through the
    pipeline phases; ``router_slots`` counts the router-cycles a full
    sweep would have spent (``num_routers x cycles``).  Their ratio is
    the scheduler's *duty cycle* — the fraction of per-router work the
    active-set scheduler could not avoid.  Under ``full_sweep=True``
    the two counters are equal by construction.
    """

    cycles: int = 0
    router_steps: int = 0
    router_slots: int = 0
    wakeups: int = 0
    sleeps: int = 0
    full_sweep: bool = False

    @property
    def duty_cycle(self) -> float:
        """Stepped router-cycles / available router-cycles, in [0, 1]."""
        if not self.router_slots:
            return 0.0
        return self.router_steps / self.router_slots

    @property
    def skipped_router_cycles(self) -> int:
        """Router-cycles the active-set scheduler never had to run."""
        return self.router_slots - self.router_steps


@dataclass
class ContentionCounters:
    """Crossbar-input contention bookkeeping for Figure 3.

    A request *contends* when, in the same cycle, another input requests
    the same output port.  Row/column classification follows the paper:
    requests issued by East/West inputs are row requests, North/South are
    column requests.
    """

    row_requests: int = 0
    row_contended: int = 0
    column_requests: int = 0
    column_contended: int = 0

    @property
    def row_probability(self) -> float:
        return self.row_contended / self.row_requests if self.row_requests else 0.0

    @property
    def column_probability(self) -> float:
        return (
            self.column_contended / self.column_requests
            if self.column_requests
            else 0.0
        )

    @property
    def overall_probability(self) -> float:
        total = self.row_requests + self.column_requests
        if not total:
            return 0.0
        return (self.row_contended + self.column_contended) / total


class StatsCollector:
    """Aggregates everything a run reports.

    ``measuring`` is toggled by the simulator once warm-up completes;
    packet-level statistics only count measured packets (those created
    while ``measuring`` is True).
    """

    def __init__(self, num_nodes: int = 1) -> None:
        self.num_nodes = num_nodes
        self.measuring = False
        self.measure_start_cycle: int | None = None
        self.latencies: list[int] = []
        self.hops: list[int] = []
        self.injected_packets = 0
        self.delivered_packets = 0
        self.dropped_packets = 0
        self.delivered_flits = 0
        #: Conservation totals over *all* packets (warm-up included), so
        #: generated == total_delivered + total_dropped + in-flight holds
        #: regardless of the measurement window.
        self.total_delivered = 0
        self.total_dropped = 0
        self.drops_by_reason: dict[DropReason, int] = {}
        self.activity = ActivityCounters()
        self.contention = ContentionCounters()
        self.scheduler = SchedulerCounters()
        self.measured_cycles = 0

    # -- phase control ----------------------------------------------------

    def start_measurement(self, cycle: int) -> None:
        self.measuring = True
        self.measure_start_cycle = cycle

    def tick(self) -> None:
        if self.measuring:
            self.measured_cycles += 1

    # -- packet events ----------------------------------------------------

    def packet_created(self, packet: Packet) -> bool:
        """Record a new packet; returns True when it is a measured packet."""
        if self.measuring:
            self.injected_packets += 1
            return True
        return False

    def packet_delivered(
        self, packet: Packet, measured: bool, hops: int | None = None
    ) -> None:
        self.total_delivered += 1
        if measured:
            self.delivered_packets += 1
            self.latencies.append(packet.latency)
            if hops is None:
                # Fall back to the traversals counted on the packet, not
                # the Manhattan distance — a detoured or wrap-routed
                # packet's real hop count differs from |dx| + |dy|.
                hops = packet.hops
            self.hops.append(hops)

    def packet_dropped(
        self, packet: Packet, measured: bool, reason: DropReason | None = None
    ) -> None:
        if reason is None:
            reason = packet.drop_reason or DropReason.UNSPECIFIED
        self.total_dropped += 1
        self.drops_by_reason[reason] = self.drops_by_reason.get(reason, 0) + 1
        if measured:
            self.dropped_packets += 1

    def flit_delivered(self, measured: bool) -> None:
        if measured:
            self.delivered_flits += 1

    # -- derived metrics --------------------------------------------------

    @property
    def average_latency(self) -> float:
        if not self.latencies:
            return 0.0
        return sum(self.latencies) / len(self.latencies)

    @property
    def max_latency(self) -> int:
        return max(self.latencies) if self.latencies else 0

    @property
    def average_hops(self) -> float:
        return sum(self.hops) / len(self.hops) if self.hops else 0.0

    @property
    def measurement_started(self) -> bool:
        """Whether any packet was injected during the measurement phase.

        False means every packet-level metric below is vacuous — e.g. the
        run ended before warm-up completed — and must not be read as a
        perfect result.
        """
        return self.injected_packets > 0

    @property
    def completion_probability(self) -> float:
        """Received / injected — the paper's fault-tolerance metric.

        With zero injected packets nothing was proven delivered, so this
        reports 0.0 (fail-safe) rather than a vacuous perfect 1.0;
        :attr:`measurement_started` distinguishes "no traffic measured"
        from "all measured traffic lost".
        """
        if not self.injected_packets:
            return 0.0
        return self.delivered_packets / self.injected_packets

    @property
    def throughput_flits_per_node_cycle(self) -> float:
        """Accepted traffic rate over the measurement window."""
        if not self.measured_cycles:
            return 0.0
        return self.delivered_flits / self.measured_cycles / max(1, self.num_nodes)

    def summary(self) -> dict:
        """Plain-dict snapshot used by the harness and reports.

        ``measurement_started`` makes the zero-injected case explicit:
        when False, the packet-level entries describe an empty sample.
        """
        return {
            "average_latency": self.average_latency,
            "average_hops": self.average_hops,
            "injected_packets": self.injected_packets,
            "delivered_packets": self.delivered_packets,
            "dropped_packets": self.dropped_packets,
            "completion_probability": self.completion_probability,
            "measured_cycles": self.measured_cycles,
            "measurement_started": self.measurement_started,
        }
