"""Inter-router channels: flit links and credit wires.

Link propagation takes a single clock cycle (Section 5.1 of the paper).
Combined with the one-cycle switch traversal stage, a payload launched
during cycle ``c`` becomes visible to the receiving router at cycle
``c + 2`` — i.e. the receiver can include it in its *allocation* phase two
cycles after the sender's ST stage, giving the canonical 3-cycle per-hop
latency of a two-stage router with single-cycle links.
"""

from __future__ import annotations

from collections import deque
from typing import Generic, TypeVar

T = TypeVar("T")

#: Cycles between a payload being launched (during switch traversal) and it
#: being usable at the receiver: 1 for the ST cycle itself + 1 on the wire.
LINK_DELAY = 2


class Channel(Generic[T]):
    """A point-to-point wire with fixed delay and unit per-cycle bandwidth.

    One payload may be launched per cycle (a link is one flit wide).  The
    credit network reuses the same class but allows multiple credits per
    cycle (each VC has its own credit wire in hardware).
    """

    __slots__ = ("delay", "_in_flight", "single_lane", "sends")

    def __init__(self, delay: int = LINK_DELAY, single_lane: bool = True) -> None:
        self.delay = delay
        self.single_lane = single_lane
        self._in_flight: deque[tuple[int, T]] = deque()
        #: Lifetime payload count; instrumentation reads this to compute
        #: per-link utilisation without touching the hot path.
        self.sends = 0

    def send(self, payload: T, cycle: int) -> None:
        """Launch ``payload`` during ``cycle``; it arrives at cycle + delay."""
        arrival = cycle + self.delay
        if self.single_lane and self._in_flight and self._in_flight[-1][0] >= arrival:
            raise RuntimeError(
                "link bandwidth exceeded: two flits launched in one cycle"
            )
        self._in_flight.append((arrival, payload))
        self.sends += 1

    def deliver(self, cycle: int) -> list[T]:
        """Pop every payload whose arrival time is ``<= cycle``."""
        arrived: list[T] = []
        while self._in_flight and self._in_flight[0][0] <= cycle:
            arrived.append(self._in_flight.popleft()[1])
        return arrived

    @property
    def busy(self) -> bool:
        """Payloads still on the wire — the receiver must stay awake."""
        return bool(self._in_flight)

    def pending(self) -> list[T]:
        """Snapshot of payloads still on the wire (runtime fault scans)."""
        return [payload for _, payload in self._in_flight]

    def __len__(self) -> int:
        return len(self._in_flight)
