"""Per-tile execution engine for sharded mesh simulation.

A sharded run (repro.harness.sharded, docs/sharded-scaling.md) splits
the mesh into rectangular tiles, each stepped by its own
:class:`TileSimulator`.  Tiles never share object state; everything that
crosses a tile boundary travels as plain-tuple messages routed by the
coordinator once per phase:

* **flit messages** — flits launched onto a boundary link during switch
  traversal.  The 2-cycle link delay (``LINK_DELAY``) is the
  conservative lookahead horizon: a flit launched during cycle ``t``
  cannot be observed by its receiver before ``t + 2``, so shipping it
  with the end-of-cycle exchange always arrives in time.
* **VC mirror deltas** — each virtual channel adjacent to a cut is
  *authoritative* on the tile that owns its router and *mirrored* (on a
  ghost router) on the one neighbouring tile whose routers arbitrate
  for it.  Owner claims/releases, slot reservations and credit releases
  are harvested as per-phase diffs and applied on the peer before its
  next allocate phase, reproducing the reference's same-cycle
  visibility order exactly (see the wave ordering in the harness).

The cycle is split at the same point :meth:`Network.step` is phased:
``step_front`` runs delivery + switch traversal (whose cross-tile
effects have the 2-cycle lookahead), ``step_alloc`` runs allocation
(whose cross-tile effects are ordered by the coordinator's tile DAG).
Both halves together are line-for-line the reference ``step``, so a
1x1-tiled run *is* the reference run.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

from repro.core.buffer import CREDIT_LATENCY
from repro.core.config import SimulationConfig
from repro.core.network import Network
from repro.core.simulator import Source
from repro.core.types import CARDINALS, Direction, Flit, FlitType, NodeId, Packet
from repro.routers.base import EJECT

#: Wire encoding of the EJECT pseudo-target in flit messages.
EJECT_HINT = -1


class ShardProtocolError(RuntimeError):
    """A cross-tile message stream violated the sharding protocol.

    Raised for transitions that are impossible in a fault-free run
    (credit refunds, conflicting owner claims, flits below the
    lookahead horizon) — always a bug in the sharding layer, never a
    property of the simulated workload.
    """


@dataclass(frozen=True)
class TileRect:
    """Half-open rectangle of mesh nodes ``[x0, x1) x [y0, y1)``."""

    x0: int
    y0: int
    x1: int
    y1: int

    @property
    def width(self) -> int:
        return self.x1 - self.x0

    @property
    def height(self) -> int:
        return self.y1 - self.y0

    def contains(self, node: NodeId) -> bool:
        return self.x0 <= node.x < self.x1 and self.y0 <= node.y < self.y1

    def nodes(self) -> list[NodeId]:
        return [
            NodeId(x, y)
            for y in range(self.y0, self.y1)
            for x in range(self.x0, self.x1)
        ]

    def __str__(self) -> str:  # pragma: no cover - repr sugar
        return f"[{self.x0},{self.x1})x[{self.y0},{self.y1})"


class TileNetwork(Network):
    """A :class:`Network` restricted to one tile plus a ghost halo.

    Routers inside the rectangle are real: they are wired, stepped and
    counted exactly like the reference.  Each off-tile neighbour of a
    boundary router exists as a *ghost*: a fully-constructed router of
    the same architecture that is never wired and never stepped.  Ghosts
    give boundary routers authentic downstream state to arbitrate
    against — their VCs are the mirrors the coordinator keeps in sync —
    and their output links carry remotely-launched flits into the tile.
    """

    def __init__(
        self, config: SimulationConfig, rect: TileRect, full_sweep: bool = False
    ) -> None:
        self.rect = rect
        self.ghosts: dict[NodeId, object] = {}
        super().__init__(config, full_sweep=full_sweep)
        #: Routers stepped by the current cycle's front half, consumed
        #: by the alloc half (the reference freezes this list once).
        self._stepped: list = []
        #: Cumulative flits consumed at this tile's PEs (either phase),
        #: reported to the coordinator's conservation ledger.
        self.ejected_flits = 0

    def _build_routers(self, make_router) -> None:
        rect = self.rect
        for y in range(rect.y0, rect.y1):
            for x in range(rect.x0, rect.x1):
                node = NodeId(x, y)
                self.routers[node] = make_router(self.config.router, node, self)
        for node in list(self.routers):
            for direction in CARDINALS:
                neighbor = self.neighbor_of(node, direction)
                if (
                    neighbor is None
                    or rect.contains(neighbor)
                    or neighbor in self.ghosts
                ):
                    continue
                ghost = make_router(self.config.router, neighbor, self)
                ghost._shard_ghost = True
                self.ghosts[neighbor] = ghost

    def router_at(self, node: NodeId):
        router = self.routers.get(node)
        if router is not None:
            return router
        return self.ghosts[node]

    def schedule_wake(self, router, input_dir: Direction, cycle: int) -> None:
        # A boundary router launching towards a ghost must not enqueue
        # a wake for it: ghosts are never stepped, and their egress
        # links are drained by the coordinator exchange instead.
        if getattr(router, "_shard_ghost", False):
            return
        super().schedule_wake(router, input_dir, cycle)

    def eject(self, flit: Flit, node: NodeId, cycle: int, early: bool) -> None:
        self.ejected_flits += 1
        super().eject(flit, node, cycle, early)

    # ------------------------------------------------------------------
    # The reference step(), split at the traversal/allocation seam
    # ------------------------------------------------------------------

    def step_front(self, cycle: int) -> None:
        """Wake processing, link delivery and switch traversal."""
        self.cycle = cycle
        if self.full_sweep:
            stepped = self._router_list
        else:
            due = self._wake_queue.pop(cycle, None)
            if due is not None:
                for router, input_dir in due:
                    if router._deliver_due != cycle:
                        router._deliver_due = cycle
                        router._due_dirs = [input_dir]
                    else:
                        router._due_dirs.append(input_dir)
                    router.wake()
            stepped = [r for r in self._router_list if r.active]
        scheduler = self.stats.scheduler
        scheduler.cycles += 1
        scheduler.router_steps += len(stepped)
        scheduler.router_slots += len(self._router_list)
        if self.full_sweep:
            for router in stepped:
                router.steps_taken += 1
                router.deliver_incoming(cycle)
        else:
            for router in stepped:
                router.steps_taken += 1
                if router._deliver_due == cycle:
                    router.deliver_due(cycle)
        for router in stepped:
            router.traverse(cycle)
        self._stepped = stepped

    def step_alloc(self, cycle: int) -> None:
        """Allocation, quiescence sleep and end-of-cycle bookkeeping."""
        stepped = self._stepped
        for router in stepped:
            router.allocate(cycle)
        if not self.full_sweep:
            scheduler = self.stats.scheduler
            for router in stepped:
                if router.quiescent():
                    router.active = False
                    scheduler.sleeps += 1
        if self.on_cycle_stepped is not None:
            self.on_cycle_stepped(cycle, stepped)
        self.stats.tick()


class _MirrorBinding:
    """One cut-adjacent VC and its synchronization bookkeeping."""

    __slots__ = ("vc", "addr", "peer", "authoritative", "_owner_snap",
                 "_avail_snap", "_release_cycle", "_release_sent")

    def __init__(self, vc, addr, peer, authoritative):
        self.vc = vc
        #: ``(node_x, node_y, position in router.all_vcs())`` — the
        #: address both sides resolve against their own router objects.
        self.addr = addr
        self.peer = peer
        self.authoritative = authoritative
        self._owner_snap = None
        self._avail_snap = 0
        self._release_cycle = -1
        self._release_sent = 0


def _box(out: dict, peer: int) -> dict:
    inbox = out.get(peer)
    if inbox is None:
        inbox = {"flits": [], "owner": [], "reserve": [], "release": []}
        out[peer] = inbox
    return inbox


class TileSimulator:
    """Drives one tile of a sharded run, one phase at a time.

    The coordinator calls :meth:`front` (generation + injection +
    delivery + traversal) on every tile, routes the returned deltas,
    then calls :meth:`alloc` tile-by-tile in DAG order with each tile's
    accumulated inbox.  All remote state lands *between* the local
    phase brackets, so the per-phase diffs never echo remote events
    back to their origin.
    """

    def __init__(
        self,
        config: SimulationConfig,
        rects: list[tuple[int, int, int, int]],
        tile_index: int,
        schedule: list[tuple],
        measure_start_cycle: int | None,
        full_sweep: bool = False,
    ) -> None:
        self.config = config
        self.tile_index = tile_index
        self._rects = [TileRect(*r) for r in rects]
        rect = self._rects[tile_index]
        self.rect = rect
        self.network = TileNetwork(config, rect, full_sweep=full_sweep)
        self.network.wire()
        self.sources = {
            node: Source(node, router)
            for node, router in self.network.routers.items()
        }
        self._source_list = list(self.sources.values())
        #: pid -> Packet for every packet this tile has seen; keeps worm
        #: identity stable when body flits arrive after their head.
        self.registry: dict[int, Packet] = {}
        #: (cycle, x, y, pid, dest_x, dest_y, yx_first, measured) in
        #: global creation order, restricted to this tile's sources.
        self.schedule = deque(schedule)
        self.measure_start_cycle = measure_start_cycle
        #: Cumulative count of flit messages applied, for the ledger.
        self.flits_applied = 0
        self._bindings: list[_MirrorBinding] = []
        self._build_bindings()
        self._addr_of = {id(b.vc): b.addr for b in self._bindings}
        self._egress = self._build_egress()
        self._vc_cache: dict[tuple, object] = {}

    # ------------------------------------------------------------------
    # Boundary discovery
    # ------------------------------------------------------------------

    def _tile_of(self, node: NodeId) -> int:
        for index, rect in enumerate(self._rects):
            if rect.contains(node):
                return index
        raise ShardProtocolError(f"node {node} outside every tile")

    def _build_bindings(self) -> None:
        rect = self.rect
        bound: set[int] = set()
        for node, router in self.network.routers.items():
            for direction in CARDINALS:
                neighbor = self.network.neighbor_of(node, direction)
                if neighbor is None or rect.contains(neighbor):
                    continue
                # VCs of ours admitting flits from the off-tile
                # neighbour: claimed/reserved by its tile's routers.
                self._bind(router, direction, self._tile_of(neighbor),
                           authoritative=True, bound=bound)
        for node, ghost in self.network.ghosts.items():
            peer = self._tile_of(node)
            for direction in CARDINALS:
                neighbor = self.network.neighbor_of(node, direction)
                if neighbor is None or not rect.contains(neighbor):
                    continue
                # Ghost VCs admitting flits from our side: the mirrors
                # our boundary routers arbitrate against.
                self._bind(ghost, direction, peer,
                           authoritative=False, bound=bound)

    def _bind(self, router, input_dir, peer, authoritative, bound) -> None:
        for position, vc in enumerate(router.all_vcs()):
            if input_dir not in vc.accepts_from:
                continue
            if id(vc) in bound:
                raise ShardProtocolError(
                    f"VC {router.node}#{position} would be mirrored on two "
                    "tiles; the shard planner must keep every tile at least "
                    "two nodes wide along each split axis"
                )
            bound.add(id(vc))
            addr = (router.node.x, router.node.y, position)
            self._bindings.append(_MirrorBinding(vc, addr, peer, authoritative))

    def _build_egress(self) -> list[tuple]:
        egress = []
        for node, router in self.network.routers.items():
            for direction, port in router.outputs.items():
                if direction is Direction.LOCAL:
                    continue
                neighbor = self.network.neighbor_of(node, direction)
                if neighbor is None or self.rect.contains(neighbor):
                    continue
                egress.append(
                    (port, self._tile_of(neighbor), neighbor.x, neighbor.y,
                     int(port.input_dir))
                )
        return egress

    def _vc_at(self, addr: tuple) -> object:
        vc = self._vc_cache.get(addr)
        if vc is None:
            x, y, position = addr
            vc = self.network.router_at(NodeId(x, y)).all_vcs()[position]
            self._vc_cache[addr] = vc
        return vc

    # ------------------------------------------------------------------
    # Phase drivers
    # ------------------------------------------------------------------

    def front(self, cycle: int) -> dict:
        """Generation, injection, delivery, traversal; returns deltas."""
        network = self.network
        if cycle == self.measure_start_cycle:
            network.stats.start_measurement(cycle)
        self._generate(cycle)
        for source in self._source_list:
            if source.queue or source.current:
                source.inject(network, cycle)
        self._snap(cycle)
        network.step_front(cycle)
        out: dict = {}
        self._harvest_flits(out)
        self._harvest_bindings(cycle, out)
        return out

    def alloc(self, cycle: int, inbox: dict | None) -> tuple[dict, dict]:
        """Apply the routed inbox, allocate; returns (deltas, commit)."""
        if inbox:
            self.apply_events(inbox, cycle)
        self._snap(cycle)
        network = self.network
        network.step_alloc(cycle)
        out: dict = {}
        self._harvest_bindings(cycle, out)
        stats = network.stats
        activity = stats.activity
        commit = {
            "moves": activity.crossbar_traversals + activity.buffer_writes,
            "delivered": stats.total_delivered,
            "dropped": stats.total_dropped,
        }
        return out, commit

    def _generate(self, cycle: int) -> None:
        schedule = self.schedule
        stats = self.network.stats
        flits_per_packet = self.config.flits_per_packet
        while schedule and schedule[0][0] == cycle:
            _, x, y, pid, dest_x, dest_y, yx_first, measured = schedule.popleft()
            packet = Packet(
                pid=pid,
                src=NodeId(x, y),
                dest=NodeId(dest_x, dest_y),
                size=flits_per_packet,
                created_cycle=cycle,
            )
            packet.yx_first = yx_first
            packet.measured = measured
            if measured:
                stats.injected_packets += 1
            self.registry[pid] = packet
            self.sources[packet.src].queue.append(packet)

    # ------------------------------------------------------------------
    # Delta harvest (phase brackets)
    # ------------------------------------------------------------------

    def _snap(self, cycle: int) -> None:
        for binding in self._bindings:
            vc = binding.vc
            vc._refresh(cycle)
            binding._avail_snap = vc._available
            binding._owner_snap = vc.owner_pid

    def _harvest_bindings(self, cycle: int, out: dict) -> None:
        for binding in self._bindings:
            vc = binding.vc
            vc._refresh(cycle)
            reserved = binding._avail_snap - vc._available
            if reserved < 0:
                raise ShardProtocolError(
                    f"credit refund on mirrored VC {binding.addr} at cycle "
                    f"{cycle} (fault-only transition)"
                )
            if reserved:
                _box(out, binding.peer)["reserve"].append((binding.addr, reserved))
            owner = vc.owner_pid
            if owner != binding._owner_snap:
                _box(out, binding.peer)["owner"].append((binding.addr, owner))
            if binding.authoritative:
                self._harvest_releases(binding, cycle, out)

    def _harvest_releases(self, binding, cycle: int, out: dict) -> None:
        # Pops during this cycle appended maturation entries for
        # cycle + CREDIT_LATENCY at the tail; count them exactly once
        # across the T and A scans of the same cycle.
        maturity = cycle + CREDIT_LATENCY
        total = 0
        releases = binding.vc._releases
        for when in reversed(releases):
            if when != maturity:
                break
            total += 1
        if binding._release_cycle != cycle:
            binding._release_cycle = cycle
            binding._release_sent = 0
        fresh = total - binding._release_sent
        if fresh:
            binding._release_sent = total
            _box(out, binding.peer)["release"].append(
                (binding.addr, maturity, fresh)
            )

    def _harvest_flits(self, out: dict) -> None:
        for port, peer, recv_x, recv_y, input_dir in self._egress:
            in_flight = port.link._in_flight
            while in_flight:
                arrival, flit = in_flight.popleft()
                packet = flit.packet
                hint = flit.vc_hint
                if hint is EJECT:
                    encoded_hint = EJECT_HINT
                else:
                    encoded_hint = self._addr_of[id(hint)]
                lookahead = flit.lookahead_route
                _box(out, peer)["flits"].append((
                    packet.pid,
                    flit.seq,
                    int(flit.ftype),
                    None if lookahead is None else int(lookahead),
                    encoded_hint,
                    packet.hops,
                    arrival,
                    recv_x,
                    recv_y,
                    input_dir,
                    (packet.src.x, packet.src.y, packet.dest.x, packet.dest.y,
                     packet.size, packet.created_cycle, packet.injected_cycle,
                     packet.yx_first, packet.measured),
                ))

    # ------------------------------------------------------------------
    # Delta application (between phase brackets)
    # ------------------------------------------------------------------

    def apply_events(self, inbox: dict, cycle: int) -> None:
        for addr, owner in inbox.get("owner", ()):
            vc = self._vc_at(addr)
            if (
                owner is not None
                and vc.owner_pid is not None
                and vc.owner_pid != owner
            ):
                raise ShardProtocolError(
                    f"conflicting owner claim on VC {addr}: local p"
                    f"{vc.owner_pid} vs remote p{owner} at cycle {cycle}"
                )
            vc.owner_pid = owner
        for addr, count in inbox.get("reserve", ()):
            vc = self._vc_at(addr)
            vc._refresh(cycle)
            if vc._available < count:
                raise ShardProtocolError(
                    f"remote reservation underflows VC {addr} at cycle {cycle}"
                )
            vc._available -= count
            if self.rect.contains(NodeId(addr[0], addr[1])):
                # We are authoritative: the remote upstream reserved a
                # slot its flit will land in (expected++), exactly as a
                # local _commit_switch_grant would have.
                vc.expected += count
        for addr, maturity, count in inbox.get("release", ()):
            vc = self._vc_at(addr)
            releases = vc._releases
            if releases and releases[-1] > maturity:
                raise ShardProtocolError(
                    f"out-of-order credit release on VC {addr} at cycle {cycle}"
                )
            for _ in range(count):
                releases.append(maturity)
        for message in inbox.get("flits", ()):
            self._apply_flit(message, cycle)

    def _apply_flit(self, message: tuple, cycle: int) -> None:
        (pid, seq, ftype, lookahead, hint, hops, arrival,
         recv_x, recv_y, input_dir, packet_fields) = message
        if arrival <= cycle:
            raise ShardProtocolError(
                f"flit p{pid}s{seq} arrives at {arrival} <= current cycle "
                f"{cycle}: lookahead horizon violated"
            )
        packet = self.registry.get(pid)
        if packet is None:
            (src_x, src_y, dest_x, dest_y, size, created, injected,
             yx_first, measured) = packet_fields
            packet = Packet(
                pid=pid,
                src=NodeId(src_x, src_y),
                dest=NodeId(dest_x, dest_y),
                size=size,
                created_cycle=created,
            )
            packet.injected_cycle = injected
            packet.yx_first = yx_first
            packet.measured = measured
            self.registry[pid] = packet
        flit = Flit(packet, seq, FlitType(ftype))
        flit.lookahead_route = (
            None if lookahead is None else Direction(lookahead)
        )
        flit.vc_hint = EJECT if hint == EJECT_HINT else self._vc_at(hint)
        flit.arrival = arrival
        if flit.is_head:
            packet.hops = hops
        receiver = self.network.routers[NodeId(recv_x, recv_y)]
        direction = Direction(input_dir)
        ghost_node = self.network.neighbor_of(receiver.node, direction)
        ghost = self.network.ghosts[ghost_node]
        link = ghost.outputs[direction.opposite].link
        link._in_flight.append((arrival, flit))
        link.sends += 1
        self.network.schedule_wake(receiver, direction, arrival)
        self.flits_applied += 1

    # ------------------------------------------------------------------
    # Audit and end-of-run payloads
    # ------------------------------------------------------------------

    def audit_payload(self, cycle: int) -> dict:
        """Occupancy + invariant snapshot for the boundary ledger."""
        violations: list[str] = []
        for binding in self._bindings:
            if not binding.authoritative:
                continue
            vc = binding.vc
            vc._refresh(cycle)
            expected_available = (
                vc.effective_depth - len(vc.queue) - vc.expected
                - len(vc._releases)
            )
            if vc._available != expected_available:
                violations.append(
                    f"credit balance broken on VC {binding.addr}: available="
                    f"{vc._available}, derived={expected_available}"
                )
        occupancy = 0
        for source in self._source_list:
            for packet in source.queue:
                occupancy += packet.size
            if source.current:
                occupancy += len(source.current)
        for router in self.network._router_list:
            for vc in router.all_vcs():
                occupancy += len(vc.queue)
            for _direction, link in router._in_links:
                occupancy += len(link)
        return {
            "occupancy": occupancy,
            "ejected": self.network.ejected_flits,
            "applied": self.flits_applied,
            "violations": violations,
        }

    def survivors(self, end_cycle: int) -> list[tuple]:
        """(pid, measured, created_cycle, node) for every live packet.

        Scans the same places the reference's ``_drop_survivors`` does
        (source queues, then router VC queues in row-major order); the
        coordinator dedupes across tiles by pid.
        """
        found: list[tuple] = []
        seen: set[int] = set()
        for node, source in self.sources.items():
            for packet in source.queue:
                if packet.pid not in seen:
                    seen.add(packet.pid)
                    found.append((packet.pid, packet.measured,
                                  packet.created_cycle, node.x, node.y))
            if source.current:
                packet = source.current[0].packet
                if packet.pid not in seen:
                    seen.add(packet.pid)
                    found.append((packet.pid, packet.measured,
                                  packet.created_cycle, node.x, node.y))
        for node, router in self.network.routers.items():
            for vc in router.all_vcs():
                for flit in vc.queue:
                    packet = flit.packet
                    if packet.pid not in seen:
                        seen.add(packet.pid)
                        found.append((packet.pid, packet.measured,
                                      packet.created_cycle, node.x, node.y))
        return found

    def finish(self, end_cycle: int) -> dict:
        """Final per-tile payload: stats fields + survivor census."""
        stats = self.network.stats
        activity = stats.activity
        contention = stats.contention
        scheduler = stats.scheduler
        return {
            "tile": self.tile_index,
            "survivors": self.survivors(end_cycle),
            "latencies": list(stats.latencies),
            "hops": list(stats.hops),
            "injected": stats.injected_packets,
            "delivered": stats.delivered_packets,
            "dropped": stats.dropped_packets,
            "delivered_flits": stats.delivered_flits,
            "total_delivered": stats.total_delivered,
            "total_dropped": stats.total_dropped,
            "drops_by_reason": {
                reason.value: count
                for reason, count in stats.drops_by_reason.items()
            },
            "measured_cycles": stats.measured_cycles,
            "activity": {
                "buffer_reads": activity.buffer_reads,
                "buffer_writes": activity.buffer_writes,
                "crossbar_traversals": activity.crossbar_traversals,
                "sa_requests": activity.sa_requests,
                "link_flits": activity.link_flits,
                "va_requests": activity.va_requests,
                "early_ejections": activity.early_ejections,
            },
            "contention": {
                "row_requests": contention.row_requests,
                "row_contended": contention.row_contended,
                "column_requests": contention.column_requests,
                "column_contended": contention.column_contended,
            },
            "scheduler": {
                "cycles": scheduler.cycles,
                "router_steps": scheduler.router_steps,
                "router_slots": scheduler.router_slots,
                "wakeups": scheduler.wakeups,
                "sleeps": scheduler.sleeps,
                "full_sweep": scheduler.full_sweep,
            },
        }
