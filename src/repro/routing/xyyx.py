"""Oblivious XY-YX routing.

Each packet commits at injection time to either XY or YX dimension order
(the ``Packet.yx_first`` flag).  Deadlock freedom needs the two orders to
use disjoint VC classes, which the routers provide (the paper adds two
``dx`` VCs for exactly this, Section 3.1).

Variant selection is normally an unbiased coin flip.  In a faulty network
the selection becomes fault-aware: if exactly one variant's path avoids
every known-dead node, that variant is chosen — the "alternate paths for
all three architectures" behaviour the paper relies on in Section 5.4.
"""

from __future__ import annotations

import random
from collections.abc import Callable

from repro.core.types import Direction, NodeId, Packet, RoutingMode
from repro.routing.base import (
    RoutingAlgorithm,
    path_nodes_xy,
    path_nodes_yx,
    xy_direction,
    yx_direction,
)


class XYYXRouting(RoutingAlgorithm):
    """Per-packet oblivious choice between XY and YX dimension order."""

    mode = RoutingMode.XY_YX

    def candidates(self, node: NodeId, packet: Packet) -> tuple[Direction, ...]:
        if packet.yx_first:
            return (yx_direction(node, packet.dest),)
        return (xy_direction(node, packet.dest),)


def choose_variant(
    src: NodeId,
    dest: NodeId,
    rng: random.Random,
    is_node_blocked: Callable[[NodeId], bool] | None = None,
) -> bool:
    """Pick the dimension order for a new packet; returns ``yx_first``.

    Without fault knowledge this is a fair coin.  With it, a variant whose
    path crosses a blocked node is avoided when the other variant is
    clean; if both paths are blocked (or both clean) the coin decides.
    """
    if is_node_blocked is not None:
        xy_blocked = any(is_node_blocked(n) for n in path_nodes_xy(src, dest)[1:])
        yx_blocked = any(is_node_blocked(n) for n in path_nodes_yx(src, dest)[1:])
        if xy_blocked != yx_blocked:
            return xy_blocked
    return rng.random() < 0.5
