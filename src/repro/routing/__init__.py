"""Routing algorithms: XY (DOR), oblivious XY-YX, and minimal adaptive."""

from repro.core.types import RoutingMode
from repro.routing.adaptive import AdaptiveRouting
from repro.routing.base import (
    RoutingAlgorithm,
    path_nodes_xy,
    path_nodes_yx,
    productive_directions,
    xy_direction,
    yx_direction,
)
from repro.routing.xy import XYRouting
from repro.routing.xyyx import XYYXRouting, choose_variant

_ALGORITHMS = {
    RoutingMode.XY: XYRouting,
    RoutingMode.XY_YX: XYYXRouting,
    RoutingMode.ADAPTIVE: AdaptiveRouting,
}


def make_routing(mode: RoutingMode | str) -> RoutingAlgorithm:
    """Instantiate the routing algorithm for ``mode``."""
    if isinstance(mode, str):
        mode = RoutingMode(mode)
    return _ALGORITHMS[mode]()


__all__ = [
    "AdaptiveRouting",
    "RoutingAlgorithm",
    "XYRouting",
    "XYYXRouting",
    "choose_variant",
    "make_routing",
    "path_nodes_xy",
    "path_nodes_yx",
    "productive_directions",
    "xy_direction",
    "yx_direction",
]
