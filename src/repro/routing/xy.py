"""Deterministic dimension-order (XY) routing — the paper's DOR baseline."""

from __future__ import annotations

from repro.core.types import Direction, NodeId, Packet, RoutingMode
from repro.routing.base import RoutingAlgorithm, xy_direction


class XYRouting(RoutingAlgorithm):
    """Route fully in X, then fully in Y.

    Deadlock-free on a mesh without any VC discipline because it forbids
    the Y-to-X turns that close cyclic channel dependencies.
    """

    mode = RoutingMode.XY

    def candidates(self, node: NodeId, packet: Packet) -> tuple[Direction, ...]:
        return (self.dor_direction(node, packet.dest),)
