"""Routing-algorithm interface.

A routing algorithm answers one question: *given a packet sitting at a
node, which output directions make progress?*  It returns the minimal
productive directions as candidates; the router (or its look-ahead logic)
selects one, using its local congestion view and fault knowledge.  The
``escape_direction`` — always the dimension-ordered XY choice — is what
escape/deadlock-free VC classes are restricted to (Duato's protocol, which
the paper's extra ``dx``/``txy`` VCs implement structurally).
"""

from __future__ import annotations

import abc

from repro.core.types import Direction, NodeId, Packet, RoutingMode


class RoutingAlgorithm(abc.ABC):
    """Strategy object for computing productive output directions."""

    mode: RoutingMode
    #: Injected by the network; None or a mesh keeps the plain
    #: coordinate comparisons, a torus switches to ring-minimal steps.
    topology = None

    @abc.abstractmethod
    def candidates(self, node: NodeId, packet: Packet) -> tuple[Direction, ...]:
        """Minimal productive directions for ``packet`` at ``node``.

        Returns ``(Direction.LOCAL,)`` when the packet has arrived.  The
        order expresses the algorithm's own preference; routers may
        reorder based on congestion when more than one is offered.
        """

    def escape_direction(self, node: NodeId, packet: Packet) -> Direction:
        """The deadlock-free dimension-ordered (XY) direction."""
        return self.dor_direction(node, packet.dest)

    def dor_direction(self, node: NodeId, dest: NodeId) -> Direction:
        """Topology-aware dimension-ordered (X-first) step."""
        topology = self.topology
        if topology is None or topology.name != "torus":
            return xy_direction(node, dest)
        from repro.core.topology import ring_direction

        step = ring_direction(
            node.x, dest.x, topology.width, Direction.EAST, Direction.WEST
        )
        if step is not None:
            return step
        step = ring_direction(
            node.y, dest.y, topology.height, Direction.SOUTH, Direction.NORTH
        )
        return step if step is not None else Direction.LOCAL

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"


def xy_direction(node: NodeId, dest: NodeId) -> Direction:
    """Pure dimension-ordered choice: correct X first, then Y."""
    if dest.x > node.x:
        return Direction.EAST
    if dest.x < node.x:
        return Direction.WEST
    if dest.y > node.y:
        return Direction.SOUTH
    if dest.y < node.y:
        return Direction.NORTH
    return Direction.LOCAL


def yx_direction(node: NodeId, dest: NodeId) -> Direction:
    """Dimension-ordered choice with Y corrected first."""
    if dest.y > node.y:
        return Direction.SOUTH
    if dest.y < node.y:
        return Direction.NORTH
    if dest.x > node.x:
        return Direction.EAST
    if dest.x < node.x:
        return Direction.WEST
    return Direction.LOCAL


def productive_directions(node: NodeId, dest: NodeId) -> tuple[Direction, ...]:
    """Every direction that reduces the Manhattan distance to ``dest``."""
    dirs: list[Direction] = []
    if dest.x > node.x:
        dirs.append(Direction.EAST)
    elif dest.x < node.x:
        dirs.append(Direction.WEST)
    if dest.y > node.y:
        dirs.append(Direction.SOUTH)
    elif dest.y < node.y:
        dirs.append(Direction.NORTH)
    if not dirs:
        return (Direction.LOCAL,)
    return tuple(dirs)


def path_nodes_xy(src: NodeId, dest: NodeId) -> list[NodeId]:
    """Every node an XY-routed packet visits, inclusive of both endpoints."""
    nodes = [src]
    cur = src
    while cur.x != dest.x:
        cur = NodeId(cur.x + (1 if dest.x > cur.x else -1), cur.y)
        nodes.append(cur)
    while cur.y != dest.y:
        cur = NodeId(cur.x, cur.y + (1 if dest.y > cur.y else -1))
        nodes.append(cur)
    return nodes


def path_nodes_yx(src: NodeId, dest: NodeId) -> list[NodeId]:
    """Every node a YX-routed packet visits, inclusive of both endpoints."""
    nodes = [src]
    cur = src
    while cur.y != dest.y:
        cur = NodeId(cur.x, cur.y + (1 if dest.y > cur.y else -1))
        nodes.append(cur)
    while cur.x != dest.x:
        cur = NodeId(cur.x + (1 if dest.x > cur.x else -1), cur.y)
        nodes.append(cur)
    return nodes
