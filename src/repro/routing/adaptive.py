"""Minimal adaptive routing.

Offers every productive (distance-reducing) direction as a candidate and
lets the router pick by congestion.  Deadlock freedom follows Duato's
protocol: each router reserves escape resources restricted to the XY
(dimension-ordered) direction — in the generic router this is VC 0 of each
port; in the RoCo router it is the structural role of the deadlock-free
``dx``/``txy`` VCs called out in Section 3.1 ("Deadlock Freedom").
"""

from __future__ import annotations

from repro.core.types import Direction, NodeId, Packet, RoutingMode
from repro.routing.base import (
    RoutingAlgorithm,
    productive_directions,
    xy_direction,
)


class AdaptiveRouting(RoutingAlgorithm):
    """Fully minimal adaptive routing with XY escape paths."""

    mode = RoutingMode.ADAPTIVE

    def candidates(self, node: NodeId, packet: Packet) -> tuple[Direction, ...]:
        dirs = productive_directions(node, packet.dest)
        if len(dirs) <= 1:
            return dirs
        # Present the escape (XY) direction first so deterministic
        # tie-breaks still drain through the deadlock-free path.
        escape = xy_direction(node, packet.dest)
        ordered = [escape] + [d for d in dirs if d is not escape]
        return tuple(ordered)
