"""Arbiter inventory accounting — paper Figure 2.

Figure 2 compares the Virtual Channel Allocator complexity of the
generic 5-port router and the RoCo router, for ``v`` VCs per port and
the two routing-function variants:

* **R => v** — routing returns a single output VC: only second-stage
  arbiters exist, one per output VC.
* **R => P** — routing returns the VCs of a single physical channel:
  every input VC carries a first-stage v:1 arbiter, plus the same
  second-stage arbiters.

The RoCo router decouples the ports into East-West and North-South
pairs and drops the PE path set thanks to Early Ejection, so it needs
**fewer (4v vs 5v)** and **smaller (2v:1 vs 5v:1)** arbiters.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class ArbiterInventory:
    """Counts and sizes of one allocator's arbiters."""

    architecture: str
    variant: str
    first_stage_count: int
    first_stage_width: int
    second_stage_count: int
    second_stage_width: int

    @property
    def total_request_lines(self) -> int:
        """Aggregate arbiter input count — a proxy for area and energy."""
        return (
            self.first_stage_count * self.first_stage_width
            + self.second_stage_count * self.second_stage_width
        )


def generic_va_inventory(v: int = 3, variant: str = "R=>P") -> ArbiterInventory:
    """VA arbiters of the generic 5-port router (Figure 2(a))."""
    ports = 5
    if variant == "R=>v":
        return ArbiterInventory("generic", variant, 0, 0, ports * v, ports * v)
    if variant == "R=>P":
        return ArbiterInventory(
            "generic", variant, ports * v, v, ports * v, ports * v
        )
    raise ValueError(f"unknown routing-function variant {variant!r}")


def roco_va_inventory(v: int = 3, variant: str = "R=>P") -> ArbiterInventory:
    """VA arbiters of the RoCo router (Figure 2(b)).

    Early Ejection removes the PE path set, so only 4 decoupled ports
    remain, split into two independent 2-port groups; each group's
    second-stage arbiters are 2v:1 and there are 2v of them per group
    (4v total), versus the generic router's 5v arbiters of 5v:1.
    """
    groups = 2  # East-West and North-South
    ports_per_group = 2
    if variant == "R=>v":
        return ArbiterInventory(
            "roco", variant, 0, 0, groups * ports_per_group * v, ports_per_group * v
        )
    if variant == "R=>P":
        return ArbiterInventory(
            "roco",
            variant,
            groups * ports_per_group * v,
            v,
            groups * ports_per_group * v,
            ports_per_group * v,
        )
    raise ValueError(f"unknown routing-function variant {variant!r}")


def figure2(v: int = 3) -> dict[str, ArbiterInventory]:
    """Both panels of Figure 2 for ``v`` VCs per port."""
    return {
        "generic R=>v": generic_va_inventory(v, "R=>v"),
        "generic R=>P": generic_va_inventory(v, "R=>P"),
        "roco R=>v": roco_va_inventory(v, "R=>v"),
        "roco R=>P": roco_va_inventory(v, "R=>P"),
    }
