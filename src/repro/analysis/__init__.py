"""Analytical reproductions: Table 2 matching math, Figure 2 arbiter
inventory, and Figure 3 contention measurement."""

from repro.analysis.arbitration import (
    ArbiterInventory,
    figure2,
    generic_va_inventory,
    roco_va_inventory,
)
from repro.analysis.contention import ContentionCurve, measure_contention
from repro.analysis.model import (
    HOP_CYCLES,
    ZeroLoadEstimate,
    average_hops_uniform,
    bisection_saturation_rate,
    expected_saturation_rate,
    zero_load_latency,
)
from repro.analysis.matching import (
    generic_non_blocking_probability,
    non_blocking_assignments,
    non_blocking_assignments_bruteforce,
    path_sensitive_non_blocking_probability,
    roco_non_blocking_probability,
    table2,
)

__all__ = [
    "ArbiterInventory",
    "HOP_CYCLES",
    "ZeroLoadEstimate",
    "average_hops_uniform",
    "bisection_saturation_rate",
    "expected_saturation_rate",
    "zero_load_latency",
    "ContentionCurve",
    "figure2",
    "generic_non_blocking_probability",
    "generic_va_inventory",
    "measure_contention",
    "non_blocking_assignments",
    "non_blocking_assignments_bruteforce",
    "path_sensitive_non_blocking_probability",
    "roco_non_blocking_probability",
    "roco_va_inventory",
    "table2",
]
