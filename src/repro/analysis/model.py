"""First-order analytical performance model.

Closed-form estimates that cross-validate the simulator (and vice
versa): zero-load latency from the pipeline structure, and a
saturation-throughput bound from bisection-channel load.  The test
suite checks low-load simulation results against these formulas — a
disagreement means either the model or the simulator drifted.

Pipeline accounting (DESIGN.md Section 5.1):

* every hop costs 3 cycles (stage 1: RC/VA/SA, stage 2: ST, 1 wire);
* the generic router adds 1 RC cycle per hop for head flits (no
  look-ahead routing) and 2 ejection cycles at the destination
  (SA + ST through the crossbar to the PE port);
* serialization adds ``flits_per_packet - 1`` cycles for the tail;
* injection adds ~2 cycles (source push + first-stage allocation).
"""

from __future__ import annotations

from dataclasses import dataclass

#: Cycles per hop: stage 1 + stage 2 + link.
HOP_CYCLES = 3
#: Source-side overhead before the head starts pipelining.
INJECTION_OVERHEAD = 2


def average_hops_uniform(k: int) -> float:
    """Mean Manhattan distance between distinct nodes of a k x k mesh.

    The mean one-dimension distance over ordered pairs (including
    self-pairs) is (k^2 - 1) / (3k); summing both dimensions and
    correcting for the excluded self-pairs gives the uniform-traffic
    average hop count.
    """
    if k < 2:
        raise ValueError("mesh must be at least 2x2")
    n = k * k
    per_dimension = (k * k - 1) / (3 * k)
    # Distances are computed over all n^2 ordered pairs; uniform traffic
    # excludes the n self-pairs (distance 0), so rescale.
    return 2 * per_dimension * n * n / (n * n - n)


@dataclass(frozen=True)
class ZeroLoadEstimate:
    """Predicted unloaded packet latency for one architecture."""

    architecture: str
    hops: float
    head_cycles: float
    serialization: float

    @property
    def total(self) -> float:
        return INJECTION_OVERHEAD + self.head_cycles + self.serialization


def zero_load_latency(
    architecture: str, k: int = 8, flits_per_packet: int = 4
) -> ZeroLoadEstimate:
    """Unloaded end-to-end latency estimate, uniform traffic."""
    hops = average_hops_uniform(k)
    head = HOP_CYCLES * hops
    if architecture == "generic":
        head += hops  # per-hop RC cycle (no look-ahead)
        head += 2  # ejection SA + ST at the destination
    elif architecture not in ("path_sensitive", "roco"):
        raise ValueError(f"unknown architecture {architecture!r}")
    return ZeroLoadEstimate(
        architecture=architecture,
        hops=hops,
        head_cycles=head,
        serialization=flits_per_packet - 1,
    )


def bisection_saturation_rate(k: int) -> float:
    """Upper bound on uniform-traffic throughput (flits/node/cycle).

    Half the nodes' traffic crosses the bisection with probability 1/2,
    over k channels per direction:  (k^2/2) * r * (1/2) <= k, so
    r <= 4 / k.
    """
    if k < 2:
        raise ValueError("mesh must be at least 2x2")
    return 4 / k


def expected_saturation_rate(k: int, router_efficiency: float = 0.75) -> float:
    """Practical saturation estimate: bisection bound x router efficiency.

    Real routers reach 60-85% of the bisection bound under XY routing;
    the default 0.75 matches what the simulator achieves.
    """
    return bisection_saturation_rate(k) * router_efficiency


def center_link_load(k: int, rate: float) -> float:
    """Approximate flit load on a central X link under XY uniform traffic.

    A directed X-channel at the bisection carries the eastbound traffic
    of the k/2 columns to its west heading to the k/2 columns to its
    east within the same row: rate * (k/4) * (k/2) / ... simplified to
    the standard k/4 * rate scaling with a row-uniformity factor.
    """
    return rate * k / 4
