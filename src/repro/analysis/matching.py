"""Non-blocking (maximal-matching) probability analysis — paper Table 2.

Equation (1) counts the input->output assignments of an N x N crossbar in
which every output port receives exactly one connection ("non-blocking
maximal matching"), given that each input picks one of the other N-1
outputs uniformly (no U-turns):

    F(N) = N! - sum_{j=1..N} C(N, j) * F(N - j),   F(1) = 0, F(2) = 1

The three architectures then score:

* generic 5x5:       F(N) / (N-1)^N          = 44 / 1024  ~ 0.043
* Path-Sensitive:    2 / 24                  = 0.125 (chained quadrant walk)
* RoCo module (2x2): (1 - 1/2)^2 * ... = 2 / 4 = 0.25 per module
"""

from __future__ import annotations

import itertools
from math import comb, factorial


def non_blocking_assignments(n: int) -> int:
    """F(N) of Equation (1): assignments covering every output exactly once."""
    if n < 0:
        raise ValueError("crossbar needs a non-negative port count")
    if n == 0:
        return 1  # The empty assignment vacuously covers every output.
    if n == 1:
        return 0
    if n == 2:
        return 1
    return factorial(n) - sum(
        comb(n, j) * non_blocking_assignments(n - j) for j in range(1, n + 1)
    )


def non_blocking_assignments_bruteforce(n: int) -> int:
    """Brute-force count of F(N) for validating the recurrence.

    Enumerates every way each of the N inputs can pick one of its N-1
    allowed outputs (not its own index — no U-turns) and counts the
    assignments where all N outputs are covered.
    """
    count = 0
    choices = [[o for o in range(n) if o != i] for i in range(n)]
    for assignment in itertools.product(*choices):
        if len(set(assignment)) == n:
            count += 1
    return count


def generic_non_blocking_probability(n: int = 5) -> float:
    """Non-blocking probability of the monolithic N x N crossbar."""
    return non_blocking_assignments(n) / (n - 1) ** n


def path_sensitive_non_blocking_probability() -> float:
    """Non-blocking probability of the 4x4 decomposed quadrant crossbar.

    The quadrant-to-output structure is the bipartite cycle
    NE-N-NW-W-SW-S-SE-E-NE; a cycle of length 8 has exactly 2 perfect
    matchings.  Each of the 4 sets independently requests one of its 2
    outputs, giving 2^4 = 16 equally likely assignments, hence
    2/16 = 0.125 — the value Table 2 reports (the paper prints the
    fraction as "2/24", a typo inconsistent with its own 0.125 and with
    the "two times more likely" comparison against RoCo's 0.25).
    """
    return 2 / 16


def roco_non_blocking_probability() -> float:
    """Non-blocking probability of one RoCo 2x2 module.

    Each of the two inputs misses a given output with probability 1/2,
    so both outputs are covered with probability (1 - 1/2)^2 x ... = 2/4.
    """
    return (1 - 0.5) ** 2


def table2() -> dict[str, float]:
    """The paper's Table 2 (N = 5)."""
    return {
        "generic": generic_non_blocking_probability(5),
        "path_sensitive": path_sensitive_non_blocking_probability(),
        "roco": roco_non_blocking_probability(),
    }
