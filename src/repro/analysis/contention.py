"""Contention-probability measurement — paper Figure 3.

The simulator's switch allocators record, per cycle, how many crossbar
requests targeted an output that at least one other input also wanted.
This module drives the measurement across offered loads and packages
the three panels of Figure 3: row-input contention and column-input
contention under XY routing, and overall contention under adaptive
routing.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.config import SimulationConfig
from repro.core.simulator import run_simulation
from repro.core.types import RoutingMode

#: The paper sweeps offered load to 0.6 flits/node/cycle for Figure 3.
DEFAULT_RATES = (0.05, 0.15, 0.25, 0.35, 0.45, 0.55)


@dataclass
class ContentionCurve:
    """One router's contention probability across offered loads."""

    router: str
    rates: list[float] = field(default_factory=list)
    row: list[float] = field(default_factory=list)
    column: list[float] = field(default_factory=list)
    overall: list[float] = field(default_factory=list)


def measure_contention(
    router: str,
    routing: RoutingMode | str,
    rates=DEFAULT_RATES,
    width: int = 8,
    height: int = 8,
    measure_packets: int = 1200,
    seed: int = 11,
) -> ContentionCurve:
    """Measure contention probabilities for one router across loads.

    Beyond saturation the sources keep offering load (the paper's
    Figure 3 extends past the saturation throughput), so runs are
    bounded by ``max_cycles`` rather than full delivery.
    """
    curve = ContentionCurve(router=router)
    for rate in rates:
        config = SimulationConfig(
            width=width,
            height=height,
            router=router,
            routing=routing,
            traffic="uniform",
            injection_rate=rate,
            warmup_packets=measure_packets // 5,
            measure_packets=measure_packets,
            seed=seed,
            max_cycles=30_000,
        )
        result = run_simulation(config)
        curve.rates.append(rate)
        curve.row.append(result.contention_row)
        curve.column.append(result.contention_column)
        curve.overall.append(result.contention_overall)
    return curve
