"""Uniform random traffic — every other node is an equally likely destination."""

from __future__ import annotations

from repro.core.types import NodeId
from repro.traffic.base import TrafficPattern


class UniformTraffic(TrafficPattern):
    """Bernoulli injection to uniformly random destinations."""

    name = "uniform"

    def destination(self, src: NodeId) -> NodeId:
        return self._random_other_node(src)
