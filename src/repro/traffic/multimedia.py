"""Synthetic MPEG-2 video traffic (Caminero et al. substitution).

The paper drives the multimedia experiments with MPEG-2 video traces.
Real traces are not redistributable, so we synthesise traffic with the
same structure: a Group-of-Pictures (GOP) cadence of large I frames,
medium P frames and small B frames, emitted at a fixed frame period with
lognormal per-frame size variation.  Each frame becomes a burst of
packets streamed to a per-node fixed peer (video flows are long-lived
point-to-point connections), which preserves the property that stresses
the router: large correlated bursts at frame boundaries over stable
paths.

Average offered load still matches the configured injection rate: frame
sizes are scaled so that packets-per-GOP / cycles-per-GOP equals the
requested packets/node/cycle.
"""

from __future__ import annotations

import math
import random
from collections import deque

from repro.core.config import SimulationConfig
from repro.core.types import NodeId
from repro.traffic.base import TrafficPattern

#: Classic MPEG-2 GOP structure (display order IBBPBBPBBPBB, 12 frames).
DEFAULT_GOP = "IBBPBBPBBPBB"
#: Relative frame sizes (I : P : B), from published MPEG-2 trace statistics.
FRAME_WEIGHT = {"I": 5.0, "P": 2.0, "B": 1.0}
#: Lognormal sigma of per-frame size variation.
DEFAULT_SIZE_SIGMA = 0.3


class MultimediaTraffic(TrafficPattern):
    """GOP-structured bursty traffic over fixed source->peer flows."""

    name = "multimedia"

    def __init__(
        self,
        frame_period: int = 400,
        gop: str = DEFAULT_GOP,
        size_sigma: float = DEFAULT_SIZE_SIGMA,
    ) -> None:
        super().__init__()
        if any(f not in FRAME_WEIGHT for f in gop):
            raise ValueError(f"GOP may only contain I/P/B frames, got {gop!r}")
        self.frame_period = frame_period
        self.gop = gop
        self.size_sigma = size_sigma
        self._peers: dict[NodeId, NodeId] = {}
        self._phase: dict[NodeId, int] = {}
        self._pending: dict[NodeId, deque[int]] = {}
        self._frame_packets: dict[str, float] = {}

    def bind(self, config: SimulationConfig, rng: random.Random, nodes) -> None:
        super().bind(config, rng, nodes)
        # Derive per-frame packet budgets so the mean load matches.
        packets_per_gop = self.packet_rate * self.frame_period * len(self.gop)
        total_weight = sum(FRAME_WEIGHT[f] for f in self.gop)
        self._frame_packets = {
            kind: packets_per_gop * weight / total_weight
            for kind, weight in FRAME_WEIGHT.items()
        }
        # Long-lived flows: a random derangement-ish peer assignment.
        shuffled = list(nodes)
        rng.shuffle(shuffled)
        self._peers = {}
        for src, dest in zip(nodes, shuffled):
            self._peers[src] = dest if dest != src else self._fallback_peer(src)
        self._phase = {node: rng.randrange(self.cycle_per_gop) for node in nodes}
        self._pending = {node: deque() for node in nodes}

    def _fallback_peer(self, src: NodeId) -> NodeId:
        return self._random_other_node(src)

    @property
    def cycle_per_gop(self) -> int:
        return self.frame_period * len(self.gop)

    def destination(self, src: NodeId) -> NodeId:
        return self._peers[src]

    def frame_at(self, node: NodeId, cycle: int) -> str:
        """Which frame type ``node`` is transmitting around ``cycle``."""
        local = (cycle + self._phase[node]) % self.cycle_per_gop
        return self.gop[local // self.frame_period]

    def arrivals(self, node: NodeId, cycle: int) -> int:
        local = (cycle + self._phase[node]) % self.cycle_per_gop
        if local % self.frame_period == 0:
            # Frame boundary: queue this frame's packet burst.
            kind = self.gop[local // self.frame_period]
            mean = self._frame_packets[kind]
            size = mean * math.exp(
                self.rng.gauss(-0.5 * self.size_sigma**2, self.size_sigma)
            )
            whole = int(size)
            if self.rng.random() < size - whole:
                whole += 1
            self._pending[node].extend([1] * whole)
        # Drain the burst one packet per cycle (PE link bandwidth).
        if self._pending[node]:
            self._pending[node].popleft()
            return 1
        return 0
