"""Matrix-transpose traffic (Dally & Towles): node (x, y) sends to (y, x).

Diagonal nodes (x == y) have no transpose partner and fall back to
uniform destinations so every node offers load, keeping the configured
flits/node/cycle meaningful.
"""

from __future__ import annotations

from repro.core.types import NodeId
from repro.traffic.base import TrafficPattern


class TransposeTraffic(TrafficPattern):
    """The paper's transpose permutation workload (Figure 10)."""

    name = "transpose"

    def destination(self, src: NodeId) -> NodeId:
        dest = NodeId(src.y, src.x)
        if dest == src or not (
            dest.x < self.config.width and dest.y < self.config.height
        ):
            # Diagonal nodes (and out-of-bounds partners on rectangular
            # meshes) fall back to uniform so every node offers load.
            return self._random_other_node(src)
        return dest
