"""Nearest-neighbour traffic.

Section 3.1 argues early ejection "provides a significant advantage in
terms of nearest-neighbor traffic" under communication-aware mappings
that place talkative PEs adjacently; this pattern lets us measure that
claim directly (an extension experiment).
"""

from __future__ import annotations

from repro.core.types import CARDINALS, NodeId
from repro.traffic.base import TrafficPattern


class NeighborTraffic(TrafficPattern):
    """Each packet targets a uniformly chosen mesh neighbour."""

    name = "neighbor"

    def destination(self, src: NodeId) -> NodeId:
        neighbors = [
            src.neighbor(d)
            for d in CARDINALS
            if 0 <= src.neighbor(d).x < self.config.width
            and 0 <= src.neighbor(d).y < self.config.height
        ]
        return self.rng.choice(neighbors)
