"""Classic bit-permutation traffic patterns (Dally & Towles, ch. 3).

Beyond the paper's workloads, these are the standard synthetic
permutations used to stress specific aspects of a topology/routing
pair.  Node coordinates are flattened to a node index whose bits are
permuted:

* **bit-complement** — dest index = ~src: every packet crosses the
  network centre (worst-case bisection load);
* **bit-reverse** — dest index = reverse(src bits): FFT-style traffic;
* **shuffle** — dest index = rotate-left(src bits): perfect-shuffle
  stages of sorting/FFT networks.

Patterns require power-of-two node counts (bit permutations need whole
bits); self-addressed nodes fall back to uniform destinations so every
node offers load.
"""

from __future__ import annotations

import random

from repro.core.config import SimulationConfig
from repro.core.types import NodeId
from repro.traffic.base import TrafficPattern


class _BitPermutationTraffic(TrafficPattern):
    """Shared machinery: flatten, permute bits, unflatten."""

    def __init__(self) -> None:
        super().__init__()
        self._bits = 0

    def bind(
        self, config: SimulationConfig, rng: random.Random, nodes: list[NodeId]
    ) -> None:
        super().bind(config, rng, nodes)
        count = len(nodes)
        if count & (count - 1):
            raise ValueError(
                f"{self.name} traffic needs a power-of-two node count, got {count}"
            )
        self._bits = count.bit_length() - 1

    def _index(self, node: NodeId) -> int:
        return node.y * self.config.width + node.x

    def _node(self, index: int) -> NodeId:
        return NodeId(index % self.config.width, index // self.config.width)

    def _permute(self, index: int) -> int:
        raise NotImplementedError

    def destination(self, src: NodeId) -> NodeId:
        dest = self._node(self._permute(self._index(src)) % len(self.nodes))
        if dest == src:
            return self._random_other_node(src)
        return dest


class BitComplementTraffic(_BitPermutationTraffic):
    """dest = bitwise complement of the source index."""

    name = "bit_complement"

    def _permute(self, index: int) -> int:
        return ~index & ((1 << self._bits) - 1)


class BitReverseTraffic(_BitPermutationTraffic):
    """dest = source index with its bits reversed."""

    name = "bit_reverse"

    def _permute(self, index: int) -> int:
        result = 0
        for bit in range(self._bits):
            if index & (1 << bit):
                result |= 1 << (self._bits - 1 - bit)
        return result


class ShuffleTraffic(_BitPermutationTraffic):
    """dest = source index rotated left by one bit (perfect shuffle)."""

    name = "shuffle"

    def _permute(self, index: int) -> int:
        mask = (1 << self._bits) - 1
        return ((index << 1) | (index >> (self._bits - 1))) & mask
