"""Traffic generators for the paper's workloads and extension studies."""

from repro.traffic.base import TrafficPattern
from repro.traffic.hotspot import HotspotTraffic
from repro.traffic.multimedia import MultimediaTraffic
from repro.traffic.neighbor import NeighborTraffic
from repro.traffic.permutations import (
    BitComplementTraffic,
    BitReverseTraffic,
    ShuffleTraffic,
)
from repro.traffic.selfsimilar import SelfSimilarTraffic
from repro.traffic.transpose import TransposeTraffic
from repro.traffic.uniform import UniformTraffic

TRAFFIC_CLASSES = {
    cls.name: cls
    for cls in (
        UniformTraffic,
        TransposeTraffic,
        SelfSimilarTraffic,
        MultimediaTraffic,
        HotspotTraffic,
        NeighborTraffic,
        BitComplementTraffic,
        BitReverseTraffic,
        ShuffleTraffic,
    )
}


def make_traffic(name: str, **kwargs) -> TrafficPattern:
    """Instantiate a traffic pattern by its registered name."""
    try:
        cls = TRAFFIC_CLASSES[name]
    except KeyError:
        raise ValueError(
            f"unknown traffic pattern {name!r}; choose from {sorted(TRAFFIC_CLASSES)}"
        ) from None
    return cls(**kwargs)


__all__ = [
    "BitComplementTraffic",
    "BitReverseTraffic",
    "HotspotTraffic",
    "MultimediaTraffic",
    "NeighborTraffic",
    "SelfSimilarTraffic",
    "ShuffleTraffic",
    "TRAFFIC_CLASSES",
    "TrafficPattern",
    "TransposeTraffic",
    "UniformTraffic",
    "make_traffic",
]
