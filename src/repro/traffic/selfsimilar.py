"""Self-similar traffic via superposed Pareto ON/OFF sources.

The paper uses "self-similar web traffic" generated per Barford &
Crovella's SIGMETRICS'98 methodology.  The generative core of that model
— and the standard way to synthesise self-similar network traffic — is a
population of ON/OFF sources whose ON (burst) and OFF (idle) durations
are heavy-tailed Pareto variables; the superposition is asymptotically
self-similar with Hurst parameter H = (3 - alpha) / 2.

Each node runs an independent ON/OFF process.  During ON periods the
node injects packets as a Bernoulli process at a *peak* rate chosen so
the long-run mean equals the configured injection rate:

    mean = peak * E[on] / (E[on] + E[off])

Destinations are uniform random, as in the paper's setup.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.core.config import SimulationConfig
from repro.core.types import NodeId
from repro.traffic.base import TrafficPattern

#: Pareto shape for burst lengths; alpha = 1.9 gives Hurst H = 0.55-0.9
#: territory (web traffic measurements cluster around alpha 1.2-2.0).
DEFAULT_ALPHA_ON = 1.9
DEFAULT_ALPHA_OFF = 1.25
#: Minimum burst / idle durations in cycles (Pareto location parameters).
DEFAULT_MIN_ON = 10.0
DEFAULT_MIN_OFF = 10.0


def pareto(rng: random.Random, alpha: float, minimum: float) -> float:
    """One Pareto(alpha, minimum) draw."""
    return minimum / (1.0 - rng.random()) ** (1.0 / alpha)


def pareto_mean(alpha: float, minimum: float) -> float:
    """Mean of Pareto(alpha, minimum); requires alpha > 1."""
    if alpha <= 1.0:
        raise ValueError("Pareto mean diverges for alpha <= 1")
    return alpha * minimum / (alpha - 1.0)


@dataclass
class _SourceState:
    on: bool
    remaining: float


class SelfSimilarTraffic(TrafficPattern):
    """Heavy-tailed ON/OFF injection with uniform destinations."""

    name = "self_similar"

    def __init__(
        self,
        alpha_on: float = DEFAULT_ALPHA_ON,
        alpha_off: float = DEFAULT_ALPHA_OFF,
        min_on: float = DEFAULT_MIN_ON,
        min_off: float = DEFAULT_MIN_OFF,
    ) -> None:
        super().__init__()
        self.alpha_on = alpha_on
        self.alpha_off = alpha_off
        self.min_on = min_on
        self.min_off = min_off
        self._states: dict[NodeId, _SourceState] = {}
        self._peak_rate = 0.0

    def bind(self, config: SimulationConfig, rng, nodes) -> None:
        super().bind(config, rng, nodes)
        mean_on = pareto_mean(self.alpha_on, self.min_on)
        mean_off = pareto_mean(self.alpha_off, self.min_off)
        duty_cycle = mean_on / (mean_on + mean_off)
        self._peak_rate = min(1.0, self.packet_rate / duty_cycle)
        self._states = {
            node: _SourceState(
                on=rng.random() < duty_cycle,
                remaining=pareto(
                    rng,
                    self.alpha_on if rng.random() < duty_cycle else self.alpha_off,
                    self.min_on,
                ),
            )
            for node in nodes
        }

    @property
    def duty_cycle(self) -> float:
        mean_on = pareto_mean(self.alpha_on, self.min_on)
        mean_off = pareto_mean(self.alpha_off, self.min_off)
        return mean_on / (mean_on + mean_off)

    def destination(self, src: NodeId) -> NodeId:
        return self._random_other_node(src)

    def arrivals(self, node: NodeId, cycle: int) -> int:
        state = self._states[node]
        state.remaining -= 1.0
        if state.remaining <= 0.0:
            state.on = not state.on
            if state.on:
                state.remaining = pareto(self.rng, self.alpha_on, self.min_on)
            else:
                state.remaining = pareto(self.rng, self.alpha_off, self.min_off)
        if state.on and self.rng.random() < self._peak_rate:
            return 1
        return 0
