"""Hotspot traffic: a fraction of packets converge on a few hot nodes.

Not in the paper's headline figures, but a standard NoC stressor we use
for extension experiments (ablations on the mirror allocator under
asymmetric load) and in the examples.
"""

from __future__ import annotations

import random

from repro.core.config import SimulationConfig
from repro.core.types import NodeId
from repro.traffic.base import TrafficPattern


class HotspotTraffic(TrafficPattern):
    """Uniform traffic with a bias towards designated hotspot nodes."""

    name = "hotspot"

    def __init__(
        self, hotspots: list[NodeId] | None = None, hot_fraction: float = 0.2
    ) -> None:
        super().__init__()
        if not 0.0 <= hot_fraction <= 1.0:
            raise ValueError("hot_fraction must be within [0, 1]")
        self.hotspots = hotspots
        self.hot_fraction = hot_fraction

    def bind(self, config: SimulationConfig, rng: random.Random, nodes) -> None:
        super().bind(config, rng, nodes)
        if self.hotspots is None:
            # Default hotspot: the mesh centre, where contention hurts most.
            self.hotspots = [NodeId(config.width // 2, config.height // 2)]
        unknown = [h for h in self.hotspots if h not in set(nodes)]
        if unknown:
            raise ValueError(f"hotspots outside the mesh: {unknown}")

    def destination(self, src: NodeId) -> NodeId:
        if self.rng.random() < self.hot_fraction:
            candidates = [h for h in self.hotspots if h != src]
            if candidates:
                return self.rng.choice(candidates)
        return self._random_other_node(src)
