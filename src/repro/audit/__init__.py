"""Runtime invariant auditing (see docs/auditing.md).

Opt-in per-cycle checking that the simulator's state machine never
leaks, duplicates, reorders or teleports a flit, never unbalances a
credit loop, and never emits an illegal crossbar matching — plus a
delta-debugging shrinker that turns a failing run into a minimal,
replayable JSON reproducer.
"""

from repro.audit.engine import AuditEngine, NetworkSnapshot
from repro.audit.invariants import (
    CreditConservationChecker,
    FlitConservationChecker,
    FlitLocationChecker,
    HandshakeChecker,
    InvariantChecker,
    InvariantViolation,
    MatchingChecker,
    WormOrderChecker,
    default_checkers,
)
from repro.audit.sharded import BoundaryLedger, ShardInvariantViolation
from repro.audit.shrink import (
    ShrinkResult,
    audit_failure,
    load_reproducer,
    save_reproducer,
    shrink,
)

__all__ = [
    "AuditEngine",
    "BoundaryLedger",
    "NetworkSnapshot",
    "ShardInvariantViolation",
    "InvariantChecker",
    "InvariantViolation",
    "FlitConservationChecker",
    "CreditConservationChecker",
    "WormOrderChecker",
    "HandshakeChecker",
    "MatchingChecker",
    "FlitLocationChecker",
    "default_checkers",
    "ShrinkResult",
    "audit_failure",
    "shrink",
    "save_reproducer",
    "load_reproducer",
]
