"""The invariant checkers of the runtime audit engine.

Each checker inspects the live network (or the per-cycle flit snapshot
the engine builds) at the end of an audited cycle and calls
:meth:`AuditEngine.fail` on the first inconsistency, raising a
structured :class:`InvariantViolation`.  The checks encode the state
machine's ground truth:

* **conservation** — every generated packet is delivered, dropped, or
  in flight, and a live worm's buffered + in-flight + delivered flits
  add up to its size;
* **credit** — per-VC credit accounting balances against occupancy,
  in-flight commitments and pending releases;
* **handshake** — each cached dead-port flag agrees with what the
  downstream router actually accepts;
* **wormhole-order** — VC FIFOs hold legal worm sequences (no
  interleaving, monotone sequence numbers, bodies never precede heads);
* **matching** — every grant set a RoCo 2x2 allocator emits is a legal
  matching, and a maximal one for the Mirror allocator;
* **location** — no flit is duplicated, and between consecutive audited
  cycles a flit only stays put or crosses one link.

Checkers run at the *end* of a cycle — after link delivery, traversal,
allocation and any runtime fault events — so the state they see is the
consistent inter-cycle state, not a mid-phase transient.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.arbiters.mirror import MirrorAllocator, MirrorGrant, max_possible_matching
from repro.core.types import CARDINALS, NodeId

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.audit.engine import AuditEngine, NetworkSnapshot


class InvariantViolation(RuntimeError):
    """A runtime invariant failed; the simulation state is corrupt.

    Carries enough structure for tooling (the shrinker, the CLI, CI) to
    act on it without parsing the message: the invariant name, the cycle
    it fired, the implicated node/packet when known, and a
    FlightRecorder excerpt of the implicated packet's journey.
    """

    def __init__(
        self,
        invariant: str,
        cycle: int,
        message: str,
        node: NodeId | None = None,
        pid: int | None = None,
        excerpt: str = "",
    ) -> None:
        self.invariant = invariant
        self.cycle = cycle
        self.message = message
        self.node = node
        self.pid = pid
        self.excerpt = excerpt
        where = f" at {node}" if node is not None else ""
        who = f" (packet {pid})" if pid is not None else ""
        text = f"[{invariant}] cycle {cycle}: {message}{where}{who}"
        if excerpt:
            text = f"{text}\n{excerpt}"
        super().__init__(text)


class InvariantChecker:
    """Base class: one named invariant audited once per audited cycle."""

    name = "base"

    def on_attach(self, engine: "AuditEngine") -> None:
        """One-time hook when the engine attaches to a simulator."""

    def check(
        self, engine: "AuditEngine", snapshot: "NetworkSnapshot", cycle: int
    ) -> None:
        """Validate the invariant; call ``engine.fail`` on violation."""


class FlitConservationChecker(InvariantChecker):
    """Generated == delivered + dropped + in-flight, down to the flit.

    Reconciles the simulator's packet counters against the actual buffer
    and wire occupancy in the snapshot: every live worm must account for
    all its flits, finished worms must have left no flit behind in a VC,
    and the number of distinct live packets found must equal the
    simulator's outstanding count (a leak in either direction fails).
    """

    name = "conservation"

    def check(self, engine, snapshot, cycle):
        sim = engine.sim
        stats = engine.network.stats
        booked = stats.total_delivered + stats.total_dropped + sim.outstanding
        if sim.generated != booked:
            engine.fail(
                self.name,
                cycle,
                f"{sim.generated} packets generated but "
                f"{stats.total_delivered} delivered + {stats.total_dropped} "
                f"dropped + {sim.outstanding} outstanding = {booked}",
            )
        live_found = set(snapshot.source_queued)
        for pid, packet in snapshot.packets.items():
            finished = (
                packet.delivered_cycle is not None or packet.dropped_cycle is not None
            )
            found = snapshot.flit_counts.get(pid, 0)
            if finished:
                # Flits of a dropped worm may still be draining off wires
                # or out of the source, but a VC queue must never hold
                # one — drops purge every router synchronously.
                in_queues = snapshot.queue_flits.get(pid, 0)
                if packet.delivered_cycle is not None and found:
                    engine.fail(
                        self.name,
                        cycle,
                        f"delivered packet still has {found} flit(s) in the "
                        "network",
                        pid=pid,
                    )
                elif in_queues:
                    engine.fail(
                        self.name,
                        cycle,
                        f"dropped packet still has {in_queues} flit(s) "
                        "buffered in VC queues",
                        pid=pid,
                    )
                continue
            live_found.add(pid)
            if pid in snapshot.source_queued:
                continue  # still queued at the PE: no flits exist yet
            total = found + packet.flits_delivered
            if total != packet.size:
                engine.fail(
                    self.name,
                    cycle,
                    f"worm of size {packet.size} accounts for {found} flit(s) "
                    f"in flight + {packet.flits_delivered} delivered = {total}",
                    pid=pid,
                )
        if len(live_found) != sim.outstanding:
            engine.fail(
                self.name,
                cycle,
                f"{len(live_found)} live packet(s) found in the network but "
                f"the simulator books {sim.outstanding} outstanding",
            )


class CreditConservationChecker(InvariantChecker):
    """Per-VC credit balance and structural occupancy bounds.

    For every VC: credits visible upstream + buffered flits + committed
    in-flight flits + releases waiting out the credit round-trip must
    equal the effective depth.  ``_available`` may legitimately go
    negative after a runtime buffer fault rebases credits with occupants
    still buffered, so the *sum* is the invariant, not positivity; the
    structural bound is that occupancy never exceeds the physical depth.
    """

    name = "credit"

    def check(self, engine, snapshot, cycle):
        for node, router in engine.network.routers.items():
            for vc in router.all_vcs():
                total = (
                    vc._available + len(vc.queue) + vc.expected + len(vc._releases)
                )
                if total != vc.effective_depth:
                    engine.fail(
                        self.name,
                        cycle,
                        f"{vc!r}: credits {vc._available} + occupancy "
                        f"{len(vc.queue)} + expected {vc.expected} + pending "
                        f"releases {len(vc._releases)} = {total}, want "
                        f"effective depth {vc.effective_depth}",
                        node=node,
                    )
                if vc.expected < 0:
                    engine.fail(
                        self.name,
                        cycle,
                        f"{vc!r}: negative in-flight commitment "
                        f"({vc.expected})",
                        node=node,
                    )
                if len(vc.queue) > vc.depth:
                    engine.fail(
                        self.name,
                        cycle,
                        f"{vc!r}: occupancy {len(vc.queue)} exceeds physical "
                        f"depth {vc.depth}",
                        node=node,
                    )


class HandshakeChecker(InvariantChecker):
    """Cached dead-port flags agree with downstream acceptance.

    The fault model caches ``port.dead`` at wire time and repairs it on
    every runtime fault/heal event; a stale flag silently black-holes or
    revives a link, so each audited cycle re-derives the truth from the
    downstream router.
    """

    name = "handshake"

    def check(self, engine, snapshot, cycle):
        for node, router in engine.network.routers.items():
            for port in router.outputs.values():
                if port.downstream is None:
                    continue
                truth = not port.downstream.accepting(port.input_dir)
                if port.dead != truth:
                    engine.fail(
                        self.name,
                        cycle,
                        f"output {port.direction.name} caches dead={port.dead} "
                        f"but downstream {port.downstream.node} "
                        f"{'rejects' if truth else 'accepts'} that input",
                        node=node,
                    )


class WormOrderChecker(InvariantChecker):
    """VC FIFO legality: worms drain contiguously and in order.

    A queue is legal when it is a sequence of per-packet runs where (a)
    no packet appears in two runs (interleaved worms), (b) sequence
    numbers within a run are consecutive and ascending, (c) every run
    after the first starts with the worm's head (a body flit never
    precedes its head), (d) the front run may start mid-worm only for
    the worm currently draining (``active_pid``), and (e) a run followed
    by another worm must end with its tail — VC reallocation is
    non-atomic, but only across a completed worm.
    """

    name = "wormhole-order"

    def check(self, engine, snapshot, cycle):
        for node, router in engine.network.routers.items():
            for vc in router.all_vcs():
                if not vc.queue:
                    continue
                runs: list[list] = []
                for flit in vc.queue:
                    if runs and runs[-1][0].packet.pid == flit.packet.pid:
                        runs[-1].append(flit)
                    else:
                        runs.append([flit])
                seen: set[int] = set()
                for index, run in enumerate(runs):
                    pid = run[0].packet.pid
                    if pid in seen:
                        engine.fail(
                            self.name,
                            cycle,
                            f"{vc!r}: worm {pid} is interleaved with another "
                            "worm",
                            node=node,
                            pid=pid,
                        )
                    seen.add(pid)
                    seqs = [flit.seq for flit in run]
                    for a, b in zip(seqs, seqs[1:]):
                        if b != a + 1:
                            engine.fail(
                                self.name,
                                cycle,
                                f"{vc!r}: non-consecutive flit sequence "
                                f"{a} -> {b}",
                                node=node,
                                pid=pid,
                            )
                    if run[0].seq != 0:
                        if index > 0:
                            engine.fail(
                                self.name,
                                cycle,
                                f"{vc!r}: body flit (seq {run[0].seq}) queued "
                                "before its worm's head",
                                node=node,
                                pid=pid,
                            )
                        elif not self._front_mid_worm_legal(vc, pid, runs):
                            engine.fail(
                                self.name,
                                cycle,
                                f"{vc!r}: front worm starts mid-body (seq "
                                f"{run[0].seq}) but the VC is not draining it "
                                f"(active_pid={vc.active_pid})",
                                node=node,
                                pid=pid,
                            )
                    if index < len(runs) - 1 and not run[-1].closes_worm:
                        engine.fail(
                            self.name,
                            cycle,
                            f"{vc!r}: worm {pid} followed by another worm "
                            "before its tail",
                            node=node,
                            pid=pid,
                        )

    @staticmethod
    def _front_mid_worm_legal(vc, pid: int, runs: list) -> bool:
        """Whether a mid-body front run reflects a legal drain state.

        The front worm's head has legitimately departed when the VC is
        still recorded as draining it — but ``active_pid`` tracks the
        *most recently pushed* head, so under non-atomic reallocation it
        may already name a worm queued behind the draining tail, and a
        purge of that later worm resets it to None entirely.  Only an
        ``active_pid`` foreign to the queue proves corruption.
        """
        if vc.active_pid == pid or vc.active_pid is None:
            return True
        later_heads = {
            run[0].packet.pid for run in runs[1:] if run[0].seq == 0
        }
        return vc.active_pid in later_heads


class _AuditedAllocator:
    """Transparent proxy validating every grant set an allocator emits.

    Legality (at most one grant per input port and per output slot, and
    every grant answering a real request) is enforced for any wrapped
    allocator; maximality only when the inner allocator is (or derives
    from) the Mirror allocator, whose construction guarantees it — the
    Sequential ablation intentionally forgoes the guarantee.
    """

    def __init__(self, inner, engine, node: NodeId, module_name: str) -> None:
        self.inner = inner
        self.engine = engine
        self.node = node
        self.module_name = module_name

    def allocate(self, requests) -> list[MirrorGrant]:
        grants = self.inner.allocate(requests)
        engine = self.engine
        cycle = engine.network.cycle
        ports: set[int] = set()
        slots: set[int] = set()
        for grant in grants:
            label = (
                f"{self.module_name} module grant (port {grant.port}, slot "
                f"{grant.direction_slot}, vc {grant.vc_index})"
            )
            if not (
                0 <= grant.port < 2
                and 0 <= grant.direction_slot < 2
                and 0 <= grant.vc_index < len(requests[0][0])
            ):
                engine.fail(
                    "matching", cycle, f"{label} is out of range", node=self.node
                )
            if not requests[grant.port][grant.direction_slot][grant.vc_index]:
                engine.fail(
                    "matching",
                    cycle,
                    f"{label} was never requested (forged grant)",
                    node=self.node,
                )
            if grant.port in ports:
                engine.fail(
                    "matching",
                    cycle,
                    f"{label}: input port granted twice in one cycle",
                    node=self.node,
                )
            if grant.direction_slot in slots:
                engine.fail(
                    "matching",
                    cycle,
                    f"{label}: output slot granted twice in one cycle",
                    node=self.node,
                )
            ports.add(grant.port)
            slots.add(grant.direction_slot)
        if isinstance(self.inner, MirrorAllocator):
            want = max_possible_matching(requests)
            if len(grants) != want:
                engine.fail(
                    "matching",
                    cycle,
                    f"{self.module_name} module matched {len(grants)} "
                    f"passage(s) where a maximal matching serves {want}",
                    node=self.node,
                )
        return grants


class MatchingChecker(InvariantChecker):
    """Wraps each RoCo module's 2x2 allocator with grant validation.

    Validation happens inline at grant time (the request matrix is not
    observable afterwards), so the per-cycle ``check`` is a no-op; the
    wrapper fires the moment an illegal or non-maximal grant set is
    produced.
    """

    name = "matching"

    def on_attach(self, engine):
        for node, router in engine.network.routers.items():
            modules = getattr(router, "modules", None)
            if modules is None:
                continue
            for name, module in modules.items():
                module.allocator = _AuditedAllocator(
                    module.allocator, engine, node, name
                )


class FlitLocationChecker(InvariantChecker):
    """Flits never teleport: between consecutive audited cycles a flit
    stays where it was or moves across exactly one link.

    Works on the engine's location snapshots (queue flits at the holding
    router, wire flits attributed to the *sending* router, source-side
    flits at their source node); duplicate flits are detected during
    snapshot construction, before any checker runs.  The continuity
    check is only meaningful for back-to-back snapshots, so it gates on
    ``audit interval == 1`` spacing.
    """

    name = "location"

    def check(self, engine, snapshot, cycle):
        prev = engine.prev_snapshot
        if prev is None or snapshot.cycle - prev.cycle != 1:
            return
        network = engine.network
        for key, node in snapshot.locations.items():
            old = prev.locations.get(key)
            if old is None or old == node:
                continue
            adjacent = any(
                network.neighbor_of(old, d) == node for d in CARDINALS
            )
            if not adjacent:
                engine.fail(
                    self.name,
                    cycle,
                    f"flit seq {key[1]} jumped from {old} to {node} in one "
                    "cycle (not topology-adjacent)",
                    node=node,
                    pid=key[0],
                )


def default_checkers() -> list[InvariantChecker]:
    """The full audit battery, in the order violations are reported."""
    return [
        FlitConservationChecker(),
        CreditConservationChecker(),
        WormOrderChecker(),
        HandshakeChecker(),
        MatchingChecker(),
        FlitLocationChecker(),
    ]
