"""``python -m repro audit`` — run simulations with invariant auditing.

Modes:

* single audited run (default): same simulation flags as the main CLI,
  with auditing forced on; exits 1 on a violation.
* ``--shrink FILE``: on violation, delta-debug the scenario down to a
  minimal reproducer and save it as runnable JSON.
* ``--replay FILE``: load a reproducer and re-run it under audit.
* ``--grid``: the CI smoke matrix — a small rate x router x fault grid
  under both schedulers, reporting per-cell wall time (report-only) and
  failing the process on any violation.
"""

from __future__ import annotations

import argparse
import sys
import time

from repro.audit.invariants import InvariantViolation
from repro.audit.shrink import load_reproducer, save_reproducer, shrink
from repro.core.config import RouterConfig, SimulationConfig
from repro.core.simulator import DeadlockError, Simulator, run_simulation
from repro.core.types import NodeId
from repro.faults.schedule import FaultSchedule
from repro.routers import ROUTER_CLASSES
from repro.traffic import TRAFFIC_CLASSES


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro audit",
        description="Run simulations with per-cycle invariant auditing",
    )
    parser.add_argument("--router", choices=sorted(ROUTER_CLASSES), default="roco")
    parser.add_argument(
        "--routing", choices=["xy", "xy-yx", "adaptive"], default="xy"
    )
    parser.add_argument(
        "--traffic", choices=sorted(TRAFFIC_CLASSES), default="uniform"
    )
    parser.add_argument("--rate", type=float, default=0.2)
    parser.add_argument("--size", type=int, default=8, help="mesh is size x size")
    parser.add_argument("--topology", choices=["mesh", "torus"], default="mesh")
    parser.add_argument("--packets", type=int, default=500, help="measured packets")
    parser.add_argument("--warmup", type=int, default=100)
    parser.add_argument("--seed", type=int, default=1)
    parser.add_argument(
        "--full-sweep",
        action="store_true",
        help="step every router every cycle (reference scheduler)",
    )
    parser.add_argument(
        "--interval",
        type=int,
        default=1,
        metavar="N",
        help="audit every Nth cycle (location continuity needs 1)",
    )
    faults = parser.add_argument_group("faults")
    faults.add_argument(
        "--faults", type=int, default=0, help="runtime faults to sample"
    )
    faults.add_argument(
        "--fault-class", choices=["critical", "non-critical"], default="critical"
    )
    faults.add_argument(
        "--fault-schedule", default=None, metavar="FILE", help="JSON fault schedule"
    )
    faults.add_argument(
        "--mtbf",
        type=float,
        default=None,
        metavar="CYCLES",
        help="mean time between sampled fault arrivals (default 500)",
    )
    faults.add_argument(
        "--weibull-shape", type=float, default=None, metavar="K"
    )
    faults.add_argument(
        "--transient", type=int, default=None, metavar="CYCLES"
    )
    modes = parser.add_argument_group("modes")
    modes.add_argument(
        "--shrink",
        default=None,
        metavar="FILE",
        help="on violation, shrink the scenario and save a JSON reproducer",
    )
    modes.add_argument(
        "--replay",
        default=None,
        metavar="FILE",
        help="re-run a saved reproducer under audit",
    )
    modes.add_argument(
        "--grid",
        action="store_true",
        help="run the CI smoke grid (rate x router x fault, both schedulers)",
    )
    return parser


def _build_scenario(args) -> tuple[SimulationConfig, FaultSchedule | None]:
    config = SimulationConfig(
        width=args.size,
        height=args.size,
        topology=args.topology,
        router=args.router,
        routing=args.routing,
        traffic=args.traffic,
        injection_rate=args.rate,
        warmup_packets=args.warmup,
        measure_packets=args.packets,
        seed=args.seed,
        audit=True,
    )
    if args.fault_schedule is not None:
        return config, FaultSchedule.from_json(args.fault_schedule)
    if args.faults:
        nodes = [NodeId(x, y) for y in range(args.size) for x in range(args.size)]
        schedule = FaultSchedule.sampled(
            nodes,
            count=args.faults,
            seed=args.seed,
            mtbf=args.mtbf if args.mtbf is not None else 500.0,
            critical=args.fault_class == "critical",
            weibull_shape=args.weibull_shape,
            duration=args.transient,
            router_config=RouterConfig.for_architecture(args.router),
        )
        return config, schedule
    return config, None


def _describe(violation: InvariantViolation) -> None:
    print(f"INVARIANT VIOLATION: {violation}", file=sys.stderr)


def _run_audited(
    config: SimulationConfig,
    schedule: FaultSchedule | None,
    full_sweep: bool = False,
    interval: int = 1,
) -> InvariantViolation | None:
    sim = Simulator(config, schedule=schedule, full_sweep=full_sweep)
    if sim.audit is not None:
        sim.audit.interval = interval
    try:
        result = sim.run()
    except InvariantViolation as violation:
        return violation
    except DeadlockError as exc:
        print(f"run did not complete: {exc}", file=sys.stderr)
        return None
    print(result.summary_line())
    return None


def _run_single(args) -> int:
    config, schedule = _build_scenario(args)
    violation = _run_audited(
        config, schedule, full_sweep=args.full_sweep, interval=args.interval
    )
    if violation is None:
        print("audit: all invariants held", file=sys.stderr)
        return 0
    _describe(violation)
    if args.shrink:
        print("shrinking...", file=sys.stderr)
        result = shrink(config, schedule)
        save_reproducer(args.shrink, result.config, result.schedule, result.violation)
        print(
            f"reproducer saved to {args.shrink}: "
            f"{result.config.total_packets} packet(s), "
            f"{len(result.schedule) if result.schedule else 0} fault event(s), "
            f"{result.runs} shrink run(s)",
            file=sys.stderr,
        )
    return 1


def _run_replay(args) -> int:
    config, schedule, recorded = load_reproducer(args.replay)
    print(
        f"replaying {args.replay}: expecting [{recorded.get('invariant')}] "
        f"around cycle {recorded.get('cycle')}",
        file=sys.stderr,
    )
    violation = _run_audited(config, schedule, full_sweep=args.full_sweep)
    if violation is None:
        print("reproducer ran clean (violation did not reproduce)", file=sys.stderr)
        return 1
    _describe(violation)
    return 0


def _run_grid(args) -> int:
    """The audit-smoke matrix: tiny audited runs across the state space.

    Wall time is printed per cell but is report-only; the exit status
    reflects invariant violations (and unexpected crashes) alone.
    """
    failures = 0
    cells = 0
    for router in ("roco", "generic"):
        for rate in (0.05, 0.2):
            for fault_count in (0, 2):
                for full_sweep in (False, True):
                    cells += 1
                    config = SimulationConfig(
                        width=4,
                        height=4,
                        router=router,
                        routing="xy-yx" if router == "roco" else "xy",
                        injection_rate=rate,
                        warmup_packets=30,
                        measure_packets=150,
                        seed=args.seed,
                        audit=True,
                    )
                    schedule = None
                    if fault_count:
                        nodes = [
                            NodeId(x, y) for y in range(4) for x in range(4)
                        ]
                        schedule = FaultSchedule.sampled(
                            nodes,
                            count=fault_count,
                            seed=args.seed,
                            mtbf=150.0,
                            critical=True,
                            router_config=RouterConfig.for_architecture(router),
                        )
                    label = (
                        f"{router:>8s} rate={rate:.2f} faults={fault_count} "
                        f"{'full-sweep' if full_sweep else 'active'}"
                    )
                    started = time.perf_counter()
                    try:
                        run_simulation(
                            config, schedule=schedule, full_sweep=full_sweep
                        )
                        status = "ok"
                    except InvariantViolation as violation:
                        failures += 1
                        status = "VIOLATION"
                        _describe(violation)
                    except DeadlockError as exc:
                        # A faulty grid cell may legally fail to drain;
                        # a fault-free one may not.
                        if fault_count:
                            status = f"no-drain ({type(exc).__name__})"
                        else:
                            failures += 1
                            status = f"DEADLOCK: {exc}"
                    elapsed = time.perf_counter() - started
                    print(f"{label}: {status} [{elapsed:.2f}s]")
    print(
        f"audit grid: {cells} cells, {failures} failure(s)",
        file=sys.stderr,
    )
    return 1 if failures else 0


def audit_main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    if args.interval < 1:
        print("error: --interval must be >= 1", file=sys.stderr)
        return 2
    if args.replay is not None and args.grid:
        print("error: --replay and --grid are mutually exclusive", file=sys.stderr)
        return 2
    if args.grid:
        return _run_grid(args)
    if args.replay is not None:
        return _run_replay(args)
    return _run_single(args)


if __name__ == "__main__":  # pragma: no cover - module entry convenience
    sys.exit(audit_main())
