"""Delta-debugging shrinker for audit failures.

Given a scenario (config + optional fault schedule) whose audited run
raises an :class:`InvariantViolation`, :func:`shrink` minimises it while
preserving the failure: the cycle budget is cut to just past the
violation, warm-up is dropped, the packet count is bisected down,
fault-schedule events are ddmin-reduced, and a few alternate traffic
seeds are probed for an even smaller failing run.  The result can be
saved as a runnable JSON reproducer (``repro audit --replay file``).

The run function is injectable so tests (and future checkers with
external triggers) can shrink scenarios whose corruption comes from a
fixture rather than the simulator itself; the default,
:func:`audit_failure`, simply runs the scenario with auditing on.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, replace
from pathlib import Path
from typing import Callable

from repro.audit.invariants import InvariantViolation
from repro.core.config import RouterConfig, SimulationConfig
from repro.faults.schedule import FaultSchedule

#: Reproducer file format tag.
SCHEMA = "repro-audit/v1"

#: A scenario runner: returns the violation the scenario raises, or
#: None when it runs clean (the candidate does not reproduce).
RunFn = Callable[[SimulationConfig, FaultSchedule | None], InvariantViolation | None]


def audit_failure(
    config: SimulationConfig, schedule: FaultSchedule | None = None
) -> InvariantViolation | None:
    """Run the scenario with auditing forced on; return its violation.

    Deadlock/drain failures are *not* violations — a shrunken candidate
    that merely deadlocks did not reproduce the state corruption.
    """
    from repro.core.simulator import DeadlockError, run_simulation

    try:
        run_simulation(replace(config, audit=True), schedule=schedule)
    except InvariantViolation as violation:
        return violation
    except DeadlockError:
        return None
    return None


@dataclass
class ShrinkResult:
    """The minimised scenario and the violation it still raises."""

    config: SimulationConfig
    schedule: FaultSchedule | None
    violation: InvariantViolation
    runs: int

    @property
    def total_packets(self) -> int:
        return self.config.total_packets


def shrink(
    config: SimulationConfig,
    schedule: FaultSchedule | None = None,
    run_fn: RunFn | None = None,
    max_runs: int = 128,
) -> ShrinkResult:
    """Minimise a failing scenario with bounded delta debugging.

    Raises ``ValueError`` when the initial scenario does not fail —
    there is nothing to shrink.  ``max_runs`` caps the total number of
    simulations; passes degrade gracefully when the budget runs out.
    """
    runner = run_fn if run_fn is not None else audit_failure
    runs = 0

    def attempt(
        cfg: SimulationConfig, sched: FaultSchedule | None
    ) -> InvariantViolation | None:
        nonlocal runs
        if runs >= max_runs:
            return None
        runs += 1
        return runner(cfg, sched)

    violation = attempt(config, schedule)
    if violation is None:
        raise ValueError("scenario does not fail under audit; nothing to shrink")
    best = [config, schedule, violation]

    def adopt(cfg: SimulationConfig, sched: FaultSchedule | None) -> bool:
        candidate = attempt(cfg, sched)
        if candidate is None:
            return False
        best[0], best[1], best[2] = cfg, sched, candidate
        return True

    def tighten_cycles() -> None:
        """Cut the run right past the (current) violation cycle."""
        limit = best[2].cycle + 1
        if limit < best[0].max_cycles:
            adopt(replace(best[0], max_cycles=limit), best[1])

    tighten_cycles()
    if best[0].warmup_packets:
        adopt(replace(best[0], warmup_packets=0), best[1])
        tighten_cycles()

    # Bisect the measured packet count towards 1.  Failure is not
    # strictly monotone in packet count, so this is a greedy probe: a
    # failing midpoint becomes the new ceiling, a clean one the floor.
    floor = 1
    while floor < best[0].measure_packets and runs < max_runs:
        probe = (floor + best[0].measure_packets) // 2
        if probe >= best[0].measure_packets:
            break
        if adopt(replace(best[0], measure_packets=probe), best[1]):
            tighten_cycles()
        else:
            floor = probe + 1

    if best[1] is not None and len(best[1]) > 1:
        # Adoption happens inside the pass; afterwards best[1] holds the
        # smallest failing schedule found.
        _ddmin_events(list(best[1].events), best, adopt)
        tighten_cycles()

    # Alternate seeds sometimes fail much earlier; probe a few at half
    # the current packet count and keep the first that still fails.
    half = max(1, best[0].measure_packets // 2)
    if half < best[0].measure_packets:
        for offset in (1, 2, 3):
            if runs >= max_runs:
                break
            candidate = replace(
                best[0], seed=config.seed + offset, measure_packets=half
            )
            if adopt(candidate, best[1]):
                tighten_cycles()
                break

    return ShrinkResult(
        config=best[0], schedule=best[1], violation=best[2], runs=runs
    )


def _ddmin_events(events: list, best: list, adopt) -> list:
    """Complement-style ddmin over fault-schedule events."""
    n = 2
    while len(events) >= 2:
        chunk = max(1, len(events) // n)
        reduced = False
        for start in range(0, len(events), chunk):
            candidate = events[:start] + events[start + chunk :]
            if adopt(best[0], FaultSchedule(candidate) if candidate else None):
                events = candidate
                n = max(2, n - 1)
                reduced = True
                break
        if not reduced:
            if n >= len(events):
                break
            n = min(len(events), n * 2)
    if len(events) == 1 and adopt(best[0], None):
        events = []
    return events


# ----------------------------------------------------------------------
# Reproducer files
# ----------------------------------------------------------------------


def config_from_payload(payload: dict) -> SimulationConfig:
    """Inverse of :func:`repro.harness.parallel.config_payload`."""
    data = dict(payload)
    router_config = data.pop("router_config", None)
    if router_config is not None:
        router_config = RouterConfig(**router_config)
    return SimulationConfig(router_config=router_config, **data)


def reproducer_payload(
    config: SimulationConfig,
    schedule: FaultSchedule | None,
    violation: InvariantViolation,
) -> dict:
    from repro.harness.parallel import config_payload

    return {
        "schema": SCHEMA,
        "config": config_payload(config),
        "schedule": schedule.to_payload() if schedule else None,
        "violation": {
            "invariant": violation.invariant,
            "cycle": violation.cycle,
            "message": violation.message,
            "node": [violation.node.x, violation.node.y]
            if violation.node is not None
            else None,
            "pid": violation.pid,
        },
    }


def save_reproducer(
    path: "str | Path",
    config: SimulationConfig,
    schedule: FaultSchedule | None,
    violation: InvariantViolation,
) -> None:
    payload = reproducer_payload(config, schedule, violation)
    Path(path).write_text(json.dumps(payload, indent=2) + "\n")


def load_reproducer(
    path: "str | Path",
) -> tuple[SimulationConfig, FaultSchedule | None, dict]:
    """Load a reproducer; the returned config has auditing forced on."""
    payload = json.loads(Path(path).read_text())
    if payload.get("schema") != SCHEMA:
        raise ValueError(
            f"not an audit reproducer (schema {payload.get('schema')!r})"
        )
    config = replace(config_from_payload(payload["config"]), audit=True)
    schedule = (
        FaultSchedule.from_payload(payload["schedule"])
        if payload.get("schedule")
        else None
    )
    return config, schedule, payload.get("violation", {})
