"""Cross-shard conservation auditing (the boundary ledger).

The single-process audit engine (repro.audit.engine) walks live object
state, which no longer exists in one place once the mesh is sharded.
``SimulationConfig(audit=True)`` on a sharded run therefore enables this
module instead: every tile reports a per-cycle accounting snapshot with
its ``alloc_done`` message, and the coordinator's
:class:`BoundaryLedger` reconciles them against its own record of what
crossed each boundary.

Checked every cycle:

* **flit conservation** — flits created so far (from the generation
  oracle) must equal flits currently held by some tile (source
  backlogs, VC buffers, wires — ghost-ingress wires included) plus
  flits consumed at PEs.  A boundary message lost in transit shows up
  here within one cycle, because the protocol guarantees zero flits are
  coordinator-held at snapshot time (every flit routed from cycle
  ``t``'s traversal rides cycle ``t``'s alloc grant).
* **boundary transit** — cumulative flit messages the coordinator
  routed to each tile must equal the messages that tile reports having
  applied (per-edge send counters localise a mismatch).
* **credit balance** — each tile checks, for every VC it is
  authoritative over at a cut, that ``available == effective_depth -
  occupied - expected - unmatured releases`` after remote deltas are
  applied; violations ride the audit payload and are raised here.

Violations raise :class:`ShardInvariantViolation` naming the invariant,
cycle and tile — fail-stop, like the in-process audit engine.
"""

from __future__ import annotations


class ShardInvariantViolation(RuntimeError):
    """A cross-shard invariant broke (fail-stop diagnostics)."""

    def __init__(
        self, invariant: str, cycle: int, tile: int | None, message: str
    ) -> None:
        where = f"tile {tile}" if tile is not None else "coordinator"
        super().__init__(
            f"[{invariant}] cycle {cycle} ({where}): {message}"
        )
        self.invariant = invariant
        self.cycle = cycle
        self.tile = tile


class BoundaryLedger:
    """The coordinator's cumulative record of cross-boundary traffic."""

    def __init__(self, plan, flits_per_packet: int) -> None:
        self.plan = plan
        self.flits_per_packet = flits_per_packet
        #: Cumulative flit messages routed *to* each tile.
        self.sent_to = [0] * plan.num_tiles
        #: Checks performed (telemetry for tests / reports).
        self.cycles_checked = 0

    def note_sent(self, to_tile: int, count: int) -> None:
        self.sent_to[to_tile] += count

    def _tile_violations(self, cycle: int, audits) -> None:
        for tile, payload in enumerate(audits):
            for message in payload["violations"]:
                raise ShardInvariantViolation(
                    "credit-balance", cycle, tile, message
                )

    def check(self, cycle: int, generated_packets: int, audits) -> None:
        """Per-cycle reconciliation after every tile's alloc_done."""
        if any(payload is None for payload in audits):
            raise ShardInvariantViolation(
                "audit-payload", cycle, None,
                "a tile omitted its audit payload while auditing is on",
            )
        self._tile_violations(cycle, audits)
        for tile, payload in enumerate(audits):
            if payload["applied"] != self.sent_to[tile]:
                raise ShardInvariantViolation(
                    "boundary-transit", cycle, tile,
                    f"coordinator routed {self.sent_to[tile]} flit "
                    f"message(s) to this tile but it applied "
                    f"{payload['applied']}",
                )
        created_flits = generated_packets * self.flits_per_packet
        held = sum(payload["occupancy"] for payload in audits)
        ejected = sum(payload["ejected"] for payload in audits)
        if held + ejected != created_flits:
            per_tile = ", ".join(
                f"t{tile}: occ={payload['occupancy']} ej={payload['ejected']}"
                for tile, payload in enumerate(audits)
            )
            raise ShardInvariantViolation(
                "flit-conservation", cycle, None,
                f"{created_flits} flit(s) created but {held} held + "
                f"{ejected} ejected across tiles ({per_tile})",
            )
        self.cycles_checked += 1

    def final_check(
        self, cycle: int, generated_packets: int, audits, drained: bool
    ) -> None:
        """End-of-run ledger closure.

        On a drained run every created flit must have been consumed at
        a PE; on a max_cycles cutoff the per-cycle balance (including
        still-buffered flits) must simply hold one last time.
        """
        if any(payload is None for payload in audits):
            return  # run ended before the first audited cycle
        self._tile_violations(cycle, audits)
        created_flits = generated_packets * self.flits_per_packet
        held = sum(payload["occupancy"] for payload in audits)
        ejected = sum(payload["ejected"] for payload in audits)
        if drained and (held != 0 or ejected != created_flits):
            raise ShardInvariantViolation(
                "flit-conservation", cycle, None,
                f"drained run left {held} flit(s) buffered with {ejected} of "
                f"{created_flits} consumed",
            )
        if not drained and held + ejected != created_flits:
            raise ShardInvariantViolation(
                "flit-conservation", cycle, None,
                f"{created_flits} flit(s) created but {held} held + "
                f"{ejected} ejected at cutoff",
            )
