"""The audit engine: per-cycle invariant checking for a live simulator.

Opt in via ``SimulationConfig(audit=True)`` (or ``python -m repro
audit``).  The engine rides the network's existing end-of-cycle observer
hook (``Network.on_cycle_stepped``): at :meth:`attach` time it chains
any observer already installed — instrumentation probes, scheduler
tests, deliberate corruption fixtures — calling it *first* so the audit
always sees the cycle's final state, then builds one
:class:`NetworkSnapshot` and runs every checker over it.

When auditing is off the simulator constructs no engine and the hot
path pays nothing beyond the pre-existing ``is not None`` checks.  When
on, a :class:`~repro.instrumentation.trace.FlightRecorder` is attached
(if the caller did not bring one) so a violation can quote the
implicated packet's journey.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.audit.invariants import (
    InvariantChecker,
    InvariantViolation,
    default_checkers,
)
from repro.core.types import NodeId, Packet

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.simulator import Simulator

#: Event cap for the engine's own FlightRecorder.  Large enough to hold
#: the tail of any shrunken reproducer; the recorder's ``truncated``
#: flag marks longer runs honestly.
AUDIT_TRACE_EVENTS = 250_000


@dataclass
class NetworkSnapshot:
    """Where every flit is at the end of one audited cycle.

    ``locations`` maps ``(pid, seq)`` to the node holding the flit —
    VC-buffered flits at their router, wire flits at the *sending*
    router (they left it this or last cycle), source-side flits at
    their source node.  ``queue_flits`` counts only VC-buffered flits
    per packet (drop purging must empty those); ``flit_counts`` counts
    everything.  ``source_queued`` holds packets still waiting at their
    PE, whose flits do not exist yet.
    """

    cycle: int
    locations: dict[tuple[int, int], NodeId] = field(default_factory=dict)
    flit_counts: dict[int, int] = field(default_factory=dict)
    queue_flits: dict[int, int] = field(default_factory=dict)
    packets: dict[int, Packet] = field(default_factory=dict)
    source_queued: set[int] = field(default_factory=set)


class AuditEngine:
    """Runs the invariant battery at the end of every audited cycle."""

    def __init__(
        self,
        sim: "Simulator",
        checkers: list[InvariantChecker] | None = None,
        interval: int = 1,
    ) -> None:
        if interval < 1:
            raise ValueError("audit interval must be >= 1 cycles")
        self.sim = sim
        self.network = sim.network
        self.checkers = list(checkers) if checkers is not None else default_checkers()
        #: Audit every Nth cycle.  The flit-location continuity check
        #: needs back-to-back snapshots and self-gates at interval > 1.
        self.interval = interval
        self.cycles_audited = 0
        self.checks_run = 0
        #: Previous cycle's snapshot, for the location continuity check.
        self.prev_snapshot: NetworkSnapshot | None = None
        self._chained = None
        self._attached = False
        self._own_trace = False

    # ------------------------------------------------------------------

    def attach(self) -> None:
        """Hook into the network; idempotent.

        Called by ``Simulator.run`` so that observers installed between
        simulator construction and the run (probes, test fixtures) are
        chained rather than rejected: the audit wraps whatever is there,
        invokes it first, then checks the same cycle's final state.
        """
        if self._attached:
            return
        network = self.network
        self._chained = network.on_cycle_stepped
        network.on_cycle_stepped = self._on_cycle_stepped
        if network.trace is None:
            from repro.instrumentation.trace import FlightRecorder

            network.trace = FlightRecorder(max_events=AUDIT_TRACE_EVENTS)
            self._own_trace = True
        for checker in self.checkers:
            checker.on_attach(self)
        self._attached = True

    def _on_cycle_stepped(self, cycle: int, stepped) -> None:
        if self._chained is not None:
            self._chained(cycle, stepped)
        if cycle % self.interval == 0:
            self.run_checks(cycle)

    def run_checks(self, cycle: int) -> None:
        """Snapshot the network and run every checker over it."""
        snapshot = self._snapshot(cycle)
        for checker in self.checkers:
            checker.check(self, snapshot, cycle)
            self.checks_run += 1
        self.prev_snapshot = snapshot
        self.cycles_audited += 1

    def final_check(self, cycle: int) -> None:
        """End-of-run conservation: nothing may remain outstanding.

        Runs after the simulator classified and dropped every survivor,
        so the packet ledger must balance exactly.
        """
        sim = self.sim
        stats = self.network.stats
        if sim.outstanding != 0:
            self.fail(
                "conservation",
                cycle,
                f"{sim.outstanding} packet(s) still outstanding after "
                "end-of-run survivor accounting",
            )
        booked = stats.total_delivered + stats.total_dropped
        if sim.generated != booked:
            self.fail(
                "conservation",
                cycle,
                f"{sim.generated} packets generated but only "
                f"{stats.total_delivered} delivered + {stats.total_dropped} "
                "dropped at end of run",
            )
        by_reason = sum(stats.drops_by_reason.values())
        if by_reason != stats.total_dropped:
            self.fail(
                "conservation",
                cycle,
                f"drop reasons account for {by_reason} packet(s) but "
                f"{stats.total_dropped} were dropped",
            )

    # ------------------------------------------------------------------

    def fail(
        self,
        invariant: str,
        cycle: int,
        message: str,
        node: NodeId | None = None,
        pid: int | None = None,
    ) -> None:
        """Raise a structured violation, quoting the packet's journey."""
        excerpt = ""
        trace = self.network.trace
        if trace is not None and pid is not None:
            excerpt = trace.format_journey(pid)
        raise InvariantViolation(
            invariant, cycle, message, node=node, pid=pid, excerpt=excerpt
        )

    # ------------------------------------------------------------------

    def _snapshot(self, cycle: int) -> NetworkSnapshot:
        snap = NetworkSnapshot(cycle)
        locations = snap.locations
        flit_counts = snap.flit_counts
        packets = snap.packets

        def note(flit, node: NodeId, in_queue: bool) -> None:
            packet = flit.packet
            key = (packet.pid, flit.seq)
            if key in locations:
                self.fail(
                    "location",
                    cycle,
                    f"flit seq {flit.seq} exists both at {locations[key]} "
                    f"and {node} (duplicated flit)",
                    node=node,
                    pid=packet.pid,
                )
            locations[key] = node
            packets[packet.pid] = packet
            flit_counts[packet.pid] = flit_counts.get(packet.pid, 0) + 1
            if in_queue:
                snap.queue_flits[packet.pid] = (
                    snap.queue_flits.get(packet.pid, 0) + 1
                )

        for node, router in self.network.routers.items():
            for vc in router.all_vcs():
                for flit in vc.queue:
                    note(flit, node, in_queue=True)
            # Each inter-router link is owned by exactly one upstream
            # output port, so walking outputs visits every wire once;
            # in-flight flits are attributed to the sender.
            for port in router.outputs.values():
                for flit in port.link.pending():
                    note(flit, node, in_queue=False)
        for node, source in self.sim.sources.items():
            if source.current:
                for flit in source.current:
                    note(flit, node, in_queue=False)
            for packet in source.queue:
                snap.source_queued.add(packet.pid)
                packets[packet.pid] = packet
        return snap
