"""Plain-text rendering of reproduced tables and figures.

The benchmarks call these to print paper-style rows next to their
assertions, and ``examples/reproduce_paper.py`` uses them to emit a
full report.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence


def render_table(
    headers: Sequence[str], rows: Iterable[Sequence], title: str = ""
) -> str:
    """Fixed-width ASCII table."""
    str_rows = [[_fmt(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = []
    if title:
        lines.append(title)
    sep = "-+-".join("-" * w for w in widths)
    lines.append(" | ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append(sep)
    for row in str_rows:
        lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def _fmt(cell) -> str:
    if isinstance(cell, float):
        return f"{cell:.3f}"
    return str(cell)


def render_curves(
    curves: dict[str, list[tuple[float, float]]],
    x_label: str = "rate",
    y_label: str = "value",
    title: str = "",
) -> str:
    """Render ``{series: [(x, y), ...]}`` as one table, series as columns."""
    series = list(curves)
    xs = [x for x, _ in curves[series[0]]]
    headers = [x_label] + series
    rows = []
    for i, x in enumerate(xs):
        rows.append([f"{x:.2f}"] + [f"{curves[s][i][1]:.2f}" for s in series])
    return render_table(headers, rows, title=title)


def render_latency_figure(data: dict, figure_name: str, traffic: str) -> str:
    """Render a Figure 8/9/10 style result (latency vs rate per routing)."""
    blocks = [f"== {figure_name}: average latency (cycles), {traffic} traffic =="]
    for routing, curves in data.items():
        blocks.append(
            render_curves(
                curves,
                x_label="inj rate",
                title=f"-- {routing} routing --",
            )
        )
    return "\n\n".join(blocks)


def render_fault_figure(data: dict, figure_name: str) -> str:
    """Render a Figure 11/12 style result (completion vs fault count)."""
    blocks = [f"== {figure_name}: packet completion probability =="]
    for routing, per_router in data.items():
        counts = sorted(next(iter(per_router.values())))
        headers = ["#faults"] + list(per_router)
        rows = [
            [str(c)] + [f"{per_router[r][c]:.3f}" for r in per_router]
            for c in counts
        ]
        blocks.append(render_table(headers, rows, title=f"-- {routing} routing --"))
    return "\n\n".join(blocks)


def render_figure13(data: dict) -> str:
    headers = ["traffic"] + list(next(iter(data.values())))
    rows = [
        [traffic] + [f"{per_router[r]:.3f}" for r in per_router]
        for traffic, per_router in data.items()
    ]
    return render_table(
        headers, rows, title="== Figure 13: energy per packet (nJ), 30% injection =="
    )


def render_figure14(data: dict) -> str:
    blocks = ["== Figure 14: PEF (nJ x cycles / probability) =="]
    for label, per_router in data.items():
        counts = sorted(next(iter(per_router.values())))
        headers = ["#faults"] + [
            f"{r} pef|lat" for r in per_router
        ]
        rows = []
        for c in counts:
            row = [str(c)]
            for r in per_router:
                cell = per_router[r][c]
                row.append(f"{cell['pef']:.1f}|{cell['latency']:.1f}")
            rows.append(row)
        blocks.append(render_table(headers, rows, title=f"-- {label} faults --"))
    return "\n\n".join(blocks)


def render_table1(data: dict) -> str:
    headers = ["routing", "Row P1", "Row P2", "Col P1", "Col P2"]
    rows = []
    for routing, summary in data.items():
        rows.append(
            [
                routing,
                " ".join(summary["row_port1"]),
                " ".join(summary["row_port2"]),
                " ".join(summary["column_port1"]),
                " ".join(summary["column_port2"]),
            ]
        )
    return render_table(headers, rows, title="== Table 1: VC buffer configuration ==")


def render_table2(data: dict) -> str:
    rows = [[name, f"{p:.3f}"] for name, p in data.items()]
    return render_table(
        ["router", "non-blocking p"],
        rows,
        title="== Table 2: non-blocking probabilities ==",
    )
