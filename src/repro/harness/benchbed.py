"""Benchbed: unified benchmark registry, runner and regression gate.

Every ``benchmarks/bench_*.py`` script registers one entry point with
the global :data:`REGISTRY` via the :func:`benchmark` decorator.  A
registered benchmark is a function of one :class:`BenchContext` that
produces a scalar *headline metric* (saturation rate, completion ratio,
PEF improvement, energy per flit, ...) plus free-form details.  The bed
then provides, uniformly for all of them:

* **fidelity tiers** — ``quick`` (CI smoke: shrunk packet counts and
  rate grids, single seed) and ``full`` (the paper-shape ``BENCH``
  scale the pytest benchmarks assert on);
* **a runner** with warm-up runs and ``N`` timed repeats that records
  wall time, simulated cycles/second and scheduler counters;
* **canonical artifacts** — one schema-versioned, seed- and
  config-stamped ``BENCH_<name>.json`` per benchmark, with no
  timestamps in the comparison payload so artifacts are diffable;
* **a baseline-comparison engine** (``python -m repro bench compare
  old new``) computing per-benchmark deltas with simple bootstrap
  confidence intervals, exiting non-zero on regression beyond a
  configurable threshold (default 10% wall time, 2% headline drift);
* **an opt-in profiling hook** (``--profile``) that captures a cProfile
  hotspot table per benchmark into the artifact.

Determinism contract: headline metrics must be pure functions of the
benchmark's seeded configuration — never of wall time — so the same
tier and seed produce byte-identical comparison payloads on any
machine.  Wall-time samples live alongside but are only gated when the
baseline was produced on comparable hardware (CI passes ``--no-wall``
against the committed cross-machine baseline).
"""

from __future__ import annotations

import argparse
import fnmatch
import importlib.util
import json
import os
import platform
import random
import statistics
import sys
import time
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import Any, Callable, Iterator, Mapping, Sequence

from repro.core.config import SimulationConfig
from repro.core.simulator import SimulationResult, run_simulation
from repro.harness.experiment import ExperimentScale
from repro.harness.parallel import ParallelExecutor
from repro.harness.report import render_table
from repro.instrumentation.profiling import profile_call

#: Bump on any backwards-incompatible artifact change; compare refuses
#: to diff artifacts written under a different schema version.
SCHEMA_VERSION = 1

#: Artifact file name prefix: ``BENCH_<benchmark name>.json``.
ARTIFACT_PREFIX = "BENCH_"

#: Known fidelity tiers.
TIERS = ("quick", "full")

#: ``tier -> (warmup runs, timed repeats)`` defaults.
TIER_DEFAULTS = {"quick": (0, 1), "full": (1, 3)}

#: Default regression thresholds (fractions).
DEFAULT_WALL_THRESHOLD = 0.10
DEFAULT_HEADLINE_THRESHOLD = 0.02

#: Packet counts the quick tier clamps an experiment scale down to.
QUICK_WARMUP_PACKETS = 60
QUICK_MEASURE_PACKETS = 250


class BenchbedError(Exception):
    """Usage or configuration error in the benchbed itself."""


class BenchThresholdError(AssertionError):
    """A headline metric violated an absolute threshold.

    Subclasses :class:`AssertionError` so pytest renders it as a plain
    test failure — but the message carries the metric, the bound, the
    shortfall and the caller's context table instead of a bare
    ``assert``'s source line.
    """


@dataclass(frozen=True)
class Threshold:
    """An absolute floor/ceiling on a headline metric.

    :meth:`check` raises :class:`BenchThresholdError` with a rendered,
    contextual message — use it instead of a bare ``assert`` so a noisy
    runner produces a diagnosable comparison failure.
    """

    metric: str
    floor: float | None = None
    ceiling: float | None = None

    def check(self, value: float, context: str = "") -> float:
        """Validate ``value``; return it unchanged when within bounds."""
        problem = None
        if self.floor is not None and value < self.floor:
            shortfall = (self.floor - value) / abs(self.floor)
            problem = (
                f"{self.metric} = {value:.4g} fell below its floor "
                f"{self.floor:.4g} ({shortfall:.1%} short)"
            )
        if self.ceiling is not None and value > self.ceiling:
            excess = (value - self.ceiling) / abs(self.ceiling)
            problem = (
                f"{self.metric} = {value:.4g} exceeded its ceiling "
                f"{self.ceiling:.4g} ({excess:.1%} over)"
            )
        if problem is not None:
            message = f"benchbed threshold violated: {problem}"
            if context:
                message = f"{message}\n{context}"
            raise BenchThresholdError(message)
        return value


@dataclass
class Outcome:
    """What one benchmark invocation reports back to the runner.

    ``headline`` is the scalar the regression gate tracks.  ``details``
    is free-form JSON-serialisable context recorded in the artifact.
    ``floor``/``ceiling`` override the registered absolute bounds when
    the tier changes what is achievable (e.g. a speedup floor that only
    holds at the full scale).
    """

    headline: float
    details: dict[str, Any] = field(default_factory=dict)
    floor: float | None = None
    ceiling: float | None = None

    @classmethod
    def of(cls, value: "Outcome | float | int") -> "Outcome":
        if isinstance(value, Outcome):
            return value
        if isinstance(value, (int, float)) and not isinstance(value, bool):
            return cls(headline=float(value))
        raise BenchbedError(
            f"benchmark returned {type(value).__name__}; expected an "
            "Outcome or a bare number"
        )


@dataclass(frozen=True)
class BenchSpec:
    """One registered benchmark: its callable plus headline metadata."""

    name: str
    func: Callable[["BenchContext"], "Outcome | float"]
    headline: str
    unit: str = ""
    #: ``"higher"`` or ``"lower"`` — which direction of the headline
    #: metric is *better*; the compare engine gates drift the other way.
    direction: str = "higher"
    floor: float | None = None
    ceiling: float | None = None
    module: str = ""


class BenchmarkRegistry:
    """Ordered name -> :class:`BenchSpec` mapping."""

    def __init__(self) -> None:
        self._specs: dict[str, BenchSpec] = {}

    def register(self, spec: BenchSpec) -> None:
        existing = self._specs.get(spec.name)
        if existing is not None and existing.module != spec.module:
            raise BenchbedError(
                f"benchmark name {spec.name!r} registered by both "
                f"{existing.module} and {spec.module}"
            )
        self._specs[spec.name] = spec

    def get(self, name: str) -> BenchSpec:
        try:
            return self._specs[name]
        except KeyError:
            raise BenchbedError(f"unknown benchmark {name!r}") from None

    def names(self) -> list[str]:
        return sorted(self._specs)

    def select(self, pattern: str | None = None) -> list[BenchSpec]:
        """Specs whose names match the glob, in name order."""
        names = self.names()
        if pattern is not None:
            names = [n for n in names if fnmatch.fnmatchcase(n, pattern)]
        return [self._specs[n] for n in names]

    def __len__(self) -> int:
        return len(self._specs)

    def __iter__(self) -> Iterator[BenchSpec]:
        return iter(self.select())

    def __contains__(self, name: str) -> bool:
        return name in self._specs


#: The global registry ``benchmarks/bench_*.py`` scripts register into.
REGISTRY = BenchmarkRegistry()


def benchmark(
    name: str,
    *,
    headline: str,
    unit: str = "",
    direction: str = "higher",
    floor: float | None = None,
    ceiling: float | None = None,
    registry: BenchmarkRegistry | None = None,
) -> Callable[[Callable], Callable]:
    """Decorator registering a benchmark entry point.

    The decorated function receives a :class:`BenchContext` and returns
    an :class:`Outcome` (or a bare number used as the headline).
    """
    if direction not in ("higher", "lower"):
        raise BenchbedError(
            f"direction must be 'higher' or 'lower', not {direction!r}"
        )

    def wrap(func: Callable) -> Callable:
        spec = BenchSpec(
            name=name,
            func=func,
            headline=headline,
            unit=unit,
            direction=direction,
            floor=floor,
            ceiling=ceiling,
            module=func.__module__,
        )
        (registry if registry is not None else REGISTRY).register(spec)
        return func

    return wrap


# ---------------------------------------------------------------------------
# Tiers and execution context


def quick_scale(scale: ExperimentScale) -> ExperimentScale:
    """Shrink an experiment scale to the quick tier.

    Mesh dimensions are preserved (benchmarks hard-code node positions
    and headline semantics on the paper's 8x8), but packet counts are
    clamped, rate grids trimmed to their endpoints and the seed list cut
    to its first entry.
    """
    def trim(grid: tuple[float, ...]) -> tuple[float, ...]:
        return grid if len(grid) <= 2 else (grid[0], grid[-1])

    return replace(
        scale,
        name=f"{scale.name}-quick",
        warmup_packets=min(scale.warmup_packets, QUICK_WARMUP_PACKETS),
        measure_packets=min(scale.measure_packets, QUICK_MEASURE_PACKETS),
        seeds=scale.seeds[:1],
        rates=trim(scale.rates),
        contention_rates=trim(scale.contention_rates),
    )


class BenchContext:
    """Everything a registered benchmark needs to run at one tier.

    The context owns a :class:`ParallelExecutor` whose progress hook
    accumulates simulated cycles and seen seeds/configs from every
    record, and a :meth:`run` wrapper around
    :func:`~repro.core.simulator.run_simulation` that additionally
    absorbs scheduler counters.  Benchmarks route all simulation through
    one of the two so the artifact's cycles/second and config stamp come
    for free.
    """

    def __init__(self, tier: str = "full", workers: int | None = None) -> None:
        if tier not in TIERS:
            raise BenchbedError(f"unknown tier {tier!r}; expected one of {TIERS}")
        self.tier = tier
        self.cycles = 0
        self.simulations = 0
        self._scheduler: dict[str, int] | None = None
        self._seeds: set[int] = set()
        self._routers: set[str] = set()
        self._traffics: set[str] = set()
        self._meshes: set[str] = set()
        self._rates: set[float] = set()
        self._extra: dict[str, Any] = {}
        self.executor = ParallelExecutor(
            workers=workers, progress=self._absorb_record
        )

    # -- tier plumbing --------------------------------------------------

    @property
    def quick(self) -> bool:
        return self.tier == "quick"

    def pick(self, *, quick: Any, full: Any) -> Any:
        """Tier-dependent constant (rate grids, repeat counts, ...)."""
        return quick if self.quick else full

    def scale(self, full: ExperimentScale) -> ExperimentScale:
        """The scale to run: ``full`` itself, or its quick shrink."""
        return quick_scale(full) if self.quick else full

    # -- accounting -----------------------------------------------------

    def stamp(self, **extra: Any) -> None:
        """Record extra config-stamp entries (analytic parameters...)."""
        self._extra.update(extra)

    def run(self, config: SimulationConfig, **kwargs: Any) -> SimulationResult:
        """Run one simulation in-process and absorb its accounting."""
        result = run_simulation(config, **kwargs)
        self.absorb(result)
        return result

    def absorb(self, result: SimulationResult) -> SimulationResult:
        """Fold a result produced elsewhere (e.g. a campaign) in."""
        config = result.config
        self.cycles += result.cycles
        self.simulations += 1
        self._seeds.add(config.seed)
        self._routers.add(config.router)
        self._traffics.add(config.traffic)
        self._meshes.add(f"{config.width}x{config.height}")
        self._rates.add(config.injection_rate)
        counters = result.scheduler
        if self._scheduler is None:
            self._scheduler = {
                "router_steps": 0,
                "router_slots": 0,
                "wakeups": 0,
                "sleeps": 0,
            }
        self._scheduler["router_steps"] += counters.router_steps
        self._scheduler["router_slots"] += counters.router_slots
        self._scheduler["wakeups"] += counters.wakeups
        self._scheduler["sleeps"] += counters.sleeps
        return result

    def _absorb_record(self, done: int, total: int, record: dict) -> None:
        self.cycles += record["cycles"]
        self.simulations += 1
        self._seeds.add(record["seed"])
        self._routers.add(record["router"])
        self._traffics.add(record["traffic"])
        self._meshes.add(f"{record['width']}x{record['height']}")
        self._rates.add(record["injection_rate"])

    @property
    def scheduler_counters(self) -> dict[str, Any] | None:
        """Aggregated scheduler telemetry from :meth:`run`/:meth:`absorb`."""
        if self._scheduler is None:
            return None
        counters = dict(self._scheduler)
        slots = counters["router_slots"]
        counters["duty_cycle"] = (
            counters["router_steps"] / slots if slots else 0.0
        )
        return counters

    def config_stamp(self) -> dict[str, Any]:
        """Canonical description of everything this context simulated."""
        stamp: dict[str, Any] = {
            "simulations": self.simulations,
            "seeds": sorted(self._seeds),
            "routers": sorted(self._routers),
            "traffics": sorted(self._traffics),
            "meshes": sorted(self._meshes),
            "injection_rates": sorted(self._rates),
        }
        stamp.update(self._extra)
        return stamp


# ---------------------------------------------------------------------------
# Discovery


def default_bench_dir() -> Path:
    """Locate ``benchmarks/`` (env override, repo checkout, then cwd)."""
    override = os.environ.get("REPRO_BENCH_DIR")
    if override:
        return Path(override)
    checkout = Path(__file__).resolve().parents[3] / "benchmarks"
    if checkout.is_dir():
        return checkout
    return Path.cwd() / "benchmarks"


def discover(directory: str | Path | None = None) -> BenchmarkRegistry:
    """Import every ``bench_*.py`` so its registrations land in REGISTRY.

    The directory's ``conftest.py`` is pre-seeded into ``sys.modules``
    under the name the scripts import (``conftest``), keeping them
    runnable both standalone under pytest and through the bed.  Imports
    are idempotent: already-imported modules are not re-executed.
    """
    bench_dir = Path(directory) if directory is not None else default_bench_dir()
    if not bench_dir.is_dir():
        raise BenchbedError(f"benchmark directory not found: {bench_dir}")
    conftest = bench_dir / "conftest.py"
    if conftest.is_file() and "conftest" not in sys.modules:
        _import_file("conftest", conftest)
    for path in sorted(bench_dir.glob("bench_*.py")):
        _import_file(f"repro_bench_{path.stem}", path)
    return REGISTRY


def _import_file(module_name: str, path: Path) -> None:
    if module_name in sys.modules:
        return
    spec = importlib.util.spec_from_file_location(module_name, path)
    if spec is None or spec.loader is None:  # pragma: no cover - defensive
        raise BenchbedError(f"cannot import {path}")
    module = importlib.util.module_from_spec(spec)
    sys.modules[module_name] = module
    try:
        spec.loader.exec_module(module)
    except BaseException:
        sys.modules.pop(module_name, None)
        raise


# ---------------------------------------------------------------------------
# Runner and artifacts


def run_benchmark(
    spec: BenchSpec,
    tier: str = "full",
    *,
    warmup: int | None = None,
    repeats: int | None = None,
    workers: int | None = None,
    profile: bool = False,
) -> dict[str, Any]:
    """Run one benchmark and return its artifact payload.

    ``warmup`` uncounted runs precede ``repeats`` timed ones (tier
    defaults when ``None``).  The headline and config stamp are taken
    from the final timed repeat; all repeats' headline values are kept
    so divergence (a non-deterministic benchmark) is visible in the
    artifact rather than silently averaged away.
    """
    if tier not in TIERS:
        raise BenchbedError(f"unknown tier {tier!r}; expected one of {TIERS}")
    tier_warmup, tier_repeats = TIER_DEFAULTS[tier]
    warmup = tier_warmup if warmup is None else warmup
    repeats = tier_repeats if repeats is None else repeats
    if repeats < 1:
        raise BenchbedError("repeats must be >= 1")

    for _ in range(warmup):
        spec.func(BenchContext(tier, workers=workers))

    samples: list[float] = []
    headline_values: list[float] = []
    context = BenchContext(tier, workers=workers)
    outcome = Outcome(headline=0.0)
    for _ in range(repeats):
        context = BenchContext(tier, workers=workers)
        started = time.perf_counter()
        outcome = Outcome.of(spec.func(context))
        samples.append(time.perf_counter() - started)
        headline_values.append(outcome.headline)

    profile_rows = None
    if profile:
        _, profile_rows = profile_call(
            spec.func, BenchContext(tier, workers=workers)
        )

    floor = outcome.floor if outcome.floor is not None else spec.floor
    ceiling = outcome.ceiling if outcome.ceiling is not None else spec.ceiling
    seeds = context.config_stamp()["seeds"]
    best = min(samples)
    return {
        "schema_version": SCHEMA_VERSION,
        "name": spec.name,
        "tier": tier,
        "headline": {
            "metric": spec.headline,
            "unit": spec.unit,
            "direction": spec.direction,
            "value": outcome.headline,
            "floor": floor,
            "ceiling": ceiling,
        },
        "seed": seeds[0] if len(seeds) == 1 else None,
        "config": context.config_stamp(),
        "details": outcome.details,
        "cycles": context.cycles,
        "deterministic": len(set(headline_values)) <= 1,
        "headline_values": headline_values,
        "wall_time_s": {
            "warmup": warmup,
            "repeats": repeats,
            "samples": [round(s, 6) for s in samples],
            "min": round(best, 6),
            "mean": round(statistics.fmean(samples), 6),
            "median": round(statistics.median(samples), 6),
        },
        "cycles_per_second": round(context.cycles / best, 1) if best else None,
        "scheduler": context.scheduler_counters,
        "environment": {
            "python": platform.python_version(),
            "implementation": platform.python_implementation(),
            "platform": sys.platform,
            "machine": platform.machine(),
        },
        "profile": profile_rows,
    }


def artifact_path(out_dir: str | Path, name: str) -> Path:
    return Path(out_dir) / f"{ARTIFACT_PREFIX}{name}.json"


def write_artifact(artifact: dict[str, Any], out_dir: str | Path) -> Path:
    """Write one ``BENCH_<name>.json`` (validated first); return path."""
    validate_artifact(artifact)
    out = Path(out_dir)
    out.mkdir(parents=True, exist_ok=True)
    path = artifact_path(out, artifact["name"])
    path.write_text(json.dumps(artifact, indent=2) + "\n")
    return path


#: ``key -> required type`` for the artifact's top level.
_ARTIFACT_KEYS: dict[str, type | tuple[type, ...]] = {
    "schema_version": int,
    "name": str,
    "tier": str,
    "headline": dict,
    "config": dict,
    "details": dict,
    "cycles": int,
    "wall_time_s": dict,
    "environment": dict,
}


def validate_artifact(payload: Any) -> dict[str, Any]:
    """Check an artifact against the schema; raise ``ValueError`` if bad."""
    if not isinstance(payload, dict):
        raise ValueError("artifact must be a JSON object")
    for key, expected in _ARTIFACT_KEYS.items():
        if key not in payload:
            raise ValueError(f"artifact missing key {key!r}")
        if not isinstance(payload[key], expected):
            raise ValueError(f"artifact key {key!r} has wrong type")
    if payload["schema_version"] != SCHEMA_VERSION:
        raise ValueError(
            f"artifact schema version {payload['schema_version']} != "
            f"supported {SCHEMA_VERSION}"
        )
    if payload["tier"] not in TIERS:
        raise ValueError(f"unknown tier {payload['tier']!r}")
    headline = payload["headline"]
    for key in ("metric", "direction", "value"):
        if key not in headline:
            raise ValueError(f"artifact headline missing {key!r}")
    if headline["direction"] not in ("higher", "lower"):
        raise ValueError(f"bad headline direction {headline['direction']!r}")
    if not isinstance(headline["value"], (int, float)):
        raise ValueError("headline value must be a number")
    wall = payload["wall_time_s"]
    samples = wall.get("samples")
    if not isinstance(samples, list) or not samples:
        raise ValueError("wall_time_s.samples must be a non-empty list")
    if not all(isinstance(s, (int, float)) for s in samples):
        raise ValueError("wall_time_s.samples must be numbers")
    return payload


def comparison_payload(artifact: dict[str, Any]) -> dict[str, Any]:
    """The machine-comparable subset of an artifact.

    Everything here is a deterministic function of (tier, seed, code):
    no wall times, no environment, no profile, no timestamps.  Two runs
    of the same benchmark at the same tier must produce equal payloads.
    ``details`` stays out — benchmarks may record measured timings there
    (e.g. the activity-core speedup), which are machine-dependent.
    """
    return {
        "schema_version": artifact["schema_version"],
        "name": artifact["name"],
        "tier": artifact["tier"],
        "headline": artifact["headline"],
        "seed": artifact.get("seed"),
        "config": artifact["config"],
        "cycles": artifact["cycles"],
    }


def load_artifacts(path: str | Path) -> dict[str, dict[str, Any]]:
    """Load artifacts from a ``BENCH_*.json`` file or a directory."""
    path = Path(path)
    if path.is_dir():
        files = sorted(path.glob(f"{ARTIFACT_PREFIX}*.json"))
        if not files:
            raise BenchbedError(f"no {ARTIFACT_PREFIX}*.json artifacts in {path}")
    elif path.is_file():
        files = [path]
    else:
        raise BenchbedError(f"no such artifact file or directory: {path}")
    artifacts: dict[str, dict[str, Any]] = {}
    for file in files:
        try:
            payload = validate_artifact(json.loads(file.read_text()))
        except ValueError as exc:
            raise BenchbedError(f"{file}: {exc}") from exc
        artifacts[payload["name"]] = payload
    return artifacts


# ---------------------------------------------------------------------------
# Baseline comparison


@dataclass
class BenchDelta:
    """Per-benchmark comparison outcome."""

    name: str
    #: ``ok`` | ``improved`` | ``regression`` | ``missing`` |
    #: ``incomparable`` | ``new``
    status: str
    notes: list[str] = field(default_factory=list)
    wall_delta: float | None = None
    wall_ci: tuple[float, float] | None = None
    headline_delta: float | None = None

    @property
    def failed(self) -> bool:
        return self.status in ("regression", "missing", "incomparable")


@dataclass
class CompareReport:
    """All deltas of one old-vs-new comparison."""

    deltas: list[BenchDelta]
    wall_threshold: float
    headline_threshold: float
    check_wall: bool = True

    @property
    def failures(self) -> list[BenchDelta]:
        return [d for d in self.deltas if d.failed]

    @property
    def exit_code(self) -> int:
        return 1 if self.failures else 0

    def render(self) -> str:
        rows = []
        for delta in self.deltas:
            wall = (
                f"{delta.wall_delta:+.1%}" if delta.wall_delta is not None else "-"
            )
            ci = (
                f"[{delta.wall_ci[0]:+.1%}, {delta.wall_ci[1]:+.1%}]"
                if delta.wall_ci is not None
                else "-"
            )
            headline = (
                f"{delta.headline_delta:+.2%}"
                if delta.headline_delta is not None
                else "-"
            )
            rows.append(
                [
                    delta.name,
                    wall,
                    ci,
                    headline,
                    delta.status,
                    "; ".join(delta.notes),
                ]
            )
        wall_gate = (
            f"wall >{self.wall_threshold:.0%}, " if self.check_wall else ""
        )
        title = (
            "== benchbed comparison "
            f"(gate: {wall_gate}"
            f"headline drift >{self.headline_threshold:.0%}) =="
        )
        return render_table(
            ["benchmark", "wall", "wall 95% CI", "headline", "status", "notes"],
            rows,
            title=title,
        )


def bootstrap_ci(
    old_samples: Sequence[float],
    new_samples: Sequence[float],
    resamples: int = 2000,
    confidence: float = 0.95,
    seed: int = 0,
) -> tuple[float, float] | None:
    """Bootstrap CI of the relative wall-time delta ``new/old - 1``.

    Returns ``None`` when either side has fewer than two samples (a
    single observation carries no resampling information).  Seeded, so
    reports are reproducible.
    """
    if len(old_samples) < 2 or len(new_samples) < 2:
        return None
    rng = random.Random(seed)
    deltas = []
    for _ in range(resamples):
        old_mean = statistics.fmean(rng.choices(old_samples, k=len(old_samples)))
        new_mean = statistics.fmean(rng.choices(new_samples, k=len(new_samples)))
        if old_mean > 0:
            deltas.append(new_mean / old_mean - 1.0)
    if not deltas:
        return None
    deltas.sort()
    tail = (1.0 - confidence) / 2.0
    lo = deltas[int(tail * (len(deltas) - 1))]
    hi = deltas[int((1.0 - tail) * (len(deltas) - 1))]
    return (lo, hi)


def compare_pair(
    old: dict[str, Any],
    new: dict[str, Any],
    *,
    wall_threshold: float = DEFAULT_WALL_THRESHOLD,
    headline_threshold: float = DEFAULT_HEADLINE_THRESHOLD,
    check_wall: bool = True,
) -> BenchDelta:
    """Diff two artifacts of the same benchmark."""
    name = old["name"]
    delta = BenchDelta(name=name, status="ok")
    if old["tier"] != new["tier"]:
        delta.status = "incomparable"
        delta.notes.append(
            f"tier mismatch: baseline {old['tier']!r} vs new {new['tier']!r}"
        )
        return delta
    old_head, new_head = old["headline"], new["headline"]
    if old_head["metric"] != new_head["metric"]:
        delta.status = "incomparable"
        delta.notes.append(
            f"headline metric changed: {old_head['metric']!r} -> "
            f"{new_head['metric']!r}"
        )
        return delta

    regressions, improvements = [], []

    # Wall time: gate on the min-of-repeats point estimate; the bootstrap
    # CI (when repeats allow one) is reported for noise context.
    old_min = min(old["wall_time_s"]["samples"])
    new_min = min(new["wall_time_s"]["samples"])
    if old_min > 0:
        delta.wall_delta = new_min / old_min - 1.0
        delta.wall_ci = bootstrap_ci(
            old["wall_time_s"]["samples"], new["wall_time_s"]["samples"]
        )
        if check_wall and delta.wall_delta > wall_threshold:
            regressions.append(
                f"wall time {old_min:.3f}s -> {new_min:.3f}s "
                f"({delta.wall_delta:+.1%} > {wall_threshold:.0%})"
            )
        elif check_wall and delta.wall_delta < -wall_threshold:
            improvements.append(f"wall time {delta.wall_delta:+.1%}")

    # Headline drift, signed so that positive = worse.
    direction = new_head["direction"]
    old_value, new_value = old_head["value"], new_head["value"]
    denom = abs(old_value) if old_value else 1.0
    drift = (new_value - old_value) / denom
    delta.headline_delta = drift
    worse = drift if direction == "lower" else -drift
    if worse > headline_threshold:
        regressions.append(
            f"headline {new_head['metric']} {old_value:.4g} -> "
            f"{new_value:.4g} ({drift:+.2%} beyond {headline_threshold:.0%}, "
            f"{direction} is better)"
        )
    elif worse < -headline_threshold:
        improvements.append(f"headline {drift:+.2%}")

    floor = new_head.get("floor")
    if floor is not None and new_value < floor:
        regressions.append(
            f"headline {new_value:.4g} below absolute floor {floor:.4g}"
        )
    ceiling = new_head.get("ceiling")
    if ceiling is not None and new_value > ceiling:
        regressions.append(
            f"headline {new_value:.4g} above absolute ceiling {ceiling:.4g}"
        )

    if regressions:
        delta.status = "regression"
        delta.notes.extend(regressions)
    elif improvements:
        delta.status = "improved"
        delta.notes.extend(improvements)
    return delta


def compare_artifacts(
    old: Mapping[str, dict[str, Any]],
    new: Mapping[str, dict[str, Any]],
    *,
    wall_threshold: float = DEFAULT_WALL_THRESHOLD,
    headline_threshold: float = DEFAULT_HEADLINE_THRESHOLD,
    check_wall: bool = True,
) -> CompareReport:
    """Compare two artifact sets keyed by benchmark name.

    A benchmark present in the baseline but absent from the new set is a
    failure (``missing``); one only in the new set is informational
    (``new``).
    """
    deltas: list[BenchDelta] = []
    for name in sorted(old):
        if name not in new:
            deltas.append(
                BenchDelta(
                    name=name,
                    status="missing",
                    notes=["present in baseline, absent from new run"],
                )
            )
            continue
        deltas.append(
            compare_pair(
                old[name],
                new[name],
                wall_threshold=wall_threshold,
                headline_threshold=headline_threshold,
                check_wall=check_wall,
            )
        )
    for name in sorted(set(new) - set(old)):
        deltas.append(
            BenchDelta(name=name, status="new", notes=["not in baseline"])
        )
    return CompareReport(
        deltas=deltas,
        wall_threshold=wall_threshold,
        headline_threshold=headline_threshold,
        check_wall=check_wall,
    )


# ---------------------------------------------------------------------------
# CLI


def _run_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro bench",
        description=(
            "Run the registered benchmark suite and emit BENCH_<name>.json "
            "artifacts (see docs/benchmarking.md)."
        ),
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help="run the quick fidelity tier (CI smoke) instead of full",
    )
    parser.add_argument(
        "--filter",
        default=None,
        metavar="GLOB",
        help="only run benchmarks whose name matches this glob",
    )
    parser.add_argument(
        "--out",
        default="bench-results",
        metavar="DIR",
        help="directory for BENCH_<name>.json artifacts",
    )
    parser.add_argument(
        "--baseline",
        default=None,
        metavar="PATH",
        help="compare fresh artifacts against this baseline file/directory",
    )
    parser.add_argument(
        "--profile",
        action="store_true",
        help="capture a cProfile hotspot table into each artifact",
    )
    parser.add_argument(
        "--repeats",
        type=int,
        default=None,
        metavar="N",
        help="timed repeats per benchmark (default: 1 quick, 3 full)",
    )
    parser.add_argument(
        "--warmup",
        type=int,
        default=None,
        metavar="N",
        help="uncounted warm-up runs per benchmark (default: 0 quick, 1 full)",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=None,
        metavar="N",
        help="worker processes for simulation grids (0 = all cores)",
    )
    parser.add_argument(
        "--bench-dir",
        default=None,
        metavar="DIR",
        help="directory holding bench_*.py scripts (default: repo benchmarks/)",
    )
    parser.add_argument(
        "--list",
        action="store_true",
        help="list registered benchmarks and exit",
    )
    _add_gate_arguments(parser)
    return parser


def _add_gate_arguments(parser: argparse.ArgumentParser) -> None:
    gate = parser.add_argument_group("regression gate")
    gate.add_argument(
        "--wall-threshold",
        type=float,
        default=DEFAULT_WALL_THRESHOLD,
        metavar="FRAC",
        help="fail on wall-time growth beyond this fraction (default 0.10)",
    )
    gate.add_argument(
        "--headline-threshold",
        type=float,
        default=DEFAULT_HEADLINE_THRESHOLD,
        metavar="FRAC",
        help="fail on headline drift beyond this fraction (default 0.02)",
    )
    gate.add_argument(
        "--no-wall",
        action="store_true",
        help="skip wall-time gating (cross-machine baselines)",
    )
    gate.add_argument(
        "--report-only",
        action="store_true",
        help="print the comparison report but always exit 0",
    )


def _compare_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro bench compare",
        description=(
            "Compare two benchmark artifact sets; exit non-zero on "
            "regression beyond the thresholds."
        ),
    )
    parser.add_argument("old", help="baseline BENCH_*.json file or directory")
    parser.add_argument("new", help="candidate BENCH_*.json file or directory")
    _add_gate_arguments(parser)
    return parser


def _compare_main(argv: Sequence[str]) -> int:
    args = _compare_parser().parse_args(list(argv))
    try:
        old = load_artifacts(args.old)
        new = load_artifacts(args.new)
    except BenchbedError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    report = compare_artifacts(
        old,
        new,
        wall_threshold=args.wall_threshold,
        headline_threshold=args.headline_threshold,
        check_wall=not args.no_wall,
    )
    print(report.render())
    if report.failures:
        print(
            f"{len(report.failures)} of {len(report.deltas)} benchmark(s) "
            "failed the regression gate",
            file=sys.stderr,
        )
    if args.report_only:
        return 0
    return report.exit_code


def bench_main(argv: Sequence[str] | None = None) -> int:
    """Entry point for ``python -m repro bench ...``."""
    argv = list(sys.argv[1:]) if argv is None else list(argv)
    if argv and argv[0] == "compare":
        return _compare_main(argv[1:])
    args = _run_parser().parse_args(argv)

    try:
        registry = discover(args.bench_dir)
    except BenchbedError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    specs = registry.select(args.filter)
    if not specs:
        print(f"error: no benchmarks match {args.filter!r}", file=sys.stderr)
        return 2

    tier = "quick" if args.quick else "full"
    if args.list:
        rows = [
            [spec.name, spec.headline, spec.unit or "-", spec.direction]
            for spec in specs
        ]
        print(
            render_table(
                ["benchmark", "headline metric", "unit", "better"],
                rows,
                title=f"== registered benchmarks ({len(specs)}) ==",
            )
        )
        return 0

    out_dir = Path(args.out)
    suite_started = time.perf_counter()
    produced: dict[str, dict[str, Any]] = {}
    for index, spec in enumerate(specs, start=1):
        artifact = run_benchmark(
            spec,
            tier,
            warmup=args.warmup,
            repeats=args.repeats,
            workers=args.workers,
            profile=args.profile,
        )
        path = write_artifact(artifact, out_dir)
        produced[spec.name] = artifact
        headline = artifact["headline"]
        print(
            f"[bench {index}/{len(specs)}] {spec.name}: "
            f"{headline['metric']} = {headline['value']:.4g}"
            f"{' ' + headline['unit'] if headline['unit'] else ''}, "
            f"wall {artifact['wall_time_s']['min']:.2f}s -> {path}",
            file=sys.stderr,
        )
    print(
        f"[bench] {len(specs)} benchmark(s), tier {tier}, "
        f"{time.perf_counter() - suite_started:.1f}s total, "
        f"artifacts in {out_dir}",
        file=sys.stderr,
    )

    if args.baseline is None:
        return 0
    try:
        baseline = load_artifacts(args.baseline)
    except BenchbedError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if args.filter:
        # A filtered run only answers for the benchmarks it ran; the
        # rest of the baseline is out of scope, not "missing".
        baseline = {name: baseline[name] for name in baseline if name in produced}
    report = compare_artifacts(
        baseline,
        produced,
        wall_threshold=args.wall_threshold,
        headline_threshold=args.headline_threshold,
        check_wall=not args.no_wall,
    )
    print(report.render())
    if args.report_only:
        return 0
    return report.exit_code
