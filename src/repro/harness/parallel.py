"""Parallel experiment execution with an on-disk result cache.

Every study in this repository ultimately reduces to "run a list of
:class:`~repro.core.config.SimulationConfig` points and collect their
flat records".  This module makes that list embarrassingly parallel:

* :class:`SimJob` — one unit of work (a config plus its optional fault
  population), picklable so it survives a ``spawn`` worker boundary;
* :func:`job_key` — a stable content hash of a job, used to key the
  result cache (and to detect that two jobs are the same experiment);
* :class:`ResultCache` — a directory of ``<key>.json`` records so a
  repeated sweep performs zero new simulations;
* :class:`ParallelExecutor` — fans jobs out over a ``multiprocessing``
  pool (``spawn`` start method, safe on every platform) and returns
  records in submission order.

Determinism: a simulation is a pure function of its job — the simulator
seeds its only RNG from ``config.seed`` and touches no global state —
so serial and parallel execution produce bit-identical records, and a
cached record equals the record a fresh run would produce.  The
equivalence is asserted by ``tests/test_parallel.py``.
"""

from __future__ import annotations

import hashlib
import json
import multiprocessing
import os
import sys
import time
from collections.abc import Callable, Iterable, Sequence
from dataclasses import dataclass
from pathlib import Path

from repro.core.config import SimulationConfig
from repro.core.simulator import run_simulation
from repro.faults.injector import ComponentFault
from repro.faults.schedule import FaultSchedule
from repro.harness.export import result_record

#: Bump when record contents or key semantics change; stale cache
#: entries written under another version are ignored.
CACHE_VERSION = 1

#: ``progress(done, total, record)`` — invoked after every completed
#: job (cache hits included), in completion order.
ProgressCallback = Callable[[int, int, dict], None]


@dataclass(frozen=True)
class SimJob:
    """One simulation to run: a configuration plus its fault population.

    ``faults`` are applied statically before wiring; ``schedule`` is a
    runtime fault campaign consumed mid-run.  Both are part of the cache
    key, but the key of a schedule-free job is unchanged from earlier
    versions so existing caches stay valid.
    """

    config: SimulationConfig
    faults: tuple[ComponentFault, ...] = ()
    schedule: FaultSchedule | None = None

    @classmethod
    def of(
        cls,
        config: SimulationConfig,
        faults: Sequence[ComponentFault] | None = None,
        schedule: FaultSchedule | None = None,
    ) -> "SimJob":
        return cls(
            config=config,
            faults=tuple(faults) if faults else (),
            schedule=schedule if schedule else None,
        )


def config_payload(config: SimulationConfig) -> dict:
    """Canonical JSON-friendly description of a configuration.

    Every field that influences simulation output appears here; two
    configs with equal payloads are the same experiment.
    """
    router_config = config.router_config
    payload = {
        "width": config.width,
        "height": config.height,
        "topology": config.topology,
        "router": config.router,
        "routing": config.routing.value,
        "traffic": config.traffic,
        "injection_rate": config.injection_rate,
        "flits_per_packet": config.flits_per_packet,
        "warmup_packets": config.warmup_packets,
        "measure_packets": config.measure_packets,
        "max_cycles": config.max_cycles,
        "fault_drop_timeout": config.fault_drop_timeout,
        "drain_timeout": config.drain_timeout,
        "seed": config.seed,
        "router_config": {
            "vcs_per_port": router_config.vcs_per_port,
            "buffer_depth": router_config.buffer_depth,
            "flit_width_bits": router_config.flit_width_bits,
            "mirror_allocation": router_config.mirror_allocation,
            "lookahead_routing": router_config.lookahead_routing,
        },
    }
    if config.backend != "object":
        # The backend is bit-identical on its envelope, so sharing cache
        # entries would be sound — but a conformance regression must not
        # be maskable by a cache hit on the other backend's record, and
        # the default omission keeps pre-existing object-backend keys
        # (and their on-disk caches) stable.
        payload["backend"] = config.backend
    return payload


def _fault_payload(fault: ComponentFault) -> dict:
    return {
        "node": [fault.node.x, fault.node.y],
        "component": fault.component.value,
        "module": fault.module,
        "vc_position": fault.vc_position,
    }


def job_key(job: SimJob) -> str:
    """Stable content hash of a job (hex digest).

    The key covers the cache version, the full config payload and the
    fault population, so any change to what is simulated changes the
    key.  Equal jobs always hash equal across processes and sessions
    (the payload is serialised with sorted keys and no float coercion).
    """
    payload = {
        "version": CACHE_VERSION,
        "config": config_payload(job.config),
        "faults": [_fault_payload(f) for f in job.faults],
    }
    if job.schedule is not None:
        # Only present for campaign jobs, so schedule-free keys (and any
        # cache built from them) are byte-identical to prior versions.
        payload["schedule"] = job.schedule.to_payload()
    blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


class ResultCache:
    """Directory-backed result cache: one ``<job_key>.json`` per record.

    ``hits`` / ``misses`` / ``stores`` count lookups since construction;
    tests (and the CLI's cache summary) read them to prove a repeated
    run performed zero new simulations.
    """

    def __init__(self, directory: str | Path) -> None:
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.hits = 0
        self.misses = 0
        self.stores = 0

    def path_for(self, key: str) -> Path:
        return self.directory / f"{key}.json"

    def lookup(self, key: str) -> dict | None:
        path = self.path_for(key)
        try:
            payload = json.loads(path.read_text())
        except (OSError, ValueError):
            self.misses += 1
            return None
        if payload.get("version") != CACHE_VERSION:
            self.misses += 1
            return None
        self.hits += 1
        return payload["record"]

    def store(self, key: str, record: dict) -> None:
        payload = {"version": CACHE_VERSION, "key": key, "record": record}
        tmp = self.path_for(key).with_suffix(".tmp")
        tmp.write_text(json.dumps(payload, indent=2) + "\n")
        tmp.replace(self.path_for(key))
        self.stores += 1

    def __len__(self) -> int:
        return sum(1 for _ in self.directory.glob("*.json"))


def execute_job(job: SimJob) -> dict:
    """Run one job to completion and flatten it to a record.

    Top-level so it is importable by ``spawn`` workers.
    """
    result = run_simulation(
        job.config, faults=list(job.faults), schedule=job.schedule
    )
    return result_record(result)


def _execute_indexed(indexed: tuple[int, SimJob]) -> tuple[int, dict]:
    index, job = indexed
    return index, execute_job(job)


def _spawn_supported() -> bool:
    """Whether ``spawn`` workers can re-import the parent's ``__main__``.

    Spawned children replay the parent's entry point; a REPL / stdin /
    ``python -c`` parent has none, and the pool would crash-loop trying
    to import ``<stdin>``.  Fall back to inline execution there instead
    of hanging (results are identical, just serial).
    """
    main = sys.modules.get("__main__")
    if main is None:
        return False
    if getattr(main, "__spec__", None) is not None:
        return True  # python -m whatever: importable by name
    main_file = getattr(main, "__file__", None)
    return main_file is not None and os.path.exists(main_file)


def resolve_workers(workers: int | None) -> int:
    """Normalise a worker count: ``None``/``1`` serial, ``0`` all cores."""
    if workers is None:
        return 1
    if workers == 0:
        return os.cpu_count() or 1
    if workers < 0:
        raise ValueError("workers must be >= 0 (0 means all cores)")
    return workers


@dataclass
class ExecutionStats:
    """What one :meth:`ParallelExecutor.run_jobs` call actually did."""

    total: int = 0
    cache_hits: int = 0
    simulated: int = 0
    elapsed_seconds: float = 0.0


class ParallelExecutor:
    """Runs simulation jobs over a worker pool with optional caching.

    ``workers``: ``None`` or ``1`` runs inline in this process (exactly
    the classic serial path), ``0`` uses every core, ``N`` uses ``N``
    processes.  ``cache`` is a :class:`ResultCache` (or ``None`` to
    always simulate).  ``progress`` is called as ``(done, total,
    record)`` after each completed job, cache hits included.

    ``simulations_run`` accumulates the number of actual simulator
    invocations across the executor's lifetime; with a warm cache it
    stays at zero.
    """

    #: Start method used for worker pools.  ``spawn`` is the only method
    #: available everywhere and immune to fork-unsafe parent state.
    start_method = "spawn"

    def __init__(
        self,
        workers: int | None = None,
        cache: ResultCache | None = None,
        progress: ProgressCallback | None = None,
    ) -> None:
        self.workers = resolve_workers(workers)
        self.cache = cache
        self.progress = progress
        self.simulations_run = 0
        self.last_stats = ExecutionStats()

    # ------------------------------------------------------------------

    def run_configs(
        self, configs: Iterable[SimulationConfig]
    ) -> list[dict]:
        """Run bare configurations (no faults); records in input order."""
        return self.run_jobs([SimJob.of(c) for c in configs])

    def run_jobs(self, jobs: Sequence[SimJob]) -> list[dict]:
        """Run every job; returns one record per job, in input order.

        Cached jobs are served without simulating; the rest go to the
        pool (or run inline when ``workers`` is 1 or only one job is
        pending — a pool of one would only add spawn overhead).
        """
        jobs = list(jobs)
        started = time.monotonic()
        total = len(jobs)
        records: list[dict | None] = [None] * total
        done = 0
        stats = ExecutionStats(total=total)

        pending: list[tuple[int, SimJob]] = []
        keys: list[str | None] = [None] * total
        for index, job in enumerate(jobs):
            if self.cache is not None:
                keys[index] = job_key(job)
                cached = self.cache.lookup(keys[index])
                if cached is not None:
                    records[index] = cached
                    stats.cache_hits += 1
                    done += 1
                    self._report(done, total, cached)
                    continue
            pending.append((index, job))

        for index, record in self._execute(pending):
            records[index] = record
            stats.simulated += 1
            self.simulations_run += 1
            if self.cache is not None and keys[index] is not None:
                self.cache.store(keys[index], record)
            done += 1
            self._report(done, total, record)

        stats.elapsed_seconds = time.monotonic() - started
        self.last_stats = stats
        assert all(r is not None for r in records)
        return records  # type: ignore[return-value]

    # ------------------------------------------------------------------

    def _execute(
        self, pending: list[tuple[int, SimJob]]
    ) -> Iterable[tuple[int, dict]]:
        if not pending:
            return
        if self.workers <= 1 or len(pending) == 1 or not _spawn_supported():
            for index, job in pending:
                yield index, execute_job(job)
            return
        context = multiprocessing.get_context(self.start_method)
        processes = min(self.workers, len(pending))
        with context.Pool(processes=processes) as pool:
            yield from pool.imap_unordered(_execute_indexed, pending)

    def _report(self, done: int, total: int, record: dict) -> None:
        if self.progress is not None:
            self.progress(done, total, record)


class ProgressPrinter:
    """A ready-made progress callback printing ``done/total`` with ETA.

    The ETA is a linear extrapolation from completed jobs — coarse but
    honest for homogeneous sweeps.  Writes to ``stream`` (stderr by
    default) so records on stdout stay machine-readable.
    """

    def __init__(self, stream=None, label: str = "sweep") -> None:
        self.stream = stream if stream is not None else sys.stderr
        self.label = label
        self._started: float | None = None

    def __call__(self, done: int, total: int, record: dict) -> None:
        now = time.monotonic()
        if self._started is None:
            self._started = now
        elapsed = now - self._started
        if done and done < total:
            eta = elapsed / done * (total - done)
            tail = f"elapsed {elapsed:6.1f}s eta {eta:6.1f}s"
        else:
            tail = f"elapsed {elapsed:6.1f}s"
        percent = 100.0 * done / total if total else 100.0
        print(
            f"[{self.label}] {done}/{total} ({percent:5.1f}%) {tail}",
            file=self.stream,
            flush=True,
        )
