"""Parallel experiment execution with an on-disk result cache.

Every study in this repository ultimately reduces to "run a list of
:class:`~repro.core.config.SimulationConfig` points and collect their
flat records".  This module makes that list embarrassingly parallel:

* :class:`SimJob` — one unit of work (a config plus its optional fault
  population), picklable so it survives a ``spawn`` worker boundary;
* :func:`job_key` — a stable content hash of a job, used to key the
  result cache (and to detect that two jobs are the same experiment);
* :class:`ResultCache` — a directory of ``<key>.json`` records so a
  repeated sweep performs zero new simulations;
* :class:`ParallelExecutor` — fans jobs out over a ``multiprocessing``
  pool (``spawn`` start method, safe on every platform) and returns
  records in submission order.

Determinism: a simulation is a pure function of its job — the simulator
seeds its only RNG from ``config.seed`` and touches no global state —
so serial and parallel execution produce bit-identical records, and a
cached record equals the record a fresh run would produce.  The
equivalence is asserted by ``tests/test_parallel.py``.
"""

from __future__ import annotations

import hashlib
import itertools
import json
import multiprocessing
import os
import sys
import threading
import time
import warnings
from collections.abc import Callable, Iterable, Sequence
from dataclasses import dataclass, field
from pathlib import Path

from repro.core.config import SimulationConfig
from repro.core.simulator import run_simulation
from repro.faults.injector import ComponentFault
from repro.faults.schedule import FaultSchedule
from repro.harness.export import result_record

#: Bump when record contents or key semantics change; stale cache
#: entries written under another version are ignored.
CACHE_VERSION = 1

#: Marker key of a failure record produced by the resilient layer: a
#: quarantined job travels through ``run_jobs`` results as a dict with
#: this key set (see :class:`repro.harness.resilient.JobFailure`)
#: instead of an exception that aborts the sweep.
FAILURE_MARKER = "job_failed"

#: ``progress(done, total, record)`` — invoked after every completed
#: job (cache hits included), in completion order.
ProgressCallback = Callable[[int, int, dict], None]


def is_failure_record(record: dict) -> bool:
    """Whether a ``run_jobs`` record is a quarantined-job failure."""
    return bool(record.get(FAILURE_MARKER))


@dataclass(frozen=True)
class SimJob:
    """One simulation to run: a configuration plus its fault population.

    ``faults`` are applied statically before wiring; ``schedule`` is a
    runtime fault campaign consumed mid-run.  Both are part of the cache
    key, but the key of a schedule-free job is unchanged from earlier
    versions so existing caches stay valid.
    """

    config: SimulationConfig
    faults: tuple[ComponentFault, ...] = ()
    schedule: FaultSchedule | None = None

    @classmethod
    def of(
        cls,
        config: SimulationConfig,
        faults: Sequence[ComponentFault] | None = None,
        schedule: FaultSchedule | None = None,
    ) -> "SimJob":
        return cls(
            config=config,
            faults=tuple(faults) if faults else (),
            schedule=schedule if schedule else None,
        )


def config_payload(config: SimulationConfig) -> dict:
    """Canonical JSON-friendly description of a configuration.

    Every field that influences simulation output appears here; two
    configs with equal payloads are the same experiment.
    """
    router_config = config.router_config
    payload = {
        "width": config.width,
        "height": config.height,
        "topology": config.topology,
        "router": config.router,
        "routing": config.routing.value,
        "traffic": config.traffic,
        "injection_rate": config.injection_rate,
        "flits_per_packet": config.flits_per_packet,
        "warmup_packets": config.warmup_packets,
        "measure_packets": config.measure_packets,
        "max_cycles": config.max_cycles,
        "fault_drop_timeout": config.fault_drop_timeout,
        "drain_timeout": config.drain_timeout,
        "seed": config.seed,
        "router_config": {
            "vcs_per_port": router_config.vcs_per_port,
            "buffer_depth": router_config.buffer_depth,
            "flit_width_bits": router_config.flit_width_bits,
            "mirror_allocation": router_config.mirror_allocation,
            "lookahead_routing": router_config.lookahead_routing,
        },
    }
    if config.backend != "object":
        # The backend is bit-identical on its envelope, so sharing cache
        # entries would be sound — but a conformance regression must not
        # be maskable by a cache hit on the other backend's record, and
        # the default omission keeps pre-existing object-backend keys
        # (and their on-disk caches) stable.
        payload["backend"] = config.backend
    if getattr(config, "shards", None) is not None:
        # Same reasoning as backend: sharded runs are bit-identical to
        # the reference, but an equivalence regression must not hide
        # behind a cache hit on the unsharded record.  Unsharded keys
        # stay byte-identical to prior versions.
        payload["shards"] = list(config.shards)
    return payload


def _fault_payload(fault: ComponentFault) -> dict:
    return {
        "node": [fault.node.x, fault.node.y],
        "component": fault.component.value,
        "module": fault.module,
        "vc_position": fault.vc_position,
    }


def job_key(job: SimJob) -> str:
    """Stable content hash of a job (hex digest).

    The key covers the cache version, the full config payload and the
    fault population, so any change to what is simulated changes the
    key.  Equal jobs always hash equal across processes and sessions
    (the payload is serialised with sorted keys and no float coercion).
    """
    payload = {
        "version": CACHE_VERSION,
        "config": config_payload(job.config),
        "faults": [_fault_payload(f) for f in job.faults],
    }
    if job.schedule is not None:
        # Only present for campaign jobs, so schedule-free keys (and any
        # cache built from them) are byte-identical to prior versions.
        payload["schedule"] = job.schedule.to_payload()
    blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


class ResultCache:
    """Directory-backed result cache: one ``<job_key>.json`` per record.

    ``hits`` / ``misses`` / ``stores`` / ``corrupt`` count lookups since
    construction; tests (and the CLI's cache summary) read them to prove
    a repeated run performed zero new simulations.  An unparseable entry
    is not a silent permanent miss: it is quarantined to
    ``<key>.corrupt`` (preserving the evidence) and counted, so the next
    store repopulates the slot.

    One instance may be shared by concurrent threads (the job server
    keeps a single warm cache for every client): the counters are
    guarded by a lock so ``summary()`` / :meth:`counters` reflect exact
    totals, and the store path is already safe against concurrent
    writers of the same key (unique tmp names + atomic replace).
    """

    #: Per-process counter making concurrent stores' tmp names unique.
    _tmp_counter = itertools.count()

    def __init__(self, directory: str | Path) -> None:
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.hits = 0
        self.misses = 0
        self.stores = 0
        self.corrupt = 0
        #: Guards the four counters above.  ``x += 1`` on an instance
        #: attribute is a read-modify-write that can interleave between
        #: bytecodes, so unsynchronized concurrent lookups undercount.
        self._lock = threading.Lock()

    def _count(self, counter: str) -> None:
        with self._lock:
            setattr(self, counter, getattr(self, counter) + 1)

    def counters(self) -> dict:
        """Consistent snapshot of the four counters."""
        with self._lock:
            return {
                "hits": self.hits,
                "misses": self.misses,
                "stores": self.stores,
                "corrupt": self.corrupt,
            }

    def path_for(self, key: str) -> Path:
        return self.directory / f"{key}.json"

    def lookup(self, key: str) -> dict | None:
        path = self.path_for(key)
        try:
            text = path.read_text()
        except OSError:
            self._count("misses")
            return None
        try:
            payload = json.loads(text)
            if not isinstance(payload, dict):
                raise ValueError("cache entry is not an object")
            record = (
                payload["record"]
                if payload.get("version") == CACHE_VERSION
                else None
            )
        except (ValueError, KeyError):
            self._quarantine(path)
            self._count("misses")
            return None
        if record is None:  # wrong version: stale but well-formed
            self._count("misses")
            return None
        self._count("hits")
        return record

    def _quarantine(self, path: Path) -> None:
        """Move a corrupt entry aside so the slot can be rebuilt."""
        self._count("corrupt")
        try:
            path.replace(path.with_suffix(".corrupt"))
        except OSError:
            pass  # a concurrent process already moved or replaced it

    def store(self, key: str, record: dict) -> None:
        payload = {"version": CACHE_VERSION, "key": key, "record": record}
        # The tmp name must be unique per writer: two workers storing
        # the same key with a shared ``<key>.tmp`` can interleave a
        # write with the other's atomic replace.
        tmp = self.directory / (
            f"{key}.{os.getpid()}.{next(self._tmp_counter)}.tmp"
        )
        try:
            tmp.write_text(json.dumps(payload, indent=2) + "\n")
            tmp.replace(self.path_for(key))
        except BaseException:
            tmp.unlink(missing_ok=True)
            raise
        self._count("stores")

    def summary(self) -> str:
        """One-line cache statistics for CLI reports."""
        snapshot = self.counters()
        line = (
            f"{snapshot['hits']} hits, {snapshot['misses']} misses, "
            f"{snapshot['stores']} stores"
        )
        if snapshot["corrupt"]:
            line += f", {snapshot['corrupt']} corrupt (quarantined)"
        return line

    def __len__(self) -> int:
        return sum(1 for _ in self.directory.glob("*.json"))


def execute_job(job: SimJob) -> dict:
    """Run one job to completion and flatten it to a record.

    Top-level so it is importable by ``spawn`` workers.
    """
    result = run_simulation(
        job.config, faults=list(job.faults), schedule=job.schedule
    )
    return result_record(result)


def _execute_indexed(indexed: tuple[int, SimJob]) -> tuple[int, dict]:
    index, job = indexed
    return index, execute_job(job)


class NestedPoolFallbackWarning(RuntimeWarning):
    """A worker-pool request was demoted to inline execution.

    Raised as a *warning* (not an error) because the inline driver
    produces identical records — but silently losing parallelism inside
    a server or a nested sweep is worth surfacing.
    """


def _in_daemonic_process() -> bool:
    """Whether this process is a daemonic pool/server worker."""
    return multiprocessing.current_process().daemon


def pool_fallback_reason(workers: int) -> str | None:
    """Why a ``workers``-wide pool cannot be spawned here (or ``None``).

    Daemonic workers (sweep-pool children, managed worker-set
    processes) may not have children of their own; a REPL/stdin parent
    cannot be re-imported by ``spawn``.  Callers fall back to the
    inline driver — bit-identical, just serial — and emit a
    :class:`NestedPoolFallbackWarning` naming the reason.
    """
    if workers <= 1:
        return None
    if _in_daemonic_process():
        return (
            "nested process pool requested from a daemonic worker "
            "context (daemonic processes may not have children)"
        )
    if not _spawn_supported():
        return (
            "spawn entry point unavailable (interactive/stdin parent "
            "cannot be re-imported by spawn workers)"
        )
    return None


def _warn_pool_fallback(reason: str) -> None:
    warnings.warn(
        f"falling back to inline execution: {reason}",
        NestedPoolFallbackWarning,
        stacklevel=3,
    )


def _spawn_supported() -> bool:
    """Whether ``spawn`` workers can re-import the parent's ``__main__``.

    Spawned children replay the parent's entry point; a REPL / stdin /
    ``python -c`` parent has none, and the pool would crash-loop trying
    to import ``<stdin>``.  Fall back to inline execution there instead
    of hanging (results are identical, just serial).
    """
    main = sys.modules.get("__main__")
    if main is None:
        return False
    if getattr(main, "__spec__", None) is not None:
        return True  # python -m whatever: importable by name
    main_file = getattr(main, "__file__", None)
    return main_file is not None and os.path.exists(main_file)


def resolve_workers(workers: int | None) -> int:
    """Normalise a worker count: ``None``/``1`` serial, ``0`` all cores."""
    if workers is None:
        return 1
    if workers == 0:
        return os.cpu_count() or 1
    if workers < 0:
        raise ValueError("workers must be >= 0 (0 means all cores)")
    return workers


@dataclass
class ExecutionStats:
    """What one :meth:`ParallelExecutor.run_jobs` call actually did.

    The resilience counters (``retries`` onward) stay at zero on the
    classic unsupervised path; under a
    :class:`~repro.harness.resilient.RetryPolicy` they record every
    recovery action so benchbed and the progress printer can report
    them.  ``failures_detail`` holds the
    :class:`~repro.harness.resilient.JobFailure` objects behind the
    ``failures`` count.
    """

    total: int = 0
    cache_hits: int = 0
    simulated: int = 0
    elapsed_seconds: float = 0.0
    #: Attempt re-executions scheduled after transient errors.
    retries: int = 0
    #: Jobs quarantined as structured failures (see ``failures_detail``).
    failures: int = 0
    #: Attempts killed for exceeding the per-job wall-clock deadline.
    timeouts: int = 0
    #: Worker processes that died (or stopped heartbeating) mid-job.
    worker_crashes: int = 0
    #: Results rejected by structural validation.
    corrupt_results: int = 0
    #: Speculative duplicates launched for stragglers / duplicates that
    #: delivered the winning result.
    speculative: int = 0
    speculative_wins: int = 0
    #: Jobs settled from a resumed sweep journal (completed or failed
    #: in a previous interrupted run; zero duplicate simulations).
    resumed: int = 0
    failures_detail: list = field(default_factory=list)

    def describe(self) -> str:
        """One-line summary for CLI / progress reports."""
        parts = [
            f"{self.total} jobs",
            f"{self.simulated} simulated",
            f"{self.cache_hits} from cache",
        ]
        if self.resumed:
            parts.append(f"{self.resumed} resumed")
        if self.retries:
            parts.append(f"{self.retries} retries")
        if self.timeouts:
            parts.append(f"{self.timeouts} timeouts")
        if self.worker_crashes:
            parts.append(f"{self.worker_crashes} worker crashes")
        if self.corrupt_results:
            parts.append(f"{self.corrupt_results} corrupt results")
        if self.speculative:
            parts.append(
                f"{self.speculative} speculative "
                f"({self.speculative_wins} wins)"
            )
        if self.failures:
            parts.append(f"{self.failures} failed")
        return ", ".join(parts)


class ParallelExecutor:
    """Runs simulation jobs over a worker pool with optional caching.

    ``workers``: ``None`` or ``1`` runs inline in this process (exactly
    the classic serial path), ``0`` uses every core, ``N`` uses ``N``
    processes.  ``cache`` is a :class:`ResultCache` (or ``None`` to
    always simulate).  ``progress`` is called as ``(done, total,
    record)`` after each completed job, cache hits included.

    ``policy`` (a :class:`~repro.harness.resilient.RetryPolicy`) makes
    execution fault-tolerant: deadlines, retries with backoff, worker
    crash recovery and speculative straggler re-execution, with
    unrecoverable jobs quarantined as failure records instead of
    exceptions.  ``journal`` (a
    :class:`~repro.harness.resilient.SweepJournal`) logs completed job
    keys and failures, enabling resumption of an interrupted sweep with
    zero duplicate simulations.  ``chaos`` (a
    :class:`~repro.harness.chaos.ChaosConfig`) deterministically
    injects worker faults for differential testing; it implies a
    default policy when none is given.  With all three unset the
    executor is byte-for-byte the classic unsupervised path.

    ``simulations_run`` accumulates the number of actual simulator
    invocations across the executor's lifetime; with a warm cache it
    stays at zero.
    """

    #: Start method used for worker pools.  ``spawn`` is the only method
    #: available everywhere and immune to fork-unsafe parent state.
    start_method = "spawn"

    def __init__(
        self,
        workers: int | None = None,
        cache: ResultCache | None = None,
        progress: ProgressCallback | None = None,
        policy=None,
        journal=None,
        chaos=None,
    ) -> None:
        self.workers = resolve_workers(workers)
        self.cache = cache
        self.progress = progress
        self.policy = policy
        self.journal = journal
        self.chaos = chaos
        self.simulations_run = 0
        self.last_stats = ExecutionStats()

    # ------------------------------------------------------------------

    def run_configs(
        self, configs: Iterable[SimulationConfig]
    ) -> list[dict]:
        """Run bare configurations (no faults); records in input order."""
        return self.run_jobs([SimJob.of(c) for c in configs])

    def run_jobs(self, jobs: Sequence[SimJob]) -> list[dict]:
        """Run every job; returns one record per job, in input order.

        Cached jobs are served without simulating; jobs settled by a
        resumed journal (completed or quarantined in a prior run) are
        not re-executed; the rest go to the pool (or run inline when
        ``workers`` is 1).  Under a policy, a job the supervisor gave up
        on contributes a failure record (``FAILURE_MARKER`` set) in its
        slot instead of raising.  On interruption (KeyboardInterrupt)
        the cache and journal are left consistent: every record already
        completed is stored and journaled before the exception leaves
        this frame.
        """
        jobs = list(jobs)
        started = time.monotonic()
        total = len(jobs)
        records: list[dict | None] = [None] * total
        done = 0
        stats = ExecutionStats(total=total)
        policy = self.policy
        if policy is None and self.chaos is not None:
            from repro.harness.resilient import RetryPolicy

            policy = RetryPolicy()
        journal = self.journal
        retry_failed = policy is not None and policy.retry_failed_on_resume

        pending: list[tuple[int, SimJob]] = []
        keys: list[str | None] = [None] * total
        try:
            for index, job in enumerate(jobs):
                if self.cache is None and journal is None:
                    pending.append((index, job))
                    continue
                keys[index] = job_key(job)
                key = keys[index]
                journal_done = (
                    journal is not None and key in journal.completed_keys
                )
                if (
                    journal is not None
                    and key in journal.failed_keys
                    and not retry_failed
                ):
                    # Replay the quarantine verdict from the interrupted
                    # run instead of re-running a known-poison job.
                    failure = journal.failure_for(key, index)
                    records[index] = failure.record()
                    stats.failures += 1
                    stats.resumed += 1
                    stats.failures_detail.append(failure)
                    done += 1
                    self._report(done, total, records[index])
                    continue
                if self.cache is not None:
                    cached = self.cache.lookup(key)
                    if cached is not None:
                        records[index] = cached
                        stats.cache_hits += 1
                        if journal_done:
                            stats.resumed += 1
                        elif journal is not None:
                            journal.record_ok(key)
                        done += 1
                        self._report(done, total, cached)
                        continue
                pending.append((index, job))

            for index, outcome in self._execute(pending, policy, stats):
                if isinstance(outcome, dict):
                    records[index] = outcome
                    stats.simulated += 1
                    self.simulations_run += 1
                    if self.cache is not None and keys[index] is not None:
                        self.cache.store(keys[index], outcome)
                    if journal is not None and keys[index] is not None:
                        journal.record_ok(keys[index])
                    report = outcome
                else:  # JobFailure from the resilient layer
                    if keys[index] is not None and outcome.key is None:
                        from dataclasses import replace

                        outcome = replace(outcome, key=keys[index])
                    records[index] = outcome.record()
                    stats.failures += 1
                    stats.failures_detail.append(outcome)
                    if journal is not None and keys[index] is not None:
                        journal.record_failure(keys[index], outcome)
                    report = records[index]
                done += 1
                self._report(done, total, report)
        finally:
            stats.elapsed_seconds = time.monotonic() - started
            self.last_stats = stats
            if journal is not None:
                journal.flush()
            finish = getattr(self.progress, "finish", None)
            if finish is not None and done == total:
                finish(stats)
        assert all(r is not None for r in records)
        return records  # type: ignore[return-value]

    # ------------------------------------------------------------------

    def _execute(
        self,
        pending: list[tuple[int, SimJob]],
        policy=None,
        stats: ExecutionStats | None = None,
    ) -> Iterable[tuple[int, object]]:
        if not pending:
            return
        fallback = pool_fallback_reason(self.workers)
        if fallback is not None:
            # The pool cannot be spawned here (daemonic worker context
            # or no re-importable entry point); say so instead of
            # silently serialising — results are identical either way.
            _warn_pool_fallback(fallback)
        if policy is None and self.chaos is None:
            # Classic unsupervised path, byte-for-byte the original.
            if (
                self.workers <= 1
                or len(pending) == 1
                or fallback is not None
            ):
                for index, job in pending:
                    yield index, execute_job(job)
                return
            context = multiprocessing.get_context(self.start_method)
            processes = min(self.workers, len(pending))
            with context.Pool(processes=processes) as pool:
                yield from pool.imap_unordered(_execute_indexed, pending)
            return

        from repro.harness import resilient

        if stats is None:
            stats = ExecutionStats(total=len(pending))
        on_retry = getattr(self.progress, "note_retry", None)
        if self.workers <= 1 or fallback is not None:
            yield from resilient.run_serial(
                pending, policy, self.chaos, stats, on_retry=on_retry
            )
            return
        yield from resilient.run_pooled(
            pending,
            policy,
            self.chaos,
            stats,
            workers=min(self.workers, len(pending)),
            start_method=self.start_method,
            on_retry=on_retry,
        )

    def _report(self, done: int, total: int, record: dict) -> None:
        if self.progress is not None:
            self.progress(done, total, record)


class ProgressPrinter:
    """A ready-made progress callback printing ``done/total`` with ETA.

    The ETA is a linear extrapolation from completed jobs — coarse but
    honest for homogeneous sweeps.  Writes to ``stream`` (stderr by
    default) so records on stdout stay machine-readable.

    Failure-aware: under a resilient policy the status line grows
    ``retry``/``failed`` counts as they happen (the executor feeds
    :meth:`note_retry`; failures are recognised by their marker
    records), and :meth:`finish` prints a final ``ok/failed/retried``
    summary instead of only ``done/total``.
    """

    def __init__(self, stream=None, label: str = "sweep") -> None:
        self.stream = stream if stream is not None else sys.stderr
        self.label = label
        self._started: float | None = None
        self.retries = 0
        self.failed = 0

    def note_retry(self, index: int, attempt: int, reason: str) -> None:
        """Executor hook: one attempt of job ``index`` is being retried."""
        self.retries += 1
        print(
            f"[{self.label}] retry job {index} "
            f"(attempt {attempt + 1} failed: {reason})",
            file=self.stream,
            flush=True,
        )

    def __call__(self, done: int, total: int, record: dict) -> None:
        now = time.monotonic()
        if self._started is None:
            self._started = now
        if is_failure_record(record):
            self.failed += 1
        elapsed = now - self._started
        if done and done < total:
            eta = elapsed / done * (total - done)
            tail = f"elapsed {elapsed:6.1f}s eta {eta:6.1f}s"
        else:
            tail = f"elapsed {elapsed:6.1f}s"
        if self.retries:
            tail += f" retry {self.retries}"
        if self.failed:
            tail += f" failed {self.failed}"
        percent = 100.0 * done / total if total else 100.0
        print(
            f"[{self.label}] {done}/{total} ({percent:5.1f}%) {tail}",
            file=self.stream,
            flush=True,
        )

    def finish(self, stats: ExecutionStats) -> None:
        """Executor hook: final summary line.

        Degenerate sweeps get an explicit line instead of a misleading
        ``0 ok, 0 failed, 0 retried``: an empty job list says so, and a
        100%-cached run (no job ever executed) reports the cache
        instead of pretending work happened.  The ``failed``/``retried``
        counters only appear when a failure or retry actually occurred.
        """
        if stats.total == 0:
            print(
                f"[{self.label}] finished: no jobs to run",
                file=self.stream,
                flush=True,
            )
            return
        if (
            stats.simulated == 0
            and stats.failures == 0
            and stats.cache_hits == stats.total
        ):
            resumed = (
                f" ({stats.resumed} resumed)" if stats.resumed else ""
            )
            print(
                f"[{self.label}] finished: all {stats.total} served "
                f"from cache, 0 simulated{resumed}",
                file=self.stream,
                flush=True,
            )
            return
        ok = stats.total - stats.failures
        line = f"[{self.label}] finished: {ok} ok"
        if stats.failures or stats.retries:
            line += f", {stats.failures} failed, {stats.retries} retried"
        print(line, file=self.stream, flush=True)
