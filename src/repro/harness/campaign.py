"""Fault-campaign runner: simulations under runtime fault schedules.

A *campaign* is an ordinary simulation with a
:class:`~repro.faults.schedule.FaultSchedule` striking mid-run, plus the
resilience instrumentation a degradation study needs: the conservation
ledger, service timelines and the delivered-fraction-vs-fault-count
staircase.  :func:`run_campaign` wires all of that together so callers
(the CLI, the dynamic-fault benchmark, tests) get one object back.

For fan-out over many schedules/configs, :func:`run_campaigns` submits
the whole batch through a fault-tolerant
:class:`~repro.harness.parallel.ParallelExecutor`: one job raising
``DrainTimeoutError`` (or crashing its worker) is quarantined as a
structured failure in the :class:`CampaignSweepReport` while every
other job completes — the sweep itself degrades gracefully.  The result
cache keys on the schedule payload, so repeated campaigns cost zero new
simulations.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass, field

from repro.core.config import SimulationConfig
from repro.core.simulator import SimulationResult, Simulator
from repro.faults.schedule import FaultSchedule
from repro.harness.parallel import ExecutionStats, ParallelExecutor, SimJob
from repro.metrics.resilience import PacketAccounting, ResilienceProbe


@dataclass
class CampaignResult:
    """A finished fault campaign: the run plus its resilience views."""

    result: SimulationResult
    accounting: PacketAccounting
    probe: ResilienceProbe
    schedule: FaultSchedule

    @property
    def delivered_fraction(self) -> float:
        return self.accounting.delivered_fraction

    @property
    def conserved(self) -> bool:
        return self.accounting.conserved

    def summary_lines(self) -> list[str]:
        """Human-readable campaign report (CLI output)."""
        lines = [
            f"fault events: {len(self.schedule)} "
            f"({len(self.schedule.topology_event_cycles)} topology-affecting)",
            f"packets: {self.accounting.describe()}",
        ]
        staircase = self.probe.delivered_by_fault_count()
        if len(staircase) > 1:
            steps = ", ".join(
                f"{point.fault_count} faults -> {point.delivered_fraction:.3f}"
                for point in staircase
            )
            lines.append(f"delivered fraction by cumulative faults: {steps}")
        return lines


def run_campaign(
    config: SimulationConfig,
    schedule: FaultSchedule,
    *,
    full_sweep: bool = False,
    window: int = 100,
) -> CampaignResult:
    """Run ``config`` under ``schedule`` with resilience instrumentation.

    ``window`` is the timeline bin width in cycles; ``full_sweep``
    selects the reference scheduler (results are bit-identical either
    way — asserted by tests/test_runtime_faults.py).
    """
    simulator = Simulator(config, schedule=schedule, full_sweep=full_sweep)
    probe = ResilienceProbe(simulator, window=window)
    result = simulator.run()
    return CampaignResult(
        result=result,
        accounting=PacketAccounting.from_result(result),
        probe=probe,
        schedule=schedule,
    )


@dataclass
class CampaignSweepReport:
    """A batch of campaign jobs: records, quarantined failures, stats.

    ``records`` is one entry per job in submission order — either a
    flat result record or a failure-marker record (see
    ``repro.harness.parallel.FAILURE_MARKER``); ``failures`` holds the
    corresponding :class:`~repro.harness.resilient.JobFailure` objects.
    """

    records: list[dict]
    failures: list = field(default_factory=list)
    stats: ExecutionStats = field(default_factory=ExecutionStats)

    @property
    def ok_records(self) -> list[dict]:
        from repro.harness.parallel import is_failure_record

        return [r for r in self.records if not is_failure_record(r)]

    def summary_lines(self) -> list[str]:
        """Human-readable batch report (CLI output)."""
        lines = [
            f"campaign jobs: {self.stats.total} "
            f"({len(self.ok_records)} completed, "
            f"{self.stats.failures} failed)",
            f"execution: {self.stats.describe()}",
        ]
        for failure in self.failures:
            lines.append(f"failed: {failure.describe()}")
        return lines


def campaign_jobs(
    config: SimulationConfig, schedules: Sequence[FaultSchedule]
) -> list[SimJob]:
    """One :class:`SimJob` per schedule, all sharing ``config``."""
    return [SimJob.of(config, schedule=schedule) for schedule in schedules]


def run_campaigns(
    jobs: Sequence[SimJob],
    *,
    workers: int | None = None,
    cache=None,
    policy=None,
    journal=None,
    progress=None,
    executor: ParallelExecutor | None = None,
) -> CampaignSweepReport:
    """Run many campaign jobs with failure isolation.

    Jobs are supervised by ``policy`` (default: a stock
    :class:`~repro.harness.resilient.RetryPolicy`), so an unrecoverable
    job — e.g. one raising
    :class:`~repro.core.simulator.DrainTimeoutError` — becomes a
    structured failure in the report instead of aborting the batch;
    remaining jobs complete normally.  Build ``jobs`` by hand or via
    :func:`campaign_jobs`.
    """
    if executor is None:
        if policy is None:
            from repro.harness.resilient import RetryPolicy

            policy = RetryPolicy()
        executor = ParallelExecutor(
            workers=workers,
            cache=cache,
            progress=progress,
            policy=policy,
            journal=journal,
        )
    records = executor.run_jobs(list(jobs))
    stats = executor.last_stats
    return CampaignSweepReport(
        records=records,
        failures=list(stats.failures_detail),
        stats=stats,
    )
