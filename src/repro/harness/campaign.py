"""Fault-campaign runner: one simulation under a runtime fault schedule.

A *campaign* is an ordinary simulation with a
:class:`~repro.faults.schedule.FaultSchedule` striking mid-run, plus the
resilience instrumentation a degradation study needs: the conservation
ledger, service timelines and the delivered-fraction-vs-fault-count
staircase.  :func:`run_campaign` wires all of that together so callers
(the CLI, the dynamic-fault benchmark, tests) get one object back.

For fan-out over many schedules use :class:`~repro.harness.parallel`'s
``SimJob`` with its ``schedule`` field — the result cache keys on the
schedule payload, so repeated campaigns cost zero new simulations.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.config import SimulationConfig
from repro.core.simulator import SimulationResult, Simulator
from repro.faults.schedule import FaultSchedule
from repro.metrics.resilience import PacketAccounting, ResilienceProbe


@dataclass
class CampaignResult:
    """A finished fault campaign: the run plus its resilience views."""

    result: SimulationResult
    accounting: PacketAccounting
    probe: ResilienceProbe
    schedule: FaultSchedule

    @property
    def delivered_fraction(self) -> float:
        return self.accounting.delivered_fraction

    @property
    def conserved(self) -> bool:
        return self.accounting.conserved

    def summary_lines(self) -> list[str]:
        """Human-readable campaign report (CLI output)."""
        lines = [
            f"fault events: {len(self.schedule)} "
            f"({len(self.schedule.topology_event_cycles)} topology-affecting)",
            f"packets: {self.accounting.describe()}",
        ]
        staircase = self.probe.delivered_by_fault_count()
        if len(staircase) > 1:
            steps = ", ".join(
                f"{point.fault_count} faults -> {point.delivered_fraction:.3f}"
                for point in staircase
            )
            lines.append(f"delivered fraction by cumulative faults: {steps}")
        return lines


def run_campaign(
    config: SimulationConfig,
    schedule: FaultSchedule,
    *,
    full_sweep: bool = False,
    window: int = 100,
) -> CampaignResult:
    """Run ``config`` under ``schedule`` with resilience instrumentation.

    ``window`` is the timeline bin width in cycles; ``full_sweep``
    selects the reference scheduler (results are bit-identical either
    way — asserted by tests/test_runtime_faults.py).
    """
    simulator = Simulator(config, schedule=schedule, full_sweep=full_sweep)
    probe = ResilienceProbe(simulator, window=window)
    result = simulator.run()
    return CampaignResult(
        result=result,
        accounting=PacketAccounting.from_result(result),
        probe=probe,
        schedule=schedule,
    )
