"""Per-figure reproduction runners — one entry point per paper artifact.

Each function regenerates the data behind one table or figure of the
paper's evaluation (Section 5) and returns it as plain dictionaries the
benchmarks assert on and the report module renders.  The experiment
index in DESIGN.md maps each function to its artifact.

Every simulation-backed runner takes an optional ``executor`` (a
:class:`~repro.harness.parallel.ParallelExecutor`): the full grid of
(router, routing, rate, seed) simulations behind a figure is submitted
as one batch, so a pooled executor saturates every core and a cached
one replays a previous run without simulating.  The default executor is
serial and uncached — identical results, one process.
"""

from __future__ import annotations

from repro.analysis.arbitration import figure2 as _figure2_inventory
from repro.analysis.matching import table2 as _table2_analytic
from repro.core.types import RoutingMode
from repro.harness.experiment import (
    ROUTERS,
    ROUTINGS,
    STANDARD,
    ExperimentScale,
    PointSpec,
    averaged_points,
    fault_population,
)
from repro.harness.parallel import ParallelExecutor
from repro.routers.roco.path_set import table1_summary

#: Operating point of the fault / energy experiments (Section 5.4:
#: "The traffic injection rate in these faulty networks was 30%").
FAULT_INJECTION_RATE = 0.30
#: Fault counts swept in Figures 11, 12 and 14.
FAULT_COUNTS = (1, 2, 4)
#: Traffic patterns of Figure 13.
ENERGY_TRAFFICS = ("uniform", "self_similar", "transpose")


def table1() -> dict[str, dict[str, list[str]]]:
    """Table 1 — RoCo VC buffer configuration per routing algorithm."""
    return {
        mode.value: table1_summary(mode)
        for mode in (RoutingMode.ADAPTIVE, RoutingMode.XY_YX, RoutingMode.XY)
    }


def table2() -> dict[str, float]:
    """Table 2 — non-blocking probabilities (analytic, N = 5)."""
    return _table2_analytic()


def figure2(v: int = 3) -> dict:
    """Figure 2 — VA arbiter inventory comparison."""
    return _figure2_inventory(v)


def figure3(
    scale: ExperimentScale = STANDARD,
    executor: ParallelExecutor | None = None,
) -> dict:
    """Figure 3 — contention probabilities vs offered load.

    Panels (a)/(b): row/column input contention under XY routing;
    panel (c): overall contention under adaptive routing.
    """
    specs = [
        PointSpec(router, routing, "uniform", rate)
        for router in ROUTERS
        for rate in scale.contention_rates
        for routing in (RoutingMode.XY, RoutingMode.ADAPTIVE)
    ]
    points = dict(zip(specs, averaged_points(specs, scale, executor=executor)))
    panels: dict[str, dict[str, list[tuple[float, float]]]] = {
        "row_xy": {},
        "column_xy": {},
        "adaptive": {},
    }
    for router in ROUTERS:
        row_curve, col_curve, ad_curve = [], [], []
        for rate in scale.contention_rates:
            xy = points[PointSpec(router, RoutingMode.XY, "uniform", rate)]
            ad = points[PointSpec(router, RoutingMode.ADAPTIVE, "uniform", rate)]
            row_curve.append((rate, xy["contention_row"]))
            col_curve.append((rate, xy["contention_column"]))
            ad_curve.append((rate, ad["contention_overall"]))
        panels["row_xy"][router] = row_curve
        panels["column_xy"][router] = col_curve
        panels["adaptive"][router] = ad_curve
    return panels


def latency_figure(
    traffic: str,
    scale: ExperimentScale = STANDARD,
    executor: ParallelExecutor | None = None,
) -> dict[str, dict[str, list[tuple[float, float]]]]:
    """Figures 8/9/10 — average latency vs injection rate.

    Returns ``{routing: {router: [(rate, latency), ...]}}`` for the
    requested traffic pattern (uniform -> Fig. 8, self-similar -> Fig. 9,
    transpose -> Fig. 10).
    """
    specs = [
        PointSpec(router, routing, traffic, rate)
        for routing in ROUTINGS
        for router in ROUTERS
        for rate in scale.rates
    ]
    points = dict(zip(specs, averaged_points(specs, scale, executor=executor)))
    out: dict[str, dict[str, list[tuple[float, float]]]] = {}
    for routing in ROUTINGS:
        out[routing.value] = {
            router: [
                (
                    rate,
                    points[PointSpec(router, routing, traffic, rate)][
                        "average_latency"
                    ],
                )
                for rate in scale.rates
            ]
            for router in ROUTERS
        }
    return out


def figure8(
    scale: ExperimentScale = STANDARD,
    executor: ParallelExecutor | None = None,
) -> dict:
    """Figure 8 — uniform random traffic latency curves."""
    return latency_figure("uniform", scale, executor)


def figure9(
    scale: ExperimentScale = STANDARD,
    executor: ParallelExecutor | None = None,
) -> dict:
    """Figure 9 — self-similar traffic latency curves."""
    return latency_figure("self_similar", scale, executor)


def figure10(
    scale: ExperimentScale = STANDARD,
    executor: ParallelExecutor | None = None,
) -> dict:
    """Figure 10 — transpose traffic latency curves."""
    return latency_figure("transpose", scale, executor)


def _fault_populations(
    scale: ExperimentScale, critical: bool
) -> dict[int, dict[int, list]]:
    """``{count: {seed: faults}}`` — identical across architectures."""
    return {
        count: {
            seed: fault_population(scale, count, critical, seed)
            for seed in scale.seeds
        }
        for count in FAULT_COUNTS
    }


def fault_figure(
    critical: bool,
    scale: ExperimentScale = STANDARD,
    executor: ParallelExecutor | None = None,
) -> dict[str, dict[str, dict[int, float]]]:
    """Figures 11/12 — packet completion probability under faults.

    ``critical`` selects the Figure-11 population (router-centric /
    critical-pathway components) versus Figure-12's (message-centric /
    non-critical).  Every architecture sees the same fault sites per
    (seed, count).  Returns ``{routing: {router: {n_faults: completion}}}``.
    """
    populations = _fault_populations(scale, critical)
    specs, faults_per_spec, cells = [], {}, []
    for routing in ROUTINGS:
        for router in ROUTERS:
            for count in FAULT_COUNTS:
                # Distinct specs per cell: the spec tuple repeats the
                # same (router, routing, rate) for every fault count, so
                # disambiguate by keeping our own (spec index -> cell)
                # list rather than a spec-keyed dict.
                spec = PointSpec(router, routing, "uniform", FAULT_INJECTION_RATE)
                specs.append(spec)
                cells.append((routing, router, count))
                faults_per_spec[len(specs) - 1] = populations[count]
    points = _averaged_points_indexed(specs, scale, faults_per_spec, executor)
    out: dict[str, dict[str, dict[int, float]]] = {}
    for (routing, router, count), point in zip(cells, points):
        out.setdefault(routing.value, {}).setdefault(router, {})[count] = point[
            "completion_probability"
        ]
    return out


def _averaged_points_indexed(
    specs: list[PointSpec],
    scale: ExperimentScale,
    faults_per_index: dict[int, dict[int, list]],
    executor: ParallelExecutor | None,
) -> list[dict]:
    """Like :func:`averaged_points` but faults keyed by spec position.

    Needed when the same PointSpec appears multiple times with different
    fault populations (the fault figures sweep fault count at one
    operating point).
    """
    from repro.harness.experiment import aggregate_point

    if executor is None:
        executor = ParallelExecutor()
    jobs = []
    for index, spec in enumerate(specs):
        jobs.extend(spec.jobs(scale, faults_per_index.get(index)))
    records = executor.run_jobs(jobs)
    n = len(scale.seeds)
    return [
        aggregate_point(spec, records[i * n : (i + 1) * n])
        for i, spec in enumerate(specs)
    ]


def figure11(
    scale: ExperimentScale = STANDARD,
    executor: ParallelExecutor | None = None,
) -> dict:
    """Figure 11 — completion under router-centric / critical faults."""
    return fault_figure(critical=True, scale=scale, executor=executor)


def figure12(
    scale: ExperimentScale = STANDARD,
    executor: ParallelExecutor | None = None,
) -> dict:
    """Figure 12 — completion under message-centric / non-critical faults."""
    return fault_figure(critical=False, scale=scale, executor=executor)


def figure13(
    scale: ExperimentScale = STANDARD,
    executor: ParallelExecutor | None = None,
) -> dict[str, dict[str, float]]:
    """Figure 13 — energy per packet (nJ) at 30% injection.

    Returns ``{traffic: {router: energy_nJ}}``.
    """
    specs = [
        PointSpec(router, RoutingMode.XY, traffic, FAULT_INJECTION_RATE)
        for traffic in ENERGY_TRAFFICS
        for router in ROUTERS
    ]
    points = dict(zip(specs, averaged_points(specs, scale, executor=executor)))
    return {
        traffic: {
            router: points[
                PointSpec(router, RoutingMode.XY, traffic, FAULT_INJECTION_RATE)
            ]["energy_per_packet_nj"]
            for router in ROUTERS
        }
        for traffic in ENERGY_TRAFFICS
    }


def figure14(
    scale: ExperimentScale = STANDARD,
    executor: ParallelExecutor | None = None,
) -> dict[str, dict[str, dict[int, dict[str, float]]]]:
    """Figure 14 — PEF and average latency under faults.

    Returns ``{fault_class: {router: {n_faults: {pef, latency,
    completion, energy}}}}`` with fault classes ``critical`` and
    ``non_critical`` (the figure's panels (a) and (b)).
    """
    specs, faults_per_index, cells = [], {}, []
    for label, critical in (("critical", True), ("non_critical", False)):
        populations = _fault_populations(scale, critical)
        for router in ROUTERS:
            for count in FAULT_COUNTS:
                specs.append(
                    PointSpec(
                        router, RoutingMode.ADAPTIVE, "uniform", FAULT_INJECTION_RATE
                    )
                )
                cells.append((label, router, count))
                faults_per_index[len(specs) - 1] = populations[count]
    points = _averaged_points_indexed(specs, scale, faults_per_index, executor)
    out: dict[str, dict[str, dict[int, dict[str, float]]]] = {}
    for (label, router, count), point in zip(cells, points):
        out.setdefault(label, {}).setdefault(router, {})[count] = {
            "pef": point["pef"],
            "latency": point["average_latency"],
            "completion": point["completion_probability"],
            "energy_nj": point["energy_per_packet_nj"],
        }
    return out
