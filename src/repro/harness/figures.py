"""Per-figure reproduction runners — one entry point per paper artifact.

Each function regenerates the data behind one table or figure of the
paper's evaluation (Section 5) and returns it as plain dictionaries the
benchmarks assert on and the report module renders.  The experiment
index in DESIGN.md maps each function to its artifact.
"""

from __future__ import annotations

from repro.analysis.arbitration import figure2 as _figure2_inventory
from repro.analysis.matching import table2 as _table2_analytic
from repro.core.types import RoutingMode
from repro.harness.experiment import (
    ROUTERS,
    ROUTINGS,
    STANDARD,
    ExperimentScale,
    averaged_point,
    fault_population,
)
from repro.routers.roco.path_set import table1_summary

#: Operating point of the fault / energy experiments (Section 5.4:
#: "The traffic injection rate in these faulty networks was 30%").
FAULT_INJECTION_RATE = 0.30
#: Fault counts swept in Figures 11, 12 and 14.
FAULT_COUNTS = (1, 2, 4)
#: Traffic patterns of Figure 13.
ENERGY_TRAFFICS = ("uniform", "self_similar", "transpose")


def table1() -> dict[str, dict[str, list[str]]]:
    """Table 1 — RoCo VC buffer configuration per routing algorithm."""
    return {
        mode.value: table1_summary(mode)
        for mode in (RoutingMode.ADAPTIVE, RoutingMode.XY_YX, RoutingMode.XY)
    }


def table2() -> dict[str, float]:
    """Table 2 — non-blocking probabilities (analytic, N = 5)."""
    return _table2_analytic()


def figure2(v: int = 3) -> dict:
    """Figure 2 — VA arbiter inventory comparison."""
    return _figure2_inventory(v)


def figure3(scale: ExperimentScale = STANDARD) -> dict:
    """Figure 3 — contention probabilities vs offered load.

    Panels (a)/(b): row/column input contention under XY routing;
    panel (c): overall contention under adaptive routing.
    """
    panels: dict[str, dict[str, list[tuple[float, float]]]] = {
        "row_xy": {},
        "column_xy": {},
        "adaptive": {},
    }
    for router in ROUTERS:
        xy_curve, ad_curve = [], []
        for rate in scale.contention_rates:
            xy = averaged_point(router, RoutingMode.XY, "uniform", rate, scale)
            ad = averaged_point(router, RoutingMode.ADAPTIVE, "uniform", rate, scale)
            xy_curve.append((rate, xy["contention_row"], xy["contention_column"]))
            ad_curve.append((rate, ad["contention_overall"]))
        panels["row_xy"][router] = [(r, row) for r, row, _ in xy_curve]
        panels["column_xy"][router] = [(r, col) for r, _, col in xy_curve]
        panels["adaptive"][router] = ad_curve
    return panels


def latency_figure(
    traffic: str, scale: ExperimentScale = STANDARD
) -> dict[str, dict[str, list[tuple[float, float]]]]:
    """Figures 8/9/10 — average latency vs injection rate.

    Returns ``{routing: {router: [(rate, latency), ...]}}`` for the
    requested traffic pattern (uniform -> Fig. 8, self-similar -> Fig. 9,
    transpose -> Fig. 10).
    """
    out: dict[str, dict[str, list[tuple[float, float]]]] = {}
    for routing in ROUTINGS:
        per_router: dict[str, list[tuple[float, float]]] = {}
        for router in ROUTERS:
            curve = []
            for rate in scale.rates:
                point = averaged_point(router, routing, traffic, rate, scale)
                curve.append((rate, point["average_latency"]))
            per_router[router] = curve
        out[routing.value] = per_router
    return out


def figure8(scale: ExperimentScale = STANDARD) -> dict:
    """Figure 8 — uniform random traffic latency curves."""
    return latency_figure("uniform", scale)


def figure9(scale: ExperimentScale = STANDARD) -> dict:
    """Figure 9 — self-similar traffic latency curves."""
    return latency_figure("self_similar", scale)


def figure10(scale: ExperimentScale = STANDARD) -> dict:
    """Figure 10 — transpose traffic latency curves."""
    return latency_figure("transpose", scale)


def fault_figure(
    critical: bool, scale: ExperimentScale = STANDARD
) -> dict[str, dict[str, dict[int, float]]]:
    """Figures 11/12 — packet completion probability under faults.

    ``critical`` selects the Figure-11 population (router-centric /
    critical-pathway components) versus Figure-12's (message-centric /
    non-critical).  Every architecture sees the same fault sites per
    (seed, count).  Returns ``{routing: {router: {n_faults: completion}}}``.
    """
    out: dict[str, dict[str, dict[int, float]]] = {}
    for routing in ROUTINGS:
        per_router: dict[str, dict[int, float]] = {}
        for router in ROUTERS:
            per_count: dict[int, float] = {}
            for count in FAULT_COUNTS:
                faults_per_seed = {
                    seed: fault_population(scale, count, critical, seed)
                    for seed in scale.seeds
                }
                point = averaged_point(
                    router,
                    routing,
                    "uniform",
                    FAULT_INJECTION_RATE,
                    scale,
                    faults_per_seed=faults_per_seed,
                )
                per_count[count] = point["completion_probability"]
            per_router[router] = per_count
        out[routing.value] = per_router
    return out


def figure11(scale: ExperimentScale = STANDARD) -> dict:
    """Figure 11 — completion under router-centric / critical faults."""
    return fault_figure(critical=True, scale=scale)


def figure12(scale: ExperimentScale = STANDARD) -> dict:
    """Figure 12 — completion under message-centric / non-critical faults."""
    return fault_figure(critical=False, scale=scale)


def figure13(scale: ExperimentScale = STANDARD) -> dict[str, dict[str, float]]:
    """Figure 13 — energy per packet (nJ) at 30% injection.

    Returns ``{traffic: {router: energy_nJ}}``.
    """
    out: dict[str, dict[str, float]] = {}
    for traffic in ENERGY_TRAFFICS:
        out[traffic] = {}
        for router in ROUTERS:
            point = averaged_point(
                router, RoutingMode.XY, traffic, FAULT_INJECTION_RATE, scale
            )
            out[traffic][router] = point["energy_per_packet_nj"]
    return out


def figure14(
    scale: ExperimentScale = STANDARD,
) -> dict[str, dict[str, dict[int, dict[str, float]]]]:
    """Figure 14 — PEF and average latency under faults.

    Returns ``{fault_class: {router: {n_faults: {pef, latency,
    completion, energy}}}}`` with fault classes ``critical`` and
    ``non_critical`` (the figure's panels (a) and (b)).
    """
    out: dict[str, dict[str, dict[int, dict[str, float]]]] = {}
    for label, critical in (("critical", True), ("non_critical", False)):
        out[label] = {}
        for router in ROUTERS:
            per_count: dict[int, dict[str, float]] = {}
            for count in FAULT_COUNTS:
                faults_per_seed = {
                    seed: fault_population(scale, count, critical, seed)
                    for seed in scale.seeds
                }
                point = averaged_point(
                    router,
                    RoutingMode.ADAPTIVE,
                    "uniform",
                    FAULT_INJECTION_RATE,
                    scale,
                    faults_per_seed=faults_per_seed,
                )
                per_count[count] = {
                    "pef": point["pef"],
                    "latency": point["average_latency"],
                    "completion": point["completion_probability"],
                    "energy_nj": point["energy_per_packet_nj"],
                }
            out[label][router] = per_count
    return out
