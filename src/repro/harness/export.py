"""Result serialization: JSON records and CSV sweeps.

Turns :class:`~repro.core.simulator.SimulationResult` objects into
plain records for notebooks, plotting scripts and archival — the
deliverable format of a reproduction run.
"""

from __future__ import annotations

import csv
import json
from pathlib import Path
from typing import Iterable

from repro.core.simulator import SimulationResult

#: Flat fields exported for every run, in column order.
RESULT_FIELDS = (
    "router",
    "routing",
    "traffic",
    "injection_rate",
    "width",
    "height",
    "seed",
    "average_latency",
    "p50_latency",
    "p95_latency",
    "p99_latency",
    "average_hops",
    "throughput",
    "injected_packets",
    "delivered_packets",
    "dropped_packets",
    "completion_probability",
    "energy_per_packet_nj",
    "dynamic_energy_j",
    "leakage_energy_j",
    "edp",
    "pef",
    "contention_row",
    "contention_column",
    "contention_overall",
    "cycles",
    "num_faults",
)


def result_record(result: SimulationResult) -> dict:
    """Flatten a result into one JSON/CSV-friendly dict."""
    config = result.config
    return {
        "router": config.router,
        "routing": config.routing.value,
        "traffic": config.traffic,
        "injection_rate": config.injection_rate,
        "width": config.width,
        "height": config.height,
        "seed": config.seed,
        "average_latency": result.average_latency,
        "p50_latency": result.latency.p50,
        "p95_latency": result.latency.p95,
        "p99_latency": result.latency.p99,
        "average_hops": result.average_hops,
        "throughput": result.throughput,
        "injected_packets": result.injected_packets,
        "delivered_packets": result.delivered_packets,
        "dropped_packets": result.dropped_packets,
        "completion_probability": result.completion_probability,
        "energy_per_packet_nj": result.energy_per_packet_nj,
        "dynamic_energy_j": result.energy.dynamic,
        "leakage_energy_j": result.energy.leakage,
        "edp": result.edp,
        "pef": result.pef,
        "contention_row": result.contention_row,
        "contention_column": result.contention_column,
        "contention_overall": result.contention_overall,
        "cycles": result.cycles,
        "num_faults": len(result.faults),
    }


def write_json(results: Iterable[SimulationResult], path: str | Path) -> Path:
    """Write results as a JSON array of flat records."""
    path = Path(path)
    records = [result_record(r) for r in results]
    path.write_text(json.dumps(records, indent=2) + "\n")
    return path


def write_csv(results: Iterable[SimulationResult], path: str | Path) -> Path:
    """Write results as a CSV with the :data:`RESULT_FIELDS` columns."""
    path = Path(path)
    with path.open("w", newline="") as handle:
        writer = csv.DictWriter(handle, fieldnames=RESULT_FIELDS)
        writer.writeheader()
        for result in results:
            writer.writerow(result_record(result))
    return path


def read_json(path: str | Path) -> list[dict]:
    """Load records written by :func:`write_json`."""
    return json.loads(Path(path).read_text())
