"""Sharded mesh execution: cooperating tile processes, one per rectangle.

The mesh is partitioned by a :class:`ShardPlan` into rectangular tiles,
each stepped by a :class:`~repro.core.shard.TileSimulator` in its own
spawn-context worker process.  A coordinator drives every tile through
the two halves of the cycle in lockstep and routes all cross-tile state
between them (see docs/sharded-scaling.md for the full protocol):

1. ``front(t)`` on all tiles in parallel — generation, injection, link
   delivery, switch traversal.  Flits launched onto boundary links have
   a 2-cycle lookahead (``LINK_DELAY``) before any receiver can observe
   them, so harvesting them once per cycle is always conservative.
2. ``alloc(t)`` in *anti-diagonal wave order* over the tile grid.  VC
   allocation arbitrates cross-tile (upstream routers claim VCs on the
   neighbouring tile's boundary routers), and the reference resolves
   same-cycle claim races in global row-major router order — which,
   restricted to the pairs that can actually race across a cut, is
   exactly "west tile before east tile, north tile before south tile".
   Each tile's alloc grant carries every delta routed to it so far, so
   a successor tile allocates against the same owner/credit state the
   reference would have shown it.

Because both halves replay the reference phases verbatim and all
cross-tile visibility matches the reference's intra-cycle ordering, a
sharded run is **bit-identical** to the single-process run — asserted
cell-by-cell by ``python -m repro shards --grid`` and
tests/test_sharded.py.

Traffic is generated from a central *oracle* (:func:`build_generation_schedule`)
that replays the reference simulator's exact rng-draw order once up
front, then hands each tile its own sources' creation schedule — tiles
never touch an rng, so partitioning cannot perturb the stream.

Worker supervision follows repro.harness.resilient: crashes, hangs and
worker exceptions surface as a structured
:class:`~repro.harness.resilient.JobFailure` (wrapped in
:class:`ShardedExecutionError`) naming the tile, instead of deadlocking
the coordinator.  Cycle-lockstep tiles cannot be retried mid-protocol
(their state is minted by every previous cycle), so quarantine is
whole-run: callers' retry policies see a fatal, deterministic error.
"""

from __future__ import annotations

import multiprocessing
import os
import random
import time
import traceback
from bisect import bisect_right
from dataclasses import dataclass

from repro.core.config import SimulationConfig, parse_shards
from repro.core.shard import TileRect, TileSimulator
from repro.core.simulator import (
    DrainTimeoutError,
    SimulationResult,
    Simulator,
    StrandedCensus,
)
from repro.core.soa.errors import BackendUnsupportedError
from repro.core.statistics import (
    ActivityCounters,
    SchedulerCounters,
    StatsCollector,
)
from repro.core.types import DropReason, NodeId, RoutingMode
from repro.energy.model import EnergyModel
from repro.metrics.latency import LatencySummary
from repro.routing.xyyx import choose_variant
from repro.traffic import make_traffic

#: Router architectures the tile engine supports (the same pair the
#: paper's comparison — and the SoA backend — covers).
SHARD_ROUTERS = ("roco", "generic")

#: Default seconds the coordinator waits for a tile's phase reply
#: before declaring the worker hung.
DEFAULT_TILE_TIMEOUT = 120.0


class ShardUnsupportedError(BackendUnsupportedError):
    """A configuration outside the sharded-execution envelope.

    Subclasses :class:`BackendUnsupportedError` so the resilient
    executor's fatal-vs-transient taxonomy (and any caller already
    catching envelope rejections) treats it identically; only the
    message differs.
    """

    def __init__(self, feature: str, detail: str = "") -> None:
        message = f"sharded execution does not support {feature}"
        if detail:
            message += f" ({detail})"
        message += "; run with shards=None"
        RuntimeError.__init__(self, message)
        self.feature = feature


class ShardedExecutionError(RuntimeError):
    """A tile worker died or wedged; carries the structured failure."""

    def __init__(self, failure) -> None:
        super().__init__(
            f"tile {failure.index} failed ({failure.error_type}): "
            f"{failure.message}"
        )
        self.failure = failure


def ensure_sharded_supported(config, traffic=None, faults=None, schedule=None):
    """Raise :class:`ShardUnsupportedError` outside the envelope.

    The envelope is: RoCo/generic routers on a fault-free mesh, any
    routing mode and *named* traffic pattern, both schedulers, the
    object backend.  Faults are rejected because fault propagation
    (handshake repair, purges, reachability) is global and non-local to
    a tile; explicit traffic instances because the generation oracle
    must be able to rebuild the pattern deterministically per tile.
    """
    if config.router not in SHARD_ROUTERS:
        raise ShardUnsupportedError(
            f"router={config.router!r}", "only roco and generic are tiled"
        )
    if config.topology != "mesh":
        raise ShardUnsupportedError(f"topology={config.topology!r}")
    if config.backend != "object":
        raise ShardUnsupportedError(
            f"backend={config.backend!r}",
            "tile workers run the object engine",
        )
    if traffic is not None:
        raise ShardUnsupportedError(
            "explicit traffic instances",
            "pass a named pattern via config.traffic so the generation "
            "oracle can replay it",
        )
    if faults:
        raise ShardUnsupportedError(
            "static fault injection", f"{len(list(faults))} fault(s) requested"
        )
    if schedule is not None and getattr(schedule, "events", ()):
        raise ShardUnsupportedError(
            "runtime fault schedules",
            f"{len(schedule.events)} event(s) scheduled",
        )


# ----------------------------------------------------------------------
# Shard planning
# ----------------------------------------------------------------------


def _split_extent(extent: int, parts: int) -> list[tuple[int, int]]:
    """Contiguous balanced chunks of ``range(extent)`` as (start, stop)."""
    base, remainder = divmod(extent, parts)
    spans = []
    start = 0
    for index in range(parts):
        size = base + (1 if index < remainder else 0)
        spans.append((start, start + size))
        start += size
    return spans


@dataclass(frozen=True)
class ShardPlan:
    """The tile decomposition of one mesh: rectangles plus wave order."""

    tiles_x: int
    tiles_y: int
    rects: tuple[TileRect, ...]
    #: Anti-diagonal waves of tile indices: every tile's west and north
    #: neighbours complete their allocate phase in an earlier wave.
    waves: tuple[tuple[int, ...], ...]

    @classmethod
    def plan(cls, config: SimulationConfig, shards) -> "ShardPlan":
        tiles_x, tiles_y = parse_shards(shards)
        x_spans = _split_extent(config.width, tiles_x)
        y_spans = _split_extent(config.height, tiles_y)
        if tiles_x > 1 and min(x1 - x0 for x0, x1 in x_spans) < 2:
            raise ShardUnsupportedError(
                f"shards={tiles_x}x{tiles_y} on a {config.width}x"
                f"{config.height} mesh",
                "each tile must be at least 2 columns wide when the X axis "
                "is split (boundary VCs admit both east and west inputs and "
                "can only be mirrored on one neighbouring tile)",
            )
        if tiles_y > 1 and min(y1 - y0 for y0, y1 in y_spans) < 2:
            raise ShardUnsupportedError(
                f"shards={tiles_x}x{tiles_y} on a {config.width}x"
                f"{config.height} mesh",
                "each tile must be at least 2 rows tall when the Y axis is "
                "split",
            )
        rects = tuple(
            TileRect(x0, y0, x1, y1)
            for y0, y1 in y_spans
            for x0, x1 in x_spans
        )
        waves: dict[int, list[int]] = {}
        for ty in range(tiles_y):
            for tx in range(tiles_x):
                waves.setdefault(tx + ty, []).append(ty * tiles_x + tx)
        ordered = tuple(
            tuple(waves[key]) for key in sorted(waves)
        )
        return cls(tiles_x=tiles_x, tiles_y=tiles_y, rects=rects, waves=ordered)

    @property
    def num_tiles(self) -> int:
        return self.tiles_x * self.tiles_y

    def tile_of(self, x: int, y: int) -> int:
        for index, rect in enumerate(self.rects):
            if rect.x0 <= x < rect.x1 and rect.y0 <= y < rect.y1:
                return index
        raise ValueError(f"({x}, {y}) outside every tile")


# ----------------------------------------------------------------------
# Traffic oracle
# ----------------------------------------------------------------------


def build_generation_schedule(config: SimulationConfig):
    """Replay the reference generator's rng-draw order centrally.

    Returns ``(entries, measure_start_cycle)`` where each entry is
    ``(cycle, src_x, src_y, pid, dest_x, dest_y, yx_first, measured)``
    in global creation (pid) order.  The draw order per packet —
    arrivals, destination, then the XY-YX variant coin — and the
    measurement flip (the ``warmup_packets``-th creation, itself
    measured) are byte-for-byte the reference's
    ``Simulator._generate`` / ``_create_packet`` path.
    """
    rng = random.Random(config.seed)
    nodes = [
        NodeId(x, y)
        for y in range(config.height)
        for x in range(config.width)
    ]
    traffic = make_traffic(config.traffic)
    traffic.bind(config, rng, nodes)
    arrivals = traffic.arrivals
    destination = traffic.destination
    use_yx = config.routing is RoutingMode.XY_YX
    total = config.total_packets
    warmup = config.warmup_packets
    entries: list[tuple] = []
    measure_start: int | None = None

    def generate(cycle: int) -> None:
        nonlocal measure_start
        for node in nodes:
            if len(entries) >= total:
                return
            for _ in range(arrivals(node, cycle)):
                dest = destination(node)
                if len(entries) == warmup:
                    measure_start = cycle
                measured = measure_start is not None
                yx_first = (
                    choose_variant(node, dest, rng, None) if use_yx else False
                )
                entries.append(
                    (cycle, node.x, node.y, len(entries), dest.x, dest.y,
                     yx_first, measured)
                )
                if len(entries) >= total:
                    return

    for cycle in range(config.max_cycles):
        if len(entries) >= total:
            break
        generate(cycle)
    return entries, measure_start


# ----------------------------------------------------------------------
# Tile drivers: in-process and worker-process
# ----------------------------------------------------------------------


def _tile_worker(conn, payload) -> None:
    """Worker-process main loop: one message, one phase."""
    try:
        sim = TileSimulator(
            payload["config"],
            payload["rects"],
            payload["tile"],
            payload["schedule"],
            payload["measure_start"],
            full_sweep=payload["full_sweep"],
        )
        audit = payload["audit"]
        kill_cycle = payload.get("kill_cycle")
        slow_seconds = payload.get("slow_seconds")
        while True:
            message = conn.recv()
            kind = message[0]
            if kind == "front":
                cycle = message[1]
                if kill_cycle is not None and cycle >= kill_cycle:
                    os._exit(87)
                if slow_seconds:
                    time.sleep(slow_seconds)
                conn.send(("front_done", cycle, sim.front(cycle)))
            elif kind == "alloc":
                _, cycle, inbox = message
                delta, commit = sim.alloc(cycle, inbox)
                audit_payload = sim.audit_payload(cycle) if audit else None
                conn.send(("alloc_done", cycle, delta, commit, audit_payload))
            elif kind == "census":
                conn.send(("census_done", sim.survivors(message[1])))
            elif kind == "finish":
                conn.send(("final", sim.finish(message[1])))
                conn.close()
                return
            else:  # pragma: no cover - protocol future-proofing
                raise RuntimeError(f"unknown coordinator message {kind!r}")
    except BaseException as exc:  # noqa: BLE001 - report, then die
        try:
            conn.send(
                ("error", type(exc).__name__, str(exc), traceback.format_exc())
            )
        except Exception:  # pragma: no cover - coordinator already gone
            pass


class _InlineTile:
    """Drives a TileSimulator in-process (debugging / fast tests).

    Protocol-identical to :class:`_ProcessTile` — the same payloads and
    replies — minus the pipes, so equivalence tests can cover the
    protocol densely without paying process spawn per cell.
    """

    def __init__(self, index: int, payload: dict) -> None:
        self.index = index
        self.sim = TileSimulator(
            payload["config"],
            payload["rects"],
            payload["tile"],
            payload["schedule"],
            payload["measure_start"],
            full_sweep=payload["full_sweep"],
        )
        self._audit = payload["audit"]
        self._pending = None

    def send_front(self, cycle: int) -> None:
        self._pending = ("front_done", cycle, self.sim.front(cycle))

    def recv_front(self, cycle: int):
        _, _, delta = self._pending
        return delta

    def send_alloc(self, cycle: int, inbox) -> None:
        delta, commit = self.sim.alloc(cycle, inbox)
        audit_payload = self.sim.audit_payload(cycle) if self._audit else None
        self._pending = ("alloc_done", cycle, delta, commit, audit_payload)

    def recv_alloc(self, cycle: int):
        _, _, delta, commit, audit_payload = self._pending
        return delta, commit, audit_payload

    def census(self, cycle: int):
        return self.sim.survivors(cycle)

    def finish(self, end_cycle: int):
        return self.sim.finish(end_cycle)

    def shutdown(self) -> None:
        self._pending = None


class _ProcessTile:
    """One spawn-context worker process with hang/crash supervision."""

    def __init__(self, index: int, payload: dict, timeout: float) -> None:
        self.index = index
        self.timeout = timeout
        context = multiprocessing.get_context("spawn")
        self.conn, child = context.Pipe()
        self.process = context.Process(
            target=_tile_worker, args=(child, payload), daemon=True
        )
        self.process.start()
        child.close()

    def _fail(self, error_type: str, message: str) -> "ShardedExecutionError":
        from repro.harness.resilient import JobFailure

        return ShardedExecutionError(
            JobFailure(
                index=self.index,
                kind="fatal",
                error_type=error_type,
                message=message,
                attempts=1,
            )
        )

    def _recv(self, expected: str, cycle: int | None):
        deadline = time.monotonic() + self.timeout
        while not self.conn.poll(0.05):
            if not self.process.is_alive():
                raise self._fail(
                    "ShardWorkerCrash",
                    f"tile {self.index} worker exited with code "
                    f"{self.process.exitcode} before replying to "
                    f"{expected!r} (cycle {cycle})",
                )
            if time.monotonic() > deadline:
                raise self._fail(
                    "ShardWorkerTimeout",
                    f"tile {self.index} worker sent no {expected!r} reply "
                    f"within {self.timeout:.0f}s (cycle {cycle})",
                )
        try:
            message = self.conn.recv()
        except EOFError:
            raise self._fail(
                "ShardWorkerCrash",
                f"tile {self.index} worker closed its pipe mid-protocol "
                f"(exit code {self.process.exitcode}, cycle {cycle})",
            ) from None
        if message[0] == "error":
            _, error_type, detail, trace = message
            raise self._fail(
                error_type, f"{detail}\n--- worker traceback ---\n{trace}"
            )
        if message[0] != expected:  # pragma: no cover - protocol guard
            raise self._fail(
                "ShardProtocolError",
                f"expected {expected!r}, got {message[0]!r}",
            )
        return message

    def send_front(self, cycle: int) -> None:
        self.conn.send(("front", cycle))

    def recv_front(self, cycle: int):
        return self._recv("front_done", cycle)[2]

    def send_alloc(self, cycle: int, inbox) -> None:
        self.conn.send(("alloc", cycle, inbox))

    def recv_alloc(self, cycle: int):
        message = self._recv("alloc_done", cycle)
        return message[2], message[3], message[4]

    def census(self, cycle: int):
        self.conn.send(("census", cycle))
        return self._recv("census_done", cycle)[1]

    def finish(self, end_cycle: int):
        self.conn.send(("finish", end_cycle))
        return self._recv("final", end_cycle)[1]

    def shutdown(self) -> None:
        try:
            self.conn.close()
        except Exception:  # pragma: no cover - already closed
            pass
        if self.process.is_alive():
            self.process.terminate()
        self.process.join(timeout=5.0)


# ----------------------------------------------------------------------
# Coordinator
# ----------------------------------------------------------------------


@dataclass
class _ChaosHooks:
    """Deterministic failure injection for the sharded tests/CI grid."""

    #: (tile, cycle): that tile's worker hard-exits at the cycle.
    kill_tile: tuple[int, int] | None = None
    #: (tile, seconds): sleep injected into every front phase.
    slow_tile: tuple[int, float] | None = None
    #: 1-indexed ordinal of a boundary flit message to silently drop
    #: (coordinator-side), for proving the conservation ledger trips.
    drop_flit: int | None = None


def run_sharded_simulation(
    config: SimulationConfig,
    shards=None,
    *,
    traffic=None,
    faults=None,
    schedule=None,
    full_sweep: bool = False,
    progress=None,
    progress_every: int = 5000,
    inline: bool = False,
    tile_timeout: float = DEFAULT_TILE_TIMEOUT,
    _chaos: _ChaosHooks | None = None,
) -> SimulationResult:
    """Run ``config`` sharded into ``shards`` tiles; bit-identical result.

    ``shards`` defaults to ``config.shards``.  ``inline=True`` drives
    the tiles in-process through the identical protocol (no worker
    processes) — the debugging/testing mode.  ``tile_timeout`` bounds
    how long the coordinator waits for any one phase reply before
    declaring the worker hung.
    """
    if shards is None:
        shards = config.shards
    if shards is None:
        raise ValueError("no shard spec: pass shards=... or set config.shards")
    shards = parse_shards(shards)
    ensure_sharded_supported(config, traffic, faults, schedule)
    if shards == (1, 1):
        return Simulator(config, full_sweep=full_sweep).run(
            progress=progress, progress_every=progress_every
        )
    if not inline and multiprocessing.current_process().daemon:
        # Sweep-pool workers are daemonic and may not spawn tile
        # processes; the inline driver runs the identical protocol
        # in-process, so sharded configs stay usable (and bit-identical)
        # inside a ParallelExecutor job.
        inline = True
    plan = ShardPlan.plan(config, shards)
    entries, measure_start = build_generation_schedule(config)
    per_tile_schedule: list[list[tuple]] = [[] for _ in plan.rects]
    for entry in entries:
        per_tile_schedule[plan.tile_of(entry[1], entry[2])].append(entry)
    #: entry cycles in creation order, for O(log n) generated-by-cycle.
    entry_cycles = [entry[0] for entry in entries]

    chaos = _chaos or _ChaosHooks()
    payload_base = {
        "config": config,
        "rects": [(r.x0, r.y0, r.x1, r.y1) for r in plan.rects],
        "measure_start": measure_start,
        "full_sweep": full_sweep,
        "audit": config.audit,
    }
    drivers = []
    ledger = None
    if config.audit:
        from repro.audit.sharded import BoundaryLedger

        ledger = BoundaryLedger(plan, config.flits_per_packet)
    try:
        for index in range(plan.num_tiles):
            payload = dict(payload_base)
            payload["tile"] = index
            payload["schedule"] = per_tile_schedule[index]
            if chaos.kill_tile is not None and chaos.kill_tile[0] == index:
                payload["kill_cycle"] = chaos.kill_tile[1]
            if chaos.slow_tile is not None and chaos.slow_tile[0] == index:
                payload["slow_seconds"] = chaos.slow_tile[1]
            if inline:
                drivers.append(_InlineTile(index, payload))
            else:
                drivers.append(_ProcessTile(index, payload, tile_timeout))
        return _coordinate(
            config, plan, drivers, entries, entry_cycles, measure_start,
            ledger, chaos, progress, progress_every,
        )
    finally:
        for driver in drivers:
            driver.shutdown()


def _route_delta(delta, pending, ledger, chaos, state) -> None:
    """Merge one tile's outgoing delta into the per-tile inboxes."""
    if not delta:
        return
    for peer, box in delta.items():
        inbox = pending[peer]
        if inbox is None:
            inbox = pending[peer] = {
                "flits": [], "owner": [], "reserve": [], "release": [],
            }
        for key in ("owner", "reserve", "release"):
            inbox[key].extend(box[key])
        for message in box["flits"]:
            state["flit_messages"] += 1
            if (
                chaos.drop_flit is not None
                and state["flit_messages"] == chaos.drop_flit
            ):
                continue  # chaos: the ledger must notice the loss
            if ledger is not None:
                ledger.note_sent(peer, 1)
            inbox["flits"].append(message)


def _coordinate(
    config, plan, drivers, entries, entry_cycles, measure_start,
    ledger, chaos, progress, progress_every,
) -> SimulationResult:
    num_tiles = plan.num_tiles
    pending: list[dict | None] = [None] * num_tiles
    commits: list[dict | None] = [None] * num_tiles
    audits: list[dict | None] = [None] * num_tiles
    state = {"flit_messages": 0}
    last_signature = (-1, -1)
    last_progress_cycle = 0
    end_cycle = 0
    finished = False
    for cycle in range(config.max_cycles):
        end_cycle = cycle
        for driver in drivers:
            driver.send_front(cycle)
        for driver in drivers:
            delta = driver.recv_front(cycle)
            _route_delta(delta, pending, ledger, chaos, state)
        for wave in plan.waves:
            for index in wave:
                inbox = pending[index]
                pending[index] = None
                drivers[index].send_alloc(cycle, inbox)
            for index in wave:
                delta, commit, audit_payload = drivers[index].recv_alloc(cycle)
                commits[index] = commit
                audits[index] = audit_payload
                _route_delta(delta, pending, ledger, chaos, state)
        generated = bisect_right(entry_cycles, cycle)
        delivered = sum(commit["delivered"] for commit in commits)
        dropped = sum(commit["dropped"] for commit in commits)
        outstanding = generated - delivered - dropped
        moves = sum(commit["moves"] for commit in commits)
        if ledger is not None:
            ledger.check(cycle, generated, audits)
        if progress is not None and cycle and cycle % progress_every == 0:
            progress(cycle, generated, outstanding)
        signature = (moves, outstanding)
        if signature != last_signature:
            last_signature = signature
            last_progress_cycle = cycle
        if generated >= config.total_packets and outstanding == 0:
            finished = True
            break
        if cycle - last_progress_cycle > config.drain_timeout:
            census = _merged_census(drivers, cycle, outstanding)
            raise DrainTimeoutError(
                f"no progress for {config.drain_timeout} cycles at cycle "
                f"{cycle}",
                census,
            )
    finals = [driver.finish(end_cycle) for driver in drivers]
    if ledger is not None:
        ledger.final_check(end_cycle, len(entries), audits,
                           drained=finished)
    return _merge_result(
        config, plan, finals, entries, measure_start, end_cycle + 1
    )


def _merged_census(drivers, cycle: int, outstanding: int) -> StrandedCensus:
    per_node: dict[NodeId, int] = {}
    oldest = 0
    for driver in drivers:
        for pid, _measured, created, x, y in driver.census(cycle):
            node = NodeId(x, y)
            per_node[node] = per_node.get(node, 0) + 1
            oldest = max(oldest, cycle - created)
    return StrandedCensus(
        outstanding=outstanding,
        per_node=per_node,
        oldest_age=oldest,
        dead_modules={},
        unreachable=0,
    )


def _merge_result(
    config, plan, finals, entries, measure_start, cycles
) -> SimulationResult:
    stats = StatsCollector(num_nodes=config.num_nodes)
    stats.measuring = measure_start is not None
    stats.measure_start_cycle = measure_start
    activity = ActivityCounters()
    tile_scheduler: list[SchedulerCounters] = []
    for final in finals:
        stats.latencies.extend(final["latencies"])
        stats.hops.extend(final["hops"])
        stats.injected_packets += final["injected"]
        stats.delivered_packets += final["delivered"]
        stats.dropped_packets += final["dropped"]
        stats.delivered_flits += final["delivered_flits"]
        stats.total_delivered += final["total_delivered"]
        stats.total_dropped += final["total_dropped"]
        for reason_value, count in final["drops_by_reason"].items():
            reason = DropReason(reason_value)
            stats.drops_by_reason[reason] = (
                stats.drops_by_reason.get(reason, 0) + count
            )
        activity = activity.merged(ActivityCounters(**final["activity"]))
        contention = final["contention"]
        stats.contention.row_requests += contention["row_requests"]
        stats.contention.row_contended += contention["row_contended"]
        stats.contention.column_requests += contention["column_requests"]
        stats.contention.column_contended += contention["column_contended"]
        counters = SchedulerCounters(**final["scheduler"])
        tile_scheduler.append(counters)
        stats.scheduler.router_steps += counters.router_steps
        stats.scheduler.router_slots += counters.router_slots
        stats.scheduler.wakeups += counters.wakeups
        stats.scheduler.sleeps += counters.sleeps
    stats.activity = activity
    stats.scheduler.cycles = finals[0]["scheduler"]["cycles"]
    stats.scheduler.full_sweep = finals[0]["scheduler"]["full_sweep"]
    stats.measured_cycles = max(final["measured_cycles"] for final in finals)
    # Survivors: the reference drops everything still queued or buffered
    # at termination; tiles report, the coordinator dedupes (a worm can
    # straddle a cut and be seen by both sides).
    seen: set[int] = set()
    for final in finals:
        for pid, measured, _created, _x, _y in final["survivors"]:
            if pid in seen:
                continue
            seen.add(pid)
            stats.total_dropped += 1
            stats.drops_by_reason[DropReason.UNDELIVERED] = (
                stats.drops_by_reason.get(DropReason.UNDELIVERED, 0) + 1
            )
            if measured:
                stats.dropped_packets += 1
    model = EnergyModel(config.router, config.num_nodes)
    energy = model.report(
        stats.activity, stats.measured_cycles, stats.delivered_packets
    )
    return SimulationResult(
        config=config,
        average_latency=stats.average_latency,
        latency=LatencySummary.from_samples(stats.latencies),
        average_hops=stats.average_hops,
        injected_packets=stats.injected_packets,
        delivered_packets=stats.delivered_packets,
        dropped_packets=stats.dropped_packets,
        completion_probability=stats.completion_probability,
        throughput=stats.throughput_flits_per_node_cycle,
        cycles=cycles,
        energy=energy,
        contention_row=stats.contention.row_probability,
        contention_column=stats.contention.column_probability,
        contention_overall=stats.contention.overall_probability,
        faults=[],
        scheduler=stats.scheduler,
        generated_packets=len(entries),
        total_delivered=stats.total_delivered,
        total_dropped=stats.total_dropped,
        drops_by_reason={
            reason.value: count
            for reason, count in sorted(
                stats.drops_by_reason.items(), key=lambda kv: kv[0].value
            )
        },
        tile_scheduler=tile_scheduler,
    )


# --------------------------------------------------------------------------
# CLI: `python -m repro shards` — single sharded runs and the equivalence
# grid the scaling-smoke CI lane executes.
# --------------------------------------------------------------------------

#: (size, shards, router, routing, full_sweep, packets, warmup, rate)
#: Every cell is run sharded (worker processes) and unsharded, and the
#: two result records must match field-for-field.
EQUIVALENCE_GRID: tuple[tuple, ...] = (
    (4, (1, 2), "roco", "xy", False, 120, 30, 0.2),
    (4, (1, 2), "generic", "xy", False, 120, 30, 0.2),
    (4, (2, 2), "roco", "xy-yx", False, 120, 30, 0.2),
    (4, (2, 2), "generic", "xy-yx", False, 120, 30, 0.2),
    (8, (1, 2), "roco", "xy", False, 200, 60, 0.15),
    (8, (1, 2), "generic", "xy", False, 200, 60, 0.15),
    (8, (2, 2), "roco", "xy", False, 200, 60, 0.15),
    (8, (2, 2), "generic", "xy", False, 200, 60, 0.15),
    (8, (2, 2), "roco", "xy", True, 200, 60, 0.15),
    (8, (2, 2), "generic", "xy", True, 200, 60, 0.15),
    (16, (2, 2), "roco", "xy", False, 200, 50, 0.1),
)


def _grid_config(cell) -> SimulationConfig:
    size, _shards, router, routing, _sweep, packets, warmup, rate = cell
    return SimulationConfig(
        width=size,
        height=size,
        router=router,
        routing=routing,
        traffic="uniform",
        injection_rate=rate,
        warmup_packets=warmup,
        measure_packets=packets,
        seed=7,
    )


def compare_records(reference: SimulationResult, sharded: SimulationResult):
    """Field-level diff of two runs; empty list means bit-identical."""
    from repro.harness.export import result_record

    mismatches = []
    ref_record = result_record(reference)
    shard_record = result_record(sharded)
    for field in ref_record:
        if ref_record[field] != shard_record[field]:
            mismatches.append(
                f"{field}: reference={ref_record[field]!r} "
                f"sharded={shard_record[field]!r}"
            )
    if reference.scheduler != sharded.scheduler:
        mismatches.append(
            f"scheduler: reference={reference.scheduler!r} "
            f"sharded={sharded.scheduler!r}"
        )
    for field in ("generated_packets", "total_delivered", "total_dropped"):
        ref_value = getattr(reference, field)
        shard_value = getattr(sharded, field)
        if ref_value != shard_value:
            mismatches.append(
                f"{field}: reference={ref_value!r} sharded={shard_value!r}"
            )
    return mismatches


def equivalence_grid(cells=EQUIVALENCE_GRID, *, inline: bool = False, out=print):
    """Run the sharded-vs-reference grid; returns the number of failures.

    Each cell simulates the same configuration twice — once through the
    plain :class:`Simulator`, once through worker-process tiles — and
    asserts record-level identity (latency percentiles, energy, per-drop
    accounting, scheduler counters...).  This is the check the CI
    ``scaling-smoke`` job runs.
    """
    failures = 0
    for cell in cells:
        size, shards, router, routing, full_sweep, *_ = cell
        label = (
            f"{size}x{size} {shards[0]}x{shards[1]} {router} {routing} "
            f"{'full-sweep' if full_sweep else 'event-driven'}"
        )
        config = _grid_config(cell)
        start = time.monotonic()
        reference = Simulator(config, full_sweep=full_sweep).run()
        sharded = run_sharded_simulation(
            config, shards, full_sweep=full_sweep, inline=inline
        )
        elapsed = time.monotonic() - start
        mismatches = compare_records(reference, sharded)
        if mismatches:
            failures += 1
            out(f"FAIL {label} ({elapsed:.1f}s)")
            for line in mismatches:
                out(f"     {line}")
        else:
            out(f"PASS {label} ({elapsed:.1f}s)")
    total = len(list(cells))
    out(f"{total - failures}/{total} cells bit-identical")
    return failures


def sharded_main(argv=None) -> int:
    """``python -m repro shards`` — sharded runs and the equivalence grid."""
    import argparse

    parser = argparse.ArgumentParser(
        prog="repro shards",
        description=(
            "Sharded mesh execution: run one simulation partitioned into "
            "tile worker processes, or the sharded-vs-reference "
            "equivalence grid (docs/sharded-scaling.md)"
        ),
    )
    parser.add_argument(
        "--grid",
        action="store_true",
        help="run the equivalence grid instead of a single simulation",
    )
    parser.add_argument(
        "--inline",
        action="store_true",
        help="drive tiles in-process (debugging; same protocol, no workers)",
    )
    parser.add_argument("--router", choices=sorted(SHARD_ROUTERS), default="roco")
    parser.add_argument(
        "--routing", choices=["xy", "xy-yx", "adaptive"], default="xy"
    )
    parser.add_argument("--traffic", default="uniform")
    parser.add_argument("--rate", type=float, default=0.2)
    parser.add_argument("--size", type=int, default=8, help="mesh is size x size")
    parser.add_argument("--packets", type=int, default=2000)
    parser.add_argument("--warmup", type=int, default=300)
    parser.add_argument("--seed", type=int, default=1)
    parser.add_argument(
        "--shards",
        default="2x2",
        help="tile grid as WxH (e.g. 2x2, 1x4)",
    )
    parser.add_argument(
        "--full-sweep",
        action="store_true",
        help="disable the activity scheduler (sweep every router each cycle)",
    )
    parser.add_argument(
        "--audit",
        action="store_true",
        help="enable the cross-shard conservation ledger",
    )
    args = parser.parse_args(argv)
    if args.grid:
        return 1 if equivalence_grid(inline=args.inline) else 0
    config = SimulationConfig(
        width=args.size,
        height=args.size,
        router=args.router,
        routing=args.routing,
        traffic=args.traffic,
        injection_rate=args.rate,
        warmup_packets=args.warmup,
        measure_packets=args.packets,
        seed=args.seed,
        audit=args.audit,
        shards=parse_shards(args.shards),
    )
    result = run_sharded_simulation(
        config, full_sweep=args.full_sweep, inline=args.inline
    )
    print(result.summary_line())
    print(
        f"  latency p50/p95/p99: {result.latency.p50:.1f} / "
        f"{result.latency.p95:.1f} / {result.latency.p99:.1f} cycles; "
        f"throughput {result.throughput:.3f} flits/node/cycle; "
        f"{result.cycles} cycles simulated"
    )
    for tile, counters in enumerate(result.tile_scheduler):
        print(
            f"  tile {tile}: {counters.router_steps} router steps / "
            f"{counters.router_slots} slots "
            f"(duty {counters.duty_cycle:.3f})"
        )
    return 0
