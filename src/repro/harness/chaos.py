"""Deterministic chaos injection for the resilient execution layer.

The differential safety net of :mod:`repro.harness.resilient`: a sweep
run under injected worker crashes, hangs, transient exceptions and
corrupted results must converge to records **bit-identical** to the
fault-free run — determinism makes every retry and speculative
duplicate return the same record, so recovery is invisible in the data.

A :class:`ChaosConfig` is a tuple of :class:`ChaosRule`\\ s matched by
``(job index, attempt number)`` — injection is on a fixed schedule, not
random, so every chaos run is reproducible.  A rule limited to
``attempts=(0,)`` models a transient fault (the retry misses the rule
and succeeds); ``attempts=None`` matches every attempt and models a
poison job that must end up quarantined as a
:class:`~repro.harness.resilient.JobFailure`.

Fault kinds:

* ``"crash"`` — the worker process dies mid-job (``os._exit``); in a
  serial run, raises the :class:`WorkerCrashError` stand-in so the
  retry path is exercised without killing the interpreter.
* ``"hang"`` — the worker sleeps past any deadline; serially it raises
  the :class:`JobTimeoutError` stand-in.
* ``"wedge"`` — the worker stops heartbeating *and* hangs (a frozen
  interpreter); only meaningful pooled, serially same as ``"hang"``.
* ``"transient"`` — raises :class:`ChaosTransientError` (a generic
  retryable exception).
* ``"corrupt"`` — runs the simulation but tampers with the returned
  record, exercising result validation.

``python -m repro chaos --grid`` runs the full kind x mode grid and
enforces convergence (CI's ``chaos-smoke`` job); wall times are
report-only.
"""

from __future__ import annotations

import argparse
import os
import sys
import time
from dataclasses import dataclass

from repro.harness.parallel import SimJob, execute_job
from repro.harness.resilient import (
    JobTimeoutError,
    TransientJobError,
    WorkerCrashError,
)

#: Exit code used by injected worker crashes (recognisable in logs).
CRASH_EXIT_CODE = 87

_KINDS = ("crash", "hang", "wedge", "transient", "corrupt")

#: Process-local flag read by the worker heartbeat thread; the "wedge"
#: injection sets it to simulate an interpreter freeze.
_heartbeat_suppressed = False


def heartbeat_suppressed() -> bool:
    return _heartbeat_suppressed


class ChaosTransientError(TransientJobError):
    """An injected generic transient failure."""


@dataclass(frozen=True)
class ChaosRule:
    """One injection: ``kind`` at matching ``(index, attempt)`` pairs.

    ``indices=None`` matches every job; ``attempts=None`` matches every
    attempt (a poison job).  ``seconds`` is the hang/wedge sleep;
    ``fields`` are the record fields tampered with by ``corrupt``.
    """

    kind: str
    indices: tuple[int, ...] | None = None
    attempts: tuple[int, ...] | None = (0,)
    seconds: float = 30.0
    fields: tuple[str, ...] = ("average_latency",)

    def __post_init__(self) -> None:
        if self.kind not in _KINDS:
            raise ValueError(f"unknown chaos kind {self.kind!r}")

    def matches(self, index: int, attempt: int) -> bool:
        if self.indices is not None and index not in self.indices:
            return False
        return self.attempts is None or attempt in self.attempts


@dataclass(frozen=True)
class ChaosConfig:
    """An ordered rule set; the first matching rule fires."""

    rules: tuple[ChaosRule, ...]

    def rule_for(self, index: int, attempt: int) -> ChaosRule | None:
        for rule in self.rules:
            if rule.matches(index, attempt):
                return rule
        return None


def chaos_execute(
    job: SimJob,
    index: int,
    attempt: int,
    chaos: ChaosConfig,
    in_worker: bool = False,
    job_fn=None,
) -> dict:
    """Run one job with the matching injection (if any) applied.

    ``in_worker`` selects real process-level faults (exit, sleep); the
    serial path substitutes typed exceptions so the supervisor's retry
    machinery sees the same failure taxonomy without killing or
    blocking the driving process.  ``job_fn`` overrides how a job is
    actually executed (default :func:`execute_job`); injections wrap
    whatever executor the embedder supplied.
    """
    if job_fn is None:
        job_fn = execute_job
    rule = chaos.rule_for(index, attempt) if chaos is not None else None
    if rule is None:
        return job_fn(job)
    if rule.kind == "crash":
        if in_worker:
            os._exit(CRASH_EXIT_CODE)
        raise WorkerCrashError(
            f"injected crash (job {index} attempt {attempt})"
        )
    if rule.kind in ("hang", "wedge"):
        if in_worker:
            if rule.kind == "wedge":
                global _heartbeat_suppressed
                _heartbeat_suppressed = True
            time.sleep(rule.seconds)
            # If nobody killed us, fall through and return the real
            # record — a late (straggler) result the supervisor may
            # already have replaced; determinism keeps that safe.
            return job_fn(job)
        raise JobTimeoutError(
            f"injected {rule.kind} (job {index} attempt {attempt})"
        )
    if rule.kind == "transient":
        raise ChaosTransientError(
            f"injected transient (job {index} attempt {attempt})"
        )
    # corrupt: simulate faithfully, then damage the returned record.
    record = dict(job_fn(job))
    for fieldname in rule.fields:
        record[fieldname] = -1.0
    return record


# ----------------------------------------------------------------------
# Chaos grid: the differential convergence check behind CI chaos-smoke
# ----------------------------------------------------------------------


def _grid_jobs(quick: bool) -> list[SimJob]:
    from repro.core.config import SimulationConfig

    rates = (0.05, 0.10) if quick else (0.05, 0.10, 0.20)
    seeds = (1, 2, 3)
    return [
        SimJob.of(
            SimulationConfig(
                width=3,
                height=3,
                router="roco",
                injection_rate=rate,
                warmup_packets=10,
                measure_packets=60,
                seed=seed,
            )
        )
        for rate in rates
        for seed in seeds
    ]


def _grid_chaos(kind: str) -> ChaosConfig:
    """Transient injection on the first attempts of three of the jobs."""
    return ChaosConfig(
        rules=(
            ChaosRule(
                kind=kind, indices=(0, 2, 4), attempts=(0,), seconds=20.0
            ),
        )
    )


def _poison_chaos() -> ChaosConfig:
    """Job 1 crashes on every attempt: must end quarantined."""
    return ChaosConfig(rules=(ChaosRule(kind="crash", indices=(1,), attempts=None),))


def run_chaos_grid(
    workers: int = 2, quick: bool = False, stream=None
) -> int:
    """Run the chaos kind x execution mode grid; 0 iff it converged.

    Every cell re-runs the same small sweep under injected faults and
    asserts the surviving records are bit-identical to the fault-free
    serial baseline; the poison cells additionally assert that exactly
    the poisoned job is quarantined.  Wall times are report-only.
    """
    from repro.harness.parallel import ParallelExecutor, is_failure_record
    from repro.harness.resilient import RetryPolicy, split_failures

    stream = stream if stream is not None else sys.stdout
    jobs = _grid_jobs(quick)
    print(f"chaos grid: {len(jobs)} jobs per cell", file=stream, flush=True)
    baseline = ParallelExecutor().run_jobs(jobs)
    failures = 0

    def report(cell: str, ok: bool, wall: float, detail: str) -> None:
        status = "ok" if ok else "MISMATCH"
        print(
            f"  {cell:<24s} {status:<8s} {wall:6.2f}s  {detail}",
            file=stream,
            flush=True,
        )

    policy = RetryPolicy(
        job_timeout=2.0,
        max_retries=3,
        backoff_base=0.0,
        heartbeat_interval=0.2,
        heartbeat_timeout=10.0,
    )
    for mode, mode_workers in (("serial", None), ("pooled", workers)):
        for kind in ("crash", "hang", "transient", "corrupt"):
            executor = ParallelExecutor(
                workers=mode_workers, policy=policy, chaos=_grid_chaos(kind)
            )
            started = time.monotonic()
            records = executor.run_jobs(jobs)
            wall = time.monotonic() - started
            stats = executor.last_stats
            ok = records == baseline and stats.failures == 0
            if not ok:
                failures += 1
            report(
                f"{mode}/{kind}",
                ok,
                wall,
                f"retries={stats.retries} timeouts={stats.timeouts} "
                f"crashes={stats.worker_crashes} "
                f"corrupt={stats.corrupt_results}",
            )
        # Poison cell: an unrecoverable job must be quarantined as a
        # structured failure while every other record stays identical.
        executor = ParallelExecutor(
            workers=mode_workers, policy=policy, chaos=_poison_chaos()
        )
        started = time.monotonic()
        records = executor.run_jobs(jobs)
        wall = time.monotonic() - started
        _, failed = split_failures(records)
        survivors_ok = all(
            records[i] == baseline[i]
            for i in range(len(jobs))
            if not is_failure_record(records[i])
        )
        ok = (
            survivors_ok
            and len(failed) == 1
            and failed[0].index == 1
            and failed[0].kind == "retries-exhausted"
        )
        if not ok:
            failures += 1
        report(
            f"{mode}/poison",
            ok,
            wall,
            f"quarantined={[f.index for f in failed]}",
        )
    verdict = "converged" if failures == 0 else f"{failures} cell(s) diverged"
    print(f"chaos grid: {verdict}", file=stream, flush=True)
    return 0 if failures == 0 else 1


def chaos_main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro chaos",
        description=(
            "Differential chaos testing of the resilient execution layer "
            "(see docs/resilient-execution.md)"
        ),
    )
    parser.add_argument(
        "--grid",
        action="store_true",
        help="run the crash/hang/transient/corrupt x serial/pooled grid",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=2,
        metavar="N",
        help="worker processes for the pooled cells (default 2)",
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help="trim the per-cell job list for smoke runs",
    )
    args = parser.parse_args(argv)
    if not args.grid:
        parser.error("nothing to do: pass --grid")
    return run_chaos_grid(workers=args.workers, quick=args.quick)


if __name__ == "__main__":
    sys.exit(chaos_main())
