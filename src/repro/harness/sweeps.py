"""Parameter sweeps: run cartesian grids of configurations.

A :class:`Sweep` expands axes (router, routing, traffic, rate, seed,
mesh size, ...) into configurations, runs them, and returns the results
as records ready for :mod:`repro.harness.export` or ad-hoc analysis.
This is the workhorse behind custom studies that the fixed per-figure
runners do not cover.
"""

from __future__ import annotations

import itertools
from collections.abc import Callable, Iterable
from dataclasses import dataclass, field
from pathlib import Path

from repro.core.config import SimulationConfig
from repro.faults.schedule import FaultSchedule
from repro.harness.parallel import ParallelExecutor, ResultCache, SimJob

#: Axis names accepted by Sweep, mapping to SimulationConfig fields.
AXIS_FIELDS = {
    "router": "router",
    "routing": "routing",
    "traffic": "traffic",
    "injection_rate": "injection_rate",
    "seed": "seed",
    "width": "width",
    "height": "height",
    "flits_per_packet": "flits_per_packet",
}


@dataclass
class Sweep:
    """A cartesian sweep over simulation parameters.

    ``axes`` maps axis names (see :data:`AXIS_FIELDS`) to the values to
    sweep; ``base`` carries everything held constant.  Example::

        sweep = Sweep(
            axes={"router": ["generic", "roco"],
                  "injection_rate": [0.1, 0.2, 0.3]},
            base={"width": 8, "height": 8, "measure_packets": 800},
        )
        records = sweep.run()
    """

    axes: dict[str, list]
    base: dict = field(default_factory=dict)
    #: Optional runtime fault campaign applied to *every* grid point —
    #: the shape degradation studies want (identical fault timeline,
    #: varying architecture/rate).  Part of each job's cache key.
    schedule: FaultSchedule | None = None

    def __post_init__(self) -> None:
        unknown = set(self.axes) - set(AXIS_FIELDS)
        if unknown:
            raise ValueError(f"unknown sweep axes: {sorted(unknown)}")
        if not self.axes:
            raise ValueError("a sweep needs at least one axis")

    @property
    def size(self) -> int:
        size = 1
        for values in self.axes.values():
            size *= len(values)
        return size

    def configurations(self) -> Iterable[SimulationConfig]:
        """Yield every configuration of the grid, in axis order."""
        names = list(self.axes)
        for combo in itertools.product(*(self.axes[n] for n in names)):
            params = dict(self.base)
            params.update(dict(zip(names, combo)))
            yield SimulationConfig(**params)

    def run(
        self,
        progress: Callable[[int, int, dict], None] | None = None,
        workers: int | None = None,
        cache: ResultCache | None = None,
        cache_dir: str | Path | None = None,
        executor: ParallelExecutor | None = None,
        policy=None,
        journal=None,
    ) -> list[dict]:
        """Run the grid; returns one flat record per configuration.

        ``progress(done, total, record)`` is called after each completed
        point (in completion order) — hook it to print status or stream
        results to disk.  ``workers`` fans the grid out over a process
        pool (``0`` = all cores; default serial); results are identical
        to a serial run and come back in grid order either way.
        ``cache`` / ``cache_dir`` enable the on-disk result cache so
        repeated runs skip already-simulated points.  ``policy`` (a
        :class:`~repro.harness.resilient.RetryPolicy`) supervises the
        grid — one crashing or hanging point is retried/quarantined
        instead of aborting the sweep — and ``journal`` (a
        :class:`~repro.harness.resilient.SweepJournal`) makes an
        interrupted sweep resumable.  A pre-built ``executor`` overrides
        all of these knobs.
        """
        if executor is None:
            if cache is None and cache_dir is not None:
                cache = ResultCache(cache_dir)
            executor = ParallelExecutor(
                workers=workers,
                cache=cache,
                progress=progress,
                policy=policy,
                journal=journal,
            )
        elif progress is not None and executor.progress is None:
            executor.progress = progress
        if self.schedule is None:
            return executor.run_configs(self.configurations())
        return executor.run_jobs(
            [
                SimJob.of(config, schedule=self.schedule)
                for config in self.configurations()
            ]
        )


def pivot(
    records: list[dict], row: str, column: str, value: str
) -> dict[object, dict[object, float]]:
    """Arrange flat sweep records as ``{row: {column: value}}``.

    Multiple records landing in one cell are averaged (e.g. seeds).
    """
    cells: dict[object, dict[object, list[float]]] = {}
    for record in records:
        cells.setdefault(record[row], {}).setdefault(record[column], []).append(
            record[value]
        )
    return {
        r: {c: sum(vals) / len(vals) for c, vals in cols.items()}
        for r, cols in cells.items()
    }
