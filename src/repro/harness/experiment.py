"""Experiment plumbing: scales, run points and seeded fault populations.

Every figure runner is parameterised by an :class:`ExperimentScale` so
the same code serves three purposes: fast CI benchmarks (``QUICK``),
meaningful local reproduction (``STANDARD``), and the paper's own
dimensions (``PAPER`` — 20,000 warm-up + 1,000,000 measured packets,
which take correspondingly long on a pure-Python simulator).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, replace

from repro.core.config import SimulationConfig
from repro.core.simulator import SimulationResult, run_simulation
from repro.core.types import NodeId, RoutingMode
from repro.faults.injector import ComponentFault, random_faults

#: Router architectures in the order the paper's figures list them.
ROUTERS = ("generic", "path_sensitive", "roco")

#: Routing algorithms in figure order: (a) deterministic, (b) XY-YX,
#: (c) adaptive.
ROUTINGS = (RoutingMode.XY, RoutingMode.XY_YX, RoutingMode.ADAPTIVE)


@dataclass(frozen=True)
class ExperimentScale:
    """Knobs trading fidelity for wall-clock time."""

    name: str
    width: int = 8
    height: int = 8
    warmup_packets: int = 200
    measure_packets: int = 1200
    seeds: tuple[int, ...] = (1,)
    #: Injection-rate grid for the latency sweeps (flits/node/cycle).
    rates: tuple[float, ...] = (0.05, 0.15, 0.25, 0.30, 0.35)
    #: Injection-rate grid for the contention sweeps (extends past
    #: saturation, as in Figure 3).
    contention_rates: tuple[float, ...] = (0.05, 0.20, 0.35, 0.50)
    max_cycles: int = 60_000


QUICK = ExperimentScale(
    name="quick",
    width=6,
    height=6,
    warmup_packets=80,
    measure_packets=400,
    seeds=(1,),
    rates=(0.05, 0.20, 0.30),
    contention_rates=(0.10, 0.30, 0.50),
    max_cycles=30_000,
)

STANDARD = ExperimentScale(name="standard", seeds=(1, 2, 3))

PAPER = ExperimentScale(
    name="paper",
    warmup_packets=20_000,
    measure_packets=1_000_000,
    seeds=(1,),
    rates=(0.05, 0.10, 0.15, 0.20, 0.25, 0.30, 0.35, 0.40),
    contention_rates=(0.05, 0.15, 0.25, 0.35, 0.45, 0.55),
    max_cycles=5_000_000,
)

SCALES = {s.name: s for s in (QUICK, STANDARD, PAPER)}


def mesh_nodes(scale: ExperimentScale) -> list[NodeId]:
    return [
        NodeId(x, y) for y in range(scale.height) for x in range(scale.width)
    ]


def run_point(
    router: str,
    routing: RoutingMode | str,
    traffic: str,
    injection_rate: float,
    scale: ExperimentScale,
    seed: int = 1,
    faults: list[ComponentFault] | None = None,
) -> SimulationResult:
    """Run one simulation at one operating point."""
    config = SimulationConfig(
        width=scale.width,
        height=scale.height,
        router=router,
        routing=routing,
        traffic=traffic,
        injection_rate=injection_rate,
        warmup_packets=scale.warmup_packets,
        measure_packets=scale.measure_packets,
        max_cycles=scale.max_cycles,
        seed=seed,
    )
    return run_simulation(config, faults=faults)


def averaged_point(
    router: str,
    routing: RoutingMode | str,
    traffic: str,
    injection_rate: float,
    scale: ExperimentScale,
    faults_per_seed: dict[int, list[ComponentFault]] | None = None,
) -> dict:
    """Average a run point over the scale's seeds.

    Returns the seed-mean of the headline metrics; completion-weighted
    where that matters (latency is averaged over delivered packets).
    """
    results = []
    for seed in scale.seeds:
        faults = faults_per_seed.get(seed) if faults_per_seed else None
        results.append(
            run_point(router, routing, traffic, injection_rate, scale, seed, faults)
        )
    n = len(results)
    return {
        "router": router,
        "routing": str(routing),
        "traffic": traffic,
        "injection_rate": injection_rate,
        "average_latency": sum(r.average_latency for r in results) / n,
        "completion_probability": sum(r.completion_probability for r in results) / n,
        "energy_per_packet_nj": sum(r.energy_per_packet_nj for r in results) / n,
        "pef": sum(r.pef for r in results) / n,
        "throughput": sum(r.throughput for r in results) / n,
        "contention_row": sum(r.contention_row for r in results) / n,
        "contention_column": sum(r.contention_column for r in results) / n,
        "contention_overall": sum(r.contention_overall for r in results) / n,
    }


def fault_population(
    scale: ExperimentScale, count: int, critical: bool, seed: int
) -> list[ComponentFault]:
    """Seeded random fault placement, identical across architectures.

    The same (seed, count, class) always yields the same fault sites so
    router comparisons see the same broken hardware.
    """
    rng = random.Random(10_000 + seed * 101 + count * 7 + (1 if critical else 0))
    return random_faults(mesh_nodes(scale), count, rng, critical=critical)
