"""Experiment plumbing: scales, run points and seeded fault populations.

Every figure runner is parameterised by an :class:`ExperimentScale` so
the same code serves three purposes: fast CI benchmarks (``QUICK``),
meaningful local reproduction (``STANDARD``), and the paper's own
dimensions (``PAPER`` — 20,000 warm-up + 1,000,000 measured packets,
which take correspondingly long on a pure-Python simulator).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, replace

from repro.core.config import SimulationConfig
from repro.core.simulator import SimulationResult, run_simulation
from repro.core.types import NodeId, RoutingMode
from repro.faults.injector import ComponentFault, random_faults
from repro.harness.parallel import ParallelExecutor, SimJob

#: Router architectures in the order the paper's figures list them.
ROUTERS = ("generic", "path_sensitive", "roco")

#: Routing algorithms in figure order: (a) deterministic, (b) XY-YX,
#: (c) adaptive.
ROUTINGS = (RoutingMode.XY, RoutingMode.XY_YX, RoutingMode.ADAPTIVE)


@dataclass(frozen=True)
class ExperimentScale:
    """Knobs trading fidelity for wall-clock time."""

    name: str
    width: int = 8
    height: int = 8
    warmup_packets: int = 200
    measure_packets: int = 1200
    seeds: tuple[int, ...] = (1,)
    #: Injection-rate grid for the latency sweeps (flits/node/cycle).
    rates: tuple[float, ...] = (0.05, 0.15, 0.25, 0.30, 0.35)
    #: Injection-rate grid for the contention sweeps (extends past
    #: saturation, as in Figure 3).
    contention_rates: tuple[float, ...] = (0.05, 0.20, 0.35, 0.50)
    max_cycles: int = 60_000


QUICK = ExperimentScale(
    name="quick",
    width=6,
    height=6,
    warmup_packets=80,
    measure_packets=400,
    seeds=(1,),
    rates=(0.05, 0.20, 0.30),
    contention_rates=(0.10, 0.30, 0.50),
    max_cycles=30_000,
)

STANDARD = ExperimentScale(name="standard", seeds=(1, 2, 3))

PAPER = ExperimentScale(
    name="paper",
    warmup_packets=20_000,
    measure_packets=1_000_000,
    seeds=(1,),
    rates=(0.05, 0.10, 0.15, 0.20, 0.25, 0.30, 0.35, 0.40),
    contention_rates=(0.05, 0.15, 0.25, 0.35, 0.45, 0.55),
    max_cycles=5_000_000,
)

SCALES = {s.name: s for s in (QUICK, STANDARD, PAPER)}


def mesh_nodes(scale: ExperimentScale) -> list[NodeId]:
    return [
        NodeId(x, y) for y in range(scale.height) for x in range(scale.width)
    ]


def run_point(
    router: str,
    routing: RoutingMode | str,
    traffic: str,
    injection_rate: float,
    scale: ExperimentScale,
    seed: int = 1,
    faults: list[ComponentFault] | None = None,
) -> SimulationResult:
    """Run one simulation at one operating point."""
    config = SimulationConfig(
        width=scale.width,
        height=scale.height,
        router=router,
        routing=routing,
        traffic=traffic,
        injection_rate=injection_rate,
        warmup_packets=scale.warmup_packets,
        measure_packets=scale.measure_packets,
        max_cycles=scale.max_cycles,
        seed=seed,
    )
    return run_simulation(config, faults=faults)


#: A point = one (router, routing, traffic, rate) cell, averaged over
#: the scale's seeds.  PointSpec is the hashable description of one.
@dataclass(frozen=True)
class PointSpec:
    router: str
    routing: RoutingMode | str
    traffic: str
    injection_rate: float

    def jobs(
        self,
        scale: ExperimentScale,
        faults_per_seed: dict[int, list[ComponentFault]] | None = None,
    ) -> list[SimJob]:
        """One job per seed of the scale, in seed order."""
        jobs = []
        for seed in scale.seeds:
            config = SimulationConfig(
                width=scale.width,
                height=scale.height,
                router=self.router,
                routing=self.routing,
                traffic=self.traffic,
                injection_rate=self.injection_rate,
                warmup_packets=scale.warmup_packets,
                measure_packets=scale.measure_packets,
                max_cycles=scale.max_cycles,
                seed=seed,
            )
            faults = faults_per_seed.get(seed) if faults_per_seed else None
            jobs.append(SimJob.of(config, faults))
        return jobs


#: Metric keys seed-averaged by aggregate_point, straight off the flat
#: records of repro.harness.export.result_record.
AVERAGED_METRICS = (
    "average_latency",
    "completion_probability",
    "energy_per_packet_nj",
    "pef",
    "throughput",
    "contention_row",
    "contention_column",
    "contention_overall",
)


def aggregate_point(spec: PointSpec, records: list[dict]) -> dict:
    """Seed-mean of the headline metrics for one point.

    Quarantined seeds (failure records from a resilient executor) are
    excluded from the mean; a point whose every seed failed raises,
    since there is nothing honest to report for it.
    """
    from repro.harness.parallel import is_failure_record

    records = [r for r in records if not is_failure_record(r)]
    if not records:
        raise RuntimeError(
            f"every seed of point {spec.router}/{spec.routing}/"
            f"{spec.traffic}@{spec.injection_rate} failed"
        )
    n = len(records)
    point = {
        "router": spec.router,
        "routing": str(spec.routing),
        "traffic": spec.traffic,
        "injection_rate": spec.injection_rate,
    }
    for metric in AVERAGED_METRICS:
        point[metric] = sum(r[metric] for r in records) / n
    return point


def averaged_points(
    specs: list[PointSpec],
    scale: ExperimentScale,
    faults_per_spec: dict[PointSpec, dict[int, list[ComponentFault]]] | None = None,
    executor: ParallelExecutor | None = None,
) -> list[dict]:
    """Run many points in one batch; one aggregated dict per spec.

    All (spec x seed) simulations are submitted to the executor as a
    single job list, so a parallel executor keeps every worker busy
    across the whole grid instead of parallelising one point at a time.
    The default executor runs serially in-process.
    """
    if executor is None:
        executor = ParallelExecutor()
    jobs: list[SimJob] = []
    for spec in specs:
        faults_per_seed = faults_per_spec.get(spec) if faults_per_spec else None
        jobs.extend(spec.jobs(scale, faults_per_seed))
    records = executor.run_jobs(jobs)
    n = len(scale.seeds)
    return [
        aggregate_point(spec, records[i * n : (i + 1) * n])
        for i, spec in enumerate(specs)
    ]


def averaged_point(
    router: str,
    routing: RoutingMode | str,
    traffic: str,
    injection_rate: float,
    scale: ExperimentScale,
    faults_per_seed: dict[int, list[ComponentFault]] | None = None,
    executor: ParallelExecutor | None = None,
) -> dict:
    """Average a run point over the scale's seeds.

    Returns the seed-mean of the headline metrics; completion-weighted
    where that matters (latency is averaged over delivered packets).
    """
    spec = PointSpec(router, routing, traffic, injection_rate)
    faults_per_spec = {spec: faults_per_seed} if faults_per_seed else None
    return averaged_points([spec], scale, faults_per_spec, executor)[0]


def fault_population(
    scale: ExperimentScale, count: int, critical: bool, seed: int
) -> list[ComponentFault]:
    """Seeded random fault placement, identical across architectures.

    The same (seed, count, class) always yields the same fault sites so
    router comparisons see the same broken hardware.
    """
    rng = random.Random(10_000 + seed * 101 + count * 7 + (1 if critical else 0))
    return random_faults(mesh_nodes(scale), count, rng, critical=critical)
