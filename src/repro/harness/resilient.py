"""Fault-tolerant sweep execution: retries, deadlines, crash recovery.

The paper's thesis is graceful degradation — a RoCo mesh keeps
delivering packets while components die.  This module applies the same
discipline to the harness itself: a 1000-job sweep must survive a
worker segfault, a hung cell, or one job raising
:class:`~repro.core.simulator.DrainTimeoutError`, and still produce the
records every other job would have produced.

Pieces (consumed by :class:`~repro.harness.parallel.ParallelExecutor`
when a :class:`RetryPolicy` is supplied):

* :class:`RetryPolicy` — per-job wall-clock deadlines, bounded retry
  with exponential backoff and a global retry budget, speculative
  re-execution of stragglers;
* :class:`JobFailure` — a structured quarantine record for a job that
  could not be completed; it travels through ``run_jobs`` results (as a
  marker dict, see ``FAILURE_MARKER``) instead of an exception that
  kills the sweep;
* :func:`run_serial` / :func:`run_pooled` — the two execution engines.
  The pooled engine replaces the opaque ``multiprocessing.Pool`` with a
  managed worker set: one pipe per worker, heartbeat threads, liveness
  checks, kill-and-replenish on crash, deadline or heartbeat loss;
* :class:`SweepJournal` — an append-only JSONL journal of completed
  ``job_key``s and failures, enabling ``--resume`` of interrupted
  sweeps with zero duplicate simulations;
* :func:`validate_record` — structural validation of worker results so
  a corrupted record is retried instead of silently accepted.

Failure taxonomy (docs/resilient-execution.md):

* **fatal** — deterministic simulation errors
  (:class:`~repro.core.simulator.DeadlockError`, which includes
  ``DrainTimeoutError``, and ``BackendUnsupportedError``).  Retrying a
  pure function of the job cannot help; quarantine immediately.
* **transient** — worker crashes, deadline timeouts, corrupted results
  and any other exception.  Retried with exponential backoff until the
  per-job ``max_retries`` or the sweep-wide ``retry_budget`` runs out,
  then quarantined as a crash loop.

Determinism: a simulation is a pure function of its job, so a retried
or speculatively duplicated execution returns the same record — the
chaos harness (:mod:`repro.harness.chaos`) asserts that a fault-ridden
sweep converges bit-identically to the fault-free run.
"""

from __future__ import annotations

import heapq
import itertools
import json
import math
import os
import threading
import time
from collections import deque
from dataclasses import dataclass, replace
from multiprocessing.connection import wait as _connection_wait
from pathlib import Path

from repro.core.simulator import DeadlockError
from repro.core.soa.errors import BackendUnsupportedError
from repro.harness.parallel import (
    FAILURE_MARKER,
    ExecutionStats,
    SimJob,
    execute_job,
)

#: Exception types for which a retry is provably pointless: the
#: simulator is deterministic, so the same job raises the same error.
FATAL_EXCEPTIONS = (DeadlockError, BackendUnsupportedError)


class TransientJobError(RuntimeError):
    """Base class for injected / simulated transient job errors."""


class WorkerCrashError(TransientJobError):
    """A worker process died mid-job (serial chaos stand-in included)."""


class JobTimeoutError(TransientJobError):
    """A job attempt exceeded its wall-clock deadline."""


class CorruptResultError(TransientJobError):
    """A worker returned a structurally invalid record."""


# ----------------------------------------------------------------------
# Policy and failure records
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class RetryPolicy:
    """Supervision knobs for one sweep (all durations in seconds).

    ``job_timeout`` is enforced only by the pooled engine — an inline
    (serial) execution cannot be preempted.  ``max_retries`` bounds the
    re-executions of a single job; ``retry_budget`` bounds retries
    across the whole call (``None`` = unbounded).  ``speculative``
    launches a duplicate of a straggling job on an otherwise idle
    worker; the first result wins (determinism makes duplicates safe).
    """

    job_timeout: float | None = None
    max_retries: int = 2
    backoff_base: float = 0.05
    backoff_factor: float = 2.0
    retry_budget: int | None = None
    speculative: bool = False
    straggler_factor: float = 4.0
    straggler_min_seconds: float = 2.0
    heartbeat_interval: float = 0.5
    heartbeat_timeout: float = 30.0
    validate: bool = True
    retry_failed_on_resume: bool = False
    poll_interval: float = 0.02

    def backoff(self, attempt: int) -> float:
        """Delay before launching ``attempt`` (the first retry is 1)."""
        if self.backoff_base <= 0:
            return 0.0
        return self.backoff_base * self.backoff_factor ** max(attempt - 1, 0)


@dataclass(frozen=True)
class JobFailure:
    """A job the supervisor gave up on, as data instead of an exception.

    ``kind`` is one of ``"fatal"`` (deterministic simulation error),
    ``"retries-exhausted"`` (crash loop / persistent transient),
    ``"retry-budget"`` (sweep-wide budget ran out first).
    ``attempts`` counts every launch, the first execution included.
    """

    index: int
    kind: str
    error_type: str
    message: str
    attempts: int
    key: str | None = None

    def record(self) -> dict:
        """The marker dict carried through ``run_jobs`` results."""
        return {
            FAILURE_MARKER: True,
            "index": self.index,
            "kind": self.kind,
            "error_type": self.error_type,
            "message": self.message,
            "attempts": self.attempts,
            "key": self.key,
        }

    @classmethod
    def from_record(cls, payload: dict, index: int | None = None) -> "JobFailure":
        return cls(
            index=payload["index"] if index is None else index,
            kind=payload["kind"],
            error_type=payload["error_type"],
            message=payload["message"],
            attempts=payload["attempts"],
            key=payload.get("key"),
        )

    def describe(self) -> str:
        return (
            f"job {self.index} [{self.kind}] {self.error_type} "
            f"after {self.attempts} attempt(s): {self.message}"
        )


def split_failures(records: list[dict]) -> tuple[list[dict], list[JobFailure]]:
    """Partition ``run_jobs`` output into (ok records, failures)."""
    ok: list[dict] = []
    failed: list[JobFailure] = []
    for record in records:
        if record.get(FAILURE_MARKER):
            failed.append(JobFailure.from_record(record))
        else:
            ok.append(record)
    return ok, failed


# ----------------------------------------------------------------------
# Result validation (corrupt-result detection)
# ----------------------------------------------------------------------

#: Fields every genuine result record carries (a structural subset of
#: repro.harness.export.RESULT_FIELDS), with non-negativity checks for
#: the numeric ones.  Cheap enough to run on every completion.
_REQUIRED_FIELDS = ("router", "routing", "traffic", "seed", "cycles")
_NON_NEGATIVE_FIELDS = ("average_latency", "throughput", "injection_rate")


def validate_record(record: object) -> None:
    """Raise :class:`CorruptResultError` unless ``record`` looks sane."""
    if not isinstance(record, dict):
        raise CorruptResultError(f"record is {type(record).__name__}, not dict")
    for name in _REQUIRED_FIELDS:
        if name not in record:
            raise CorruptResultError(f"record missing field {name!r}")
    for name in _NON_NEGATIVE_FIELDS:
        value = record.get(name)
        if not isinstance(value, (int, float)) or isinstance(value, bool):
            raise CorruptResultError(f"field {name!r} is not a number")
        if math.isnan(value) or math.isinf(value) or value < 0:
            raise CorruptResultError(f"field {name!r} has bad value {value!r}")
    cycles = record["cycles"]
    if not isinstance(cycles, int) or cycles < 1:
        raise CorruptResultError(f"field 'cycles' has bad value {cycles!r}")


# ----------------------------------------------------------------------
# Sweep journal (resume support)
# ----------------------------------------------------------------------


class SweepJournal:
    """Append-only JSONL journal of completed job keys and failures.

    One line per event: ``{"event": "ok", "key": ...}`` or ``{"event":
    "failure", "key": ..., "failure": {...}}``.  Opened with
    ``resume=True`` it replays an existing journal (tolerating a
    truncated final line from a crash); otherwise it starts fresh.
    Every append is flushed and fsynced so a killed sweep loses at most
    the in-flight line.
    """

    def __init__(self, path: str | Path, resume: bool = False) -> None:
        self.path = Path(path)
        self.completed_keys: set[str] = set()
        self.failures: dict[str, dict] = {}
        self.path.parent.mkdir(parents=True, exist_ok=True)
        if resume and self.path.exists():
            self._load()
            self._handle = self.path.open("a", encoding="utf-8")
        else:
            self._handle = self.path.open("w", encoding="utf-8")

    def _load(self) -> None:
        for line in self.path.read_text(encoding="utf-8").splitlines():
            line = line.strip()
            if not line:
                continue
            try:
                entry = json.loads(line)
            except ValueError:
                continue  # truncated tail of an interrupted run
            key = entry.get("key")
            if not key:
                continue
            if entry.get("event") == "ok":
                self.completed_keys.add(key)
                self.failures.pop(key, None)
            elif entry.get("event") == "failure":
                if key not in self.completed_keys:
                    self.failures[key] = entry.get("failure", {})

    @property
    def failed_keys(self) -> set[str]:
        return set(self.failures)

    def failure_for(self, key: str, index: int) -> JobFailure:
        """Replay a journaled failure at the current run's job index."""
        return replace(
            JobFailure.from_record(self.failures[key], index=index), key=key
        )

    def record_ok(self, key: str) -> None:
        if key in self.completed_keys:
            return
        self.completed_keys.add(key)
        self.failures.pop(key, None)
        self._append({"event": "ok", "key": key})

    def record_failure(self, key: str, failure: JobFailure) -> None:
        payload = failure.record()
        payload.pop(FAILURE_MARKER, None)
        self.failures[key] = payload
        self._append({"event": "failure", "key": key, "failure": payload})

    def _append(self, entry: dict) -> None:
        self._handle.write(json.dumps(entry, sort_keys=True) + "\n")
        self.flush()

    def flush(self) -> None:
        if self._handle.closed:
            return
        self._handle.flush()
        os.fsync(self._handle.fileno())

    def close(self) -> None:
        if not self._handle.closed:
            self._handle.close()

    def __len__(self) -> int:
        return len(self.completed_keys) + len(self.failures)


# ----------------------------------------------------------------------
# Shared retry bookkeeping
# ----------------------------------------------------------------------


class _RetryLedger:
    """Per-call retry accounting shared by both engines."""

    def __init__(self, policy: RetryPolicy, stats: ExecutionStats, on_retry):
        self.policy = policy
        self.stats = stats
        self.on_retry = on_retry
        self.budget = policy.retry_budget
        self.launches: dict[int, int] = {}

    def launched(self, index: int) -> int:
        """Count one launch of ``index``; returns the attempt number."""
        attempt = self.launches.get(index, 0)
        self.launches[index] = attempt + 1
        return attempt

    def attempts(self, index: int) -> int:
        return self.launches.get(index, 0)

    def disposition(self, index: int, fatal: bool) -> str | None:
        """``None`` to retry, else the :class:`JobFailure` kind."""
        if fatal:
            return "fatal"
        if self.attempts(index) > self.policy.max_retries:
            return "retries-exhausted"
        if self.budget is not None and self.budget <= 0:
            return "retry-budget"
        return None

    def consume_retry(self, index: int, attempt: int, reason: str) -> None:
        if self.budget is not None:
            self.budget -= 1
        self.stats.retries += 1
        if self.on_retry is not None:
            self.on_retry(index, attempt, reason)


def _classify(exc: Exception) -> tuple[str, bool]:
    """Map an exception to (stats counter name, fatal?)."""
    if isinstance(exc, WorkerCrashError):
        return "worker_crashes", False
    if isinstance(exc, JobTimeoutError):
        return "timeouts", False
    if isinstance(exc, CorruptResultError):
        return "corrupt_results", False
    return "errors", isinstance(exc, FATAL_EXCEPTIONS)


def _bump(stats: ExecutionStats, counter: str) -> None:
    if counter != "errors":
        setattr(stats, counter, getattr(stats, counter) + 1)


# ----------------------------------------------------------------------
# Serial engine
# ----------------------------------------------------------------------


def run_serial(
    pending: list[tuple[int, SimJob]],
    policy: RetryPolicy,
    chaos,
    stats: ExecutionStats,
    on_retry=None,
    job_fn=None,
):
    """Inline execution with retry/quarantine semantics.

    Deadlines are not enforceable in-process (the chaos harness maps a
    hang to :class:`JobTimeoutError` instead so the retry path is still
    exercised serially); everything else matches the pooled engine.
    """
    if job_fn is None:
        job_fn = execute_job
    ledger = _RetryLedger(policy, stats, on_retry)
    for index, job in pending:
        while True:
            attempt = ledger.launched(index)
            try:
                if chaos is not None:
                    from repro.harness.chaos import chaos_execute

                    record = chaos_execute(
                        job, index, attempt, chaos, job_fn=job_fn
                    )
                else:
                    record = job_fn(job)
                if policy.validate:
                    validate_record(record)
            except Exception as exc:
                counter, fatal = _classify(exc)
                _bump(stats, counter)
                kind = ledger.disposition(index, fatal)
                if kind is not None:
                    yield (
                        index,
                        JobFailure(
                            index=index,
                            kind=kind,
                            error_type=type(exc).__name__,
                            message=str(exc),
                            attempts=ledger.attempts(index),
                        ),
                    )
                    break
                ledger.consume_retry(index, attempt, type(exc).__name__)
                delay = policy.backoff(ledger.attempts(index))
                if delay > 0:
                    time.sleep(delay)
                continue
            yield index, record
            break


# ----------------------------------------------------------------------
# Pooled engine: managed worker set
# ----------------------------------------------------------------------


def _worker_main(worker_id, conn, chaos, heartbeat_interval, job_fn=None):
    """Worker loop: recv task, execute, send result; heartbeat thread.

    Top-level so ``spawn`` children can import it.  All sends share one
    lock because the heartbeat thread and the main loop write to the
    same pipe.  ``job_fn`` (a picklable top-level callable, default
    :func:`~repro.harness.parallel.execute_job`) lets embedders like the
    job server capture extra per-job telemetry without forking the
    worker protocol.
    """
    if job_fn is None:
        job_fn = execute_job
    send_lock = threading.Lock()
    stop = threading.Event()

    def _send(message) -> None:
        with send_lock:
            conn.send(message)

    def _beat() -> None:
        from repro.harness import chaos as chaos_mod

        while not stop.wait(heartbeat_interval):
            if chaos_mod.heartbeat_suppressed():
                return  # chaos "wedge": simulate a frozen interpreter
            try:
                _send(("hb", worker_id))
            except (OSError, ValueError):
                return

    threading.Thread(target=_beat, daemon=True).start()
    try:
        _send(("ready", worker_id))
        while True:
            task = conn.recv()
            if task is None:
                break
            index, attempt, job = task
            try:
                if chaos is not None:
                    from repro.harness.chaos import chaos_execute

                    record = chaos_execute(
                        job, index, attempt, chaos,
                        in_worker=True, job_fn=job_fn,
                    )
                else:
                    record = job_fn(job)
                _send(("done", worker_id, index, attempt, record))
            except Exception as exc:
                _, fatal = _classify(exc)
                _send(
                    (
                        "error",
                        worker_id,
                        index,
                        attempt,
                        type(exc).__name__,
                        str(exc),
                        fatal,
                    )
                )
    except (EOFError, KeyboardInterrupt, OSError):
        pass
    finally:
        stop.set()


@dataclass
class _Running:
    index: int
    attempt: int
    started: float
    speculative: bool = False


#: Minimum grace before a worker that has not yet spoken (still booting
#: the interpreter / importing the simulator) can be declared wedged.
_BOOT_GRACE = 60.0


class _WorkerHandle:
    def __init__(self, worker_id: int, process, conn) -> None:
        self.worker_id = worker_id
        self.process = process
        self.conn = conn
        self.last_heartbeat = time.monotonic()
        self.running: _Running | None = None
        #: Set once the worker has sent any message; heartbeat timeouts
        #: only apply after that (spawn cost must not look like a wedge).
        self.ready = False


class _PoolSupervisor:
    """Managed worker set replacing the opaque ``multiprocessing.Pool``.

    Each worker is a ``spawn`` process on its own duplex pipe with a
    heartbeat thread.  The supervisor loop assigns tasks to idle
    workers, drains messages, enforces per-attempt deadlines and
    heartbeat liveness, kills and replenishes crashed or wedged
    workers, schedules backoff retries, and speculatively re-executes
    stragglers on idle workers.  Results are yielded as ``(index,
    record | JobFailure)`` in completion order.
    """

    def __init__(
        self,
        pending: list[tuple[int, SimJob]],
        policy: RetryPolicy,
        chaos,
        workers: int,
        stats: ExecutionStats,
        context,
        on_retry=None,
        job_fn=None,
        elastic: bool = False,
    ) -> None:
        self.jobs = dict(pending)
        self.policy = policy
        self.chaos = chaos
        # An elastic supervisor (the long-lived worker set behind the
        # job server) sizes its pool for future submissions, not the
        # (possibly empty) initial batch.
        if elastic:
            self.pool_size = max(1, workers)
        else:
            self.pool_size = max(1, min(workers, len(pending)))
        self.stats = stats
        self.context = context
        self.job_fn = job_fn
        self.ledger = _RetryLedger(policy, stats, on_retry)
        self.ready: deque[int] = deque(index for index, _ in pending)
        self.delayed: list[tuple[float, int, int]] = []  # (when, seq, index)
        self._seq = itertools.count()
        self._worker_ids = itertools.count()
        self.workers: dict[int, _WorkerHandle] = {}
        self.inflight: dict[int, set[int]] = {}  # index -> worker ids
        self.resolved: set[int] = set()
        self.durations: list[float] = []
        self.out: deque[tuple[int, object]] = deque()

    # -- lifecycle -----------------------------------------------------

    def _spawn_worker(self) -> None:
        worker_id = next(self._worker_ids)
        parent_conn, child_conn = self.context.Pipe(duplex=True)
        process = self.context.Process(
            target=_worker_main,
            args=(
                worker_id,
                child_conn,
                self.chaos,
                self.policy.heartbeat_interval,
                self.job_fn,
            ),
            daemon=True,
        )
        process.start()
        child_conn.close()
        self.workers[worker_id] = _WorkerHandle(worker_id, process, parent_conn)

    def _discard_worker(self, handle: _WorkerHandle, kill: bool) -> None:
        self.workers.pop(handle.worker_id, None)
        if handle.running is not None:
            self.inflight.get(handle.running.index, set()).discard(
                handle.worker_id
            )
            handle.running = None
        if kill and handle.process.is_alive():
            handle.process.kill()
        handle.process.join(timeout=1.0)
        try:
            handle.conn.close()
        except OSError:
            pass

    def _shutdown(self) -> None:
        for handle in list(self.workers.values()):
            if handle.running is None and handle.process.is_alive():
                try:
                    handle.conn.send(None)
                except (OSError, ValueError, BrokenPipeError):
                    pass
            else:
                handle.process.kill()
        deadline = time.monotonic() + 2.0
        for handle in list(self.workers.values()):
            handle.process.join(timeout=max(0.0, deadline - time.monotonic()))
            if handle.process.is_alive():
                handle.process.kill()
                handle.process.join(timeout=1.0)
            try:
                handle.conn.close()
            except OSError:
                pass
        self.workers.clear()

    # -- scheduling ----------------------------------------------------

    def _outstanding(self) -> int:
        return len(self.jobs) - len(self.resolved)

    def _promote_delayed(self) -> None:
        now = time.monotonic()
        while self.delayed and self.delayed[0][0] <= now:
            _, _, index = heapq.heappop(self.delayed)
            if index not in self.resolved:
                self.ready.append(index)

    def _idle_workers(self) -> list[_WorkerHandle]:
        return [h for h in self.workers.values() if h.running is None]

    def _assign_ready(self) -> None:
        while self.ready:
            # Replenish the pool if workers died while work remains.
            idle = self._idle_workers()
            if not idle:
                if len(self.workers) < self.pool_size:
                    self._spawn_worker()
                return
            index = self.ready.popleft()
            if index in self.resolved:
                continue
            self._launch(idle[0], index, speculative=False)

    def _launch(
        self, handle: _WorkerHandle, index: int, speculative: bool
    ) -> None:
        attempt = self.ledger.launched(index)
        try:
            handle.conn.send((index, attempt, self.jobs[index]))
        except (OSError, ValueError, BrokenPipeError):
            # Worker died between liveness check and send; put the job
            # back and let the liveness pass replace the worker.
            self.ledger.launches[index] -= 1
            self.ready.appendleft(index)
            return
        handle.running = _Running(
            index=index,
            attempt=attempt,
            started=time.monotonic(),
            speculative=speculative,
        )
        self.inflight.setdefault(index, set()).add(handle.worker_id)
        if speculative:
            self.stats.speculative += 1

    def _maybe_speculate(self) -> None:
        if not self.policy.speculative or self.ready or self.delayed:
            return
        idle = self._idle_workers()
        if not idle:
            return
        threshold = self.policy.straggler_min_seconds
        if self.durations:
            median = sorted(self.durations)[len(self.durations) // 2]
            threshold = max(threshold, self.policy.straggler_factor * median)
        now = time.monotonic()
        for handle in list(self.workers.values()):
            if not idle:
                return
            running = handle.running
            if running is None or running.index in self.resolved:
                continue
            if len(self.inflight.get(running.index, ())) > 1:
                continue  # already duplicated
            if now - running.started < threshold:
                continue
            self._launch(idle.pop(), running.index, speculative=True)

    # -- failure handling ----------------------------------------------

    def _job_finished(self, handle: _WorkerHandle) -> _Running | None:
        running = handle.running
        handle.running = None
        if running is not None:
            self.inflight.get(running.index, set()).discard(handle.worker_id)
        return running

    def _complete(self, running: _Running, record: dict) -> None:
        if running.index in self.resolved:
            return  # speculative loser or post-timeout late arrival
        self.resolved.add(running.index)
        self.durations.append(time.monotonic() - running.started)
        if running.speculative:
            self.stats.speculative_wins += 1
        self.out.append((running.index, record))

    def _failed_attempt(
        self, index: int, attempt: int, error_type: str, message: str,
        counter: str, fatal: bool,
    ) -> None:
        if index in self.resolved:
            return
        _bump(self.stats, counter)
        if self.inflight.get(index):
            # A duplicate of this job is still running; let it decide.
            return
        kind = self.ledger.disposition(index, fatal)
        if kind is not None:
            self.resolved.add(index)
            self.out.append(
                (
                    index,
                    JobFailure(
                        index=index,
                        kind=kind,
                        error_type=error_type,
                        message=message,
                        attempts=self.ledger.attempts(index),
                    ),
                )
            )
            return
        self.ledger.consume_retry(index, attempt, error_type)
        when = time.monotonic() + self.policy.backoff(
            self.ledger.attempts(index)
        )
        heapq.heappush(self.delayed, (when, next(self._seq), index))

    # -- message / liveness passes -------------------------------------

    def _handle_message(self, handle: _WorkerHandle, message) -> None:
        kind = message[0]
        handle.ready = True
        if kind in ("hb", "ready"):
            handle.last_heartbeat = time.monotonic()
            return
        if kind == "done":
            _, _, index, attempt, record = message
            running = self._job_finished(handle)
            handle.last_heartbeat = time.monotonic()
            if running is None or index in self.resolved:
                return
            if self.policy.validate:
                try:
                    validate_record(record)
                except CorruptResultError as exc:
                    self._failed_attempt(
                        index, attempt, type(exc).__name__, str(exc),
                        "corrupt_results", False,
                    )
                    return
            self._complete(running, record)
            return
        if kind == "error":
            _, _, index, attempt, error_type, text, fatal = message
            self._job_finished(handle)
            handle.last_heartbeat = time.monotonic()
            counter = "errors"
            if error_type == "JobTimeoutError":
                counter = "timeouts"
            elif error_type == "WorkerCrashError":
                counter = "worker_crashes"
            elif error_type == "CorruptResultError":
                counter = "corrupt_results"
            self._failed_attempt(index, attempt, error_type, text, counter, fatal)

    def _drain_messages(self) -> None:
        conns = {h.conn: h for h in self.workers.values()}
        if not conns:
            time.sleep(self.policy.poll_interval)
            return
        try:
            ready = _connection_wait(
                list(conns), timeout=self.policy.poll_interval
            )
        except OSError:
            return
        for conn in ready:
            handle = conns[conn]
            while True:
                try:
                    if not conn.poll():
                        break
                    message = conn.recv()
                except (EOFError, OSError):
                    break  # dead worker; the liveness pass reaps it
                self._handle_message(handle, message)

    def _check_liveness(self) -> None:
        now = time.monotonic()
        policy = self.policy
        for handle in list(self.workers.values()):
            running = handle.running
            if not handle.process.is_alive():
                self._discard_worker(handle, kill=False)
                if running is not None:
                    self._failed_attempt(
                        running.index,
                        running.attempt,
                        "WorkerCrashError",
                        f"worker {handle.worker_id} died "
                        f"(exitcode {handle.process.exitcode})",
                        "worker_crashes",
                        False,
                    )
                continue
            if (
                running is not None
                and policy.job_timeout is not None
                and now - running.started > policy.job_timeout
            ):
                self._discard_worker(handle, kill=True)
                self._failed_attempt(
                    running.index,
                    running.attempt,
                    "JobTimeoutError",
                    f"attempt exceeded {policy.job_timeout:.1f}s deadline",
                    "timeouts",
                    False,
                )
                continue
            hb_timeout = policy.heartbeat_timeout
            if hb_timeout is not None and not handle.ready:
                hb_timeout = max(hb_timeout, _BOOT_GRACE)
            if (
                hb_timeout is not None
                and now - handle.last_heartbeat > hb_timeout
            ):
                self._discard_worker(handle, kill=True)
                if running is not None:
                    self._failed_attempt(
                        running.index,
                        running.attempt,
                        "WorkerCrashError",
                        f"worker {handle.worker_id} stopped heartbeating",
                        "worker_crashes",
                        False,
                    )

    # -- incremental interface (long-lived worker sets) ----------------

    def submit(self, index: int, job: SimJob) -> None:
        """Enqueue one more job; legal at any point in the lifetime."""
        if index in self.jobs:
            raise ValueError(f"job index {index} already submitted")
        self.jobs[index] = job
        self.ready.append(index)

    def start(self) -> None:
        """Spawn the initial worker complement."""
        while len(self.workers) < self.pool_size:
            self._spawn_worker()

    def _tick(self) -> None:
        """One supervision pass: schedule, drain, enforce liveness."""
        self._promote_delayed()
        self._assign_ready()
        self._maybe_speculate()
        self._drain_messages()
        self._check_liveness()

    def pump(self) -> list[tuple[int, object]]:
        """One pass; returns newly completed ``(index, outcome)`` pairs."""
        self._tick()
        completed = list(self.out)
        self.out.clear()
        return completed

    def worker_liveness(self) -> list[dict]:
        """Status snapshot of every live worker (for ``/status``)."""
        now = time.monotonic()
        report = []
        for handle in self.workers.values():
            running = handle.running
            report.append(
                {
                    "worker": handle.worker_id,
                    "pid": handle.process.pid,
                    "alive": handle.process.is_alive(),
                    "ready": handle.ready,
                    "running_index": (
                        running.index if running is not None else None
                    ),
                    "busy_seconds": (
                        round(now - running.started, 3)
                        if running is not None
                        else None
                    ),
                    "heartbeat_age": round(now - handle.last_heartbeat, 3),
                }
            )
        return report

    # -- main loop -----------------------------------------------------

    def events(self):
        try:
            self.start()
            while len(self.resolved) < len(self.jobs):
                self._tick()
                while self.out:
                    yield self.out.popleft()
            while self.out:
                yield self.out.popleft()
        finally:
            self._shutdown()


def run_pooled(
    pending: list[tuple[int, SimJob]],
    policy: RetryPolicy,
    chaos,
    stats: ExecutionStats,
    workers: int,
    start_method: str = "spawn",
    on_retry=None,
):
    """Supervised pool execution; yields ``(index, record | JobFailure)``."""
    import multiprocessing

    context = multiprocessing.get_context(start_method)
    supervisor = _PoolSupervisor(
        pending, policy, chaos, workers, stats, context, on_retry=on_retry
    )
    yield from supervisor.events()


# ----------------------------------------------------------------------
# Long-lived managed worker set (serve layer)
# ----------------------------------------------------------------------


class ManagedWorkerSet:
    """A :class:`_PoolSupervisor` reusable outside one ``run_jobs`` call.

    ``run_pooled`` builds a supervisor around a fixed batch and tears it
    down when the batch resolves; a long-lived daemon instead wants one
    warm pool that accepts jobs *incrementally* for its whole lifetime.
    This wrapper owns exactly that: :meth:`submit` enqueues a job and
    returns its index, :meth:`pump` runs one supervision pass (assign /
    drain / deadlines / heartbeat liveness / crash replenishment) and
    returns newly settled ``(index, record | JobFailure)`` pairs, and
    :meth:`close` shuts the pool down.  All the
    :class:`RetryPolicy` machinery — retries with backoff, deadline
    kills, crash detection, speculative stragglers — behaves exactly as
    it does under ``run_jobs``; the shared :class:`ExecutionStats`
    accumulates across every job ever submitted.

    Not thread-safe: one owner thread submits and pumps (the job
    server's broker thread).  ``job_fn`` must be a picklable top-level
    callable (default :func:`~repro.harness.parallel.execute_job`).
    """

    def __init__(
        self,
        policy: RetryPolicy | None = None,
        workers: int = 1,
        chaos=None,
        stats: ExecutionStats | None = None,
        start_method: str = "spawn",
        on_retry=None,
        job_fn=None,
    ) -> None:
        import multiprocessing

        self.policy = policy if policy is not None else RetryPolicy()
        self.stats = stats if stats is not None else ExecutionStats()
        context = multiprocessing.get_context(start_method)
        self._supervisor = _PoolSupervisor(
            [],
            self.policy,
            chaos,
            workers,
            self.stats,
            context,
            on_retry=on_retry,
            job_fn=job_fn,
            elastic=True,
        )
        self._next_index = itertools.count()
        self._closed = False
        self._supervisor.start()

    @property
    def pool_size(self) -> int:
        return self._supervisor.pool_size

    def submit(self, job: SimJob) -> int:
        """Enqueue a job; returns the index its outcome will carry."""
        if self._closed:
            raise RuntimeError("worker set is closed")
        index = next(self._next_index)
        self._supervisor.submit(index, job)
        self.stats.total += 1
        return index

    def pump(self) -> list[tuple[int, object]]:
        """One supervision pass; newly settled ``(index, outcome)``\\ s.

        Blocks at most ``policy.poll_interval`` waiting for worker
        messages, so a driving loop can call it back-to-back without
        spinning.
        """
        if self._closed:
            return []
        return self._supervisor.pump()

    def outstanding(self) -> int:
        """Jobs submitted but not yet settled."""
        return self._supervisor._outstanding()

    def worker_liveness(self) -> list[dict]:
        return self._supervisor.worker_liveness()

    def close(self) -> None:
        if not self._closed:
            self._closed = True
            self._supervisor._shutdown()

    def __enter__(self) -> "ManagedWorkerSet":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
