"""Replication statistics and saturation search.

Simulation outputs are random variables; this module provides the two
tools an evaluation needs to treat them honestly:

* :func:`replicate` — run one configuration across seeds and report
  mean / standard deviation / 95% confidence intervals per metric;
* :func:`find_saturation_rate` — bisection search for the offered load
  at which average latency crosses a multiple of the unloaded latency
  (the standard operational definition of saturation throughput).
"""

from __future__ import annotations

import math
from collections.abc import Callable
from dataclasses import dataclass

from repro.core.config import SimulationConfig
from repro.core.simulator import SimulationResult, run_simulation
from repro.harness.parallel import ParallelExecutor, is_failure_record

#: Two-sided 95% t-distribution critical values by degrees of freedom.
#: (Enough entries for typical seed counts; falls back to the normal
#: 1.96 beyond the table.)
_T95 = {
    1: 12.706,
    2: 4.303,
    3: 3.182,
    4: 2.776,
    5: 2.571,
    6: 2.447,
    7: 2.365,
    8: 2.306,
    9: 2.262,
    10: 2.228,
}

#: Metrics summarised by replicate().
REPLICATED_METRICS = (
    "average_latency",
    "throughput",
    "completion_probability",
    "energy_per_packet_nj",
    "pef",
)


@dataclass(frozen=True)
class MetricSummary:
    """Mean and spread of one metric over replications."""

    name: str
    samples: tuple[float, ...]

    @property
    def mean(self) -> float:
        return sum(self.samples) / len(self.samples)

    @property
    def std(self) -> float:
        if len(self.samples) < 2:
            return 0.0
        m = self.mean
        return math.sqrt(
            sum((s - m) ** 2 for s in self.samples) / (len(self.samples) - 1)
        )

    @property
    def ci95(self) -> float:
        """Half-width of the 95% confidence interval of the mean."""
        n = len(self.samples)
        if n < 2:
            return 0.0
        t = _T95.get(n - 1, 1.96)
        return t * self.std / math.sqrt(n)

    def __str__(self) -> str:
        return (
            f"{self.name}: {self.mean:.3f} +- {self.ci95:.3f} "
            f"(n={len(self.samples)})"
        )


def replicate(
    config: SimulationConfig,
    seeds: tuple[int, ...] = (1, 2, 3, 4, 5),
    executor: ParallelExecutor | None = None,
) -> dict[str, MetricSummary]:
    """Run ``config`` once per seed; summarise the headline metrics.

    Replications are independent, so an ``executor`` with workers runs
    them concurrently (and can serve them from its result cache); the
    summaries are identical to a serial run.
    """
    if not seeds:
        raise ValueError("replication needs at least one seed")
    if executor is None:
        executor = ParallelExecutor()
    configs = [
        SimulationConfig(**{**_config_kwargs(config), "seed": seed})
        for seed in seeds
    ]
    records = executor.run_configs(configs)
    # Under a resilient executor a quarantined seed arrives as a failure
    # record; summarise the surviving seeds rather than KeyError-ing.
    records = [r for r in records if not is_failure_record(r)]
    if not records:
        raise RuntimeError(
            f"every replication of {config.router}/{config.traffic} at "
            f"rate {config.injection_rate} failed"
        )
    return {
        metric: MetricSummary(metric, tuple(float(r[metric]) for r in records))
        for metric in REPLICATED_METRICS
    }


def _config_kwargs(config: SimulationConfig) -> dict:
    return {
        "width": config.width,
        "height": config.height,
        "router": config.router,
        "routing": config.routing,
        "traffic": config.traffic,
        "injection_rate": config.injection_rate,
        "flits_per_packet": config.flits_per_packet,
        "router_config": config.router_config,
        "warmup_packets": config.warmup_packets,
        "measure_packets": config.measure_packets,
        "max_cycles": config.max_cycles,
        "fault_drop_timeout": config.fault_drop_timeout,
        "drain_timeout": config.drain_timeout,
    }


def find_saturation_rate(
    router: str,
    routing: str = "xy",
    traffic: str = "uniform",
    width: int = 8,
    height: int = 8,
    threshold_factor: float = 3.0,
    tolerance: float = 0.02,
    measure_packets: int = 700,
    seed: int = 7,
    run: Callable[[SimulationConfig], SimulationResult] | None = None,
) -> float:
    """Offered load where latency crosses ``threshold_factor`` x unloaded.

    Bisection over injection rate; the unloaded reference is measured at
    0.02 flits/node/cycle.  Returns the saturation estimate in
    flits/node/cycle (resolution ``tolerance``).  ``run`` replaces the
    simulation call — the benchbed passes an accounting wrapper.
    """
    simulate = run if run is not None else run_simulation

    def latency_at(rate: float) -> float:
        config = SimulationConfig(
            width=width,
            height=height,
            router=router,
            routing=routing,
            traffic=traffic,
            injection_rate=rate,
            warmup_packets=max(50, measure_packets // 6),
            measure_packets=measure_packets,
            max_cycles=80_000,
            seed=seed,
        )
        return simulate(config).average_latency

    base = latency_at(0.02)
    threshold = threshold_factor * base
    low, high = 0.05, 0.60
    if latency_at(high) < threshold:
        return high  # does not saturate within the searched range
    while high - low > tolerance:
        mid = (low + high) / 2
        if latency_at(mid) < threshold:
            low = mid
        else:
            high = mid
    return (low + high) / 2
