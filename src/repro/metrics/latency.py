"""Latency statistics helpers."""

from __future__ import annotations

import math
from dataclasses import dataclass


@dataclass(frozen=True)
class LatencySummary:
    """Distribution summary of per-packet end-to-end latencies."""

    count: int
    mean: float
    p50: float
    p95: float
    p99: float
    maximum: int

    @classmethod
    def from_samples(cls, samples: list[int]) -> "LatencySummary":
        if not samples:
            return cls(0, 0.0, 0.0, 0.0, 0.0, 0)
        ordered = sorted(samples)
        return cls(
            count=len(ordered),
            mean=sum(ordered) / len(ordered),
            p50=percentile(ordered, 0.50),
            p95=percentile(ordered, 0.95),
            p99=percentile(ordered, 0.99),
            maximum=ordered[-1],
        )


def percentile(ordered: list[int], q: float) -> float:
    """Linear-interpolated percentile of an already-sorted sample."""
    if not ordered:
        return 0.0
    if not 0.0 <= q <= 1.0:
        raise ValueError("q must be within [0, 1]")
    pos = q * (len(ordered) - 1)
    lower = math.floor(pos)
    upper = math.ceil(pos)
    if lower == upper:
        return float(ordered[lower])
    frac = pos - lower
    value = ordered[lower] * (1.0 - frac) + ordered[upper] * frac
    # Interpolation rounding must never escape the sample bounds.
    return min(max(value, ordered[lower]), ordered[upper])
