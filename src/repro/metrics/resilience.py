"""Resilience metrics for runtime fault campaigns.

A fault campaign asks different questions from a steady-state sweep:
not "what was the average latency?" but "what fraction of traffic
survived, where did the losses go, and how did service degrade as
faults accumulated?".  This module provides:

* :class:`PacketAccounting` — the conservation ledger (generated =
  delivered + dropped-by-reason) read off a finished
  :class:`~repro.core.simulator.SimulationResult`;
* :class:`ResilienceProbe` — a listener-based probe attached before
  ``run()`` that bins deliveries and drops into fixed cycle windows
  (throughput/latency vs time) and segments delivered fraction by the
  number of topology-affecting faults that had already struck when each
  packet was created;
* :func:`degradation_curve` — the (fault count, delivered fraction)
  series the dynamic-fault benchmark plots per architecture.

Everything here observes via the simulator's delivery/drop listener
lists; nothing perturbs the simulation hot path.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.core.types import Packet

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.simulator import Simulator


@dataclass(frozen=True)
class PacketAccounting:
    """The end-of-run conservation ledger over *all* generated packets."""

    generated: int
    delivered: int
    dropped: int
    drops_by_reason: dict[str, int] = field(default_factory=dict)

    @classmethod
    def from_result(cls, result: "SimulationResult") -> "PacketAccounting":
        return cls(
            generated=result.generated_packets,
            delivered=result.total_delivered,
            dropped=result.total_dropped,
            drops_by_reason=dict(result.drops_by_reason),
        )

    @property
    def conserved(self) -> bool:
        """Every generated packet is accounted for exactly once."""
        return (
            self.generated == self.delivered + self.dropped
            and sum(self.drops_by_reason.values()) == self.dropped
        )

    @property
    def delivered_fraction(self) -> float:
        """Fraction of all generated packets that reached their PE."""
        if self.generated == 0:
            return 1.0
        return self.delivered / self.generated

    def describe(self) -> str:
        parts = [
            f"generated={self.generated}",
            f"delivered={self.delivered} ({self.delivered_fraction:.3f})",
            f"dropped={self.dropped}",
        ]
        if self.drops_by_reason:
            reasons = ", ".join(
                f"{reason}={count}"
                for reason, count in sorted(self.drops_by_reason.items())
            )
            parts.append(f"by reason: {reasons}")
        return "; ".join(parts)


@dataclass
class WindowPoint:
    """One fixed-width window of the service timeline."""

    start_cycle: int
    delivered: int = 0
    dropped: int = 0
    latency_sum: int = 0

    @property
    def mean_latency(self) -> float | None:
        if self.delivered == 0:
            return None
        return self.latency_sum / self.delivered


@dataclass
class FaultCountPoint:
    """Service quality for packets created under ``fault_count`` faults."""

    fault_count: int
    generated: int = 0
    delivered: int = 0

    @property
    def delivered_fraction(self) -> float:
        if self.generated == 0:
            return 1.0
        return self.delivered / self.generated


class ResilienceProbe:
    """Service-over-time and service-vs-fault-count view of one run.

    Attach before ``run()``::

        sim = Simulator(config, schedule=schedule)
        probe = ResilienceProbe(sim, window=200)
        result = sim.run()
        probe.throughput_timeline()          # packets/cycle per window
        probe.delivered_by_fault_count()     # degradation staircase

    The fault-count segmentation keys each packet by how many
    topology-affecting schedule events had fired *at or before* its
    creation cycle, so the staircase reads "of traffic injected while k
    nodes/modules were dead, what fraction still got through?".
    """

    def __init__(self, simulator: "Simulator", window: int = 100) -> None:
        if window <= 0:
            raise ValueError("window must be positive")
        self.simulator = simulator
        self.window = window
        self._windows: dict[int, WindowPoint] = {}
        schedule = simulator.schedule
        self._event_cycles: list[int] = (
            sorted(schedule.topology_event_cycles) if schedule is not None else []
        )
        self._by_fault_count: dict[int, FaultCountPoint] = {}
        simulator.delivery_listeners.append(self._on_delivered)
        simulator.drop_listeners.append(self._on_dropped)

    # ------------------------------------------------------------------
    # Listeners
    # ------------------------------------------------------------------

    def _window_for(self, cycle: int) -> WindowPoint:
        start = (cycle // self.window) * self.window
        point = self._windows.get(start)
        if point is None:
            point = WindowPoint(start_cycle=start)
            self._windows[start] = point
        return point

    def _segment_for(self, packet: Packet) -> FaultCountPoint:
        count = bisect.bisect_right(self._event_cycles, packet.created_cycle)
        point = self._by_fault_count.get(count)
        if point is None:
            point = FaultCountPoint(fault_count=count)
            self._by_fault_count[count] = point
        return point

    def _on_delivered(self, packet: Packet) -> None:
        cycle = packet.delivered_cycle
        point = self._window_for(cycle if cycle is not None else 0)
        point.delivered += 1
        point.latency_sum += packet.latency
        segment = self._segment_for(packet)
        segment.generated += 1
        segment.delivered += 1

    def _on_dropped(self, packet: Packet) -> None:
        cycle = packet.dropped_cycle
        self._window_for(cycle if cycle is not None else 0).dropped += 1
        self._segment_for(packet).generated += 1

    # ------------------------------------------------------------------
    # Views
    # ------------------------------------------------------------------

    @property
    def windows(self) -> list[WindowPoint]:
        return [self._windows[start] for start in sorted(self._windows)]

    def throughput_timeline(self) -> list[tuple[int, float]]:
        """(window start cycle, delivered packets per cycle) series."""
        return [
            (point.start_cycle, point.delivered / self.window)
            for point in self.windows
        ]

    def latency_timeline(self) -> list[tuple[int, float]]:
        """(window start cycle, mean delivery latency) series.

        Windows that delivered nothing are omitted — there is no latency
        to report, and plotting zero would read as "infinitely fast".
        """
        return [
            (point.start_cycle, point.mean_latency)
            for point in self.windows
            if point.mean_latency is not None
        ]

    def drop_timeline(self) -> list[tuple[int, int]]:
        """(window start cycle, packets dropped in window) series."""
        return [(point.start_cycle, point.dropped) for point in self.windows]

    def delivered_fraction(self) -> float:
        delivered = sum(point.delivered for point in self.windows)
        total = delivered + sum(point.dropped for point in self.windows)
        if total == 0:
            return 1.0
        return delivered / total

    def delivered_by_fault_count(self) -> list[FaultCountPoint]:
        """Degradation staircase, ordered by cumulative fault count."""
        return [
            self._by_fault_count[count] for count in sorted(self._by_fault_count)
        ]


def degradation_curve(
    points: "list[tuple[int, SimulationResult]]",
) -> list[tuple[int, float]]:
    """(fault count, delivered fraction) series from per-count runs.

    ``points`` pairs each cumulative fault count with the result of a
    run whose schedule injected exactly that many faults — the shape the
    dynamic-fault benchmark produces per architecture.
    """
    curve = []
    for count, result in sorted(points, key=lambda item: item[0]):
        accounting = PacketAccounting.from_result(result)
        curve.append((count, accounting.delivered_fraction))
    return curve
