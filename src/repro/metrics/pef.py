"""Composite evaluation metrics: EDP, PDP and the paper's PEF.

The Performance-Energy-Fault-tolerance metric (Section 5.3) folds
reliability into the Energy-Delay Product:

    PEF = (average latency x energy per packet) / completion probability
        = EDP / completion probability

In a fault-free network the completion probability is 1 and PEF reduces
to EDP.  Units follow the paper: nJ x cycles / probability.
"""

from __future__ import annotations

from dataclasses import dataclass


def energy_delay_product(average_latency: float, energy_per_packet: float) -> float:
    """EDP in (energy unit) x cycles."""
    return average_latency * energy_per_packet


def power_delay_product(power: float, average_latency: float) -> float:
    """PDP in (power unit) x cycles."""
    return power * average_latency


def pef(
    average_latency: float,
    energy_per_packet: float,
    completion_probability: float,
) -> float:
    """The paper's combined Performance-Energy-Fault-tolerance metric."""
    if not 0.0 < completion_probability <= 1.0:
        if completion_probability == 0.0:
            return float("inf")
        raise ValueError("completion probability must be within (0, 1]")
    return energy_delay_product(average_latency, energy_per_packet) / (
        completion_probability
    )


@dataclass(frozen=True)
class PEFBreakdown:
    """PEF along with the three ingredients, for reporting."""

    average_latency: float
    energy_per_packet_nj: float
    completion_probability: float

    @property
    def edp(self) -> float:
        return energy_delay_product(self.average_latency, self.energy_per_packet_nj)

    @property
    def value(self) -> float:
        return pef(
            self.average_latency,
            self.energy_per_packet_nj,
            self.completion_probability,
        )
