"""Evaluation metrics: latency summaries, EDP/PDP and the PEF metric."""

from repro.metrics.latency import LatencySummary, percentile
from repro.metrics.pef import (
    PEFBreakdown,
    energy_delay_product,
    pef,
    power_delay_product,
)

__all__ = [
    "LatencySummary",
    "PEFBreakdown",
    "energy_delay_product",
    "pef",
    "percentile",
    "power_delay_product",
]
