"""Evaluation metrics: latency, EDP/PDP, PEF and fault-campaign resilience."""

from repro.metrics.latency import LatencySummary, percentile
from repro.metrics.pef import (
    PEFBreakdown,
    energy_delay_product,
    pef,
    power_delay_product,
)
from repro.metrics.resilience import (
    FaultCountPoint,
    PacketAccounting,
    ResilienceProbe,
    WindowPoint,
    degradation_curve,
)

__all__ = [
    "FaultCountPoint",
    "LatencySummary",
    "PEFBreakdown",
    "PacketAccounting",
    "ResilienceProbe",
    "WindowPoint",
    "degradation_curve",
    "energy_delay_product",
    "pef",
    "percentile",
    "power_delay_product",
]
