"""The generic 2-stage virtual-channel router (paper Figure 1(a)).

Five physical ports (N, E, S, W, PE), each with ``v`` VCs, a monolithic
5x5 crossbar, a separable VA and a two-stage SA (a v:1 arbiter per input
port followed by a 5:1 arbiter per output port).  Every flit — including
flits ejecting to the local PE — takes switch allocation and switch
traversal, which is exactly the 2-cycle cost RoCo's early ejection saves.

Adaptive routing uses VC 0 of every port as the Duato escape channel:
a worm occupying VC 0 routes dimension-ordered (XY) from that node.
"""

from __future__ import annotations

from repro.arbiters.round_robin import RoundRobinArbiter
from repro.core.buffer import VirtualChannel
from repro.core.types import Direction, NodeId, Packet, RoutingMode
from repro.routers.base import BaseRouter

#: Port order of the generic router: the four cardinals plus the PE port.
GENERIC_PORTS = (
    Direction.NORTH,
    Direction.EAST,
    Direction.SOUTH,
    Direction.WEST,
    Direction.LOCAL,
)


class GenericRouter(BaseRouter):
    """Baseline 5-port wormhole router with a full crossbar."""

    architecture = "generic"

    def __init__(self, node: NodeId, network) -> None:
        super().__init__(node, network)
        v = self.config.vcs_per_port
        depth = self.config.buffer_depth
        self.ports: dict[Direction, list[VirtualChannel]] = {}
        for d in GENERIC_PORTS:
            vcs = []
            for i in range(v):
                vc = VirtualChannel(port=int(d), index=i, depth=depth)
                vc.input_dir = d
                vc.accepts_from = (d,)
                vc.escape = i == 0
                vcs.append(vc)
            self.ports[d] = vcs
        #: Flat VC list in port order; built once — the activity
        #: scheduler's idle checks walk this every active cycle.
        self._vcs = [vc for d in GENERIC_PORTS for vc in self.ports[d]]
        #: SA stage 1: one v:1 arbiter per input port.
        self._sa_stage1 = {d: RoundRobinArbiter(v) for d in GENERIC_PORTS}
        #: SA stage 2: one 5:1 arbiter per output port.
        self._sa_stage2 = {
            d: RoundRobinArbiter(len(GENERIC_PORTS)) for d in GENERIC_PORTS
        }

    # ------------------------------------------------------------------
    # Structure
    # ------------------------------------------------------------------

    def all_vcs(self) -> list[VirtualChannel]:
        return self._vcs

    def vc_candidates(
        self, input_dir: Direction, packet: Packet, escape_only: bool = False
    ) -> list[tuple[object, Direction | None]]:
        """All VCs of the facing input port; routes are computed locally.

        On a torus, the admitting VCs are restricted by the Dally-Seitz
        dateline class of the ring the flit travels: VCs 0 and 2 before
        the packet crosses the dimension's wrap edge, VC 1 after.  The
        class partition is strict — sharing a VC between the classes
        would re-close the ring's channel-dependency cycle.
        """
        if self.dead:
            return []
        vcs = self.ports[input_dir]
        if escape_only:
            return [(vcs[0], None)]
        if (
            self.network.topology.name == "torus"
            and input_dir is not Direction.LOCAL
        ):
            if self._ring_class(input_dir, packet):
                return [(vcs[1], None)]
            return [(vcs[0], None), (vcs[2], None)]
        return [(vc, None) for vc in vcs]

    def _ring_class(self, input_dir: Direction, packet: Packet) -> int:
        """Dateline class of the channel feeding ``input_dir`` here."""
        from repro.core.topology import torus_ring_class

        if input_dir.is_row:
            return torus_ring_class(
                packet.src.x, self.node.x, packet.dest.x, self.network.config.width
            )
        return torus_ring_class(
            packet.src.y, self.node.y, packet.dest.y, self.network.config.height
        )

    # ------------------------------------------------------------------
    # Injection interface (used by the traffic source)
    # ------------------------------------------------------------------

    def injection_vc_for(self, packet: Packet):
        """A free local-port VC able to accept a new packet's head flit.

        Returns ``(vc, route)``; the route is None because the generic
        router computes routes locally (no look-ahead commitment).
        """
        if self.dead:
            return None
        for vc in self.ports[Direction.LOCAL]:
            if vc.injectable(self.network.cycle):
                return vc, None
        return None

    def injection_possible(self, packet: Packet) -> bool:
        """Whether this packet could ever be injected here (fault view)."""
        return not self.dead

    # ------------------------------------------------------------------
    # Pipeline
    # ------------------------------------------------------------------

    def allocate(self, cycle: int) -> None:
        if self.dead:
            return
        if self.idle_this_cycle():
            # Awake only for an in-flight arrival (or freshly woken):
            # with no buffered flit there is nothing to route, allocate
            # or arbitrate, and none of the loops below would observe
            # anything — skip them wholesale.
            return
        stats = self.network.stats
        # RC + VA (in parallel with SA in stage 1; speculation is modelled
        # by letting a worm that allocates this cycle also compete for the
        # switch this cycle).  Requests for the same downstream VC are
        # resolved by the output-side arbiters, one winner per cycle.
        va_requests: list = []
        newly_allocated: set[int] = set()
        for d in GENERIC_PORTS:
            for vc in self.ports[d]:
                if self.network.has_faults:
                    self._discard_dropped_front(vc, cycle)
                front = vc.front
                if front is None or not front.is_head:
                    continue
                if vc.active_pid is None:
                    vc.active_pid = front.packet.pid
                if not vc.allocated:
                    if front.arrival >= cycle:
                        # Without look-ahead routing the head spends this
                        # cycle in Routing Computation (Section 3.1: RoCo
                        # and Path-Sensitive pre-compute the route one
                        # step ahead and skip this stage).
                        continue
                    self._route_and_request(vc, va_requests, cycle)
                    newly_allocated.add(id(vc))
        self._resolve_vc_allocations(va_requests, cycle)

        # SA stage 1: each input port nominates one ready VC.  Worms
        # whose VA succeeded only this cycle are *speculative* SA
        # requesters and, per the Peh-Dally priority rule the generic
        # router implements, lose to any non-speculative request — both
        # within a port and at the output arbiters.  This speculation
        # failure under load is the pipeline-stall contention cost the
        # paper charges the generic design with.
        nominees: dict[Direction, VirtualChannel] = {}
        speculative: dict[Direction, bool] = {}
        ready_vcs: list[VirtualChannel] = []
        for d in GENERIC_PORTS:
            vcs = self.ports[d]
            ready = [self._vc_ready_for_switch(vc, cycle) for vc in vcs]
            ready_vcs.extend(vc for vc, r in zip(vcs, ready) if r)
            requests = sum(ready)
            if not requests:
                continue
            stats.activity.sa_requests += requests
            non_spec = [
                r and id(vc) not in newly_allocated for r, vc in zip(ready, vcs)
            ]
            if any(non_spec):
                winner = self._sa_stage1[d].grant(non_spec)
                speculative[d] = False
            else:
                winner = self._sa_stage1[d].grant(ready)
                speculative[d] = True
            nominees[d] = vcs[winner]

        # SA stage 2: each output port arbitrates among nominating inputs,
        # non-speculative requests first.
        self._tally_contention(ready_vcs)
        requests_per_output: dict[Direction, list[Direction]] = {}
        for d, vc in nominees.items():
            requests_per_output.setdefault(vc.out_dir, []).append(d)
        for out_dir, requesters in requests_per_output.items():
            non_spec_req = [r for r in requesters if not speculative[r]]
            pool = non_spec_req if non_spec_req else requesters
            lines = [p in pool for p in GENERIC_PORTS]
            winner = self._sa_stage2[out_dir].grant(lines)
            if winner is not None:
                self._commit_switch_grant(nominees[GENERIC_PORTS[winner]], cycle)

    def _route_and_request(
        self, vc: VirtualChannel, va_requests: list, cycle: int
    ) -> None:
        front = vc.front
        packet = front.packet
        if vc.escape and self.routing.mode is RoutingMode.ADAPTIVE:
            candidates = (self.routing.escape_direction(self.node, packet),)
        else:
            candidates = self.routing.candidates(self.node, packet)
        all_hard = True
        for out_dir in self._order_by_congestion(candidates, cycle):
            outcome = self._request_vc_allocation(vc, out_dir, front, va_requests)
            if outcome:
                return
            if outcome is False:
                all_hard = False
        if all_hard:
            self.note_stall(vc, cycle)
        else:
            self.clear_stall(vc)

    def _order_by_congestion(
        self, candidates: tuple[Direction, ...], cycle: int
    ) -> tuple[Direction, ...]:
        """Adaptive selection: prefer the output with the most free credits."""
        if len(candidates) <= 1:
            return candidates
        live = [d for d in candidates if self._output_alive(d)]
        if not live:
            return candidates
        return tuple(sorted(live, key=lambda d: -self._free_credits(d, cycle)))

    def _free_credits(self, d: Direction, cycle: int) -> int:
        port = self.outputs.get(d)
        if port is None:
            return 0
        vcs = port.downstream.ports[port.input_dir]  # type: ignore[attr-defined]
        return sum(vc.credits(cycle) for vc in vcs)
