"""The Path-Sensitive router (Kim et al., DAC'05) — the paper's baseline 2.

Four destination-quadrant path sets (NE, NW, SE, SW), each holding three
VCs grouped by the direction the flit arrived from, feeding a 4x4
*decomposed* crossbar with half the crosspoints of a full crossbar: every
quadrant set reaches only its two constituent outputs (NE -> North or
East).  Look-ahead routing steers arriving flits into the right set, and
flits for the local PE are consumed on arrival (no PE path set — the same
4-port arrangement the paper assumes when sizing buffers).

Switch allocation over the decomposed crossbar walks the outputs in a
fixed order with *chained dependency between requests* (Section 3.2): a
path set matched to an earlier output cannot serve a later one, which is
why only 2 of its 24 match cases are non-blocking (Table 2).
"""

from __future__ import annotations

from repro.arbiters.round_robin import RoundRobinArbiter
from repro.core.buffer import VirtualChannel
from repro.core.types import Direction, NodeId, Packet, RoutingMode
from repro.routers.base import EJECT, BaseRouter

#: Quadrant path sets and the two outputs each one reaches.
QUADRANTS = ("NE", "NW", "SE", "SW")
QUADRANT_OUTPUTS = {
    "NE": (Direction.NORTH, Direction.EAST),
    "NW": (Direction.NORTH, Direction.WEST),
    "SE": (Direction.SOUTH, Direction.EAST),
    "SW": (Direction.SOUTH, Direction.WEST),
}

#: Arrival directions that can feed each quadrant set: a flit heading
#: North-East arrives from the South input (going North), the West input
#: (going East) or the local PE.
QUADRANT_ARRIVALS = {
    "NE": (Direction.SOUTH, Direction.WEST, Direction.LOCAL),
    "NW": (Direction.SOUTH, Direction.EAST, Direction.LOCAL),
    "SE": (Direction.NORTH, Direction.WEST, Direction.LOCAL),
    "SW": (Direction.NORTH, Direction.EAST, Direction.LOCAL),
}

#: Output arbitration order; the chained dependency follows this walk.
OUTPUT_ORDER = (Direction.NORTH, Direction.EAST, Direction.SOUTH, Direction.WEST)


#: Quadrant pairs able to serve an axis-aligned destination.
_AXIS_QUADRANTS = {
    "N": ("NE", "NW"),
    "S": ("SE", "SW"),
    "E": ("NE", "SE"),
    "W": ("NW", "SW"),
}


def quadrant_of(
    node: NodeId, dest: NodeId, input_dir: Direction = Direction.LOCAL
) -> str:
    """Destination quadrant of ``dest`` seen from ``node``.

    Axis-aligned destinations sit on the boundary between two quadrant
    sets; the set that can actually admit the flit depends on where it
    arrives from (a pure-South flit that was travelling East arrives on
    the West input, which only the SE set accepts).  Transitions between
    quadrant classes only ever follow monotone coordinate movement, so
    the class dependency order stays acyclic and deadlock-free.
    """
    ns = "N" if dest.y < node.y else ("S" if dest.y > node.y else "")
    ew = "E" if dest.x > node.x else ("W" if dest.x < node.x else "")
    if ns and ew:
        return ns + ew
    if not ns and not ew:
        raise ValueError(f"destination {dest} equals current node {node}")
    for quadrant in _AXIS_QUADRANTS[ns or ew]:
        if input_dir in QUADRANT_ARRIVALS[quadrant]:
            return quadrant
    raise ValueError(
        f"no quadrant set serves dest {dest} from {node} via {input_dir.name}"
    )


class PathSensitiveRouter(BaseRouter):
    """4-port quadrant-path-set router with a decomposed crossbar."""

    architecture = "path_sensitive"

    def __init__(self, node: NodeId, network) -> None:
        super().__init__(node, network)
        depth = self.config.buffer_depth
        self.path_sets: dict[str, list[VirtualChannel]] = {}
        self._vcs: list[VirtualChannel] = []
        for q_index, quadrant in enumerate(QUADRANTS):
            vcs = []
            # Three VCs per set: one per possible previous-hop direction
            # (the DAC'05 grouping), with the local group doubling as a
            # shared overflow so a burst from one direction can use it.
            for i, arrival in enumerate(QUADRANT_ARRIVALS[quadrant]):
                vc = VirtualChannel(
                    port=q_index, index=i, depth=depth, vc_class=quadrant
                )
                if arrival is Direction.LOCAL:
                    vc.accepts_from = QUADRANT_ARRIVALS[quadrant]
                else:
                    vc.accepts_from = (arrival,)
                vc.input_dir = arrival
                vcs.append(vc)
            self.path_sets[quadrant] = vcs
            self._vcs.extend(vcs)
        #: Two local arbiters per set (one per reachable output).
        self._set_arbiters = {
            q: [RoundRobinArbiter(3), RoundRobinArbiter(3)] for q in QUADRANTS
        }
        #: One 2:1 arbiter per output (two candidate quadrant sets each).
        self._output_arbiters = {d: RoundRobinArbiter(2) for d in OUTPUT_ORDER}

    # ------------------------------------------------------------------
    # Structure
    # ------------------------------------------------------------------

    def all_vcs(self) -> list[VirtualChannel]:
        return self._vcs

    def vc_candidates(
        self, input_dir: Direction, packet: Packet, escape_only: bool = False
    ) -> list[tuple[object, Direction | None]]:
        if self.dead:
            return []
        if packet.dest == self.node:
            return [(EJECT, Direction.LOCAL)]
        try:
            quadrant = quadrant_of(self.node, packet.dest, input_dir)
        except ValueError:
            # No quadrant set serves this (arrival, destination) pair —
            # only reachable by non-minimal traffic, which the router
            # simply refuses to admit.
            return []
        # The look-ahead decision selects the *path set*; the concrete
        # output (one of the quadrant's two directions) is chosen locally
        # when the head reaches the front — that is where the router's
        # "routing adaptivity" lives.
        return [
            (vc, None)
            for vc in self.path_sets[quadrant]
            if input_dir in vc.accepts_from
        ]

    # ------------------------------------------------------------------
    # Injection interface
    # ------------------------------------------------------------------

    def injection_vc_for(self, packet: Packet):
        if self.dead:
            return None
        quadrant = quadrant_of(self.node, packet.dest)
        for vc in self.path_sets[quadrant]:
            if vc.injectable(self.network.cycle):
                # Route is selected locally once the head reaches the
                # front of its path-set VC.
                return vc, None
        return None

    def injection_possible(self, packet: Packet) -> bool:
        return not self.dead

    # ------------------------------------------------------------------
    # Pipeline
    # ------------------------------------------------------------------

    def allocate(self, cycle: int) -> None:
        if self.dead:
            return
        if self.idle_this_cycle():
            # Woken for an arrival still on the wire: no buffered flit
            # means no VA/SA work and no contention to tally — skip.
            return
        stats = self.network.stats
        va_requests: list = []
        newly_allocated: set[int] = set()
        for quadrant in QUADRANTS:
            for vc in self.path_sets[quadrant]:
                if self.network.has_faults:
                    self._discard_dropped_front(vc, cycle)
                front = vc.front
                if front is None or not front.is_head:
                    continue
                if vc.active_pid is None:
                    vc.active_pid = front.packet.pid
                if not vc.allocated:
                    if not self.config.lookahead_routing and front.arrival >= cycle:
                        continue  # ablation: RC charged post-arrival
                    self._request_worm_allocation(vc, cycle, va_requests)
                    newly_allocated.add(id(vc))
        self._resolve_vc_allocations(va_requests, cycle)

        # Local stage: each path set elects one ready VC per reachable
        # output (two v:1 arbiters per set).  The global stage then walks
        # the outputs in fixed order with chained dependency — a set
        # matched to an earlier output cannot serve a later one, the
        # structural reason only 2 of its 24 match cases are non-blocking
        # (Table 2).
        local: dict[tuple[str, Direction], VirtualChannel] = {}
        ready_vcs = [
            vc
            for quadrant in QUADRANTS
            for vc in self.path_sets[quadrant]
            if self._vc_ready_for_switch(vc, cycle)
        ]
        self._tally_contention(ready_vcs)
        for quadrant in QUADRANTS:
            vcs = self.path_sets[quadrant]
            for slot, out_dir in enumerate(QUADRANT_OUTPUTS[quadrant]):
                ready = [
                    self._vc_ready_for_switch(vc, cycle) and vc.out_dir is out_dir
                    for vc in vcs
                ]
                requests = sum(ready)
                if not requests:
                    continue
                stats.activity.sa_requests += requests
                # Separable-SA speculation rule (as in the generic
                # router): worms allocated only this cycle yield to
                # non-speculative requests.  RoCo's mirror allocator has
                # no such cross-port priority conflict.
                non_spec = [
                    r and id(vc) not in newly_allocated
                    for r, vc in zip(ready, vcs)
                ]
                pool = non_spec if any(non_spec) else ready
                winner = self._set_arbiters[quadrant][slot].grant(pool)
                local[(quadrant, out_dir)] = vcs[winner]

        granted_sets: set[str] = set()
        for out_dir in OUTPUT_ORDER:
            feeders = [q for q in QUADRANTS if out_dir in QUADRANT_OUTPUTS[q]]
            requesting = [q for q in feeders if (q, out_dir) in local]
            if not requesting:
                continue
            # Chained dependency: a set matched earlier in the walk may
            # only pick up a *second* output opportunistically, when no
            # unmatched set wants it — the global arbitration signal has
            # already been consumed by its first grant.
            fresh = [q for q in requesting if q not in granted_sets]
            pool = fresh if fresh else requesting
            lines = [q in pool for q in feeders]
            winner = self._output_arbiters[out_dir].grant(lines)
            quadrant = feeders[winner]
            self._commit_switch_grant(local[(quadrant, out_dir)], cycle)
            granted_sets.add(quadrant)

    def _request_worm_allocation(
        self, vc: VirtualChannel, cycle: int, va_requests: list
    ) -> None:
        """Local route selection within the quadrant, then VA.

        Minimal candidates are ordered by downstream buffer headroom —
        the congestion signal behind the router's adaptivity.  No RC
        cycle is charged: look-ahead already steered the flit into the
        right path set.
        """
        front = vc.front
        packet = front.packet
        if packet.dest == self.node:
            self.network.eject(vc.pop(cycle), self.node, cycle, early=True)
            return
        candidates = self.routing.candidates(self.node, packet)
        all_hard = True
        for out_dir in self._order_by_headroom(candidates, packet, cycle):
            outcome = self._request_vc_allocation(vc, out_dir, front, va_requests)
            if outcome:
                return
            if outcome is False:
                all_hard = False
        if all_hard:
            self.note_stall(vc, cycle)
        else:
            self.clear_stall(vc)

    def _order_by_headroom(
        self, candidates, packet: Packet, cycle: int
    ) -> list[Direction]:
        if len(candidates) <= 1:
            return list(candidates)
        scored = []
        for d in candidates:
            port = self.outputs.get(d)
            if port is None or port.dead:
                continue
            admission = port.downstream.vc_candidates(port.input_dir, packet)
            free = sum(
                vc.credits(cycle)
                for vc, _ in admission
                if isinstance(vc, VirtualChannel) and vc.owner_pid is None
            )
            scored.append((-free, d))
        scored.sort(key=lambda pair: pair[0])
        return [d for _, d in scored] or list(candidates)
