"""RoCo path-set and VC-buffer configuration (paper Table 1).

The RoCo router owns 12 VCs grouped into 4 path sets of 3 VCs: two sets
(ports) per module.  Each VC carries a *class* describing the traffic it
may hold:

* ``dx`` / ``dy`` — flits continuing along their current dimension,
* ``txy`` — flits turning from the X to the Y dimension (live in the
  Column-Module),
* ``tyx`` — flits turning from Y to X (live in the Row-Module),
* ``injxy`` / ``injyx`` — freshly injected flits starting in X / Y.

The assignment of classes to ports changes with the routing algorithm so
the spare VCs absorb that algorithm's Head-of-Line hot spots (e.g. XY gets
a second injection VC per row port because ``Injxy`` dominates).  The
tables below also encode the deadlock discipline of Section 3.1: under
adaptive routing the second row path set's ``dx`` VCs and the second
column path set's ``txy`` VCs are *escape* VCs (packets entering them
commit to the dimension-ordered direction), and under XY-YX the extra
``dx`` VC is reserved for packets travelling their final dimension.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.types import Direction, RoutingMode

#: Module identifiers.
ROW = "row"
COLUMN = "column"

#: Arrival-direction shorthands: a flit travelling East arrives on the
#: WEST input of the next router, and so on.
_EASTBOUND = (Direction.WEST,)
_WESTBOUND = (Direction.EAST,)
_SOUTHBOUND = (Direction.NORTH,)
_NORTHBOUND = (Direction.SOUTH,)
_FROM_X = (Direction.EAST, Direction.WEST)
_FROM_Y = (Direction.NORTH, Direction.SOUTH)
_FROM_PE = (Direction.LOCAL,)
_FROM_EITHER_X = _FROM_X
_BOTH_X_ARRIVALS = (Direction.EAST, Direction.WEST)
_BOTH_Y_ARRIVALS = (Direction.NORTH, Direction.SOUTH)


@dataclass(frozen=True)
class VCSpec:
    """Declarative description of one RoCo virtual channel."""

    module: str
    port: int
    vc_class: str
    accepts_from: tuple[Direction, ...]
    escape: bool = False
    final_only: bool = False


def _xy_config() -> tuple[VCSpec, ...]:
    """Table 1, XY row: two Injxy VCs absorb the injection hot spot.

    XY routing needs only 8 VCs; the 4 spares are re-assigned to cut
    Head-of-Line blocking (Section 3.1).  The spare ``dx``/``dy`` VCs
    float between the two travel directions of their dimension so a
    burst in either direction can use them.
    """
    return (
        # Row-Module, path set 1.  The dx VCs stay aligned with their
        # port's travel direction — mixing directions within a port
        # fights the mirror allocator's pairing.
        VCSpec(ROW, 0, "dx", _EASTBOUND),
        VCSpec(ROW, 0, "dx", _EASTBOUND),
        VCSpec(ROW, 0, "injxy", _FROM_PE),
        # Row-Module, path set 2.
        VCSpec(ROW, 1, "dx", _WESTBOUND),
        VCSpec(ROW, 1, "dx", _WESTBOUND),
        VCSpec(ROW, 1, "injxy", _FROM_PE),
        # Column-Module, path set 1.
        VCSpec(COLUMN, 0, "dy", _SOUTHBOUND),
        VCSpec(COLUMN, 0, "txy", _BOTH_X_ARRIVALS),
        VCSpec(COLUMN, 0, "injyx", _FROM_PE),
        # Column-Module, path set 2.  The spare dy VC floats between the
        # two directions — the paper's HoL-driven re-assignment of the
        # VCs left over by XY routing (Section 3.1).
        VCSpec(COLUMN, 1, "dy", _NORTHBOUND),
        VCSpec(COLUMN, 1, "dy", _BOTH_Y_ARRIVALS),
        VCSpec(COLUMN, 1, "txy", _BOTH_X_ARRIVALS),
    )


def _xyyx_config() -> tuple[VCSpec, ...]:
    """Table 1, XY-YX row: two additional dx VCs for deadlock freedom.

    The extra ``dx`` is reserved for final-dimension traffic so packets
    that may still turn never wait behind it (Section 3.1).
    """
    return (
        VCSpec(ROW, 0, "dx", _EASTBOUND),
        VCSpec(ROW, 0, "tyx", _BOTH_Y_ARRIVALS),
        VCSpec(ROW, 0, "injxy", _FROM_PE),
        VCSpec(ROW, 1, "dx", _WESTBOUND),
        VCSpec(ROW, 1, "dx", _BOTH_X_ARRIVALS, final_only=True),
        VCSpec(ROW, 1, "tyx", _BOTH_Y_ARRIVALS),
        VCSpec(COLUMN, 0, "dy", _SOUTHBOUND),
        VCSpec(COLUMN, 0, "txy", _BOTH_X_ARRIVALS),
        VCSpec(COLUMN, 0, "injyx", _FROM_PE),
        VCSpec(COLUMN, 1, "dy", _NORTHBOUND),
        VCSpec(COLUMN, 1, "dy", _BOTH_Y_ARRIVALS),
        VCSpec(COLUMN, 1, "txy", _BOTH_X_ARRIVALS),
    )


def _adaptive_config() -> tuple[VCSpec, ...]:
    """Table 1, adaptive row: escape dx and txy VCs in the second path sets.

    Escape VCs only admit packets committing to the XY-ordered direction
    (Duato's protocol realised structurally).
    """
    return (
        VCSpec(ROW, 0, "dx", _EASTBOUND),
        VCSpec(ROW, 0, "tyx", _BOTH_Y_ARRIVALS),
        VCSpec(ROW, 0, "injxy", _FROM_PE),
        VCSpec(ROW, 1, "dx", _WESTBOUND),
        VCSpec(ROW, 1, "dx", _BOTH_X_ARRIVALS, escape=True),
        VCSpec(ROW, 1, "tyx", _BOTH_Y_ARRIVALS),
        VCSpec(COLUMN, 0, "dy", _SOUTHBOUND),
        VCSpec(COLUMN, 0, "txy", _BOTH_X_ARRIVALS),
        VCSpec(COLUMN, 0, "injyx", _FROM_PE),
        VCSpec(COLUMN, 1, "dy", _NORTHBOUND),
        VCSpec(COLUMN, 1, "txy", _EASTBOUND, escape=True),
        VCSpec(COLUMN, 1, "txy", _WESTBOUND, escape=True),
    )


_CONFIGS = {
    RoutingMode.XY: _xy_config,
    RoutingMode.XY_YX: _xyyx_config,
    RoutingMode.ADAPTIVE: _adaptive_config,
}


def vc_configuration(mode: RoutingMode) -> tuple[VCSpec, ...]:
    """The 12-VC configuration for ``mode`` (paper Table 1)."""
    return _CONFIGS[mode]()


def table1_summary(mode: RoutingMode) -> dict[str, list[str]]:
    """Class labels per path set, in the layout of the paper's Table 1."""
    config = vc_configuration(mode)
    summary: dict[str, list[str]] = {
        "row_port1": [],
        "row_port2": [],
        "column_port1": [],
        "column_port2": [],
    }
    names = {"injxy": "Injxy", "injyx": "Injyx"}
    for spec in config:
        key = f"{spec.module}_port{spec.port + 1}"
        summary[key].append(names.get(spec.vc_class, spec.vc_class))
    return summary
