"""The Row-Column (RoCo) Decoupled Router (paper Section 3).

Key behaviours modelled:

* **Guided Flit Queuing** — look-ahead routing is committed by the
  *upstream* VC allocator: choosing a downstream VC class (``dx``,
  ``txy``, ...) *is* choosing the route at the next router, so arriving
  flits land directly in a path set matching their output dimension.
* **Early Ejection** — a flit destined for the local PE never enters a
  VC: :meth:`vc_candidates` returns the EJECT pseudo-target and the flit
  is consumed on arrival, saving the SA + ST cycles.
* **Mirroring Effect** — each module's 2x2 crossbar is allocated by the
  maximal-matching mirror allocator (one global arbiter per module).
* **Graceful degradation** — router-centric/critical faults isolate a
  single module; message-centric/non-critical faults are bypassed by the
  hardware-recycling mechanisms (Section 4), modelled as small latency
  penalties or capacity losses.
"""

from __future__ import annotations

from repro.core.buffer import VirtualChannel
from repro.core.types import Direction, NodeId, Packet, RoutingMode
from repro.routers.base import EJECT, BaseRouter
from repro.routers.roco.module import RoCoModule
from repro.routers.roco.path_set import COLUMN, ROW, vc_configuration


class RoCoRouter(BaseRouter):
    """Two-module decoupled wormhole router."""

    architecture = "roco"
    #: The compact 2v:1 VA arbiters complete a second arbitration
    #: iteration within the cycle (Figure 2 / Section 3.1).
    va_iterations = 2

    def __init__(self, node: NodeId, network) -> None:
        super().__init__(node, network)
        depth = self.config.buffer_depth
        mirror = self.config.mirror_allocation
        self.modules: dict[str, RoCoModule] = {
            ROW: RoCoModule(ROW, self.config.vcs_per_port, mirror=mirror),
            COLUMN: RoCoModule(COLUMN, self.config.vcs_per_port, mirror=mirror),
        }
        self._vcs: list[VirtualChannel] = []
        for spec in vc_configuration(self.routing.mode):
            module = self.modules[spec.module]
            vc = VirtualChannel(
                port=spec.port,
                index=len(module.ports[spec.port]),
                depth=depth,
                vc_class=spec.vc_class,
            )
            vc.accepts_from = spec.accepts_from
            vc.escape = spec.escape
            vc.final_only = spec.final_only
            vc.input_dir = (
                spec.accepts_from[0] if len(spec.accepts_from) == 1 else None
            )
            module.add_vc(spec.port, vc)
            self._vcs.append(vc)
        #: Occupancy snapshot left behind by the last allocate() pass;
        #: lets quiescent() answer in O(1) instead of re-walking VCs.
        self._alloc_occupied = False

    # ------------------------------------------------------------------
    # Structure
    # ------------------------------------------------------------------

    @property
    def row(self) -> RoCoModule:
        return self.modules[ROW]

    @property
    def column(self) -> RoCoModule:
        return self.modules[COLUMN]

    def all_vcs(self) -> list[VirtualChannel]:
        return self._vcs

    def module_for(self, direction: Direction) -> RoCoModule:
        """The module that drives ``direction``'s output."""
        return self.row if direction.is_row else self.column

    def accepting_any_injection(self) -> bool:
        """The PE can still source packets while any module lives."""
        return not self.dead and not (self.row.dead and self.column.dead)

    def accepting(self, input_dir: Direction) -> bool:
        """A RoCo router accepts on an input while any module lives.

        Per-flit admission is enforced by :meth:`vc_candidates`, so a
        neighbour can still forward traffic that only needs the healthy
        module (the graceful-degradation property).
        """
        return not self.dead and not (self.row.dead and self.column.dead)

    # ------------------------------------------------------------------
    # Admission (Guided Flit Queuing + Early Ejection)
    # ------------------------------------------------------------------

    def vc_candidates(
        self, input_dir: Direction, packet: Packet, escape_only: bool = False
    ) -> list[tuple[object, Direction | None]]:
        if not self.accepting(input_dir):
            return []
        if packet.dest == self.node:
            return [(EJECT, Direction.LOCAL)]
        out: list[tuple[object, Direction | None]] = []
        escape_dir = None
        if self.routing.mode is RoutingMode.ADAPTIVE:
            escape_dir = self.routing.escape_direction(self.node, packet)
        for route in self.routing.candidates(self.node, packet):
            cls = classify_vc(input_dir, route)
            module = self.module_for(route)
            if module.dead:
                continue
            final = self._is_final(route, packet)
            for vc in module.all_vcs():
                if vc.vc_class != cls or input_dir not in vc.accepts_from:
                    continue
                if vc.final_only and not final:
                    continue
                if vc.escape and route is not escape_dir:
                    continue
                if escape_only and not vc.escape:
                    continue
                out.append((vc, route))
        return out

    def _is_final(self, route: Direction, packet: Packet) -> bool:
        """No further turns needed once travelling along ``route``."""
        if route.is_row:
            return packet.dest.y == self.node.y
        return packet.dest.x == self.node.x

    # ------------------------------------------------------------------
    # Injection interface (used by the traffic source)
    # ------------------------------------------------------------------

    def injection_vc_for(self, packet: Packet):
        """A free injection VC with the first direction it commits to.

        Choosing ``Injxy`` vs ``Injyx`` *is* the packet's first routing
        decision (guided flit queuing starts at the source PE).  Returns
        ``(vc, route)`` or None.
        """
        best = None
        best_credits = -1
        for route in self.routing.candidates(self.node, packet):
            module = self.module_for(route)
            if module.dead:
                continue
            cls = "injxy" if route.is_row else "injyx"
            for vc in module.all_vcs():
                if vc.vc_class != cls:
                    continue
                if vc.injectable(self.network.cycle):
                    credit = vc.credits(self.network.cycle)
                    if credit > best_credits:
                        best, best_credits = (vc, route), credit
        return best

    def injection_possible(self, packet: Packet) -> bool:
        """Whether ``packet`` could ever be injected here.

        A packet whose every first direction needs a dead module can
        never leave the PE (e.g. XY traffic needing the Row-Module).
        """
        if self.dead:
            return False
        for route in self.routing.candidates(self.node, packet):
            if not self.module_for(route).dead:
                return True
        return False

    # ------------------------------------------------------------------
    # Pipeline
    # ------------------------------------------------------------------

    def quiescent(self) -> bool:
        """O(1) variant: reuse the occupancy scan allocate() just did.

        The network checks quiescence right after the allocate phase, and
        allocation never adds flits, so the snapshot is current.  A worm
        purged *between* allocate and this check leaves the snapshot
        conservatively True — the router stays awake one extra cycle,
        re-scans, and sleeps; simulation results are unaffected.
        """
        if self.network.full_sweep:
            return False
        if self._sa_winners:
            return False
        return not self._alloc_occupied

    def allocate(self, cycle: int) -> None:
        if self.dead:
            self._alloc_occupied = False
            return
        # Module-level activity (the router-level idea applied to RoCo's
        # decoupled halves): under dimension-ordered phases most busy
        # routers hold flits in only one module, and a module with no
        # buffered flit stages no VA request, nominates no SA candidate
        # and touches no stat — its walk is a pure no-op.  When *neither*
        # module is occupied the whole phase is one (the idle_this_cycle
        # shortcut, fused with the per-module occupancy scan): the router
        # was woken for an early-ejection or in-flight arrival and has
        # nothing to allocate for, including under SA-offload faults,
        # whose borrow rule only bites when VA issued a grant.  The
        # full-sweep reference path never skips, preserving the seed's
        # cost profile for the differential benchmark.
        if self.network.full_sweep:
            occupied = None
        else:
            modules = self.modules
            row_occ = modules[ROW].occupied()
            col_occ = modules[COLUMN].occupied()
            self._alloc_occupied = row_occ or col_occ
            if not self._alloc_occupied:
                return
            occupied = {ROW: row_occ, COLUMN: col_occ}
        stats = self.network.stats
        va_requests: list = []
        va_pending: dict[str, list] = {name: [] for name in self.modules}
        for name, module in self.modules.items():
            if module.dead:
                continue
            if occupied is not None and not occupied[name]:
                continue
            for port_vcs in module.ports:
                for vc in port_vcs:
                    if occupied is not None:
                        # Active path: empty VCs are skipped on a direct
                        # queue probe.  Identical semantics — discarding
                        # dropped fronts is a no-op on an empty VC, and
                        # ``front`` is just ``queue[0]``.
                        queue = vc.queue
                        if not queue:
                            continue
                        if self.network.has_faults:
                            self._discard_dropped_front(vc, cycle)
                            queue = vc.queue
                            if not queue:
                                continue
                        front = queue[0]
                        if not front.is_head:
                            continue
                    else:
                        if self.network.has_faults:
                            self._discard_dropped_front(vc, cycle)
                        front = vc.front
                        if front is None or not front.is_head:
                            continue
                    if vc.active_pid is None:
                        vc.active_pid = front.packet.pid
                    if not vc.allocated:
                        if not self.config.lookahead_routing and front.arrival >= cycle:
                            continue  # ablation: RC charged post-arrival
                        va_pending[name].append(vc)
                        self._request_worm_allocation(module, vc, cycle, va_requests)
        self._resolve_vc_allocations(va_requests, cycle)
        # A module's VA arbiters were *busy* this cycle if they issued a
        # grant — mere pending requests do not occupy the arbiter.
        va_busy = {
            name: any(vc.allocated for vc in vcs)
            for name, vcs in va_pending.items()
        }

        for name, module in self.modules.items():
            if module.dead:
                continue
            if occupied is not None and not occupied[name]:
                # VA never adds flits, so a module empty at phase entry
                # is still empty: no SA requester exists.
                continue
            # Mirror switch allocation over the module's 2x2 crossbar.
            if module.sa_degraded and va_busy[name]:
                # SA fault recovery: arbitration borrows the VA arbiters,
                # which are busy with header processing this cycle.
                continue
            requests = [
                [
                    [False] * len(module.ports[0]),
                    [False] * len(module.ports[0]),
                ]
                for _ in range(2)
            ]
            ready_vcs = []
            if occupied is None:
                for port in range(2):
                    for vc in module.ports[port]:
                        if self._vc_ready_for_switch(vc, cycle):
                            slot = module.slot_map[vc.out_dir]
                            requests[port][slot][vc.index] = True
                            ready_vcs.append(vc)
            else:
                # Active path: an empty VC can never be switch-ready, so
                # probe the queue directly before the full ready check.
                for port in range(2):
                    for vc in module.ports[port]:
                        if vc.queue and self._vc_ready_for_switch(vc, cycle):
                            slot = module.slot_map[vc.out_dir]
                            requests[port][slot][vc.index] = True
                            ready_vcs.append(vc)
            if not ready_vcs:
                continue
            stats.activity.sa_requests += len(ready_vcs)
            self._tally_contention(ready_vcs)
            grants = module.allocator.allocate(requests)
            if module.sa_degraded and len(grants) > 1:
                # The borrowed VA arbiter serves a single port per cycle.
                grants = grants[:1]
            for grant in grants:
                vc = module.ports[grant.port][grant.vc_index]
                self._commit_switch_grant(vc, cycle)

    # ------------------------------------------------------------------
    # Runtime fault reaction
    # ------------------------------------------------------------------

    def _route_viable(self, route: Direction, packet: Packet) -> bool:
        """Whether a committed look-ahead route can still make progress."""
        if route is Direction.LOCAL:
            return True
        port = self.outputs.get(route)
        if port is None or port.dead or port.downstream is None:
            return False
        # vc_candidates filters structurally (dead modules, class
        # admission) — an empty list is a hard block, not congestion.
        return bool(port.downstream.vc_candidates(port.input_dir, packet))

    def reroute_after_fault(self, vc: VirtualChannel) -> None:
        """Recompute a guided-flit-queuing route that a fault invalidated.

        The replacement must be drivable by the module already buffering
        the worm — flits cannot migrate between the decoupled modules —
        so this mostly helps adaptive routing, where a productive
        same-dimension alternative can exist.  Worms with no viable
        alternative are left to the stall-timeout discard, matching the
        static fault model's behaviour.
        """
        front = vc.front
        if front is None or not front.is_head or vc.allocated:
            return
        route = front.route
        if route is None or route is Direction.LOCAL:
            return
        packet = front.packet
        if self._route_viable(route, packet):
            return
        module = next(
            (m for m in self.modules.values() if vc in m.all_vcs()), None
        )
        if module is None or module.dead:
            return
        for candidate in self.routing.candidates(self.node, packet):
            if candidate is route or not module.handles(candidate):
                continue
            if self._route_viable(candidate, packet):
                front.route = candidate
                return

    def _request_worm_allocation(
        self, module: RoCoModule, vc: VirtualChannel, cycle: int, va_requests: list
    ) -> None:
        """Stage VA for a head whose route here was committed by look-ahead."""
        front = vc.front
        out_dir = front.route
        if out_dir is None or out_dir is Direction.LOCAL:
            # Defensive: early ejection should have consumed this flit.
            self.network.eject(vc.pop(cycle), self.node, cycle, early=True)
            return
        if not module.handles(out_dir):
            raise RuntimeError(
                f"flit routed {out_dir.name} buffered in {module.name} module"
            )
        outcome = self._request_vc_allocation(vc, out_dir, front, va_requests)
        if outcome:
            if module.rc_faulty:
                # Double-routing recovery: the downstream neighbour must
                # redo this router's skipped look-ahead computation.
                vc.hold_until = max(vc.hold_until, cycle + 1)
        elif outcome is None:
            self.note_stall(vc, cycle)
        else:
            self.clear_stall(vc)

def classify_vc(input_dir: Direction, route: Direction) -> str:
    """Table-1 VC class for a flit arriving on ``input_dir`` routed to ``route``."""
    if input_dir is Direction.LOCAL:
        return "injxy" if route.is_row else "injyx"
    if input_dir.is_row:
        return "dx" if route.is_row else "txy"
    return "dy" if route.is_column else "tyx"
