"""The Row-Column (RoCo) Decoupled Router — the paper's contribution."""

from repro.routers.roco.module import MODULE_DIRECTIONS, RoCoModule
from repro.routers.roco.path_set import (
    COLUMN,
    ROW,
    VCSpec,
    table1_summary,
    vc_configuration,
)
from repro.routers.roco.router import RoCoRouter, classify_vc

__all__ = [
    "COLUMN",
    "MODULE_DIRECTIONS",
    "ROW",
    "RoCoModule",
    "RoCoRouter",
    "VCSpec",
    "classify_vc",
    "table1_summary",
    "vc_configuration",
]
