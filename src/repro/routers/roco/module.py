"""One RoCo module: a path-set pair feeding a 2x2 crossbar.

The Row-Module switches East/West traffic, the Column-Module North/South
traffic.  Each module owns two path sets (ports) of three VCs, a Mirror
switch allocator, and its own fault state — failure of a router-centric
or critical component isolates only the containing module (Section 3.4).
"""

from __future__ import annotations

from repro.arbiters.mirror import MirrorAllocator
from repro.arbiters.sequential import SequentialAllocator
from repro.core.buffer import VirtualChannel
from repro.core.types import Direction
from repro.routers.roco.path_set import COLUMN, ROW

#: Output directions per module, indexed by crossbar slot.
MODULE_DIRECTIONS = {
    ROW: (Direction.EAST, Direction.WEST),
    COLUMN: (Direction.NORTH, Direction.SOUTH),
}


class RoCoModule:
    """Row- or Column-Module of one RoCo router."""

    def __init__(self, name: str, vcs_per_port: int, mirror: bool = True) -> None:
        if name not in MODULE_DIRECTIONS:
            raise ValueError(f"unknown module {name!r}")
        self.name = name
        self.directions = MODULE_DIRECTIONS[name]
        #: direction -> crossbar slot; dict lookup beats tuple.index on
        #: the per-ready-VC SA request path.
        self.slot_map = {d: s for s, d in enumerate(self.directions)}
        self.ports: list[list[VirtualChannel]] = [[], []]
        #: Flat VC view in port order, rebuilt on add; read-hot.
        self._flat: list[VirtualChannel] = []
        #: The Mirroring Effect allocator, or (ablation) a plain
        #: separable allocator without the maximal-matching guarantee.
        if mirror:
            self.allocator = MirrorAllocator(vcs_per_port)
        else:
            self.allocator = SequentialAllocator(vcs_per_port)
        #: Module isolated by a router-centric / critical-path fault.
        self.dead = False
        #: RC fault: departing heads pay the double-routing cycle.
        self.rc_faulty = False
        #: SA fault: arbitration offloaded to the idle VA arbiters.
        self.sa_degraded = False

    def add_vc(self, port: int, vc: VirtualChannel) -> None:
        self.ports[port].append(vc)
        self._flat = self.ports[0] + self.ports[1]

    def slot_of(self, direction: Direction) -> int:
        """Crossbar slot index for an output direction of this module."""
        return self.directions.index(direction)

    def handles(self, direction: Direction) -> bool:
        return direction in self.directions

    def all_vcs(self) -> list[VirtualChannel]:
        return self._flat

    def occupied(self) -> bool:
        """Whether any VC buffers a flit (the module-activity check)."""
        for vc in self._flat:
            if vc.queue:
                return True
        return False

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "dead" if self.dead else "alive"
        return f"RoCoModule({self.name}, {state})"
