"""Shared wormhole-router machinery.

All three architectures (generic, Path-Sensitive, RoCo) are two-stage
pipelined wormhole routers with credit-based virtual-channel flow control.
This module owns everything they share:

* look-ahead VC allocation against the downstream router's exposed VCs,
* switch-grant commitment (credit reservation) and flit launch,
* the shared switch-traversal phase with stale-grant revalidation,
* packet dropping and worm purging in faulty networks,
* the stall-timeout machinery the fault model uses.

Subclasses define their own buffer organisation and implement the
``allocate`` pipeline phase (RC + VA + speculative SA); traversal is
identical across architectures and lives here.
"""

from __future__ import annotations

import abc
from typing import TYPE_CHECKING

from repro.core.buffer import VirtualChannel
from repro.core.channel import Channel
from repro.core.types import (
    CARDINALS,
    Direction,
    DropReason,
    Flit,
    NodeId,
    Packet,
)

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.network import Network


class _EjectSentinel:
    """Marker for the early-ejection 'virtual channel' (paper Section 3.1).

    A worm allocated to EJECT is consumed by the destination PE on arrival
    — no buffering, no switch allocation, no switch traversal there.
    """

    def __repr__(self) -> str:  # pragma: no cover
        return "<EJECT>"


#: Singleton early-ejection target.
EJECT = _EjectSentinel()


class OutputPort:
    """Upstream-side handle for one output direction of a router."""

    __slots__ = ("direction", "link", "downstream", "input_dir", "dead")

    def __init__(self, direction: Direction) -> None:
        self.direction = direction
        self.link: Channel[Flit] = Channel()
        self.downstream: "BaseRouter | None" = None
        #: The downstream input this port feeds (``direction.opposite``).
        self.input_dir = direction.opposite
        #: True when the downstream input no longer accepts traffic
        #: (downstream router or module permanently failed).
        self.dead = False


class BaseRouter(abc.ABC):
    """Abstract two-stage wormhole router."""

    #: Architecture tag used by configuration and the energy profiles.
    architecture = "base"

    def __init__(self, node: NodeId, network: "Network") -> None:
        self.node = node
        self.network = network
        self.config = network.config.router_config
        self.routing = network.routing
        #: Output ports for the cardinals wired to neighbours that exist;
        #: border directions are simply absent.
        self.outputs: dict[Direction, OutputPort] = {}
        for d in CARDINALS:
            if network.neighbor_of(node, d) is not None:
                self.outputs[d] = OutputPort(d)
        #: Whole-router kill switch (generic/Path-Sensitive under any
        #: permanent fault; RoCo only loses a module, see subclass).
        self.dead = False
        #: Activity-driven scheduling state: only active routers are
        #: stepped by :meth:`Network.step`.  Routers start dormant and
        #: are woken by source injections and inbound link launches.
        self.active = False
        #: Cycle at which a timed wake (in-flight arrival) is due; the
        #: active scheduler polls inbound links only on matching cycles,
        #: and only the links named in ``_due_dirs`` (each launch
        #: schedules its landing link, so everything else is empty wire).
        self._deliver_due = -1
        self._due_dirs: list[Direction] = []
        #: Cycles this router was actually stepped (scheduler telemetry).
        self.steps_taken = 0
        #: Filled by :meth:`wire`: upstream links feeding this router,
        #: in CARDINALS order (the full-sweep delivery order), and the
        #: flat VC list the hot-path idle checks iterate.
        self._in_links: tuple[tuple[Direction, Channel], ...] = ()
        self._in_link_map: dict[Direction, Channel] = {}
        self._vc_cache: tuple[VirtualChannel, ...] = ()
        #: The run-wide activity counters; bound once — the launch and
        #: accept paths bump these for every flit moved.
        self._activity = network.stats.activity
        #: Stall start cycles keyed by VC object id, for fault timeouts.
        self._stall_since: dict[int, int] = {}
        #: SA winners computed during allocate(), consumed by the next
        #: cycle's traverse(): (vc, out_dir, out_vc) at grant time.
        self._sa_winners: list[tuple[VirtualChannel, Direction, object]] = []

    # ------------------------------------------------------------------
    # Structure exposed to neighbours
    # ------------------------------------------------------------------

    @abc.abstractmethod
    def vc_candidates(
        self, input_dir: Direction, packet: Packet, escape_only: bool = False
    ) -> list[tuple[object, Direction | None]]:
        """Admission options for a head flit arriving on ``input_dir``.

        Returns ``(target, route_here)`` pairs where ``target`` is either
        a :class:`VirtualChannel` of this router or :data:`EJECT` (early
        ejection, paired with ``Direction.LOCAL``).  ``route_here`` is the
        committed look-ahead route at this router, or None for
        architectures that compute routes locally on arrival.
        ``escape_only`` restricts options to the deadlock-free escape
        subnetwork.
        """

    def accepting(self, input_dir: Direction) -> bool:
        """Whether this input still accepts traffic (fault handshake)."""
        return not self.dead

    def accepting_any_injection(self) -> bool:
        """Whether the local PE can still source packets at all."""
        return not self.dead

    def wire(self) -> None:
        """Attach output ports to neighbours; called once after faults."""
        for d, port in self.outputs.items():
            neighbor_node = self.network.neighbor_of(self.node, d)
            neighbor = self.network.router_at(neighbor_node)
            port.downstream = neighbor
            port.dead = not neighbor.accepting(d.opposite)
        in_links = []
        for d in CARDINALS:
            neighbor_node = self.network.neighbor_of(self.node, d)
            if neighbor_node is None:
                continue
            up_port = self.network.router_at(neighbor_node).outputs.get(d.opposite)
            if up_port is not None:
                in_links.append((d, up_port.link))
        self._in_links = tuple(in_links)
        self._in_link_map = dict(in_links)
        self._vc_cache = tuple(self.all_vcs())

    # ------------------------------------------------------------------
    # Activity-driven scheduling hooks (see docs/activity-scheduling.md)
    # ------------------------------------------------------------------

    def wake(self) -> None:
        """Put this router in the network's active set for the next step.

        Called by the PE source when it pushes an injection flit (the
        simulator generates traffic before stepping, so the router
        allocates the same cycle) and by the network's timed wake queue
        when an in-flight flit lands.  Idempotent and cheap — the hot
        path calls it once per launched flit.
        """
        if not self.active:
            self.active = True
            self.network.stats.scheduler.wakeups += 1

    def quiescent(self) -> bool:
        """Whether skipping this router's phases is observably a no-op.

        Checked after the allocate phase each cycle; a True verdict puts
        the router to sleep until the next :meth:`wake`.  The conditions
        mirror everything a phase could act on eagerly: granted switch
        passages awaiting traversal and buffered flits.  Everything else
        is covered by a guaranteed future wake or needs no stepping at
        all — in-flight arrivals (including early-ejection worms that
        never touch a VC) carry a timed wake scheduled at launch for
        their landing cycle, slots reserved by an upstream VC allocator
        (``expected``) become work only once their flit lands, and
        pending credit releases refresh lazily on query.
        """
        if self._sa_winners:
            return False
        for vc in self._vc_cache:
            if vc.queue:
                return False
        return True

    def idle_this_cycle(self) -> bool:
        """Whether this router's allocate phase has no flit to work on.

        Activity-scheduled routers use this to skip the allocation walk
        while they are awake only for an arrival still on the wire.  The
        ``full_sweep`` reference path deliberately never takes the
        shortcut: it re-runs the original unconditional loops so the
        differential tests compare the optimised scheduler against the
        unmodified seed semantics rather than against itself.
        """
        if self.network.full_sweep:
            return False
        for vc in self._vc_cache:
            if vc.queue:
                return False
        return True

    # ------------------------------------------------------------------
    # Pipeline phases (called by the network each cycle)
    # ------------------------------------------------------------------

    def deliver_incoming(self, cycle: int) -> None:
        """Phase 1: accept flits that finished link traversal."""
        for d, link in self._in_links:
            for flit in link.deliver(cycle):
                self._accept_flit(flit, d, cycle)

    def deliver_due(self, cycle: int) -> None:
        """Phase 1, active-scheduler variant: drain only due links.

        ``_due_dirs`` names every link with a flit landing this cycle
        (one entry per launch; a single-lane link lands at most one flit
        per cycle, so entries are distinct).  Draining them in CARDINALS
        order keeps multi-link arrival order identical to the full
        sweep's fixed-order poll.
        """
        dirs = self._due_dirs
        if len(dirs) > 1:
            dirs.sort()
        link_map = self._in_link_map
        for d in dirs:
            link = link_map[d]
            for flit in link.deliver(cycle):
                self._accept_flit(flit, d, cycle)

    def _accept_flit(self, flit: Flit, input_dir: Direction, cycle: int) -> None:
        """Buffer (or early-eject / discard) one arriving flit."""
        packet = flit.packet
        target = flit.vc_hint
        if packet.dropped_cycle is not None:
            # The worm was aborted while this flit was on the wire; the
            # slot reserved at launch must be handed back.
            if isinstance(target, VirtualChannel):
                target.refund_slot()
                target.expected -= 1
            return
        if isinstance(target, VirtualChannel) and target.dead:
            # The VC died (runtime fault) while this flit was flying.
            target.refund_slot()
            target.expected -= 1
            self.network.drop_packet(packet, cycle, DropReason.ARRIVED_AT_DEAD)
            return
        flit.route = flit.lookahead_route
        flit.lookahead_route = None
        if target is EJECT:
            self.network.eject(flit, self.node, cycle, early=True)
            return
        target.push(flit)
        target.expected -= 1
        flit.arrival = cycle
        if self.network.trace is not None:
            from repro.instrumentation.trace import EventKind

            self.network.trace.record(
                cycle, EventKind.BUFFER, flit, self.node,
                f"vc {target.vc_class or target.port}:{target.index}",
            )
        if flit.is_head:
            target.active_pid = packet.pid
        if target.faulty:
            # Virtual Queuing handshake penalty (buffer-fault recovery).
            target.hold_until = max(target.hold_until, cycle + 2)
        self._activity.buffer_writes += 1

    @abc.abstractmethod
    def allocate(self, cycle: int) -> None:
        """Phase 3: route computation, VC allocation and switch allocation."""

    def traverse(self, cycle: int) -> None:
        """Phase 2: move last cycle's SA winners through the crossbar.

        Each grant is revalidated because a worm may have been purged
        (fault drop) between grant and traversal; a stale grant refunds
        the slot reserved at grant time.
        """
        winners, self._sa_winners = self._sa_winners, []
        for vc, out_dir, out_vc in winners:
            if vc.empty or vc.out_dir is not out_dir or vc.out_vc is not out_vc:
                if isinstance(out_vc, VirtualChannel):
                    out_vc.refund_slot()
                    out_vc.expected -= 1
                continue
            self._launch(vc, out_dir, cycle)

    # ------------------------------------------------------------------
    # Shared allocation helpers
    # ------------------------------------------------------------------

    def _request_vc_allocation(
        self,
        vc: VirtualChannel,
        out_dir: Direction,
        flit: Flit,
        requests: list,
        escape_only: bool = False,
    ) -> bool:
        """Stage a VC-allocation request for the worm draining ``vc``.

        Picks the preferred free downstream VC among the candidates the
        downstream router admits (the emptiest — the congestion signal of
        adaptive selection) and appends a pending request.  Competing
        requests for the same downstream VC are resolved once per cycle
        by :meth:`_resolve_vc_allocations` — the single-iteration
        separable VA of a real router, where losers must re-arbitrate
        next cycle.  Early-ejection and local-ejection targets are
        granted immediately (the PE sink is conflict-free).

        Returns True when a request was staged or granted, False when
        every admitting VC is currently owned by another worm (retry
        next cycle), and None when the path is *hard*-blocked — the
        output port is dead or the downstream router admits no VC for
        this packet at all.  Only hard blocks count towards the
        fault-drop timeout: congestion behind a live resource always
        drains eventually.
        """
        self._activity.va_requests += 1
        if out_dir is Direction.LOCAL:
            # Local ejection needs no downstream VC: the PE always sinks.
            vc.out_vc = EJECT
            vc.assign_route(out_dir)
            return True
        port = self.outputs.get(out_dir)
        if port is None or port.dead:
            return None
        packet = flit.packet
        candidates = port.downstream.vc_candidates(
            port.input_dir, packet, escape_only=escape_only
        )
        if not candidates:
            return None
        staged = {id(req[3]) for req in requests}
        best: tuple[object, Direction | None] | None = None
        best_key = (-1, -1)
        for target, route in candidates:
            if target is EJECT:
                best = (target, route)
                break
            if target.owner_pid is not None:
                continue
            # Prefer un-contested targets, then the emptiest (the
            # congestion signal of adaptive selection); spreading over
            # equally-good VCs is what rotating input-stage arbiters do
            # in hardware.
            key = (0 if id(target) in staged else 1, target.credits(self.network.cycle))
            if key > best_key:
                best, best_key = (target, route), key
        if best is None:
            return False
        target, route = best
        if target is EJECT:
            vc.out_vc = EJECT
            vc.assign_route(out_dir)
            flit.lookahead_route = route
            return True
        requests.append((vc, out_dir, flit, target, route))
        return True

    #: VA arbitration iterations completed per cycle.  RoCo's 2v:1
    #: arbiters are small enough to re-arbitrate losers within the cycle
    #: (Figure 2); the generic router's 5v:1 arbiters are not — the
    #: "multiple iterative arbitrations" cost of Section 3.1.
    va_iterations = 1

    def _resolve_vc_allocations(self, requests: list, cycle: int) -> None:
        """Grant one winner per contended downstream VC (output-side VA).

        The rotation offset plays the role of the output arbiters'
        round-robin priority so persistent requesters are served fairly.
        Losing requests re-arbitrate against the remaining free VCs for
        as many iterations as the router's arbiters complete per cycle.
        """
        for _ in range(self.va_iterations):
            if not requests:
                return
            losers = self._resolve_va_iteration(requests, cycle)
            requests = []
            for vc, out_dir, flit in losers:
                self._request_vc_allocation(vc, out_dir, flit, requests)

    def _resolve_va_iteration(
        self, requests: list, cycle: int
    ) -> list[tuple[VirtualChannel, Direction, Flit]]:
        groups: dict[int, list] = {}
        for request in requests:
            groups.setdefault(id(request[3]), []).append(request)
        losers: list[tuple[VirtualChannel, Direction, Flit]] = []
        for group in groups.values():
            pick = cycle % len(group)
            for i, (vc, out_dir, flit, target, route) in enumerate(group):
                if i == pick:
                    target.claim(flit.packet.pid)
                    vc.out_vc = target
                    vc.assign_route(out_dir)
                    flit.lookahead_route = route
                    self.clear_stall(vc)
                else:
                    losers.append((vc, out_dir, flit))
        return losers

    def _vc_ready_for_switch(self, vc: VirtualChannel, cycle: int) -> bool:
        """Whether ``vc``'s front flit can compete for the crossbar now."""
        if vc.empty or not vc.allocated or vc.hold_until > cycle:
            return False
        target = vc.out_vc
        if target is EJECT and vc.out_dir is Direction.LOCAL:
            return True
        port = self.outputs.get(vc.out_dir)
        if port is None or port.dead:
            return False
        if target is EJECT:
            return True
        return target.credits(cycle) > 0

    def _commit_switch_grant(self, vc: VirtualChannel, cycle: int) -> None:
        """Reserve the downstream slot for a flit that won SA this cycle."""
        if isinstance(vc.out_vc, VirtualChannel):
            vc.out_vc.reserve_slot(cycle)
            vc.out_vc.expected += 1
        self._sa_winners.append((vc, vc.out_dir, vc.out_vc))
        self.clear_stall(vc)

    def _tally_contention(self, ready_vcs=None) -> None:
        """Figure-3 bookkeeping, shared across architectures.

        Every buffered worm with a committed output direction is a
        standing request on that crossbar output; a request *contends*
        when at least one other worm wants the same output this cycle.
        Requests are classified by the output's dimension (row =
        East/West); local ejection is not a crossbar contention point.
        """
        counts = [0, 0, 0, 0]
        for vc in self._vc_cache or self.all_vcs():
            if not vc.queue:
                continue
            out_dir = vc.out_dir
            if out_dir is not None and out_dir is not Direction.LOCAL:
                counts[out_dir] += 1
        contention = self.network.stats.contention
        for out_dir in CARDINALS:
            n = counts[out_dir]
            if not n:
                continue
            contended = n if n > 1 else 0
            if out_dir.is_row:
                contention.row_requests += n
                contention.row_contended += contended
            else:
                contention.column_requests += n
                contention.column_contended += contended

    # ------------------------------------------------------------------
    # Switch traversal helpers
    # ------------------------------------------------------------------

    def _launch(self, vc: VirtualChannel, out_dir: Direction, cycle: int) -> None:
        """Move the front flit of ``vc`` through the crossbar and out."""
        target = vc.out_vc
        flit = vc.pop(cycle)
        stats = self._activity
        stats.buffer_reads += 1
        stats.crossbar_traversals += 1
        if out_dir is Direction.LOCAL:
            self.network.eject(flit, self.node, cycle, early=False)
            return
        flit.vc_hint = target
        if flit.is_head:
            # Hop accounting counts real link traversals, not the
            # minimal distance — the head threads the path for the worm.
            flit.packet.hops += 1
        if self.network.trace is not None:
            from repro.instrumentation.trace import EventKind

            self.network.trace.record(
                cycle, EventKind.TRAVERSE, flit, self.node, f"-> {out_dir.name}"
            )
        port = self.outputs[out_dir]
        port.link.send(flit, cycle)
        # The receiver must be stepped when the flit lands; until then it
        # has nothing to do, so the wake is deferred to the landing cycle
        # and tagged with the input link the flit arrives on.
        self.network.schedule_wake(
            port.downstream, port.input_dir, cycle + port.link.delay
        )
        stats.link_flits += 1
        if flit.closes_worm and isinstance(target, VirtualChannel):
            target.release_owner()

    # ------------------------------------------------------------------
    # Fault support
    # ------------------------------------------------------------------

    def note_stall(self, vc: VirtualChannel, cycle: int) -> None:
        """Track a blocked head flit; drop its packet past the timeout.

        Only active in faulty networks — a fault-free run never discards
        traffic (Section 5.4 termination rules).
        """
        if not self.network.has_faults:
            return
        key = id(vc)
        start = self._stall_since.setdefault(key, cycle)
        if cycle - start >= self.network.config.fault_drop_timeout:
            front = vc.front
            if front is not None:
                self.network.drop_packet(
                    front.packet, cycle, DropReason.STALL_TIMEOUT
                )
            self._stall_since.pop(key, None)

    def clear_stall(self, vc: VirtualChannel) -> None:
        if self._stall_since:
            self._stall_since.pop(id(vc), None)

    def purge_packet(self, pid: int, cycle: int) -> None:
        """Remove every flit of a dropped packet held in this router."""
        for vc in self.all_vcs():
            if vc.owner_pid == pid:
                vc.release_owner()
            if vc.active_pid != pid and not any(
                f.packet.pid == pid for f in vc.queue
            ):
                continue
            kept = [f for f in vc.queue if f.packet.pid != pid]
            removed = len(vc.queue) - len(kept)
            vc.queue.clear()
            vc.queue.extend(kept)
            for _ in range(removed):
                vc.schedule_release(cycle)
            if vc.active_pid == pid:
                vc.out_dir = None
                vc.out_vc = None
                vc.active_pid = None

    def reroute_after_fault(self, vc: VirtualChannel) -> None:
        """Recompute a committed look-ahead route invalidated by a fault.

        Called by the runtime fault engine for worms whose head sits in
        ``vc`` with a pre-computed route that a topology event just
        killed.  Architectures that compute routes locally on arrival
        (generic, Path-Sensitive) self-heal in their next allocate pass,
        so the default is a no-op; RoCo overrides this because its
        look-ahead routes are committed upstream.
        """

    @abc.abstractmethod
    def all_vcs(self) -> list[VirtualChannel]:
        """Every VC buffer in the router (fault injection / purging)."""

    # ------------------------------------------------------------------
    # Shared small utilities
    # ------------------------------------------------------------------

    def _discard_dropped_front(self, vc: VirtualChannel, cycle: int) -> None:
        """Flush flits whose packet was dropped while queued here."""
        while vc.front is not None and vc.front.packet.dropped_cycle is not None:
            vc.pop(cycle)

    def _output_alive(self, d: Direction) -> bool:
        if d is Direction.LOCAL:
            return True
        port = self.outputs.get(d)
        return port is not None and not port.dead

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}({self.node})"
