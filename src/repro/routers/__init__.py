"""Router architectures: generic 2-stage VC, Path-Sensitive, and RoCo."""

from repro.routers.base import EJECT, BaseRouter, OutputPort
from repro.routers.generic import GenericRouter
from repro.routers.path_sensitive import PathSensitiveRouter, quadrant_of
from repro.routers.roco.router import RoCoRouter

ROUTER_CLASSES = {
    "generic": GenericRouter,
    "path_sensitive": PathSensitiveRouter,
    "roco": RoCoRouter,
}


def make_router(architecture: str, node, network):
    """Instantiate a router of the named architecture."""
    try:
        cls = ROUTER_CLASSES[architecture]
    except KeyError:
        raise ValueError(f"unknown router architecture {architecture!r}") from None
    return cls(node, network)


__all__ = [
    "EJECT",
    "BaseRouter",
    "GenericRouter",
    "OutputPort",
    "PathSensitiveRouter",
    "ROUTER_CLASSES",
    "RoCoRouter",
    "make_router",
    "quadrant_of",
]
