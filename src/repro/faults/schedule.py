"""Deterministic runtime fault schedules (campaign engine input).

A :class:`FaultSchedule` is an immutable, fully materialised list of
:class:`FaultEvent`\\ s — each a :class:`ComponentFault` stamped with the
cycle it strikes and an optional duration (transient faults heal after
``duration`` cycles; permanent ones never do).  Materialising at
construction, with a dedicated ``random.Random(seed)`` for sampled
schedules, makes campaigns reproducible and scheduler-independent: the
simulator merely consumes a fixed event stream, so the activity-driven
and full-sweep schedulers observe bit-identical fault timelines.

Two construction styles mirror how reliability studies specify faults:

* **fixed-cycle** — exact events, e.g. "the row module of (2,3) dies at
  cycle 5 000" (:meth:`FaultSchedule.at_cycle` or the constructor);
* **arrival-sampled** — inter-arrival times drawn from an exponential
  (classic MTBF) or Weibull distribution over a random fault population
  (:meth:`FaultSchedule.sampled`).

Schedules round-trip through plain-JSON payloads so campaigns can be
shipped to parallel workers, hashed into cache keys and loaded from the
CLI's ``--fault-schedule`` file.
"""

from __future__ import annotations

import json
import random
from dataclasses import dataclass
from pathlib import Path

from repro.core.config import RouterConfig
from repro.core.types import NodeId
from repro.faults.injector import ComponentFault, random_faults
from repro.faults.model import Component


@dataclass(frozen=True)
class FaultEvent:
    """One scheduled fault: what breaks, when, and for how long.

    ``duration=None`` means the fault is permanent; a positive duration
    makes it transient — the component heals at ``cycle + duration``.
    """

    cycle: int
    fault: ComponentFault
    duration: int | None = None

    def __post_init__(self) -> None:
        if self.cycle < 0:
            raise ValueError(f"fault event cycle must be >= 0, got {self.cycle}")
        if self.duration is not None and self.duration <= 0:
            raise ValueError(
                f"transient duration must be positive, got {self.duration}"
            )

    @property
    def transient(self) -> bool:
        return self.duration is not None

    @property
    def clear_cycle(self) -> int | None:
        """Cycle the fault heals, or None for permanent faults."""
        if self.duration is None:
            return None
        return self.cycle + self.duration


class FaultSchedule:
    """An immutable stream of fault events, sorted by strike cycle.

    Events striking the same cycle keep their construction order (stable
    sort), which defines the order the simulator applies them in.
    """

    def __init__(
        self, events: "list[FaultEvent] | tuple[FaultEvent, ...]" = ()
    ) -> None:
        self.events: tuple[FaultEvent, ...] = tuple(
            sorted(events, key=lambda e: e.cycle)
        )

    # -- construction ------------------------------------------------------

    @classmethod
    def at_cycle(
        cls,
        cycle: int,
        faults: "list[ComponentFault]",
        duration: int | None = None,
    ) -> "FaultSchedule":
        """All of ``faults`` striking together at ``cycle``."""
        return cls([FaultEvent(cycle, fault, duration) for fault in faults])

    @classmethod
    def sampled(
        cls,
        nodes: "list[NodeId]",
        *,
        count: int,
        seed: int,
        mtbf: float,
        critical: bool = True,
        weibull_shape: float | None = None,
        start_cycle: int = 0,
        duration: int | None = None,
        horizon: int | None = None,
        exclude: "set[NodeId] | None" = None,
        router_config: RouterConfig | None = None,
    ) -> "FaultSchedule":
        """Sample ``count`` fault arrivals over a random fault population.

        Inter-arrival times are exponential with mean ``mtbf`` (the
        memoryless MTBF model) or, when ``weibull_shape`` is given,
        Weibull with scale ``mtbf`` and that shape (shape < 1 models
        infant mortality, shape > 1 wear-out).  Arrivals are rounded up
        to whole cycles, accumulate from ``start_cycle``, and events past
        ``horizon`` (when given) are discarded.  Everything is drawn from
        one ``random.Random(seed)``, so equal arguments yield identical
        schedules on every scheduler and worker.
        """
        if count < 0:
            raise ValueError("count must be >= 0")
        if mtbf <= 0:
            raise ValueError("mtbf must be positive")
        if weibull_shape is not None and weibull_shape <= 0:
            raise ValueError("weibull_shape must be positive")
        rng = random.Random(seed)
        faults = random_faults(
            nodes, count, rng, critical, exclude, router_config=router_config
        )
        events: list[FaultEvent] = []
        cycle = start_cycle
        for fault in faults:
            if weibull_shape is None:
                gap = rng.expovariate(1.0 / mtbf)
            else:
                gap = rng.weibullvariate(mtbf, weibull_shape)
            cycle += max(1, round(gap))
            if horizon is not None and cycle > horizon:
                break
            events.append(FaultEvent(cycle, fault, duration))
        return cls(events)

    # -- container protocol ------------------------------------------------

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self):
        return iter(self.events)

    def __bool__(self) -> bool:
        return bool(self.events)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, FaultSchedule):
            return NotImplemented
        return self.events == other.events

    def __hash__(self) -> int:
        return hash(self.events)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        span = (
            f"cycles {self.events[0].cycle}..{self.events[-1].cycle}"
            if self.events
            else "empty"
        )
        return f"FaultSchedule({len(self.events)} events, {span})"

    @property
    def topology_event_cycles(self) -> tuple[int, ...]:
        """Strike cycles of events that change reachability (kills)."""
        from repro.faults.model import CRITICAL_FAULT_COMPONENTS

        return tuple(
            e.cycle
            for e in self.events
            if e.fault.component in CRITICAL_FAULT_COMPONENTS
        )

    # -- serialisation -----------------------------------------------------

    def to_payload(self) -> list[dict]:
        """Plain-JSON event list (cache keys, workers, files)."""
        return [
            {
                "cycle": event.cycle,
                "node": [event.fault.node.x, event.fault.node.y],
                "component": event.fault.component.value,
                "module": event.fault.module,
                "vc_position": event.fault.vc_position,
                "duration": event.duration,
            }
            for event in self.events
        ]

    @classmethod
    def from_payload(cls, payload: "list[dict]") -> "FaultSchedule":
        events = []
        for entry in payload:
            try:
                node = entry["node"]
                fault = ComponentFault(
                    node=NodeId(int(node[0]), int(node[1])),
                    component=Component(entry["component"]),
                    module=entry.get("module", "row"),
                    vc_position=int(entry.get("vc_position", 0)),
                )
                duration = entry.get("duration")
                events.append(
                    FaultEvent(
                        cycle=int(entry["cycle"]),
                        fault=fault,
                        duration=None if duration is None else int(duration),
                    )
                )
            except (KeyError, IndexError, TypeError) as exc:
                raise ValueError(f"malformed fault-event entry {entry!r}") from exc
        return cls(events)

    def to_json(self, path: "str | Path") -> None:
        Path(path).write_text(json.dumps(self.to_payload(), indent=2) + "\n")

    @classmethod
    def from_json(cls, path: "str | Path") -> "FaultSchedule":
        return cls.from_payload(json.loads(Path(path).read_text()))
