"""Runtime fault application: imprinting faults onto a *live* network.

Static injection (:func:`repro.faults.injector.apply_faults`) runs before
``Network.wire`` and can simply flip flags — nothing is in flight yet.
A fault striking mid-run is harder: buffered worms may sit inside the
dying module, neighbours have cached dead-port handshake state from
wiring time, upstream virtual channels hold allocations pointing into
the dead region, and look-ahead routes committed before the fault would
send worms straight into it.  :class:`RuntimeFaultEngine` handles all of
that:

* **imprint** — the same Table-3 reaction dispatch as static injection
  (node dead / module dead / rc_faulty / sa_degraded / buffer shrink);
* **salvage** — packets with flits buffered inside a dying module are
  dropped network-wide with :data:`DropReason.BUFFERED_IN_DEAD` (their
  credits and claims are recycled), and a runtime buffer fault evicts
  the shrunk VC's occupants with :data:`DropReason.FAULT_EVICTED`;
* **handshake refresh** — :meth:`Network.refresh_handshake` re-runs the
  wiring-time dead-port computation around the victim;
* **severing sweep** — every live VC whose allocation or committed
  look-ahead route now points at a dead resource is repaired: worms
  whose head is still local release the stale claim and re-route
  (:meth:`BaseRouter.reroute_after_fault`); worms already stretched into
  the dead region are dropped with :data:`DropReason.ROUTE_SEVERED`.

Transient faults reverse the imprint on expiry (traffic lost while the
fault was active stays lost, matching real hardware).  Overlapping
faults on the same effect are reference-counted so a transient expiring
under a permanent fault does not resurrect the component.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable

from repro.core.buffer import VirtualChannel
from repro.core.types import Direction, DropReason, Packet
from repro.faults.injector import ComponentFault
from repro.faults.model import CRITICAL_FAULT_COMPONENTS, Component

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.network import Network
    from repro.routers.base import BaseRouter


class RuntimeFaultEngine:
    """Applies and clears :class:`ComponentFault`\\ s on a live network."""

    def __init__(
        self,
        network: "Network",
        packet_lookup: "Callable[[int], Packet | None] | None" = None,
    ) -> None:
        self.network = network
        self._packet_lookup = packet_lookup
        #: Reference counts per effect key, for overlapping transients.
        self._effects: dict[tuple, int] = {}

    # ------------------------------------------------------------------
    # Public entry points
    # ------------------------------------------------------------------

    def apply(self, fault: ComponentFault, cycle: int) -> bool:
        """Strike ``fault`` now; returns True when topology changed."""
        network = self.network
        network.has_faults = True
        router = network.routers[fault.node]
        modules = getattr(router, "modules", None)
        if modules is None:
            # Generic / Path-Sensitive: any component kills the node.
            if self._acquire(("node", fault.node)):
                router.dead = True
                self._kill_vcs(router.all_vcs(), cycle)
                self._after_topology_change(fault.node, cycle)
                return True
            return False
        module = modules[fault.module]
        if fault.component in CRITICAL_FAULT_COMPONENTS:
            if self._acquire(("module", fault.node, fault.module)):
                module.dead = True
                self._kill_vcs(module.all_vcs(), cycle)
                self._after_topology_change(fault.node, cycle)
                return True
            return False
        if fault.component is Component.RC:
            self._acquire(("rc", fault.node, fault.module))
            module.rc_faulty = True
        elif fault.component is Component.SA:
            self._acquire(("sa", fault.node, fault.module))
            module.sa_degraded = True
        elif fault.component is Component.BUFFER:
            vcs = module.all_vcs()
            position = fault.vc_position % len(vcs)
            if self._acquire(("buffer", fault.node, fault.module, position)):
                self._shrink_vc(router, vcs[position], cycle)
        else:  # pragma: no cover - exhaustive over Component
            raise ValueError(f"unhandled component {fault.component}")
        return False

    def clear(self, fault: ComponentFault, cycle: int) -> bool:
        """Heal a transient ``fault``; returns True when topology changed."""
        network = self.network
        router = network.routers[fault.node]
        modules = getattr(router, "modules", None)
        if modules is None:
            if self._release(("node", fault.node)):
                router.dead = False
                for vc in router.all_vcs():
                    vc.dead = False
                self._after_topology_change(fault.node, cycle)
                return True
            return False
        module = modules[fault.module]
        if fault.component in CRITICAL_FAULT_COMPONENTS:
            if self._release(("module", fault.node, fault.module)):
                module.dead = False
                for vc in module.all_vcs():
                    vc.dead = False
                self._after_topology_change(fault.node, cycle)
                return True
            return False
        if fault.component is Component.RC:
            if self._release(("rc", fault.node, fault.module)):
                module.rc_faulty = False
        elif fault.component is Component.SA:
            if self._release(("sa", fault.node, fault.module)):
                module.sa_degraded = False
        elif fault.component is Component.BUFFER:
            vcs = module.all_vcs()
            position = fault.vc_position % len(vcs)
            if self._release(("buffer", fault.node, fault.module, position)):
                vc = vcs[position]
                vc.faulty = False
                vc.rebase_credits()
        return False

    # ------------------------------------------------------------------
    # Effect reference counting (overlapping transients)
    # ------------------------------------------------------------------

    def _acquire(self, key: tuple) -> bool:
        """Count one fault on ``key``; True when it is the first."""
        count = self._effects.get(key, 0)
        self._effects[key] = count + 1
        return count == 0

    def _release(self, key: tuple) -> bool:
        """Release one fault on ``key``; True when none remain."""
        count = self._effects.get(key, 0)
        if count <= 1:
            self._effects.pop(key, None)
            return True
        self._effects[key] = count - 1
        return False

    # ------------------------------------------------------------------
    # Salvage and repair
    # ------------------------------------------------------------------

    def _kill_vcs(self, vcs: "list[VirtualChannel]", cycle: int) -> None:
        """Mark VCs dead and salvage every worm buffered in them."""
        victims: dict[int, Packet] = {}
        for vc in vcs:
            vc.dead = True
            for flit in vc.queue:
                victims[flit.packet.pid] = flit.packet
        for packet in victims.values():
            self.network.drop_packet(packet, cycle, DropReason.BUFFERED_IN_DEAD)

    def _shrink_vc(
        self, router: "BaseRouter", vc: VirtualChannel, cycle: int
    ) -> None:
        """Runtime BUFFER fault: evict occupants, shrink to depth 1."""
        victims: dict[int, Packet] = {
            flit.packet.pid: flit.packet for flit in vc.queue
        }
        if vc.owner_pid is not None and vc.owner_pid not in victims:
            packet = self._resolve_pid(vc.owner_pid)
            if packet is not None:
                victims[packet.pid] = packet
        # Flits already flying towards the shrunk VC would overflow its
        # single surviving slot; their worms are evicted too.
        for _, link in router._in_links:
            for flit in link.pending():
                if flit.vc_hint is vc:
                    victims[flit.packet.pid] = flit.packet
        for packet in victims.values():
            self.network.drop_packet(packet, cycle, DropReason.FAULT_EVICTED)
        vc.faulty = True
        vc.rebase_credits()

    def _after_topology_change(self, node, cycle: int) -> None:
        network = self.network
        network.refresh_handshake(node)
        self._sever_stale_routes(cycle)
        network.invalidate_reachability()
        self._wake_neighborhood(node)

    def _sever_stale_routes(self, cycle: int) -> None:
        """Repair live worms whose path now leads into a dead resource.

        Heads still waiting locally release the stale downstream claim
        and get a chance to re-route; worms whose head already crossed
        into the dead region cannot be re-threaded (wormhole flow
        control) and are dropped.
        """
        network = self.network
        for router in network._router_list:
            if router.dead:
                continue
            for vc in router.all_vcs():
                if vc.dead or not vc.queue:
                    continue
                front = vc.queue[0]
                target = vc.out_vc
                severed = isinstance(target, VirtualChannel) and target.dead
                if not severed and vc.allocated and vc.out_dir is not None:
                    if vc.out_dir is not Direction.LOCAL:
                        port = router.outputs.get(vc.out_dir)
                        severed = port is None or port.dead
                if severed:
                    if front.is_head:
                        if (
                            isinstance(target, VirtualChannel)
                            and target.owner_pid == front.packet.pid
                        ):
                            target.release_owner()
                        vc.out_vc = None
                        vc.out_dir = None
                        router.reroute_after_fault(vc)
                    else:
                        network.drop_packet(
                            front.packet, cycle, DropReason.ROUTE_SEVERED
                        )
                elif front.is_head and not vc.allocated:
                    # Unallocated worm with a committed look-ahead route:
                    # give the router a chance to re-route it away from
                    # the dead region before VA hard-blocks on it.
                    router.reroute_after_fault(vc)

    def _wake_neighborhood(self, node) -> None:
        """Wake the victim and its neighbours so reactions run promptly."""
        from repro.core.types import CARDINALS

        network = self.network
        network.routers[node].wake()
        for direction in CARDINALS:
            neighbor = network.neighbor_of(node, direction)
            if neighbor is not None:
                network.routers[neighbor].wake()

    def _resolve_pid(self, pid: int) -> Packet | None:
        if self._packet_lookup is not None:
            packet = self._packet_lookup(pid)
            if packet is not None:
                return packet
        for router in self.network._router_list:
            for vc in router.all_vcs():
                for flit in vc.queue:
                    if flit.packet.pid == pid:
                        return flit.packet
            for _, link in router._in_links:
                for flit in link.pending():
                    if flit.packet.pid == pid:
                        return flit.packet
        return None
