"""Router fault taxonomy (paper Section 4.1, Table 3).

Components are classified along two axes:

* **operational regime** — per-packet components (RC, VA) only touch
  header flits; per-flit components (buffers, MUX/DEMUX, SA, crossbar)
  touch every flit;
* **centricity** — message-centric components (RC, buffers, MUX/DEMUX)
  process one message with no cross-message state; router-centric
  components (VA, SA, crossbar) need state from many pending messages;

plus a pathway attribute: the datapath (MUX/DEMUX, buffers without a
bypass, crossbar) is *critical*; the control logic (RC, VA, SA — and
buffers once a bypass path exists) is *non-critical*.

The recovery consequences (Section 4.1):

=============  ==============================  =============================
component      generic / Path-Sensitive        RoCo reaction
=============  ==============================  =============================
RC             node blocked                    double routing downstream
BUFFER         node blocked                    virtual queuing (depth -> 1)
VA             node blocked                    containing module blocked
SA             node blocked                    offload onto idle VA arbiters
CROSSBAR       node blocked                    containing module blocked
MUX_DEMUX      node blocked                    containing module blocked
=============  ==============================  =============================
"""

from __future__ import annotations

import enum
from dataclasses import dataclass


class Component(enum.Enum):
    """The six major router components of Figure 1(a)."""

    RC = "rc"
    VA = "va"
    SA = "sa"
    BUFFER = "buffer"
    CROSSBAR = "crossbar"
    MUX_DEMUX = "mux_demux"


class Regime(enum.Enum):
    PER_PACKET = "per-packet"
    PER_FLIT = "per-flit"


class Centricity(enum.Enum):
    MESSAGE = "message-centric"
    ROUTER = "router-centric"


class Pathway(enum.Enum):
    CRITICAL = "critical"
    NON_CRITICAL = "non-critical"


@dataclass(frozen=True)
class FaultClass:
    """Table-3 classification of one component."""

    component: Component
    regime: Regime
    centricity: Centricity
    pathway: Pathway

    @property
    def blocks_roco_module(self) -> bool:
        """Whether a RoCo router must isolate the containing module.

        Critical-pathway faults cannot be bypassed; router-centric VA
        faults cannot be offloaded (Section 4.1).  Everything else is
        recovered by hardware recycling.
        """
        return self.pathway is Pathway.CRITICAL or self.component is Component.VA


#: Table 3, assuming buffers have the bypass path (the configuration the
#: paper evaluates — Virtual Queuing requires it).
CLASSIFICATION: dict[Component, FaultClass] = {
    Component.RC: FaultClass(
        Component.RC, Regime.PER_PACKET, Centricity.MESSAGE, Pathway.NON_CRITICAL
    ),
    Component.VA: FaultClass(
        Component.VA, Regime.PER_PACKET, Centricity.ROUTER, Pathway.NON_CRITICAL
    ),
    Component.SA: FaultClass(
        Component.SA, Regime.PER_FLIT, Centricity.ROUTER, Pathway.NON_CRITICAL
    ),
    Component.BUFFER: FaultClass(
        Component.BUFFER, Regime.PER_FLIT, Centricity.MESSAGE, Pathway.NON_CRITICAL
    ),
    Component.CROSSBAR: FaultClass(
        Component.CROSSBAR, Regime.PER_FLIT, Centricity.ROUTER, Pathway.CRITICAL
    ),
    Component.MUX_DEMUX: FaultClass(
        Component.MUX_DEMUX, Regime.PER_FLIT, Centricity.MESSAGE, Pathway.CRITICAL
    ),
}

#: The fault population of Figure 11: router-centric and critical-pathway
#: components — these block an entire generic/Path-Sensitive node and a
#: whole RoCo module.
CRITICAL_FAULT_COMPONENTS = (
    Component.VA,
    Component.CROSSBAR,
    Component.MUX_DEMUX,
)

#: The fault population of Figure 12: message-centric / non-critical
#: components — recovered in RoCo by hardware recycling.
NONCRITICAL_FAULT_COMPONENTS = (
    Component.RC,
    Component.BUFFER,
    Component.SA,
)
