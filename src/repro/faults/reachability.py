"""Reachability analysis over the faulted mesh.

After a topology-affecting fault the interesting question is no longer
"did the run drain?" but "which outstanding packets *could* still be
delivered?".  :class:`ReachabilityMap` answers it by breadth-first
search over the links the routing algorithm would actually offer — each
hop must be a candidate direction for the packet (so deterministic XY
traffic is not credited with paths it would never take), forwardable by
the current node (:meth:`Network.can_transit`) and accepted by the
receiving router's fault handshake.

Results are memoised per ``(start, dest, yx_first)`` and invalidated by
the runtime fault engine whenever a kill or recovery changes the
topology.  The map is only consulted on cold paths (end-of-run survivor
classification, drain-timeout census), never per cycle.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.core.types import Direction, NodeId, Packet

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.network import Network


class ReachabilityMap:
    """Memoised routing-aware reachability queries against one network."""

    def __init__(self, network: "Network") -> None:
        self.network = network
        self._memo: dict[tuple[NodeId, NodeId, bool], bool] = {}

    def invalidate(self) -> None:
        """Forget everything; the topology changed."""
        self._memo.clear()

    def reachable(
        self, start: NodeId, dest: NodeId, yx_first: bool = False
    ) -> bool:
        """Whether a packet at ``start`` can still reach ``dest``.

        ``yx_first`` matters only under XY-YX routing, where the variant
        committed at injection constrains the candidate directions.
        """
        key = (start, dest, yx_first)
        cached = self._memo.get(key)
        if cached is None:
            cached = self._search(start, dest, yx_first)
            self._memo[key] = cached
        return cached

    def _search(self, start: NodeId, dest: NodeId, yx_first: bool) -> bool:
        if start == dest:
            return True
        network = self.network
        routing = network.routing
        probe = Packet(
            pid=-1, src=start, dest=dest, size=1, created_cycle=0, yx_first=yx_first
        )
        seen = {start}
        frontier = [start]
        while frontier:
            node = frontier.pop()
            for direction in routing.candidates(node, probe):
                if direction is Direction.LOCAL:
                    continue
                if not network.can_transit(node, direction):
                    continue
                neighbor = network.neighbor_of(node, direction)
                if neighbor is None or neighbor in seen:
                    continue
                if not network.routers[neighbor].accepting(direction.opposite):
                    continue
                if neighbor == dest:
                    return True
                seen.add(neighbor)
                frontier.append(neighbor)
        return False

    def unreachable_pairs(self) -> int:
        """Memoised queries that came back negative (diagnostics)."""
        return sum(1 for verdict in self._memo.values() if not verdict)
