"""Permanent-fault model, injection and hardware-recycling recovery."""

from repro.faults.injector import ComponentFault, apply_faults, random_faults
from repro.faults.model import (
    CLASSIFICATION,
    CRITICAL_FAULT_COMPONENTS,
    NONCRITICAL_FAULT_COMPONENTS,
    Centricity,
    Component,
    FaultClass,
    Pathway,
    Regime,
)
from repro.faults.recovery import is_recoverable, recovery_mechanism

__all__ = [
    "CLASSIFICATION",
    "CRITICAL_FAULT_COMPONENTS",
    "Centricity",
    "Component",
    "ComponentFault",
    "FaultClass",
    "NONCRITICAL_FAULT_COMPONENTS",
    "Pathway",
    "Regime",
    "apply_faults",
    "is_recoverable",
    "random_faults",
]
