"""Fault model: static injection, runtime campaigns and recovery."""

from repro.faults.injector import (
    ComponentFault,
    apply_faults,
    module_vc_count,
    random_faults,
)
from repro.faults.model import (
    CLASSIFICATION,
    CRITICAL_FAULT_COMPONENTS,
    NONCRITICAL_FAULT_COMPONENTS,
    Centricity,
    Component,
    FaultClass,
    Pathway,
    Regime,
)
from repro.faults.reachability import ReachabilityMap
from repro.faults.recovery import is_recoverable, recovery_mechanism
from repro.faults.runtime import RuntimeFaultEngine
from repro.faults.schedule import FaultEvent, FaultSchedule

__all__ = [
    "CLASSIFICATION",
    "CRITICAL_FAULT_COMPONENTS",
    "Centricity",
    "Component",
    "ComponentFault",
    "FaultClass",
    "FaultEvent",
    "FaultSchedule",
    "NONCRITICAL_FAULT_COMPONENTS",
    "Pathway",
    "ReachabilityMap",
    "Regime",
    "RuntimeFaultEngine",
    "apply_faults",
    "is_recoverable",
    "module_vc_count",
    "random_faults",
    "recovery_mechanism",
]
