"""Hardware-recycling recovery mechanisms (paper Section 4).

The mechanisms themselves are implemented inside the RoCo router and the
VC buffer (they are *behaviour*, not a separate subsystem):

* **Double routing** (RC failure, Figure 5) — heads departing a module
  with ``rc_faulty`` pay one extra cycle, standing in for the downstream
  neighbour performing current-node routing before look-ahead routing.
* **Virtual queuing** (buffer failure, Figure 6) — a ``faulty`` VC keeps
  only its bypass slot (depth 1) and each flit waits out a 2-cycle
  handshake, standing in for storage being off-loaded to the previous
  node while VA/SA still run here.
* **SA offloading** (SA failure, Figure 7) — a module with
  ``sa_degraded`` skips switch allocation on cycles its VA arbiters are
  busy with header processing and serves at most one port per cycle
  otherwise.
* **Module isolation** (VA / crossbar / MUX-DEMUX failure) — the
  containing module is disabled; the partner module keeps serving its
  dimension.

This module provides the introspection helpers the reports and tests use
to reason about those behaviours.
"""

from __future__ import annotations

from repro.faults.model import CLASSIFICATION, Component


def is_recoverable(architecture: str, component: Component) -> bool:
    """Whether a fault leaves the router (partially) operational.

    Generic and Path-Sensitive routers lose the whole node on any fault.
    RoCo recovers message-centric/non-critical faults outright and keeps
    the partner module alive otherwise — so every fault leaves *some*
    service, but we reserve "recoverable" for faults the hardware
    recycling mechanism bypasses without isolating a module.
    """
    if architecture != "roco":
        return False
    return not CLASSIFICATION[component].blocks_roco_module


def recovery_mechanism(component: Component) -> str:
    """Human-readable name of the RoCo recovery path for ``component``."""
    return {
        Component.RC: "double routing at downstream neighbours",
        Component.BUFFER: "virtual queuing over the bypass path",
        Component.SA: "arbitration offloaded to idle VA arbiters",
        Component.VA: "module isolation (graceful degradation)",
        Component.CROSSBAR: "module isolation (graceful degradation)",
        Component.MUX_DEMUX: "module isolation (graceful degradation)",
    }[component]
