"""Static permanent-fault injection (paper Section 5.4).

Faults are injected before simulation starts ("we assumed permanent
failures to be handled statically") at randomly chosen distinct routers.
The *same* fault population is applied to every architecture under
comparison; only the reaction differs:

* generic / Path-Sensitive routers — any component fault takes the whole
  node off-line (their operation is unified across components);
* RoCo — critical/router-centric faults isolate one module; the rest are
  absorbed by hardware recycling (double routing, virtual queuing, SA
  offloading onto the VA arbiters).
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.core.config import RouterConfig
from repro.core.network import Network
from repro.core.types import NodeId
from repro.faults.model import (
    CRITICAL_FAULT_COMPONENTS,
    NONCRITICAL_FAULT_COMPONENTS,
    Component,
)
from repro.routers.roco.path_set import COLUMN, ROW


@dataclass(frozen=True)
class ComponentFault:
    """One permanent hardware fault.

    ``module`` picks the Row- or Column-Module for architectures with
    that granularity (others ignore it); ``vc_position`` selects the
    affected buffer for BUFFER faults.
    """

    node: NodeId
    component: Component
    module: str = ROW
    vc_position: int = 0


def module_vc_count(router_config: RouterConfig | None = None) -> int:
    """VC buffers per RoCo module: two input ports x ``vcs_per_port``."""
    if router_config is None:
        router_config = RouterConfig()
    return 2 * router_config.vcs_per_port


def random_faults(
    nodes: list[NodeId],
    count: int,
    rng: random.Random,
    critical: bool,
    exclude: set[NodeId] | None = None,
    *,
    router_config: RouterConfig | None = None,
) -> list[ComponentFault]:
    """Draw ``count`` faults at distinct routers.

    ``critical`` selects the Figure-11 population (router-centric /
    critical pathway) versus the Figure-12 one (message-centric /
    non-critical).  ``vc_position`` for BUFFER faults is drawn over the
    per-module VC count implied by ``router_config`` (the default
    configuration's bound keeps historical seeds reproducible).
    """
    pool = [n for n in nodes if exclude is None or n not in exclude]
    if count > len(pool):
        raise ValueError(f"cannot place {count} faults on {len(pool)} routers")
    components = (
        CRITICAL_FAULT_COMPONENTS if critical else NONCRITICAL_FAULT_COMPONENTS
    )
    vc_bound = module_vc_count(router_config)
    chosen = rng.sample(pool, count)
    return [
        ComponentFault(
            node=node,
            component=rng.choice(components),
            module=rng.choice((ROW, COLUMN)),
            vc_position=rng.randrange(vc_bound),
        )
        for node in chosen
    ]


def apply_faults(network: Network, faults: list[ComponentFault]) -> None:
    """Imprint ``faults`` onto the network's routers.

    Must run before :meth:`Network.wire` so the dead-port handshake state
    the neighbours cache reflects the faults; faults arriving *during* a
    run go through :mod:`repro.faults.runtime` instead, which repairs
    the cached handshake state and salvages in-flight traffic.
    """
    if not faults:
        return
    if network.wired:
        raise RuntimeError(
            "apply_faults must run before Network.wire: neighbours have "
            "already cached dead-port handshake state.  Use "
            "repro.faults.runtime (or a FaultSchedule) to inject faults "
            "into a live network."
        )
    network.has_faults = True
    for fault in faults:
        router = network.routers[fault.node]
        modules = getattr(router, "modules", None)
        if modules is None:
            # Generic / Path-Sensitive: unified operation, node off-line.
            router.dead = True
            for vc in router.all_vcs():
                vc.dead = True
            continue
        module = modules[fault.module]
        if fault.component in (Component.VA, Component.CROSSBAR, Component.MUX_DEMUX):
            module.dead = True
            for vc in module.all_vcs():
                vc.dead = True
        elif fault.component is Component.RC:
            module.rc_faulty = True
        elif fault.component is Component.SA:
            module.sa_degraded = True
        elif fault.component is Component.BUFFER:
            vcs = module.all_vcs()
            vc = vcs[fault.vc_position % len(vcs)]
            vc.faulty = True
            vc.shrink_for_fault()
        else:  # pragma: no cover - exhaustive over Component
            raise ValueError(f"unhandled component {fault.component}")
