"""``python -m repro serve`` — run, probe or smoke-test the job server.

Server::

    python -m repro serve --workers 4 --cache-dir ~/.cache/repro \
        --port 8650 --max-retries 2 --job-timeout 300

Client conveniences (thin wrappers over :mod:`repro.serve.client`)::

    python -m repro serve status --url http://127.0.0.1:8650
    python -m repro serve submit --url http://127.0.0.1:8650 \
        '{"kind": "experiment", "config": {"router": "roco", "rate": 0.1}}'

Self-test (used by CI's serve-smoke lane)::

    python -m repro serve --smoke

The smoke boots a real server on an ephemeral port with crash chaos
injected (every job's first attempt dies), fires two identical and one
distinct concurrent client requests, and asserts the dedupe and
recovery contract end to end: exactly two simulations run, the
identical requests coalesce onto one, every client gets bit-identical
records, and the injected crashes are retried transparently.
"""

from __future__ import annotations

import argparse
import json
import sys
import tempfile
import threading

from repro.harness.parallel import ResultCache
from repro.harness.resilient import RetryPolicy
from repro.serve.broker import JobBroker
from repro.serve.client import ServeClient
from repro.serve.server import ServerThread, run_server


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro serve",
        description="Simulation-as-a-service job server (docs/serving.md)",
    )
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument(
        "--port", type=int, default=8650, help="0 picks an ephemeral port"
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=None,
        metavar="N",
        help="worker processes (0 = all cores; default serial)",
    )
    parser.add_argument(
        "--cache-dir",
        default=None,
        metavar="DIR",
        help="on-disk result cache shared with batch sweeps",
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="ignore --cache-dir and always simulate",
    )
    parser.add_argument("--max-retries", type=int, default=None, metavar="N")
    parser.add_argument("--job-timeout", type=float, default=None, metavar="SECONDS")
    parser.add_argument(
        "--speculative",
        action="store_true",
        help="re-execute stragglers speculatively on idle workers",
    )
    parser.add_argument(
        "--max-inflight",
        type=int,
        default=64,
        metavar="N",
        help="admission-control bound on distinct in-flight jobs",
    )
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="run the end-to-end dedupe/recovery self-test and exit",
    )
    return parser


def _build_broker(args, chaos=None) -> JobBroker:
    cache = None
    if args.cache_dir and not args.no_cache:
        cache = ResultCache(args.cache_dir)
    policy_kwargs: dict = {"speculative": args.speculative}
    if args.max_retries is not None:
        policy_kwargs["max_retries"] = args.max_retries
    if args.job_timeout is not None:
        policy_kwargs["job_timeout"] = args.job_timeout
    return JobBroker(
        cache=cache,
        workers=args.workers,
        policy=RetryPolicy(**policy_kwargs),
        chaos=chaos,
        max_inflight=args.max_inflight,
    )


def _serve(args) -> int:
    broker = _build_broker(args)
    with broker:
        print(
            f"serve: {broker.mode} mode, {broker.workers} worker(s), "
            f"max {broker.max_inflight} in flight"
            + (
                f", cache at {broker.cache.directory}"
                if broker.cache is not None
                else ""
            ),
            file=sys.stderr,
        )
        print(
            f"serve: listening on http://{args.host}:{args.port}",
            file=sys.stderr,
        )
        run_server(broker, host=args.host, port=args.port)
    return 0


# -- client subcommands ------------------------------------------------


def _client_status(argv: list[str]) -> int:
    parser = argparse.ArgumentParser(prog="repro serve status")
    parser.add_argument("--url", default="http://127.0.0.1:8650")
    args = parser.parse_args(argv)
    print(json.dumps(ServeClient(args.url).status(), indent=2, sort_keys=True))
    return 0


def _client_submit(argv: list[str]) -> int:
    parser = argparse.ArgumentParser(prog="repro serve submit")
    parser.add_argument("--url", default="http://127.0.0.1:8650")
    parser.add_argument("--timeout", type=float, default=600.0, metavar="SECONDS")
    parser.add_argument(
        "--no-wait",
        action="store_true",
        help="print the job keys and return without waiting for records",
    )
    parser.add_argument(
        "request",
        help="request JSON (or @FILE), e.g. "
        '\'{"kind": "experiment", "config": {"rate": 0.1}}\'',
    )
    args = parser.parse_args(argv)
    text = args.request
    if text.startswith("@"):
        with open(text[1:], encoding="utf-8") as handle:
            text = handle.read()
    try:
        payload = json.loads(text)
    except ValueError as exc:
        print(f"error: request is not valid JSON: {exc}", file=sys.stderr)
        return 2
    client = ServeClient(args.url)
    reply = client.submit_with_backoff(payload)
    if args.no_wait:
        print(json.dumps(reply, indent=2, sort_keys=True))
        return 0
    for jobinfo in reply["jobs"]:
        record = client.result(jobinfo["key"], timeout=args.timeout)
        print(json.dumps(record, sort_keys=True))
    return 0


# -- smoke -------------------------------------------------------------


def _smoke() -> int:
    """End-to-end dedupe + crash-recovery self-test (CI serve-smoke)."""
    from repro.harness.chaos import ChaosConfig, ChaosRule

    base = {
        "width": 3,
        "height": 3,
        "warmup_packets": 10,
        "measure_packets": 60,
    }
    same = {"kind": "experiment", "config": dict(base, rate=0.08, seed=3)}
    distinct = {"kind": "experiment", "config": dict(base, rate=0.1, seed=4)}
    # Every job's first attempt crashes its worker; the RetryPolicy must
    # recover both jobs transparently.
    chaos = ChaosConfig(rules=(ChaosRule(kind="crash", indices=None),))

    with tempfile.TemporaryDirectory(prefix="serve-smoke-") as tmp:
        broker = JobBroker(
            cache=ResultCache(tmp),
            workers=2,
            policy=RetryPolicy(max_retries=3, backoff_base=0.0),
            chaos=chaos,
            max_inflight=8,
        )
        with broker, ServerThread(broker) as url:
            print(f"smoke: server at {url}, {broker.mode} mode")
            client = ServeClient(url)
            assert client.healthy(), "healthz probe failed"

            barrier = threading.Barrier(3)
            results: dict[int, dict] = {}
            errors: list[BaseException] = []

            def fire(slot: int, request: dict) -> None:
                try:
                    barrier.wait(timeout=10)
                    reply = ServeClient(url).submit(request)
                    key = reply["jobs"][0]["key"]
                    results[slot] = {
                        "reply": reply,
                        "record": ServeClient(url).result(key, timeout=120),
                    }
                except BaseException as exc:  # surfaced below
                    errors.append(exc)
                    barrier.abort()

            threads = [
                threading.Thread(target=fire, args=(slot, request))
                for slot, request in enumerate((same, same, distinct))
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(timeout=180)
            if errors:
                raise errors[0]
            assert len(results) == 3, f"only {len(results)} clients finished"

            status = client.status()
            key_a = results[0]["reply"]["jobs"][0]["key"]
            key_b = results[1]["reply"]["jobs"][0]["key"]
            key_c = results[2]["reply"]["jobs"][0]["key"]
            assert key_a == key_b, "identical requests got different keys"
            assert key_c != key_a, "distinct requests got the same key"
            assert results[0]["record"] == results[1]["record"], (
                "coalesced clients saw different records"
            )
            assert results[2]["record"] != results[0]["record"]
            sims = status["simulations_run"]
            assert sims == 2, f"expected 2 simulations for 3 requests, got {sims}"
            assert status["coalesced"] == 1, status
            execution = status["execution"]
            recovered = (
                execution["worker_crashes"] + execution["retries"]
            )
            assert recovered >= 2, f"chaos crashes not recovered: {execution}"
            stream = list(ServeClient(url).events(key_a))
            kinds = [event["event"] for event in stream]
            assert kinds[-1] == "completed", kinds
            assert "retry" in kinds or execution["worker_crashes"] >= 1, kinds

            # Warm resubmission: served without a new simulation.
            reply = client.submit(same)
            assert reply["jobs"][0]["cached"], reply
            again = client.result(key_a, timeout=30)
            assert again == results[0]["record"]
            assert client.status()["simulations_run"] == 2

            cache = client.status()["cache"]
            print(
                f"smoke: ok — 3 requests, {sims} simulations, "
                f"{status['coalesced']} coalesced, "
                f"{execution['worker_crashes']} worker crash(es), "
                f"{execution['retries']} retr(ies), cache {cache}"
            )
    return 0


def serve_main(argv: list[str] | None = None) -> int:
    argv = list(sys.argv[1:]) if argv is None else list(argv)
    if argv[:1] == ["status"]:
        return _client_status(argv[1:])
    if argv[:1] == ["submit"]:
        return _client_submit(argv[1:])
    args = build_parser().parse_args(argv)
    if args.smoke:
        return _smoke()
    return _serve(args)


if __name__ == "__main__":
    sys.exit(serve_main())
