"""Asyncio HTTP front end of the simulation job server.

A deliberately small stdlib-only HTTP/1.1 implementation (the repo
avoids new runtime dependencies): one connection per request,
``Connection: close`` framing, JSON bodies.  Endpoints
(docs/serving.md):

* ``POST /submit`` — a protocol request; replies with the job keys
  (409-free: identical jobs coalesce), ``503`` + ``Retry-After`` when
  admission control sheds the load, ``400`` on malformed requests;
* ``GET  /result/<key>?timeout=S`` — block up to ``S`` seconds for the
  record (``202`` with the current state on timeout, ``404`` unknown);
* ``GET  /events/<key>?from=N`` — NDJSON event stream (replay from
  ``N``, then live) until the job's terminal event;
* ``GET  /status`` — cache counters, worker liveness, in-flight table;
* ``GET  /healthz`` — liveness probe.

Blocking broker calls run in the default executor so many clients can
be served concurrently by one event loop; the broker's locks make that
safe.
"""

from __future__ import annotations

import asyncio
import json
import threading
from urllib.parse import parse_qs, urlsplit

from repro.serve.broker import JobBroker, SaturatedError
from repro.serve.protocol import RequestError, encode_event

#: Bound on request head + body we are willing to buffer.
MAX_BODY_BYTES = 4 * 1024 * 1024
_REASONS = {
    200: "OK",
    202: "Accepted",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    408: "Request Timeout",
    413: "Payload Too Large",
    500: "Internal Server Error",
    503: "Service Unavailable",
}


class JobServer:
    """One broker behind one listening socket."""

    def __init__(
        self,
        broker: JobBroker,
        host: str = "127.0.0.1",
        port: int = 0,
        request_timeout: float = 30.0,
    ) -> None:
        self.broker = broker
        self.host = host
        self.port = port
        self.request_timeout = request_timeout
        self._server: asyncio.AbstractServer | None = None

    async def start(self) -> None:
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port
        )
        self.port = self._server.sockets[0].getsockname()[1]

    async def close(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None

    async def serve_forever(self) -> None:
        if self._server is None:
            await self.start()
        assert self._server is not None
        async with self._server:
            await self._server.serve_forever()

    # -- plumbing ------------------------------------------------------

    async def _handle_connection(self, reader, writer) -> None:
        try:
            try:
                method, target, body = await asyncio.wait_for(
                    self._read_request(reader), timeout=self.request_timeout
                )
            except asyncio.TimeoutError:
                await self._send_json(
                    writer, 408, {"error": "request timed out"}
                )
                return
            except _BadRequest as exc:
                await self._send_json(writer, exc.code, {"error": str(exc)})
                return
            try:
                await self._route(method, target, body, writer)
            except (ConnectionResetError, BrokenPipeError):
                raise
            except Exception as exc:
                await self._send_json(
                    writer,
                    500,
                    {"error": f"{type(exc).__name__}: {exc}"},
                )
        except (ConnectionResetError, BrokenPipeError):
            pass  # client went away; nothing to answer
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError, OSError):
                pass

    async def _read_request(self, reader) -> tuple[str, str, bytes]:
        request_line = await reader.readline()
        if not request_line:
            raise _BadRequest("empty request")
        try:
            method, target, _version = (
                request_line.decode("latin-1").strip().split(" ", 2)
            )
        except ValueError:
            raise _BadRequest("malformed request line") from None
        content_length = 0
        while True:
            line = await reader.readline()
            if line in (b"\r\n", b"\n", b""):
                break
            name, _, value = line.decode("latin-1").partition(":")
            if name.strip().lower() == "content-length":
                try:
                    content_length = int(value.strip())
                except ValueError:
                    raise _BadRequest("bad Content-Length") from None
        if content_length > MAX_BODY_BYTES:
            raise _BadRequest("request body too large", code=413)
        body = (
            await reader.readexactly(content_length)
            if content_length
            else b""
        )
        return method.upper(), target, body

    async def _send_json(
        self, writer, code: int, payload: dict, headers: dict | None = None
    ) -> None:
        body = (json.dumps(payload, sort_keys=True) + "\n").encode("utf-8")
        head = [
            f"HTTP/1.1 {code} {_REASONS.get(code, 'OK')}",
            "Content-Type: application/json",
            f"Content-Length: {len(body)}",
            "Connection: close",
        ]
        for name, value in (headers or {}).items():
            head.append(f"{name}: {value}")
        writer.write(("\r\n".join(head) + "\r\n\r\n").encode("latin-1"))
        writer.write(body)
        await writer.drain()

    # -- routing -------------------------------------------------------

    async def _route(self, method, target, body, writer) -> None:
        url = urlsplit(target)
        path = url.path.rstrip("/") or "/"
        query = {
            name: values[-1] for name, values in parse_qs(url.query).items()
        }
        if path == "/healthz" and method == "GET":
            await self._send_json(writer, 200, {"ok": True})
            return
        if path == "/status" and method == "GET":
            status = await asyncio.to_thread(self.broker.status)
            await self._send_json(writer, 200, status)
            return
        if path == "/submit":
            if method != "POST":
                await self._send_json(
                    writer, 405, {"error": "submit is POST-only"}
                )
                return
            await self._submit(body, writer)
            return
        if path.startswith("/result/") and method == "GET":
            await self._result(path[len("/result/") :], query, writer)
            return
        if path.startswith("/events/") and method == "GET":
            await self._events(path[len("/events/") :], query, writer)
            return
        await self._send_json(writer, 404, {"error": f"no route {path}"})

    async def _submit(self, body: bytes, writer) -> None:
        try:
            payload = json.loads(body.decode("utf-8")) if body else {}
        except (ValueError, UnicodeDecodeError):
            await self._send_json(
                writer, 400, {"error": "request body is not valid JSON"}
            )
            return
        try:
            reply = await asyncio.to_thread(
                self.broker.submit_request, payload
            )
        except RequestError as exc:
            await self._send_json(writer, 400, {"error": str(exc)})
            return
        except SaturatedError as exc:
            await self._send_json(
                writer,
                503,
                {
                    "error": "saturated",
                    "in_flight": exc.in_flight,
                    "limit": exc.limit,
                    "retry_after": exc.retry_after,
                },
                headers={"Retry-After": f"{exc.retry_after:g}"},
            )
            return
        if reply.get("shed_after") is not None:
            # Part of the request was admitted before the queue filled;
            # report the partial admission as a shed so the client
            # retries the remainder.
            reply["error"] = "saturated"
            await self._send_json(
                writer, 503, reply, headers={"Retry-After": "1"}
            )
            return
        await self._send_json(writer, 200, reply)

    async def _result(self, key: str, query: dict, writer) -> None:
        try:
            timeout = float(query.get("timeout", 0.0))
        except ValueError:
            await self._send_json(writer, 400, {"error": "bad timeout"})
            return
        state = await asyncio.to_thread(self.broker.entry_state, key)
        if state is None:
            await self._send_json(
                writer, 404, {"error": f"unknown job {key}"}
            )
            return
        if "record" not in state and timeout > 0:
            try:
                record = await asyncio.to_thread(
                    self.broker.result, key, timeout
                )
                state = {"key": key, "state": "done", "record": record}
            except TimeoutError:
                state = await asyncio.to_thread(self.broker.entry_state, key)
            except Exception as exc:  # e.g. shutdown mid-wait
                await self._send_json(
                    writer, 500, {"error": f"{type(exc).__name__}: {exc}"}
                )
                return
        if state is not None and "record" in state:
            await self._send_json(writer, 200, state)
        else:
            await self._send_json(writer, 202, state or {"key": key})

    async def _events(self, key: str, query: dict, writer) -> None:
        try:
            start = int(query.get("from", -1))
        except ValueError:
            await self._send_json(writer, 400, {"error": "bad from"})
            return
        probe = await asyncio.to_thread(
            self.broker.events_after, key, start, 0.0
        )
        if probe is None:
            await self._send_json(
                writer, 404, {"error": f"unknown job {key}"}
            )
            return
        head = (
            "HTTP/1.1 200 OK\r\n"
            "Content-Type: application/x-ndjson\r\n"
            "Cache-Control: no-store\r\n"
            "Connection: close\r\n\r\n"
        )
        writer.write(head.encode("latin-1"))
        events, terminal = probe
        while True:
            for event in events:
                writer.write(encode_event(event))
                start = max(start, event["seq"])
            await writer.drain()
            if terminal:
                return
            result = await asyncio.to_thread(
                self.broker.events_after, key, start, 0.5
            )
            if result is None:  # trimmed from history mid-stream
                return
            events, terminal = result


class _BadRequest(Exception):
    def __init__(self, message: str, code: int = 400) -> None:
        super().__init__(message)
        self.code = code


async def _serve(broker, host, port, ready=None, stop=None) -> JobServer:
    server = JobServer(broker, host=host, port=port)
    await server.start()
    if ready is not None:
        ready(server)
    try:
        if stop is None:
            await asyncio.Event().wait()  # run forever
        else:
            await stop.wait()
    finally:
        await server.close()
    return server


def run_server(
    broker: JobBroker, host: str = "127.0.0.1", port: int = 8650
) -> None:
    """Blocking entry point used by ``python -m repro serve``."""
    try:
        asyncio.run(_serve(broker, host, port))
    except KeyboardInterrupt:
        pass


class ServerThread:
    """A server on a background thread (tests, smoke, embedding).

    ``with ServerThread(broker) as url:`` yields the base URL with the
    ephemeral port resolved; leaving the context stops the loop and
    joins the thread.  The broker's lifecycle stays with the caller.
    """

    def __init__(
        self, broker: JobBroker, host: str = "127.0.0.1", port: int = 0
    ) -> None:
        self.broker = broker
        self.host = host
        self.port = port
        self._ready = threading.Event()
        self._loop: asyncio.AbstractEventLoop | None = None
        self._stop: asyncio.Event | None = None
        self._thread = threading.Thread(
            target=self._run, name="serve-http", daemon=True
        )
        self._error: BaseException | None = None

    def _run(self) -> None:
        async def main():
            self._loop = asyncio.get_running_loop()
            self._stop = asyncio.Event()

            def ready(server):
                self.port = server.port
                self._ready.set()

            await _serve(
                self.broker, self.host, self.port, ready=ready,
                stop=self._stop,
            )

        try:
            asyncio.run(main())
        except BaseException as exc:  # surfaced on start()/stop()
            self._error = exc
            self._ready.set()

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    def start(self) -> "ServerThread":
        self._thread.start()
        self._ready.wait(timeout=10.0)
        if self._error is not None:
            raise RuntimeError("server failed to start") from self._error
        if not self._ready.is_set():
            raise RuntimeError("server did not start within 10s")
        return self

    def stop(self) -> None:
        if self._loop is not None and self._stop is not None:
            self._loop.call_soon_threadsafe(self._stop.set)
        self._thread.join(timeout=10.0)

    def __enter__(self) -> str:
        self.start()
        return self.url

    def __exit__(self, *exc) -> None:
        self.stop()
