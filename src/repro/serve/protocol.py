"""Wire protocol of the simulation job server (docs/serving.md).

Requests are plain JSON objects; three kinds are accepted:

* ``{"kind": "experiment", "config": {...}}`` — one operating point;
* ``{"kind": "sweep", "base": {...}, "rates": [...], "seeds": [...]}``
  — a rate x seed grid around a base configuration (the CLI's sweep
  mode over HTTP);
* ``{"kind": "campaign", "config": {...}, "schedule": [...]}`` or
  ``{"kind": "campaign", "config": {...}, "mtbf": C, "faults": N}`` —
  a runtime fault campaign, either with an explicit
  :class:`~repro.faults.schedule.FaultSchedule` payload or sampled
  arrivals (see docs/fault-model.md).

Every request normalizes to a list of
:class:`~repro.harness.parallel.SimJob`\\ s, which the broker then
hashes through the *same* :func:`~repro.harness.parallel.job_key` as
batch sweeps — identity over the wire is identity on disk, so a job a
client submits twice (or two clients submit at once) is one simulation
and one cache entry.

Events streamed back to clients are NDJSON: one JSON object per line,
each carrying at least ``event`` (``queued`` / ``coalesced`` /
``running`` / ``retry`` / ``telemetry`` / ``completed`` / ``failed``),
``key`` and ``seq``.
"""

from __future__ import annotations

import itertools
import json
from dataclasses import dataclass

from repro.core.config import SimulationConfig
from repro.core.types import NodeId
from repro.faults.schedule import FaultSchedule
from repro.harness.parallel import SimJob

#: Hard ceiling on jobs a single request may expand to; a sweep bigger
#: than this should be chunked by the client (admission control bounds
#: *concurrent* work, this bounds one request's fan-out).
MAX_JOBS_PER_REQUEST = 256

#: Configuration fields a request may set, mapped straight onto
#: :class:`SimulationConfig`.  ``audit`` and fault fields are excluded:
#: auditing is an interactive debugging mode and static fault lists
#: have no sweep-mode CLI equivalent either.
CONFIG_FIELDS = (
    "width",
    "height",
    "topology",
    "router",
    "routing",
    "traffic",
    "injection_rate",
    "flits_per_packet",
    "warmup_packets",
    "measure_packets",
    "max_cycles",
    "fault_drop_timeout",
    "drain_timeout",
    "seed",
    "backend",
    "shards",
)

#: Convenience aliases accepted in config payloads.
_SUGAR = {"rate": "injection_rate", "size": None}  # size -> width+height


class RequestError(ValueError):
    """A request payload that cannot be normalized into jobs."""


@dataclass(frozen=True)
class NormalizedRequest:
    """A validated request: its kind plus the jobs it expands to."""

    kind: str
    jobs: tuple[SimJob, ...]


def build_config(payload: object) -> SimulationConfig:
    """Whitelisted ``dict -> SimulationConfig`` with friendly errors."""
    if not isinstance(payload, dict):
        raise RequestError("config must be a JSON object")
    params: dict = {}
    for name, value in payload.items():
        if name == "size":
            params["width"] = params["height"] = value
            continue
        if name in _SUGAR and _SUGAR[name]:
            name = _SUGAR[name]
        if name not in CONFIG_FIELDS:
            raise RequestError(f"unknown config field {name!r}")
        params[name] = value
    shards = params.get("shards")
    if isinstance(shards, list):
        params["shards"] = tuple(shards)
    try:
        return SimulationConfig(**params)
    except (TypeError, ValueError) as exc:
        raise RequestError(f"bad config: {exc}") from exc


def _campaign_schedule(payload: dict, config: SimulationConfig) -> FaultSchedule:
    if "schedule" in payload and "mtbf" in payload:
        raise RequestError("campaign takes either 'schedule' or 'mtbf', not both")
    if "schedule" in payload:
        try:
            return FaultSchedule.from_payload(payload["schedule"])
        except (TypeError, ValueError, KeyError) as exc:
            raise RequestError(f"bad fault schedule: {exc}") from exc
    if "mtbf" not in payload:
        raise RequestError("campaign needs a 'schedule' or 'mtbf' field")
    faults = payload.get("faults", 1)
    if not isinstance(faults, int) or faults < 1:
        raise RequestError("'faults' must be a positive integer")
    nodes = [
        NodeId(x, y)
        for y in range(config.height)
        for x in range(config.width)
    ]
    try:
        return FaultSchedule.sampled(
            nodes,
            count=faults,
            seed=config.seed,
            mtbf=float(payload["mtbf"]),
            critical=payload.get("critical", True),
            weibull_shape=payload.get("weibull_shape"),
            duration=payload.get("transient"),
        )
    except (TypeError, ValueError) as exc:
        raise RequestError(f"bad campaign sampling: {exc}") from exc


def normalize_request(payload: object) -> NormalizedRequest:
    """Validate a request body and expand it into jobs.

    Raises :class:`RequestError` on anything malformed; the server maps
    that to HTTP 400 with the message in the body.
    """
    if not isinstance(payload, dict):
        raise RequestError("request body must be a JSON object")
    kind = payload.get("kind", "experiment")
    if kind == "experiment":
        config = build_config(payload.get("config", {}))
        jobs: list[SimJob] = [SimJob.of(config)]
    elif kind == "sweep":
        base = payload.get("base", payload.get("config", {}))
        if not isinstance(base, dict):
            raise RequestError("sweep 'base' must be a JSON object")
        rates = payload.get("rates")
        seeds = payload.get("seeds")
        if rates is None:
            rates = [base.get("rate", base.get("injection_rate", 0.1))]
        if seeds is None:
            seeds = [base.get("seed", 1)]
        if not isinstance(rates, list) or not rates:
            raise RequestError("sweep 'rates' must be a non-empty list")
        if not isinstance(seeds, list) or not seeds:
            raise RequestError("sweep 'seeds' must be a non-empty list")
        jobs = []
        for rate, seed in itertools.product(rates, seeds):
            point = dict(base)
            point.pop("rate", None)
            point.update({"injection_rate": rate, "seed": seed})
            jobs.append(SimJob.of(build_config(point)))
    elif kind == "campaign":
        config = build_config(payload.get("config", {}))
        schedule = _campaign_schedule(payload, config)
        jobs = [SimJob.of(config, schedule=schedule)]
    else:
        raise RequestError(
            f"unknown request kind {kind!r} "
            "(expected experiment, sweep or campaign)"
        )
    if len(jobs) > MAX_JOBS_PER_REQUEST:
        raise RequestError(
            f"request expands to {len(jobs)} jobs "
            f"(limit {MAX_JOBS_PER_REQUEST}); split it"
        )
    return NormalizedRequest(kind=kind, jobs=tuple(jobs))


def encode_event(event: dict) -> bytes:
    """One NDJSON line (sorted keys, newline-terminated)."""
    return (json.dumps(event, sort_keys=True) + "\n").encode("utf-8")


def decode_event(line: bytes | str) -> dict:
    if isinstance(line, bytes):
        line = line.decode("utf-8")
    return json.loads(line)
