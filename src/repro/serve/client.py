"""Thin blocking client for the simulation job server.

Stdlib-only (``http.client``); each call opens one connection, mirroring
the server's ``Connection: close`` framing.  Typical use::

    client = ServeClient("http://127.0.0.1:8650")
    reply = client.submit({"kind": "experiment",
                           "config": {"router": "roco", "rate": 0.1}})
    key = reply["jobs"][0]["key"]
    for event in client.events(key):      # NDJSON stream, live
        print(event["event"])
    record = client.result(key, timeout=300)

Raises :class:`ServerSaturated` on a 503 load-shed (carrying the
``retry_after`` hint) and :class:`RequestRejected` on a 400, so callers
can implement backoff without parsing bodies.
"""

from __future__ import annotations

import http.client
import json
import time
from collections.abc import Iterator
from urllib.parse import urlsplit

from repro.serve.protocol import decode_event


class ServeClientError(RuntimeError):
    """Base class for client-visible server errors."""

    def __init__(self, status: int, payload: dict) -> None:
        super().__init__(payload.get("error", f"HTTP {status}"))
        self.status = status
        self.payload = payload


class RequestRejected(ServeClientError):
    """The server rejected the request as malformed (HTTP 400)."""


class ServerSaturated(ServeClientError):
    """Admission control shed the request (HTTP 503)."""

    @property
    def retry_after(self) -> float:
        return float(self.payload.get("retry_after", 1.0))


class ServeClient:
    def __init__(self, base_url: str, timeout: float = 60.0) -> None:
        parts = urlsplit(base_url)
        if parts.scheme not in ("", "http"):
            raise ValueError("only http:// servers are supported")
        self.host = parts.hostname or "127.0.0.1"
        self.port = parts.port or 8650
        self.timeout = timeout

    # -- plumbing ------------------------------------------------------

    def _connect(self, timeout: float | None = None) -> http.client.HTTPConnection:
        return http.client.HTTPConnection(
            self.host,
            self.port,
            timeout=self.timeout if timeout is None else timeout,
        )

    def _request(
        self,
        method: str,
        path: str,
        body: dict | None = None,
        timeout: float | None = None,
    ) -> tuple[int, dict]:
        conn = self._connect(timeout)
        try:
            payload = (
                json.dumps(body).encode("utf-8") if body is not None else None
            )
            headers = {"Content-Type": "application/json"} if payload else {}
            conn.request(method, path, body=payload, headers=headers)
            response = conn.getresponse()
            text = response.read().decode("utf-8")
        finally:
            conn.close()
        try:
            decoded = json.loads(text) if text else {}
        except ValueError:
            decoded = {"error": f"non-JSON response: {text[:200]!r}"}
        return response.status, decoded

    def _checked(self, status: int, payload: dict) -> dict:
        if status == 400:
            raise RequestRejected(status, payload)
        if status == 503:
            raise ServerSaturated(status, payload)
        if status >= 400:
            raise ServeClientError(status, payload)
        return payload

    # -- API -----------------------------------------------------------

    def healthy(self) -> bool:
        try:
            status, payload = self._request("GET", "/healthz", timeout=5.0)
        except OSError:
            return False
        return status == 200 and payload.get("ok") is True

    def status(self) -> dict:
        return self._checked(*self._request("GET", "/status"))

    def submit(self, request: dict) -> dict:
        """Submit a protocol request; returns the job-key reply."""
        return self._checked(*self._request("POST", "/submit", body=request))

    def submit_with_backoff(self, request: dict, attempts: int = 8) -> dict:
        """Submit, sleeping out ``Retry-After`` on saturation."""
        for attempt in range(attempts):
            try:
                return self.submit(request)
            except ServerSaturated as exc:
                if attempt == attempts - 1:
                    raise
                time.sleep(exc.retry_after)
        raise AssertionError("unreachable")

    def result(self, key: str, timeout: float = 300.0) -> dict:
        """Block server-side until the record (or failure marker) lands."""
        deadline = time.monotonic() + timeout
        while True:
            remaining = max(0.0, deadline - time.monotonic())
            # Server-side wait is chunked so one HTTP request never
            # outlives intermediate proxies' idle timeouts.
            chunk = min(remaining, 30.0)
            status, payload = self._request(
                "GET",
                f"/result/{key}?timeout={chunk:g}",
                timeout=chunk + self.timeout,
            )
            payload = self._checked(status, payload)
            if status == 200 and "record" in payload:
                return payload["record"]
            if time.monotonic() >= deadline:
                raise TimeoutError(
                    f"job {key} not settled within {timeout:g}s "
                    f"(state {payload.get('state')!r})"
                )

    def events(self, key: str, start: int = -1) -> Iterator[dict]:
        """Stream a job's NDJSON events until its terminal event."""
        conn = self._connect()
        try:
            conn.request("GET", f"/events/{key}?from={start}")
            response = conn.getresponse()
            if response.status != 200:
                text = response.read().decode("utf-8")
                try:
                    payload = json.loads(text)
                except ValueError:
                    payload = {"error": text[:200]}
                self._checked(response.status, payload)
                return
            while True:
                line = response.readline()
                if not line:
                    return
                line = line.strip()
                if line:
                    yield decode_event(line)
        finally:
            conn.close()

    def wait(self, key: str, timeout: float = 300.0) -> dict:
        """Follow the event stream to completion; returns the record."""
        deadline = time.monotonic() + timeout
        for event in self.events(key):
            if event["event"] in ("completed", "failed"):
                break
            if time.monotonic() > deadline:
                raise TimeoutError(f"job {key} still running after {timeout:g}s")
        return self.result(key, timeout=max(1.0, deadline - time.monotonic()))
