"""Simulation-as-a-service: job server, broker and client.

``python -m repro serve`` boots an asyncio HTTP server whose requests
normalize through the same :func:`~repro.harness.parallel.job_key`
hashing as batch sweeps, so identical concurrent requests coalesce onto
one in-flight simulation and share one cache entry.  See
docs/serving.md.
"""

from repro.serve.broker import JobBroker, SaturatedError, Ticket
from repro.serve.client import (
    RequestRejected,
    ServeClient,
    ServeClientError,
    ServerSaturated,
)
from repro.serve.protocol import (
    MAX_JOBS_PER_REQUEST,
    NormalizedRequest,
    RequestError,
    normalize_request,
)
from repro.serve.server import JobServer, ServerThread, run_server

__all__ = [
    "JobBroker",
    "SaturatedError",
    "Ticket",
    "ServeClient",
    "ServeClientError",
    "ServerSaturated",
    "RequestRejected",
    "RequestError",
    "NormalizedRequest",
    "normalize_request",
    "MAX_JOBS_PER_REQUEST",
    "JobServer",
    "ServerThread",
    "run_server",
]
