"""The job broker: one warm cache, one worker set, many clients.

:class:`JobBroker` is the server's core and is deliberately transport
free — the HTTP layer (:mod:`repro.serve.server`), the CLI and the
tests all talk to the same object:

* **Dedupe** — every submission is normalized to its
  :func:`~repro.harness.parallel.job_key`.  A key already in flight is
  *coalesced*: the submission attaches to the existing entry and all
  waiters resolve from the single execution.  A key in the shared
  :class:`~repro.harness.parallel.ResultCache` resolves immediately
  without simulating.  N identical concurrent requests therefore run
  exactly one simulation (``tests/test_serve.py`` proves bit-identical
  fan-in under threads, workers and injected crashes).
* **Execution** — jobs run on a
  :class:`~repro.harness.resilient.ManagedWorkerSet` supervised by the
  server's :class:`~repro.harness.resilient.RetryPolicy` (crash
  recovery, deadlines, straggler speculation — the same machinery the
  chaos grid certifies for batch sweeps).  Where a pool cannot exist
  (``workers<=1``, daemonic context, no spawn entry point) the broker
  falls back to the supervised inline engine.
* **Admission control** — at most ``max_inflight`` distinct jobs may
  be queued or running; beyond that :meth:`submit` raises
  :class:`SaturatedError`, which the HTTP layer maps to a 503
  load-shed response with a ``Retry-After`` hint.
* **Events** — every entry accumulates an ordered event list
  (``queued``/``coalesced``/``running``/``retry``/``telemetry``/
  ``completed``/``failed``); :meth:`events_after` is a blocking,
  resumable read the streaming endpoint long-polls.

Thread-safety: :meth:`submit`, :meth:`status` and :meth:`events_after`
may be called from any thread; one internal pump thread owns the
worker set.
"""

from __future__ import annotations

import concurrent.futures
import itertools
import queue
import threading
import time
from dataclasses import asdict, dataclass

from repro.core.simulator import run_simulation
from repro.harness.export import result_record
from repro.harness.parallel import (
    ExecutionStats,
    ResultCache,
    SimJob,
    job_key,
    pool_fallback_reason,
    resolve_workers,
)
from repro.harness.resilient import (
    JobFailure,
    ManagedWorkerSet,
    RetryPolicy,
    run_serial,
)

#: Record field carrying per-job SchedulerCounters telemetry out of the
#: worker; the broker strips it before caching or returning the record,
#: so server-mode records stay byte-identical to batch-mode ones, and
#: streams it in the job's ``completed`` event instead.
TELEMETRY_FIELD = "_serve_scheduler"


def serve_execute_job(job: SimJob) -> dict:
    """Worker entry point for server jobs: record + scheduler telemetry.

    Top-level so ``spawn`` workers can import it.  Identical to
    :func:`~repro.harness.parallel.execute_job` except for the
    :data:`TELEMETRY_FIELD` side channel.
    """
    result = run_simulation(
        job.config, faults=list(job.faults), schedule=job.schedule
    )
    record = result_record(result)
    record[TELEMETRY_FIELD] = asdict(result.scheduler)
    return record


class SaturatedError(RuntimeError):
    """Admission control rejected a submission (queue at capacity)."""

    def __init__(self, in_flight: int, limit: int) -> None:
        super().__init__(
            f"server saturated: {in_flight} jobs in flight (limit {limit})"
        )
        self.in_flight = in_flight
        self.limit = limit
        #: Client hint: one median job duration would be ideal; a small
        #: constant is honest enough for a shed response.
        self.retry_after = 1.0


@dataclass
class Ticket:
    """What a submission bought: the job's key and its future result."""

    key: str
    future: concurrent.futures.Future
    coalesced: bool = False
    cached: bool = False


class _Entry:
    """One distinct job the broker knows about (in flight or settled)."""

    __slots__ = (
        "key",
        "job",
        "future",
        "state",
        "waiters",
        "events",
        "cond",
        "created",
        "settled_at",
        "index",
    )

    def __init__(self, key: str, job: SimJob) -> None:
        self.key = key
        self.job = job
        self.future = concurrent.futures.Future()
        self.state = "queued"
        self.waiters = 1
        self.events: list[dict] = []
        self.cond = threading.Condition()
        self.created = time.monotonic()
        self.settled_at: float | None = None
        self.index: int | None = None

    @property
    def terminal(self) -> bool:
        return self.state in ("done", "failed")


#: Sentinel telling the pump thread to exit.
_CLOSE = object()


class JobBroker:
    """See module docstring.  Construct, :meth:`start`, submit, close."""

    def __init__(
        self,
        cache: ResultCache | None = None,
        workers: int | None = None,
        policy: RetryPolicy | None = None,
        chaos=None,
        max_inflight: int = 64,
        history_limit: int = 1024,
        telemetry_interval: float = 1.0,
        job_fn=serve_execute_job,
    ) -> None:
        if max_inflight < 1:
            raise ValueError("max_inflight must be >= 1")
        self.cache = cache
        self.workers = resolve_workers(workers)
        self.policy = policy if policy is not None else RetryPolicy()
        self.chaos = chaos
        self.max_inflight = max_inflight
        self.history_limit = history_limit
        self.telemetry_interval = telemetry_interval
        self.job_fn = job_fn
        self.stats = ExecutionStats()
        self.requests = 0
        self.coalesced = 0
        self.shed = 0
        self.simulations_run = 0
        self._seq = itertools.count()
        self._inline_index = itertools.count()
        self._lock = threading.Lock()
        self._entries: dict[str, _Entry] = {}  # every known key
        self._inflight: dict[str, _Entry] = {}  # queued or running
        self._queue: queue.SimpleQueue = queue.SimpleQueue()
        self._by_index: dict[int, _Entry] = {}
        self._started = time.monotonic()
        self._closing = False
        self._pool: ManagedWorkerSet | None = None
        self._pool_fallback = pool_fallback_reason(self.workers)
        self._thread: threading.Thread | None = None
        self._last_telemetry = 0.0

    # -- lifecycle -----------------------------------------------------

    @property
    def mode(self) -> str:
        """``"pooled"`` (managed worker set) or ``"inline"``."""
        if self.workers > 1 and self._pool_fallback is None:
            return "pooled"
        return "inline"

    def start(self) -> "JobBroker":
        if self._thread is not None:
            raise RuntimeError("broker already started")
        if self.mode == "pooled":
            self._pool = ManagedWorkerSet(
                policy=self.policy,
                workers=self.workers,
                chaos=self.chaos,
                stats=self.stats,
                on_retry=self._on_retry,
                job_fn=self.job_fn,
            )
        self._thread = threading.Thread(
            target=self._pump_loop, name="serve-broker", daemon=True
        )
        self._thread.start()
        return self

    def close(self) -> None:
        with self._lock:
            if self._closing:
                return
            self._closing = True
        self._queue.put(_CLOSE)
        if self._thread is not None:
            self._thread.join(timeout=10.0)
        if self._pool is not None:
            self._pool.close()
        # Anyone still waiting gets a definite answer, not a hang.
        with self._lock:
            entries = list(self._inflight.values())
        for entry in entries:
            if not entry.future.done():
                entry.future.set_exception(
                    RuntimeError("server shut down before the job settled")
                )
            self._publish(entry, {"event": "failed", "reason": "shutdown"})
            self._settle_state(entry, "failed")

    def __enter__(self) -> "JobBroker":
        return self.start() if self._thread is None else self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- submission ----------------------------------------------------

    def submit(self, job: SimJob) -> Ticket:
        """Admit one job; coalesce, serve from cache, or enqueue."""
        key = job_key(job)
        with self._lock:
            if self._closing:
                raise RuntimeError("broker is closed")
            self.requests += 1
            entry = self._inflight.get(key)
            if entry is not None:
                # In-flight dedupe: attach to the running execution.
                self.coalesced += 1
                entry.waiters += 1
                self._publish(
                    entry, {"event": "coalesced", "waiters": entry.waiters}
                )
                return Ticket(key=key, future=entry.future, coalesced=True)
            settled = self._entries.get(key)
            if settled is not None and settled.terminal:
                # Already answered this session (memory is the fastest
                # cache tier); hand the same future out again.
                return Ticket(
                    key=key, future=settled.future, cached=True
                )
            if len(self._inflight) >= self.max_inflight:
                self.shed += 1
                raise SaturatedError(len(self._inflight), self.max_inflight)
            # Reserve the slot *before* the cache lookup so concurrent
            # identical submissions coalesce instead of racing the IO.
            entry = _Entry(key, job)
            self._entries[key] = entry
            self._inflight[key] = entry
            self._trim_history()
        self._publish(entry, {"event": "queued", "mode": self.mode})
        if self.cache is not None:
            cached = self.cache.lookup(key)
            if cached is not None:
                self._resolve_entry(entry, dict(cached), cached=True)
                return Ticket(key=key, future=entry.future, cached=True)
        self._queue.put(entry)
        return Ticket(key=key, future=entry.future)

    def submit_request(self, payload: object) -> dict:
        """Normalize and admit a protocol request; the HTTP submit body.

        Partial saturation is reported, not rolled back: jobs admitted
        before the limit hit keep running (their results are cached and
        shared, so the work is never wasted).
        """
        from repro.serve.protocol import normalize_request

        request = normalize_request(payload)
        tickets: list[Ticket] = []
        shed_after: int | None = None
        for job in request.jobs:
            try:
                tickets.append(self.submit(job))
            except SaturatedError:
                shed_after = len(tickets)
                break
        reply = {
            "kind": request.kind,
            "jobs": [
                {
                    "key": t.key,
                    "coalesced": t.coalesced,
                    "cached": t.cached,
                }
                for t in tickets
            ],
            "total_jobs": len(request.jobs),
        }
        if shed_after is not None:
            reply["shed_after"] = shed_after
        return reply

    # -- queries -------------------------------------------------------

    def entry_state(self, key: str) -> dict | None:
        """Public state of one job, or ``None`` if unknown."""
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                return None
            state = {
                "key": key,
                "state": entry.state,
                "waiters": entry.waiters,
                "age_seconds": round(time.monotonic() - entry.created, 3),
            }
        if entry.terminal and entry.future.done():
            exc = entry.future.exception()
            if exc is None:
                state["record"] = entry.future.result()
        return state

    def result(self, key: str, timeout: float | None = None) -> dict | None:
        """Block for a job's record (``None`` if the key is unknown)."""
        with self._lock:
            entry = self._entries.get(key)
        if entry is None:
            return None
        return entry.future.result(timeout=timeout)

    def events_after(
        self, key: str, start: int, timeout: float = 0.5
    ) -> tuple[list[dict], bool] | None:
        """Events of ``key`` with ``seq > start``; blocks up to timeout.

        Returns ``(events, terminal)`` — ``terminal`` True once the
        job's final event has been published — or ``None`` for an
        unknown key.  Streaming handlers call this in a loop, passing
        the last seq they saw.
        """
        with self._lock:
            entry = self._entries.get(key)
        if entry is None:
            return None
        with entry.cond:
            fresh = [e for e in entry.events if e["seq"] > start]
            if not fresh and not entry.terminal:
                entry.cond.wait(timeout)
                fresh = [e for e in entry.events if e["seq"] > start]
            # Publishes and the terminal transition both happen under
            # this condition, and nothing publishes after the terminal
            # event, so this snapshot is consistent.
            return fresh, entry.terminal

    def status(self) -> dict:
        """The ``/status`` payload: counters, liveness, in-flight table."""
        with self._lock:
            now = time.monotonic()
            inflight = [
                {
                    "key": e.key,
                    "state": e.state,
                    "waiters": e.waiters,
                    "age_seconds": round(now - e.created, 3),
                }
                for e in self._inflight.values()
            ]
            snapshot = {
                "mode": self.mode,
                "workers": self.workers,
                "uptime_seconds": round(now - self._started, 3),
                "requests": self.requests,
                "coalesced": self.coalesced,
                "shed": self.shed,
                "simulations_run": self.simulations_run,
                "in_flight": inflight,
                "in_flight_limit": self.max_inflight,
                "execution": self._stats_payload(),
            }
            if self._pool_fallback is not None and self.workers > 1:
                snapshot["pool_fallback"] = self._pool_fallback
        snapshot["cache"] = (
            self.cache.counters() if self.cache is not None else None
        )
        snapshot["worker_liveness"] = (
            self._pool.worker_liveness() if self._pool is not None else []
        )
        return snapshot

    def _stats_payload(self) -> dict:
        stats = self.stats
        return {
            "retries": stats.retries,
            "failures": stats.failures,
            "timeouts": stats.timeouts,
            "worker_crashes": stats.worker_crashes,
            "corrupt_results": stats.corrupt_results,
            "speculative": stats.speculative,
            "speculative_wins": stats.speculative_wins,
        }

    # -- internals -----------------------------------------------------

    def _publish(self, entry: _Entry, event: dict) -> None:
        event = dict(event)
        event["key"] = entry.key
        event["seq"] = next(self._seq)
        event["elapsed"] = round(time.monotonic() - entry.created, 3)
        with entry.cond:
            entry.events.append(event)
            entry.cond.notify_all()

    def _settle_state(self, entry: _Entry, state: str) -> None:
        with self._lock:
            entry.state = state
            entry.settled_at = time.monotonic()
            self._inflight.pop(entry.key, None)
            if entry.index is not None:
                self._by_index.pop(entry.index, None)
        # Wake streamers blocked past the final publish.
        with entry.cond:
            entry.cond.notify_all()

    def _trim_history(self) -> None:
        """Drop the oldest settled entries beyond the history bound.

        Caller holds ``self._lock``.
        """
        if len(self._entries) <= self.history_limit:
            return
        settled = sorted(
            (e for e in self._entries.values() if e.terminal),
            key=lambda e: e.settled_at or 0.0,
        )
        excess = len(self._entries) - self.history_limit
        for entry in settled[:excess]:
            self._entries.pop(entry.key, None)

    def _resolve_entry(
        self, entry: _Entry, outcome, cached: bool = False
    ) -> None:
        """Terminal transition: record or JobFailure, futures resolved."""
        if isinstance(outcome, JobFailure):
            record = outcome.record()
            self._publish(
                entry,
                {
                    "event": "failed",
                    "kind": outcome.kind,
                    "error_type": outcome.error_type,
                    "message": outcome.message,
                    "attempts": outcome.attempts,
                },
            )
            self._settle_state(entry, "failed")
            entry.future.set_result(record)
            return
        record = dict(outcome)
        telemetry = record.pop(TELEMETRY_FIELD, None)
        if not cached:
            with self._lock:
                self.simulations_run += 1
            if self.cache is not None:
                self.cache.store(entry.key, record)
        event = {"event": "completed", "cached": cached}
        if telemetry is not None:
            event["scheduler"] = telemetry
        self._publish(entry, event)
        self._settle_state(entry, "done")
        entry.future.set_result(record)

    def _on_retry(self, index: int, attempt: int, reason: str) -> None:
        with self._lock:
            entry = self._by_index.get(index)
        if entry is not None:
            self._publish(
                entry,
                {"event": "retry", "attempt": attempt + 1, "reason": reason},
            )

    def _maybe_telemetry(self) -> None:
        now = time.monotonic()
        if now - self._last_telemetry < self.telemetry_interval:
            return
        self._last_telemetry = now
        with self._lock:
            live = list(self._inflight.values())
            stats = self._stats_payload()
        if not live:
            return
        cache = self.cache.counters() if self.cache is not None else None
        liveness = (
            sum(1 for w in self._pool.worker_liveness() if w["alive"])
            if self._pool is not None
            else None
        )
        for entry in live:
            self._publish(
                entry,
                {
                    "event": "telemetry",
                    "execution": stats,
                    "cache": cache,
                    "alive_workers": liveness,
                },
            )

    def _run_inline(self, entry: _Entry) -> None:
        """Supervised in-process execution (the pool-less fallback)."""
        with self._lock:
            index = next(self._inline_index)
            entry.index = index
            self._by_index[index] = entry
        self.stats.total += 1
        entry.state = "running"
        self._publish(entry, {"event": "running", "mode": "inline"})
        outcomes = list(
            run_serial(
                [(index, entry.job)],
                self.policy,
                self.chaos,
                self.stats,
                on_retry=self._on_retry,
                job_fn=self.job_fn,
            )
        )
        ((_, outcome),) = outcomes
        self._resolve_entry(entry, outcome)

    def _pump_loop(self) -> None:
        poll = self.policy.poll_interval
        while True:
            closing = False
            # Admit queued entries to the execution engine.
            while True:
                try:
                    item = self._queue.get(
                        timeout=poll if self._pool is None else 0.0
                    )
                except queue.Empty:
                    break
                if item is _CLOSE:
                    closing = True
                    break
                if item.future.done():
                    continue  # settled while queued (shutdown path)
                if self._pool is not None:
                    index = self._pool.submit(item.job)
                    with self._lock:
                        item.index = index
                        item.state = "running"
                        self._by_index[index] = item
                    self._publish(
                        item, {"event": "running", "mode": "pooled"}
                    )
                else:
                    self._run_inline(item)
            if self._pool is not None:
                # pump() blocks <= poll_interval, so this loop does not
                # spin while idle.
                for index, outcome in self._pool.pump():
                    with self._lock:
                        entry = self._by_index.get(index)
                    if entry is not None:
                        self._resolve_entry(entry, outcome)
            self._maybe_telemetry()
            if closing:
                return
