"""Table-3 reaction matrix, exhaustively parametrized.

Every (architecture, component, module) combination is checked against
the paper's fault-reaction table: generic and Path-Sensitive routers
lose the whole node on any fault; RoCo isolates one module on critical
faults and absorbs non-critical ones with hardware recycling.  The same
matrix is then asserted for the *runtime* engine (a live, wired network)
so static and mid-run injection can never drift apart, and
``recovery.is_recoverable`` is checked for consistency with both.
"""

import itertools

import pytest

from repro.core.config import SimulationConfig
from repro.core.network import Network
from repro.core.types import NodeId
from repro.faults import (
    CLASSIFICATION,
    Component,
    ComponentFault,
    RuntimeFaultEngine,
    apply_faults,
    is_recoverable,
    recovery_mechanism,
)
from repro.routers.roco.path_set import COLUMN, ROW

ARCHITECTURES = ("generic", "path_sensitive", "roco")
VICTIM = NodeId(1, 1)

MATRIX = list(
    itertools.product(ARCHITECTURES, list(Component), (ROW, COLUMN))
)


def build_network(router):
    return Network(
        SimulationConfig(
            width=4, height=4, router=router, warmup_packets=0,
            measure_packets=10,
        )
    )


def inject_static(router, fault):
    network = build_network(router)
    apply_faults(network, [fault])
    network.wire()
    return network


def inject_runtime(router, fault):
    network = build_network(router)
    network.wire()
    RuntimeFaultEngine(network).apply(fault, cycle=0)
    return network


def assert_reaction(network, architecture, fault):
    """The Table-3 reaction for ``fault`` on ``architecture``."""
    router = network.routers[fault.node]
    modules = getattr(router, "modules", None)
    if architecture != "roco":
        assert modules is None
        assert router.dead
        assert all(vc.dead for vc in router.all_vcs())
        return
    assert not router.dead  # RoCo never loses the whole node.
    struck = modules[fault.module]
    partner = modules[COLUMN if fault.module == ROW else ROW]
    if fault.component in (Component.VA, Component.CROSSBAR, Component.MUX_DEMUX):
        assert struck.dead
        assert all(vc.dead for vc in struck.all_vcs())
    else:
        assert not struck.dead
        assert all(not vc.dead for vc in struck.all_vcs())
    # Graceful degradation: the partner module always keeps serving.
    assert not partner.dead
    assert not partner.rc_faulty and not partner.sa_degraded
    assert struck.rc_faulty == (fault.component is Component.RC)
    assert struck.sa_degraded == (fault.component is Component.SA)
    faulty_vcs = [vc for vc in struck.all_vcs() if vc.faulty]
    if fault.component is Component.BUFFER:
        assert len(faulty_vcs) == 1
        assert faulty_vcs[0] is struck.all_vcs()[fault.vc_position]
        assert faulty_vcs[0].effective_depth == 1
    else:
        assert not faulty_vcs


@pytest.mark.parametrize("architecture,component,module", MATRIX)
def test_static_reaction_matrix(architecture, component, module):
    fault = ComponentFault(VICTIM, component, module=module, vc_position=2)
    network = inject_static(architecture, fault)
    assert network.has_faults
    assert_reaction(network, architecture, fault)


@pytest.mark.parametrize("architecture,component,module", MATRIX)
def test_runtime_reaction_matches_static(architecture, component, module):
    """Mid-run injection imprints the exact same Table-3 state."""
    fault = ComponentFault(VICTIM, component, module=module, vc_position=2)
    network = inject_runtime(architecture, fault)
    assert network.has_faults
    assert_reaction(network, architecture, fault)


@pytest.mark.parametrize("architecture,component,module", MATRIX)
def test_handshake_state_matches_static(architecture, component, module):
    """Neighbour dead-port views agree between static and runtime paths."""
    fault = ComponentFault(VICTIM, component, module=module, vc_position=2)
    static = inject_static(architecture, fault)
    runtime = inject_runtime(architecture, fault)
    for node in static.nodes:
        static_ports = static.routers[node].outputs
        runtime_ports = runtime.routers[node].outputs
        assert set(static_ports) == set(runtime_ports)
        for direction, port in static_ports.items():
            assert port.dead == runtime_ports[direction].dead, (
                f"handshake mismatch at {node} towards {direction}"
            )


@pytest.mark.parametrize("architecture,component,module", MATRIX)
def test_is_recoverable_consistent_with_reaction(
    architecture, component, module
):
    """``is_recoverable`` is true exactly when no module or node died."""
    fault = ComponentFault(VICTIM, component, module=module, vc_position=2)
    network = inject_static(architecture, fault)
    router = network.routers[VICTIM]
    modules = getattr(router, "modules", None)
    something_died = router.dead or (
        modules is not None and any(m.dead for m in modules.values())
    )
    assert is_recoverable(architecture, component) == (not something_died)
    assert is_recoverable(architecture, component) == (
        architecture == "roco" and not CLASSIFICATION[component].blocks_roco_module
    )


def test_every_component_names_a_recovery_mechanism():
    for component in Component:
        assert recovery_mechanism(component)


class TestRuntimeClearAndOverlap:
    """Transient healing reverses the imprint; overlaps reference-count."""

    @pytest.mark.parametrize("architecture", ARCHITECTURES)
    @pytest.mark.parametrize("component", list(Component))
    def test_clear_restores_pristine_state(self, architecture, component):
        fault = ComponentFault(VICTIM, component, module=ROW, vc_position=2)
        network = build_network(architecture)
        network.wire()
        engine = RuntimeFaultEngine(network)
        engine.apply(fault, cycle=10)
        engine.clear(fault, cycle=60)
        router = network.routers[VICTIM]
        assert not router.dead
        assert all(not vc.dead for vc in router.all_vcs())
        modules = getattr(router, "modules", None)
        if modules is not None:
            for module in modules.values():
                assert not module.dead
                assert not module.rc_faulty and not module.sa_degraded
            assert all(not vc.faulty for vc in router.all_vcs())
        # Neighbour handshake views are healed too.
        for node in network.nodes:
            for port in network.routers[node].outputs.values():
                assert not port.dead

    @pytest.mark.parametrize(
        "component", [Component.VA, Component.RC, Component.SA, Component.BUFFER]
    )
    def test_transient_expiry_under_permanent_keeps_fault(self, component):
        """Refcounting: an expiring transient cannot heal a permanent."""
        fault = ComponentFault(VICTIM, component, module=ROW, vc_position=1)
        network = build_network("roco")
        network.wire()
        engine = RuntimeFaultEngine(network)
        engine.apply(fault, cycle=10)   # permanent
        engine.apply(fault, cycle=20)   # overlapping transient
        engine.clear(fault, cycle=50)   # transient expires
        module = network.routers[VICTIM].modules[ROW]
        if component is Component.VA:
            assert module.dead
        elif component is Component.RC:
            assert module.rc_faulty
        elif component is Component.SA:
            assert module.sa_degraded
        else:
            vcs = module.all_vcs()
            assert vcs[1].faulty
        engine.clear(fault, cycle=90)   # the "permanent" released too
        assert not module.dead
        assert not module.rc_faulty and not module.sa_degraded
        assert all(not vc.faulty for vc in module.all_vcs())

    def test_apply_reports_topology_change(self):
        network = build_network("roco")
        network.wire()
        engine = RuntimeFaultEngine(network)
        critical = ComponentFault(VICTIM, Component.VA, module=ROW)
        soft = ComponentFault(VICTIM, Component.RC, module=COLUMN)
        assert engine.apply(critical, cycle=0) is True
        assert engine.apply(critical, cycle=1) is False  # already dead
        assert engine.apply(soft, cycle=2) is False      # no kill
        assert engine.clear(critical, cycle=3) is False  # one ref remains
        assert engine.clear(critical, cycle=4) is True   # module revives
