"""Unit tests for the fundamental data types."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.types import (
    CARDINALS,
    Direction,
    FlitType,
    NodeId,
    Packet,
    is_worm_tail,
    make_packet_flits,
)


class TestDirection:
    def test_opposites_are_involutive(self):
        for d in Direction:
            assert d.opposite.opposite is d

    def test_cardinal_opposites(self):
        assert Direction.NORTH.opposite is Direction.SOUTH
        assert Direction.EAST.opposite is Direction.WEST
        assert Direction.LOCAL.opposite is Direction.LOCAL

    def test_row_column_partition(self):
        rows = [d for d in CARDINALS if d.is_row]
        columns = [d for d in CARDINALS if d.is_column]
        assert set(rows) == {Direction.EAST, Direction.WEST}
        assert set(columns) == {Direction.NORTH, Direction.SOUTH}

    def test_local_is_neither_row_nor_column(self):
        assert not Direction.LOCAL.is_row
        assert not Direction.LOCAL.is_column

    def test_direction_values_are_stable(self):
        assert [int(d) for d in CARDINALS] == [0, 1, 2, 3]


class TestNodeId:
    def test_neighbors(self):
        n = NodeId(3, 3)
        assert n.neighbor(Direction.NORTH) == NodeId(3, 2)
        assert n.neighbor(Direction.SOUTH) == NodeId(3, 4)
        assert n.neighbor(Direction.EAST) == NodeId(4, 3)
        assert n.neighbor(Direction.WEST) == NodeId(2, 3)
        assert n.neighbor(Direction.LOCAL) == n

    def test_hashable_and_equal(self):
        assert NodeId(1, 2) == NodeId(1, 2)
        assert len({NodeId(1, 2), NodeId(1, 2), NodeId(2, 1)}) == 2

    @given(st.integers(-20, 20), st.integers(-20, 20))
    def test_neighbor_roundtrip(self, x, y):
        n = NodeId(x, y)
        for d in CARDINALS:
            assert n.neighbor(d).neighbor(d.opposite) == n

    def test_str(self):
        assert str(NodeId(2, 5)) == "(2,5)"


def _packet(size=4, pid=0):
    return Packet(
        pid=pid, src=NodeId(0, 0), dest=NodeId(3, 3), size=size, created_cycle=0
    )


class TestPacketAndFlits:
    def test_worm_structure(self):
        flits = make_packet_flits(_packet(4))
        assert [f.ftype for f in flits] == [
            FlitType.HEAD,
            FlitType.BODY,
            FlitType.BODY,
            FlitType.TAIL,
        ]
        assert [f.seq for f in flits] == [0, 1, 2, 3]

    def test_two_flit_packet(self):
        flits = make_packet_flits(_packet(2))
        assert flits[0].is_head and is_worm_tail(flits[1])

    def test_single_flit_packet_is_head_and_tail(self):
        (flit,) = make_packet_flits(_packet(1))
        assert flit.is_head
        assert is_worm_tail(flit)

    def test_zero_size_rejected(self):
        with pytest.raises(ValueError):
            make_packet_flits(_packet(0))

    def test_latency_requires_delivery(self):
        p = _packet()
        with pytest.raises(ValueError):
            _ = p.latency
        p.delivered_cycle = 42
        assert p.latency == 42

    def test_flit_carries_packet_endpoints(self):
        flits = make_packet_flits(_packet())
        assert flits[0].src == NodeId(0, 0)
        assert flits[0].dest == NodeId(3, 3)

    @given(st.integers(1, 12))
    def test_exactly_one_tail_per_worm(self, size):
        flits = make_packet_flits(_packet(size))
        assert sum(1 for f in flits if is_worm_tail(f)) == 1
        assert is_worm_tail(flits[-1])
