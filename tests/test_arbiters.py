"""Unit tests for the arbitration primitives."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.arbiters import MatrixArbiter, RoundRobinArbiter


class TestRoundRobin:
    def test_single_requester_wins(self):
        arb = RoundRobinArbiter(4)
        assert arb.grant([False, False, True, False]) == 2

    def test_no_request_no_grant(self):
        arb = RoundRobinArbiter(3)
        assert arb.grant([False, False, False]) is None

    def test_rotation_after_grant(self):
        arb = RoundRobinArbiter(3)
        assert arb.grant([True, True, True]) == 0
        assert arb.grant([True, True, True]) == 1
        assert arb.grant([True, True, True]) == 2
        assert arb.grant([True, True, True]) == 0

    def test_persistent_requester_served_within_n_grants(self):
        arb = RoundRobinArbiter(4)
        served = set()
        for _ in range(4):
            served.add(arb.grant([True, True, True, True]))
        assert served == {0, 1, 2, 3}

    def test_peek_does_not_advance(self):
        arb = RoundRobinArbiter(3)
        assert arb.peek([True, True, True]) == 0
        assert arb.peek([True, True, True]) == 0
        assert arb.grant([True, True, True]) == 0

    def test_wrong_width_rejected(self):
        arb = RoundRobinArbiter(3)
        with pytest.raises(ValueError):
            arb.grant([True])

    def test_zero_requesters_rejected(self):
        with pytest.raises(ValueError):
            RoundRobinArbiter(0)

    @given(st.lists(st.lists(st.booleans(), min_size=5, max_size=5), max_size=40))
    def test_grant_is_always_a_requester(self, request_seq):
        arb = RoundRobinArbiter(5)
        for requests in request_seq:
            winner = arb.grant(requests)
            if any(requests):
                assert winner is not None and requests[winner]
            else:
                assert winner is None


class TestMatrixArbiter:
    def test_single_requester(self):
        arb = MatrixArbiter(4)
        assert arb.grant([False, True, False, False]) == 1

    def test_least_recently_served_priority(self):
        arb = MatrixArbiter(3)
        assert arb.grant([True, True, True]) == 0
        # 0 demoted: next winner among {1, 2} is 1.
        assert arb.grant([True, True, True]) == 1
        assert arb.grant([True, True, True]) == 2
        assert arb.grant([True, True, True]) == 0

    def test_winner_demoted_below_nonrequesters_too(self):
        arb = MatrixArbiter(2)
        assert arb.grant([True, False]) == 0
        assert arb.grant([True, True]) == 1

    @given(st.lists(st.lists(st.booleans(), min_size=4, max_size=4), max_size=40))
    def test_always_grants_a_requester(self, request_seq):
        arb = MatrixArbiter(4)
        for requests in request_seq:
            winner = arb.grant(requests)
            if any(requests):
                assert winner is not None and requests[winner]
            else:
                assert winner is None

    @given(st.integers(2, 6))
    def test_fairness_under_saturation(self, n):
        """Every line is served exactly once per n grants at saturation."""
        arb = MatrixArbiter(n)
        winners = [arb.grant([True] * n) for _ in range(2 * n)]
        for start in range(0, 2 * n, n):
            assert set(winners[start : start + n]) == set(range(n))
