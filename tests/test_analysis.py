"""Unit tests for the analytical reproductions (Table 2, Figure 2)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import (
    figure2,
    generic_non_blocking_probability,
    generic_va_inventory,
    non_blocking_assignments,
    non_blocking_assignments_bruteforce,
    path_sensitive_non_blocking_probability,
    roco_non_blocking_probability,
    roco_va_inventory,
    table2,
)


class TestEquationOne:
    def test_base_cases(self):
        assert non_blocking_assignments(1) == 0
        assert non_blocking_assignments(2) == 1

    def test_known_values(self):
        """F(N) is the derangement sequence: 0, 1, 2, 9, 44, 265."""
        assert [non_blocking_assignments(n) for n in range(1, 7)] == [
            0,
            1,
            2,
            9,
            44,
            265,
        ]

    @given(st.integers(1, 6))
    @settings(max_examples=6, deadline=None)
    def test_recurrence_matches_bruteforce(self, n):
        assert non_blocking_assignments(n) == non_blocking_assignments_bruteforce(n)

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            non_blocking_assignments(-1)


class TestTable2:
    def test_generic_value(self):
        """44 / 4^5 = 0.0429..., printed as 0.043 in the paper."""
        assert generic_non_blocking_probability(5) == pytest.approx(
            0.043, abs=5e-4
        )

    def test_path_sensitive_value(self):
        assert path_sensitive_non_blocking_probability() == pytest.approx(0.125)

    def test_roco_value(self):
        assert roco_non_blocking_probability() == pytest.approx(0.25)

    def test_ordering(self):
        t = table2()
        assert t["generic"] < t["path_sensitive"] < t["roco"]

    def test_roco_six_times_generic(self):
        """'almost six times more likely ... (25% to 4.3%)'."""
        t = table2()
        assert t["roco"] / t["generic"] == pytest.approx(5.8, abs=0.2)

    def test_roco_twice_path_sensitive(self):
        t = table2()
        assert t["roco"] / t["path_sensitive"] == pytest.approx(2.0)


class TestFigure2:
    def test_roco_has_fewer_arbiters(self):
        """'FEWER (4v vs 5v) arbiters than generic case'."""
        v = 3
        generic = generic_va_inventory(v, "R=>v")
        roco = roco_va_inventory(v, "R=>v")
        assert generic.second_stage_count == 5 * v
        assert roco.second_stage_count == 4 * v

    def test_roco_has_smaller_arbiters(self):
        """'SMALLER (2v:1 vs 5v:1)'."""
        v = 3
        assert generic_va_inventory(v, "R=>v").second_stage_width == 5 * v
        assert roco_va_inventory(v, "R=>v").second_stage_width == 2 * v

    def test_r_to_p_adds_first_stage(self):
        v = 3
        generic = generic_va_inventory(v, "R=>P")
        assert generic.first_stage_count == 5 * v
        assert generic.first_stage_width == v

    def test_total_request_lines_favour_roco(self):
        for variant in ("R=>v", "R=>P"):
            g = generic_va_inventory(3, variant)
            r = roco_va_inventory(3, variant)
            assert r.total_request_lines < g.total_request_lines

    def test_figure2_bundle(self):
        bundle = figure2(3)
        assert set(bundle) == {
            "generic R=>v",
            "generic R=>P",
            "roco R=>v",
            "roco R=>P",
        }

    def test_unknown_variant_rejected(self):
        with pytest.raises(ValueError):
            generic_va_inventory(3, "R=>Q")
        with pytest.raises(ValueError):
            roco_va_inventory(3, "R=>Q")
