"""Unit and statistical tests for the traffic generators."""

import random

import pytest

from repro.core.config import SimulationConfig
from repro.core.types import NodeId
from repro.traffic import (
    HotspotTraffic,
    MultimediaTraffic,
    NeighborTraffic,
    SelfSimilarTraffic,
    TransposeTraffic,
    UniformTraffic,
    make_traffic,
)
from repro.traffic.selfsimilar import pareto, pareto_mean


def bind(pattern, rate=0.2, k=4, seed=5):
    config = SimulationConfig(width=k, height=k, injection_rate=rate)
    nodes = [NodeId(x, y) for y in range(k) for x in range(k)]
    pattern.bind(config, random.Random(seed), nodes)
    return pattern, nodes


def mean_rate(pattern, nodes, cycles=4000):
    total = sum(
        pattern.arrivals(node, cycle) for cycle in range(cycles) for node in nodes
    )
    return total / (cycles * len(nodes))


class TestFactory:
    def test_known_names(self):
        for name in (
            "uniform",
            "transpose",
            "self_similar",
            "multimedia",
            "hotspot",
            "neighbor",
        ):
            assert make_traffic(name).name == name

    def test_unknown_name(self):
        with pytest.raises(ValueError):
            make_traffic("tornado")


class TestUniform:
    def test_never_self(self):
        pattern, nodes = bind(UniformTraffic())
        for node in nodes:
            for _ in range(20):
                assert pattern.destination(node) != node

    def test_bernoulli_rate(self):
        pattern, nodes = bind(UniformTraffic(), rate=0.2)
        target = 0.2 / 4  # packets/node/cycle
        assert mean_rate(pattern, nodes) == pytest.approx(target, rel=0.15)

    def test_destinations_cover_mesh(self):
        pattern, nodes = bind(UniformTraffic())
        seen = {pattern.destination(NodeId(0, 0)) for _ in range(400)}
        assert len(seen) == len(nodes) - 1


class TestTranspose:
    def test_mapping(self):
        pattern, _ = bind(TransposeTraffic())
        assert pattern.destination(NodeId(1, 3)) == NodeId(3, 1)

    def test_diagonal_falls_back_to_uniform(self):
        pattern, _ = bind(TransposeTraffic())
        for _ in range(10):
            assert pattern.destination(NodeId(2, 2)) != NodeId(2, 2)

    def test_rectangular_mesh_out_of_bounds_partner(self):
        config = SimulationConfig(width=6, height=2, injection_rate=0.1)
        nodes = [NodeId(x, y) for y in range(2) for x in range(6)]
        pattern = TransposeTraffic()
        pattern.bind(config, random.Random(1), nodes)
        # (5, 0) transposes to (0, 5), outside the 6x2 mesh.
        dest = pattern.destination(NodeId(5, 0))
        assert dest in set(nodes) and dest != NodeId(5, 0)


class TestSelfSimilar:
    def test_pareto_mean(self):
        assert pareto_mean(2.0, 10.0) == pytest.approx(20.0)
        with pytest.raises(ValueError):
            pareto_mean(0.9, 10.0)

    def test_pareto_samples_above_minimum(self):
        rng = random.Random(3)
        assert all(pareto(rng, 1.9, 5.0) >= 5.0 for _ in range(200))

    def test_long_run_rate_matches_target(self):
        pattern, nodes = bind(SelfSimilarTraffic(), rate=0.2)
        target = 0.2 / 4
        assert mean_rate(pattern, nodes, cycles=12_000) == pytest.approx(
            target, rel=0.3
        )

    def test_burstiness_exceeds_bernoulli(self):
        """ON/OFF injection must have a higher variance-to-mean ratio
        (index of dispersion) than a Bernoulli process of the same rate."""
        pattern, nodes = bind(SelfSimilarTraffic(), rate=0.2)
        node = nodes[0]
        window = 50
        counts = []
        for w in range(200):
            counts.append(
                sum(pattern.arrivals(node, w * window + c) for c in range(window))
            )
        mean = sum(counts) / len(counts)
        var = sum((c - mean) ** 2 for c in counts) / len(counts)
        assert mean > 0
        assert var / mean > 1.5  # Bernoulli windows give ~ (1 - p) < 1

    def test_duty_cycle_in_unit_interval(self):
        pattern = SelfSimilarTraffic()
        assert 0 < pattern.duty_cycle < 1


class TestMultimedia:
    def test_gop_validation(self):
        with pytest.raises(ValueError):
            MultimediaTraffic(gop="IBX")

    def test_fixed_peers(self):
        pattern, nodes = bind(MultimediaTraffic())
        for node in nodes:
            first = pattern.destination(node)
            assert all(pattern.destination(node) == first for _ in range(5))
            assert first != node

    def test_long_run_rate_matches_target(self):
        pattern, nodes = bind(MultimediaTraffic(frame_period=100), rate=0.2)
        target = 0.2 / 4
        assert mean_rate(pattern, nodes, cycles=12_000) == pytest.approx(
            target, rel=0.25
        )

    def test_frame_type_cycles_through_gop(self):
        pattern, nodes = bind(MultimediaTraffic(frame_period=10))
        node = nodes[0]
        kinds = {pattern.frame_at(node, c) for c in range(0, 120, 10)}
        assert kinds == {"I", "P", "B"}


class TestHotspot:
    def test_bias_towards_hotspot(self):
        hot = NodeId(2, 2)
        pattern, nodes = bind(HotspotTraffic(hotspots=[hot], hot_fraction=0.5))
        hits = sum(pattern.destination(NodeId(0, 0)) == hot for _ in range(1000))
        assert hits > 350  # ~50% biased + ~3% uniform share

    def test_default_hotspot_is_centre(self):
        pattern, _ = bind(HotspotTraffic())
        assert pattern.hotspots == [NodeId(2, 2)]

    def test_invalid_fraction(self):
        with pytest.raises(ValueError):
            HotspotTraffic(hot_fraction=1.5)

    def test_hotspot_outside_mesh_rejected(self):
        with pytest.raises(ValueError):
            bind(HotspotTraffic(hotspots=[NodeId(9, 9)]))


class TestNeighbor:
    def test_destinations_are_adjacent(self):
        pattern, nodes = bind(NeighborTraffic())
        for node in nodes:
            for _ in range(10):
                dest = pattern.destination(node)
                assert abs(dest.x - node.x) + abs(dest.y - node.y) == 1

    def test_corner_has_two_choices(self):
        pattern, _ = bind(NeighborTraffic())
        seen = {pattern.destination(NodeId(0, 0)) for _ in range(60)}
        assert seen == {NodeId(1, 0), NodeId(0, 1)}
