"""Property-based tests of the activity-driven scheduler's contract.

Two invariants must hold for ANY configuration:

* **No wasted steps** — a router that is *ground-truth idle* at the
  start of a cycle (no buffered flit, no pending switch traversal, no
  arrival landing this cycle, nothing queued at its source PE) is never
  stepped.  This is the energy/performance promise of the scheduler.
* **No missed wakes** — every router whose ``wake()`` fires (source
  injection or a timed in-flight arrival) is stepped in that same
  cycle.  This is the correctness promise: work is never deferred, so
  the pipeline advances exactly as under a full sweep.

Both are checked by instrumenting a live simulation: the first by
snapshotting per-router state immediately before every ``step()``, the
second through the ``on_cycle_stepped`` observer.
"""

from __future__ import annotations

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.config import SimulationConfig
from repro.core.simulator import Simulator

sim_params = st.fixed_dictionaries(
    {
        "router": st.sampled_from(["generic", "path_sensitive", "roco"]),
        "routing": st.sampled_from(["xy", "xy-yx", "adaptive"]),
        "traffic": st.sampled_from(["uniform", "transpose", "neighbor"]),
        "injection_rate": st.sampled_from([0.05, 0.12, 0.2]),
        "seed": st.integers(1, 10_000),
        "flits_per_packet": st.sampled_from([1, 2, 4]),
    }
)


def build(params) -> Simulator:
    return Simulator(
        SimulationConfig(
            width=3,
            height=3,
            warmup_packets=10,
            measure_packets=50,
            max_cycles=20_000,
            **params,
        )
    )


def ground_truth_idle(sim: Simulator, router, cycle: int, due) -> bool:
    """Whether stepping ``router`` this cycle could possibly matter.

    Deliberately conservative (one-directional): a router failing this
    test MAY still legitimately sleep (e.g. it only holds credits in
    flight), but a router passing it must NOT be stepped.
    """
    if router._sa_winners:
        return False
    for vc in router.all_vcs():
        if vc.queue:
            return False
    if router in due:
        return False
    source = sim.sources[router.node]
    if source.queue or source.current:
        return False
    return True


def run_instrumented(sim: Simulator):
    """Run ``sim`` checking both scheduler properties every cycle."""
    network = sim.network
    original_step = network.step
    pending_wakes: list = []
    violations: list[str] = []

    for r in network._router_list:
        def make_wake(router, original):
            def wake():
                was_active = router.active
                original()
                if not was_active and router.active:
                    pending_wakes.append(router)
            return wake

        r.wake = make_wake(r, r.wake)

    def checking_step(cycle):
        due = {router for router, _ in network._wake_queue.get(cycle, ())}
        idle = {
            id(r): r.node
            for r in network._router_list
            if ground_truth_idle(sim, r, cycle, due)
        }
        original_step(cycle)
        stepped_ids = {id(r) for r in last_stepped}
        for rid, node in idle.items():
            if rid in stepped_ids:
                violations.append(f"idle router {node} stepped at {cycle}")
        for router in pending_wakes:
            if id(router) not in stepped_ids:
                violations.append(
                    f"woken router {router.node} not stepped at {cycle}"
                )
        pending_wakes.clear()

    last_stepped: list = []

    def observe(cycle, stepped):
        last_stepped[:] = stepped

    network.on_cycle_stepped = observe
    network.step = checking_step
    result = sim.run()
    return result, violations


@given(sim_params)
@settings(max_examples=20, deadline=None, suppress_health_check=[HealthCheck.too_slow])
def test_idle_routers_never_stepped_and_woken_routers_always_are(params):
    sim = build(params)
    result, violations = run_instrumented(sim)
    assert not violations, violations[:5]
    # Sanity: the run completed normally and the scheduler did sleep.
    assert result.completion_probability == 1.0
    assert result.scheduler.duty_cycle < 1.0


@given(sim_params)
@settings(max_examples=10, deadline=None, suppress_health_check=[HealthCheck.too_slow])
def test_full_sweep_never_misses_wakes_either(params):
    """The reference scheduler trivially satisfies the wake property —
    pinning it guards the instrumentation itself against drift."""
    sim = Simulator(
        SimulationConfig(
            width=3,
            height=3,
            warmup_packets=10,
            measure_packets=50,
            max_cycles=20_000,
            **params,
        ),
        full_sweep=True,
    )
    result, violations = run_instrumented(sim)
    wake_misses = [v for v in violations if "not stepped" in v]
    assert not wake_misses, wake_misses[:5]
    assert result.scheduler.duty_cycle == 1.0
