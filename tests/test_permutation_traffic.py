"""Tests for the bit-permutation traffic patterns."""

import random

import pytest

from repro.core.config import SimulationConfig
from repro.core.types import NodeId
from repro.traffic import (
    BitComplementTraffic,
    BitReverseTraffic,
    ShuffleTraffic,
    make_traffic,
)

from .conftest import run_small


def bind(pattern, k=4):
    config = SimulationConfig(width=k, height=k, injection_rate=0.1)
    nodes = [NodeId(x, y) for y in range(k) for x in range(k)]
    pattern.bind(config, random.Random(1), nodes)
    return pattern, nodes


class TestBitComplement:
    def test_corner_maps_to_opposite_corner(self):
        pattern, _ = bind(BitComplementTraffic())
        assert pattern.destination(NodeId(0, 0)) == NodeId(3, 3)
        assert pattern.destination(NodeId(3, 3)) == NodeId(0, 0)

    def test_is_an_involution(self):
        pattern, nodes = bind(BitComplementTraffic())
        for node in nodes:
            dest = pattern.destination(node)
            assert pattern.destination(dest) == node

    def test_rejects_non_power_of_two(self):
        config = SimulationConfig(width=3, height=3, injection_rate=0.1)
        nodes = [NodeId(x, y) for y in range(3) for x in range(3)]
        with pytest.raises(ValueError):
            BitComplementTraffic().bind(config, random.Random(1), nodes)


class TestBitReverse:
    def test_known_mapping(self):
        # 4x4 -> 4 bits. Node (1,0) = index 1 = 0b0001 -> 0b1000 = 8 = (0,2).
        pattern, _ = bind(BitReverseTraffic())
        assert pattern.destination(NodeId(1, 0)) == NodeId(0, 2)

    def test_is_an_involution_modulo_self(self):
        pattern, nodes = bind(BitReverseTraffic())
        for node in nodes:
            idx = node.y * 4 + node.x
            rev = pattern._permute(idx)
            assert pattern._permute(rev) == idx


class TestShuffle:
    def test_known_mapping(self):
        # index 5 = 0b0101 -> rotate-left = 0b1010 = 10 = (2,2).
        pattern, _ = bind(ShuffleTraffic())
        assert pattern.destination(NodeId(1, 1)) == NodeId(2, 2)

    def test_permutation_is_bijective(self):
        pattern, nodes = bind(ShuffleTraffic())
        images = {pattern._permute(i) for i in range(16)}
        assert images == set(range(16))

    def test_self_mapping_falls_back(self):
        # index 0 and index 15 are shuffle fixed points.
        pattern, _ = bind(ShuffleTraffic())
        for node in (NodeId(0, 0), NodeId(3, 3)):
            assert pattern.destination(node) != node


class TestEndToEnd:
    @pytest.mark.parametrize(
        "traffic", ["bit_complement", "bit_reverse", "shuffle"]
    )
    def test_registered_and_simulatable(self, traffic):
        assert make_traffic(traffic).name == traffic
        result = run_small(traffic=traffic, injection_rate=0.08)
        assert result.completion_probability == 1.0

    def test_bit_complement_stresses_bisection(self):
        """Every bit-complement packet crosses the mesh centre, so its
        latency exceeds uniform traffic's at the same rate."""
        uniform = run_small(traffic="uniform", injection_rate=0.10)
        complement = run_small(traffic="bit_complement", injection_rate=0.10)
        assert complement.average_hops > uniform.average_hops
        assert complement.average_latency > uniform.average_latency
