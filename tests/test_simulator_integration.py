"""End-to-end integration tests: full simulations on small meshes."""

import pytest

from repro.core.simulator import Simulator, run_simulation

from .conftest import run_small, small_config

ROUTERS = ("generic", "path_sensitive", "roco")
ROUTINGS = ("xy", "xy-yx", "adaptive")


class TestFullDelivery:
    @pytest.mark.parametrize("router", ROUTERS)
    @pytest.mark.parametrize("routing", ROUTINGS)
    def test_every_packet_delivered(self, router, routing):
        result = run_small(router=router, routing=routing)
        assert result.delivered_packets == result.injected_packets
        assert result.dropped_packets == 0
        assert result.completion_probability == 1.0

    @pytest.mark.parametrize("router", ROUTERS)
    def test_flit_conservation(self, router):
        """Delivered flits == delivered packets x packet size."""
        sim = Simulator(small_config(router=router))
        result = sim.run()
        stats = sim.network.stats
        assert stats.delivered_flits == result.delivered_packets * 4
        # Nothing left anywhere in the network.
        for r in sim.network.routers.values():
            for vc in r.all_vcs():
                assert vc.empty

    @pytest.mark.parametrize(
        "traffic", ["uniform", "transpose", "self_similar", "multimedia", "neighbor"]
    )
    def test_traffic_patterns_complete(self, traffic):
        result = run_small(traffic=traffic, injection_rate=0.08)
        assert result.completion_probability == 1.0


class TestLatencySanity:
    def test_zero_load_latency_close_to_pipeline_bound(self):
        """At near-zero load, latency ~ 3 cycles/hop + serialization."""
        result = run_small(
            router="roco", injection_rate=0.01, measure_packets=80
        )
        expected = 3 * result.average_hops + 3
        assert result.average_latency == pytest.approx(expected, rel=0.35)

    def test_latency_increases_with_load(self):
        low = run_small(injection_rate=0.05)
        high = run_small(injection_rate=0.30)
        assert high.average_latency > low.average_latency

    def test_early_ejection_saves_cycles(self):
        """RoCo beats the generic router at zero load (no ejection stage
        and no RC stage thanks to look-ahead routing)."""
        roco = run_small(router="roco", injection_rate=0.02)
        generic = run_small(router="generic", injection_rate=0.02)
        assert roco.average_latency < generic.average_latency

    def test_neighbor_traffic_latency_is_single_hop(self):
        result = run_small(
            router="roco", traffic="neighbor", injection_rate=0.02
        )
        assert result.average_hops == pytest.approx(1.0)
        assert result.average_latency < 12


class TestDeterminism:
    def test_same_seed_same_result(self):
        a = run_small(seed=123)
        b = run_small(seed=123)
        assert a.average_latency == b.average_latency
        assert a.energy.total == b.energy.total

    def test_different_seed_different_result(self):
        a = run_small(seed=1)
        b = run_small(seed=2)
        assert a.average_latency != b.average_latency


class TestResultRecord:
    def test_energy_and_pef_consistency(self):
        result = run_small()
        assert result.energy_per_packet_nj > 0
        assert result.edp == pytest.approx(
            result.average_latency * result.energy_per_packet_nj
        )
        # Fault-free PEF reduces to EDP.
        assert result.pef == pytest.approx(result.edp)

    def test_summary_line_mentions_router(self):
        result = run_small(router="generic")
        assert "generic" in result.summary_line()

    def test_latency_summary_consistent_with_mean(self):
        result = run_small()
        assert result.latency.mean == pytest.approx(result.average_latency)
        assert result.latency.count == result.delivered_packets

    def test_throughput_tracks_offered_load_below_saturation(self):
        result = run_small(injection_rate=0.10, measure_packets=400)
        # Accepted throughput within a factor of the offered rate (the
        # drain window biases it low, so allow generous slack downward).
        assert 0.3 * 0.10 <= result.throughput <= 1.2 * 0.10

    def test_early_ejections_counted_for_roco_only(self):
        roco = Simulator(small_config(router="roco"))
        roco_result = roco.run()
        assert roco.network.stats.activity.early_ejections > 0
        generic = Simulator(small_config(router="generic"))
        generic.run()
        assert generic.network.stats.activity.early_ejections == 0
