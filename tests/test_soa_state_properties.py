"""Property tests for the object <-> struct-of-arrays state bridge.

Random mid-run network states are produced by running either backend a
random number of cycles under a random supported configuration; the
bridge must then satisfy, for every such state:

* **Round trip** — ``encode(decode(encode(sim))) == encode(sim)``: no
  dynamic field is lost or invented by either direction.
* **Cross-backend canonicality** — both backends at the same point of
  the same run encode to the *same* value (this is the equivalence
  oracle the conformance grid's end-of-run check rests on, applied
  mid-flight).
* **Step/encode commutation** — advancing the SoA engine one network
  step and encoding equals decoding, advancing the object model one
  step, and re-encoding.  Network stepping draws no randomness, so the
  fresh rng of the decoded simulator is immaterial (generation phases,
  which do draw, are deliberately outside the guarantee — see the
  module docstring of repro.core.soa.state).
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.config import SimulationConfig
from repro.core.simulator import Simulator
from repro.core.soa.engine import SoASimulator
from repro.core.soa.state import (
    SoAState,
    decode_state,
    encode_state,
    run_cycles,
    state_diff,
    states_equal,
)

configs = st.fixed_dictionaries(
    {
        "router": st.sampled_from(["roco", "generic"]),
        "routing": st.sampled_from(["xy", "xy-yx", "adaptive"]),
        "traffic": st.sampled_from(["uniform", "transpose"]),
        "injection_rate": st.sampled_from([0.05, 0.2, 0.45]),
        "seed": st.integers(min_value=0, max_value=2**16),
    }
)

scenarios = st.tuples(
    configs,
    st.booleans(),  # full_sweep
    st.integers(min_value=0, max_value=80),  # cycles before the capture
)


def build_config(params) -> SimulationConfig:
    return SimulationConfig(
        width=4,
        height=4,
        warmup_packets=20,
        measure_packets=100,
        max_cycles=20_000,
        **params,
    )


def assert_states_equal(a: SoAState, b: SoAState, label: str) -> None:
    assert states_equal(a, b), f"{label}:\n" + "\n".join(state_diff(a, b))


@settings(max_examples=40, deadline=None)
@given(scenarios)
def test_round_trip_loses_no_fields(scenario):
    params, full_sweep, cycles = scenario
    config = build_config(params)
    sim = SoASimulator(config, full_sweep=full_sweep)
    run_cycles(sim, cycles)
    captured = encode_state(sim)
    recoded = encode_state(decode_state(captured, config))
    assert_states_equal(captured, recoded, "decode/encode round trip")


@settings(max_examples=25, deadline=None)
@given(scenarios)
def test_backends_encode_identically_mid_run(scenario):
    params, full_sweep, cycles = scenario
    config = build_config(params)
    fast = SoASimulator(config, full_sweep=full_sweep)
    reference = Simulator(config, full_sweep=full_sweep)
    run_cycles(fast, cycles)
    run_cycles(reference, cycles)
    assert_states_equal(
        encode_state(fast), encode_state(reference), "cross-backend encoding"
    )


@settings(max_examples=25, deadline=None)
@given(scenarios, st.integers(min_value=1, max_value=5))
def test_stepping_commutes_with_encoding(scenario, extra):
    params, full_sweep, cycles = scenario
    config = build_config(params)
    sim = SoASimulator(config, full_sweep=full_sweep)
    next_cycle = run_cycles(sim, cycles)
    decoded = decode_state(encode_state(sim), config)
    for cycle in range(next_cycle, next_cycle + extra):
        sim._net_step(cycle)
        decoded.network.step(cycle)
    assert_states_equal(
        encode_state(sim), encode_state(decoded), f"commute after {extra} step(s)"
    )


class TestBridgeEdges:
    def test_initial_state_round_trips(self):
        config = build_config(
            dict(router="roco", routing="xy", traffic="uniform",
                 injection_rate=0.1, seed=3)
        )
        sim = SoASimulator(config)
        captured = encode_state(sim)
        assert captured.generated == 0 and captured.packets == ()
        recoded = encode_state(decode_state(captured, config))
        assert_states_equal(captured, recoded, "empty-state round trip")

    def test_decode_rejects_mismatched_config(self):
        config = build_config(
            dict(router="roco", routing="xy", traffic="uniform",
                 injection_rate=0.1, seed=3)
        )
        sim = SoASimulator(config)
        run_cycles(sim, 10)
        captured = encode_state(sim)
        from dataclasses import replace

        with pytest.raises(ValueError, match="does not match"):
            decode_state(captured, replace(config, router="generic"))

    def test_encode_rejects_unknown_backend(self):
        with pytest.raises(TypeError, match="not a known backend"):
            encode_state(object())

    def test_states_hashable_and_diff_empty_when_equal(self):
        config = build_config(
            dict(router="generic", routing="adaptive", traffic="transpose",
                 injection_rate=0.2, seed=5)
        )
        sim = SoASimulator(config)
        run_cycles(sim, 25)
        a = encode_state(sim)
        b = encode_state(sim)
        assert hash(a) == hash(b)
        assert state_diff(a, b) == []

    def test_diff_pinpoints_a_change(self):
        config = build_config(
            dict(router="roco", routing="xy", traffic="uniform",
                 injection_rate=0.2, seed=5)
        )
        sim = SoASimulator(config)
        run_cycles(sim, 25)
        a = encode_state(sim)
        sim._net_step(25)
        b = encode_state(sim)
        assert not states_equal(a, b)
        assert any(line.startswith("cycle") for line in state_diff(a, b))
