"""Unit and property tests for the Mirroring Effect allocator (Figure 4)."""

import itertools

from hypothesis import given
from hypothesis import strategies as st

from repro.arbiters.mirror import (
    MirrorAllocator,
    MirrorGrant,
    max_possible_matching,
)


def reqs(p1_slot0=(), p1_slot1=(), p2_slot0=(), p2_slot1=(), num_vcs=3):
    """Build a request matrix from VC-index tuples."""
    matrix = [[[False] * num_vcs for _ in range(2)] for _ in range(2)]
    for vc in p1_slot0:
        matrix[0][0][vc] = True
    for vc in p1_slot1:
        matrix[0][1][vc] = True
    for vc in p2_slot0:
        matrix[1][0][vc] = True
    for vc in p2_slot1:
        matrix[1][1][vc] = True
    return matrix


class TestMirrorCases:
    def test_perfect_mirror_pairing(self):
        """P1->slot0 and P2->slot1 are served simultaneously."""
        alloc = MirrorAllocator(3)
        grants = alloc.allocate(reqs(p1_slot0=(0,), p2_slot1=(1,)))
        assert {(g.port, g.direction_slot) for g in grants} == {(0, 0), (1, 1)}

    def test_conflicting_single_direction(self):
        """Both ports want the same output: only one passes."""
        alloc = MirrorAllocator(3)
        grants = alloc.allocate(reqs(p1_slot0=(0,), p2_slot0=(0,)))
        assert len(grants) == 1

    def test_mirror_steers_port1_to_enable_port2(self):
        """P1 can go either way, P2 only slot0: P1 must take slot1."""
        alloc = MirrorAllocator(3)
        grants = alloc.allocate(reqs(p1_slot0=(0,), p1_slot1=(1,), p2_slot0=(2,)))
        assert len(grants) == 2
        by_port = {g.port: g.direction_slot for g in grants}
        assert by_port[0] == 1 and by_port[1] == 0

    def test_port2_served_when_port1_idle(self):
        alloc = MirrorAllocator(3)
        grants = alloc.allocate(reqs(p2_slot1=(2,)))
        assert grants == [MirrorGrant(1, 1, 2)]

    def test_no_requests_no_grants(self):
        alloc = MirrorAllocator(3)
        assert alloc.allocate(reqs()) == []

    def test_at_most_one_grant_per_port_and_slot(self):
        alloc = MirrorAllocator(3)
        grants = alloc.allocate(
            reqs(p1_slot0=(0, 1), p1_slot1=(2,), p2_slot0=(0,), p2_slot1=(1, 2))
        )
        ports = [g.port for g in grants]
        slots = [g.direction_slot for g in grants]
        assert len(set(ports)) == len(ports)
        assert len(set(slots)) == len(slots)

    def test_local_arbiters_rotate(self):
        alloc = MirrorAllocator(3)
        winners = []
        for _ in range(3):
            grants = alloc.allocate(reqs(p1_slot0=(0, 1, 2)))
            winners.append(grants[0].vc_index)
        assert set(winners) == {0, 1, 2}

    def test_global_tie_break_alternates(self):
        alloc = MirrorAllocator(3)
        slots = []
        for _ in range(4):
            grants = alloc.allocate(reqs(p1_slot0=(0,), p1_slot1=(1,)))
            slots.append(grants[0].direction_slot)
        assert set(slots) == {0, 1}


request_matrix = st.lists(
    st.lists(st.lists(st.booleans(), min_size=3, max_size=3), min_size=2, max_size=2),
    min_size=2,
    max_size=2,
)


class TestMirrorProperties:
    @given(request_matrix)
    def test_matching_is_always_maximal(self, matrix):
        """The Mirroring Effect's headline property (Section 3.3)."""
        alloc = MirrorAllocator(3)
        grants = alloc.allocate(matrix)
        assert len(grants) == max_possible_matching(matrix)

    @given(request_matrix)
    def test_grants_are_valid_requests(self, matrix):
        alloc = MirrorAllocator(3)
        for g in alloc.allocate(matrix):
            assert matrix[g.port][g.direction_slot][g.vc_index]

    @given(st.lists(request_matrix, max_size=20))
    def test_maximality_holds_across_arbiter_state(self, matrices):
        """Internal rotating priorities never break maximality."""
        alloc = MirrorAllocator(3)
        for matrix in matrices:
            grants = alloc.allocate(matrix)
            assert len(grants) == max_possible_matching(matrix)


def all_request_matrices(num_vcs: int):
    """Every possible 2x2x``num_vcs`` boolean request matrix."""
    cells = 2 * 2 * num_vcs
    for bits in itertools.product((False, True), repeat=cells):
        it = iter(bits)
        yield [[[next(it) for _ in range(num_vcs)] for _ in range(2)] for _ in range(2)]


class TestMirrorExhaustive:
    """Exhaustive check over all 4096 request patterns (2 VCs would be
    1/8 of the space; the shipped crossbar has 3 VCs per slot)."""

    def test_matching_is_maximum_for_every_pattern(self):
        """No pattern exists where the allocator leaves capacity unused."""
        alloc = MirrorAllocator(3)
        for matrix in all_request_matrices(3):
            grants = alloc.allocate(matrix)
            assert len(grants) == max_possible_matching(matrix), matrix

    def test_no_grantable_request_left_ungranted(self):
        """Maximality, stated locally: any ungranted request conflicts
        with a grant on its input port or its output slot."""
        alloc = MirrorAllocator(3)
        for matrix in all_request_matrices(3):
            grants = alloc.allocate(matrix)
            granted_ports = {g.port for g in grants}
            granted_slots = {g.direction_slot for g in grants}
            for port, slot, vc in itertools.product(range(2), range(2), range(3)):
                if matrix[port][slot][vc]:
                    assert port in granted_ports or slot in granted_slots, (
                        f"request ({port},{slot},{vc}) grantable but ungranted "
                        f"in {matrix}"
                    )

    def test_grants_always_reference_real_requests(self):
        alloc = MirrorAllocator(3)
        for matrix in all_request_matrices(3):
            for g in alloc.allocate(matrix):
                assert matrix[g.port][g.direction_slot][g.vc_index]
