"""Integration tests for faulty-network behaviour (Section 4/5.4)."""

import random

import pytest

from repro.core.simulator import run_simulation
from repro.core.types import NodeId
from repro.faults import Component, ComponentFault, random_faults
from repro.routers.roco.path_set import COLUMN, ROW

from .conftest import small_config


def run_faulty(router, faults, **overrides):
    params = {
        "router": router,
        "injection_rate": 0.15,
        "warmup_packets": 30,
        "measure_packets": 250,
        "max_cycles": 40_000,
    }
    params.update(overrides)
    return run_simulation(small_config(**params), faults=faults)


CENTER_FAULT = [ComponentFault(NodeId(1, 1), Component.CROSSBAR, module=ROW)]


class TestGracefulDegradation:
    def test_roco_row_fault_loses_only_row_transit(self):
        """Column traffic through the faulty node must keep flowing."""
        result = run_faulty("roco", CENTER_FAULT)
        # Some packets (those needing E/W transit through (1,1)) are lost,
        # but plenty complete — the module isolation works.
        assert 0.5 < result.completion_probability < 1.0

    def test_generic_fault_loses_more_than_roco(self):
        faults = [ComponentFault(NodeId(1, 1), Component.CROSSBAR, module=ROW)]
        roco = run_faulty("roco", faults)
        generic = run_faulty("generic", faults)
        assert roco.completion_probability > generic.completion_probability

    def test_roco_noncritical_faults_fully_recycled(self):
        """RC/SA/buffer faults are bypassed by hardware recycling —
        completion stays at 1.0 (Figure 12's RoCo bars)."""
        faults = [
            ComponentFault(NodeId(1, 1), Component.RC, module=ROW),
            ComponentFault(NodeId(2, 2), Component.SA, module=COLUMN),
            ComponentFault(NodeId(0, 3), Component.BUFFER, module=ROW, vc_position=1),
        ]
        result = run_faulty("roco", faults)
        assert result.completion_probability == 1.0

    def test_generic_noncritical_fault_still_kills_node(self):
        faults = [ComponentFault(NodeId(1, 1), Component.RC)]
        result = run_faulty("generic", faults)
        assert result.completion_probability < 1.0

    def test_recycling_costs_some_latency(self):
        """Recovery is not free: RC double-routing adds delay."""
        clean = run_faulty("roco", [])
        faults = [
            ComponentFault(NodeId(1, 1), Component.RC, module=ROW),
            ComponentFault(NodeId(2, 1), Component.RC, module=COLUMN),
        ]
        degraded = run_faulty("roco", faults)
        assert degraded.completion_probability == 1.0
        assert degraded.average_latency >= clean.average_latency


class TestAdaptiveFaultAvoidance:
    @pytest.mark.parametrize("routing", ["xy-yx", "adaptive"])
    def test_alternate_paths_raise_completion(self, routing):
        """XY-YX and adaptive routing route around dead nodes, so they
        complete at least as much as deterministic XY (Figure 11 b/c)."""
        faults = [ComponentFault(NodeId(2, 1), Component.VA, module=ROW)]
        xy = run_faulty("roco", faults, routing="xy")
        alt = run_faulty("roco", faults, routing=routing)
        assert alt.completion_probability >= xy.completion_probability

    def test_adaptive_generic_avoids_dead_neighbor(self):
        faults = [ComponentFault(NodeId(1, 1), Component.CROSSBAR)]
        xy = run_faulty("generic", faults, routing="xy")
        adaptive = run_faulty("generic", faults, routing="adaptive")
        assert adaptive.completion_probability >= xy.completion_probability


class TestFaultScaling:
    def test_completion_degrades_with_fault_count(self):
        rng = random.Random(4)
        nodes = [NodeId(x, y) for y in range(4) for x in range(4)]
        completions = []
        for count in (1, 3):
            faults = random_faults(nodes, count, rng, critical=True)
            completions.append(
                run_faulty("generic", faults).completion_probability
            )
        assert completions[1] <= completions[0]

    def test_pef_worsens_under_faults(self):
        clean = run_faulty("roco", [])
        faulty = run_faulty("roco", CENTER_FAULT)
        assert faulty.pef > clean.pef

    def test_dropped_plus_delivered_covers_injected(self):
        result = run_faulty("generic", CENTER_FAULT)
        assert (
            result.delivered_packets + result.dropped_packets
            <= result.injected_packets
        )
        # Undelivered-but-untracked packets only exist if the run hit the
        # horizon; completion accounts for them regardless.
        assert result.completion_probability == pytest.approx(
            result.delivered_packets / result.injected_packets
        )


class TestInjectionAtFaultyNodes:
    def test_roco_dead_row_module_drops_x_first_packets(self):
        """Packets that can only start in the dead dimension are lost;
        same-column packets still inject via Injyx."""
        faults = [ComponentFault(NodeId(0, 0), Component.VA, module=ROW)]
        result = run_faulty("roco", faults, routing="xy", traffic="transpose")
        # Transpose sends (0,0)->(0,0)? no — diagonal falls back uniform;
        # the run must simply terminate with partial completion.
        assert 0.0 < result.completion_probability <= 1.0
