"""Unit tests for the ablation (non-mirror) 2x2 allocator."""

from hypothesis import given
from hypothesis import strategies as st

from repro.arbiters.mirror import max_possible_matching
from repro.arbiters.sequential import SequentialAllocator

from .test_mirror import reqs

request_matrix = st.lists(
    st.lists(st.lists(st.booleans(), min_size=3, max_size=3), min_size=2, max_size=2),
    min_size=2,
    max_size=2,
)


class TestSequentialAllocator:
    def test_single_request_granted(self):
        alloc = SequentialAllocator(3)
        grants = alloc.allocate(reqs(p1_slot0=(1,)))
        assert len(grants) == 1
        assert grants[0].port == 0 and grants[0].vc_index == 1

    def test_no_maximal_matching_guarantee(self):
        """The structural weakness the Mirror allocator removes: when a
        port's blind nominee targets a contested direction, the port can
        idle even though a different nominee would have matched."""
        alloc = SequentialAllocator(3)
        suboptimal = 0
        # P1 wants slot0 via vc0 and slot1 via vc1; P2 wants slot0 only.
        matrix = reqs(p1_slot0=(0,), p1_slot1=(1,), p2_slot0=(2,))
        for _ in range(8):
            grants = alloc.allocate(matrix)
            if len(grants) < max_possible_matching(matrix):
                suboptimal += 1
        assert suboptimal > 0

    @given(request_matrix)
    def test_grants_are_valid_and_disjoint(self, matrix):
        alloc = SequentialAllocator(3)
        grants = alloc.allocate(matrix)
        ports = [g.port for g in grants]
        slots = [g.direction_slot for g in grants]
        assert len(set(ports)) == len(ports)
        assert len(set(slots)) == len(slots)
        for g in grants:
            assert matrix[g.port][g.direction_slot][g.vc_index]

    @given(request_matrix)
    def test_never_beats_mirror(self, matrix):
        """Sequential matching size is bounded by the maximal matching."""
        alloc = SequentialAllocator(3)
        assert len(alloc.allocate(matrix)) <= max_possible_matching(matrix)

    @given(request_matrix)
    def test_work_conserving_for_single_port(self, matrix):
        """With only one port requesting, sequential always grants."""
        matrix = [matrix[0], [[False] * 3, [False] * 3]]
        alloc = SequentialAllocator(3)
        if any(any(slot) for slot in matrix[0]):
            assert len(alloc.allocate(matrix)) == 1
