"""Unit tests for virtual-channel buffers and credit accounting."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.buffer import CREDIT_LATENCY, VirtualChannel
from repro.core.types import Direction, NodeId, Packet, make_packet_flits


def worm(size=4, pid=0):
    packet = Packet(
        pid=pid, src=NodeId(0, 0), dest=NodeId(1, 1), size=size, created_cycle=0
    )
    return make_packet_flits(packet)


class TestQueueBehaviour:
    def test_fifo_order(self):
        vc = VirtualChannel(0, 0, depth=5)
        flits = worm(4)
        for f in flits:
            vc.push(f)
        popped = [vc.pop(cycle=i) for i in range(4)]
        assert popped == flits

    def test_overflow_raises(self):
        vc = VirtualChannel(0, 0, depth=2)
        flits = worm(3)
        vc.push(flits[0])
        vc.push(flits[1])
        with pytest.raises(OverflowError):
            vc.push(flits[2])

    def test_tail_pop_clears_worm_state(self):
        vc = VirtualChannel(0, 0, depth=5)
        flits = worm(2)
        for f in flits:
            vc.push(f)
        vc.assign_route(Direction.EAST)
        vc.out_vc = object()
        vc.active_pid = 0
        vc.pop(0)
        assert vc.routed  # body/tail still draining
        vc.pop(1)
        assert not vc.routed and vc.out_vc is None and vc.active_pid is None

    def test_reset(self):
        vc = VirtualChannel(0, 0, depth=5)
        for f in worm(3):
            vc.push(f)
        vc.assign_route(Direction.EAST)
        vc.reset()
        assert vc.empty and not vc.routed


class TestCredits:
    def test_initial_credits_equal_depth(self):
        vc = VirtualChannel(0, 0, depth=5)
        assert vc.credits(0) == 5

    def test_reserve_consumes(self):
        vc = VirtualChannel(0, 0, depth=3)
        vc.reserve_slot(0)
        assert vc.credits(0) == 2

    def test_reserve_underflow_raises(self):
        vc = VirtualChannel(0, 0, depth=1)
        vc.reserve_slot(0)
        with pytest.raises(RuntimeError):
            vc.reserve_slot(0)

    def test_release_is_delayed_by_round_trip(self):
        vc = VirtualChannel(0, 0, depth=2)
        vc.reserve_slot(0)
        vc.push(worm(1)[0])
        vc.pop(cycle=5)
        assert vc.credits(5) == 1
        assert vc.credits(5 + CREDIT_LATENCY - 1) == 1
        assert vc.credits(5 + CREDIT_LATENCY) == 2

    def test_refund(self):
        vc = VirtualChannel(0, 0, depth=2)
        vc.reserve_slot(0)
        vc.refund_slot()
        assert vc.credits(0) == 2

    @given(st.lists(st.booleans(), min_size=1, max_size=30))
    def test_credits_never_negative_or_above_depth(self, ops):
        vc = VirtualChannel(0, 0, depth=4)
        cycle = 0
        outstanding = 0
        for reserve in ops:
            cycle += 1
            if reserve and vc.credits(cycle) > 0:
                vc.reserve_slot(cycle)
                outstanding += 1
            elif outstanding:
                vc.schedule_release(cycle)
                outstanding -= 1
            assert 0 <= vc.credits(cycle) <= 4


class TestOwnership:
    def test_claim_and_release(self):
        vc = VirtualChannel(0, 0, depth=4)
        vc.claim(17)
        assert vc.owner_pid == 17
        vc.release_owner()
        assert vc.owner_pid is None

    def test_double_claim_raises(self):
        vc = VirtualChannel(0, 0, depth=4)
        vc.claim(1)
        with pytest.raises(RuntimeError):
            vc.claim(2)

    def test_injectable(self):
        vc = VirtualChannel(0, 0, depth=4)
        assert vc.injectable(0)
        vc.claim(1)
        assert not vc.injectable(0)
        vc.release_owner()
        vc.expected = 1
        assert not vc.injectable(0)
        vc.expected = 0
        assert vc.injectable(0)


class TestFaultyBuffer:
    def test_faulty_depth_is_one(self):
        vc = VirtualChannel(0, 0, depth=5)
        vc.faulty = True
        assert vc.effective_depth == 1

    def test_shrink_rebases_credits(self):
        vc = VirtualChannel(0, 0, depth=5)
        vc.faulty = True
        vc.shrink_for_fault()
        assert vc.credits(0) == 1

    def test_faulty_overflow(self):
        vc = VirtualChannel(0, 0, depth=5)
        vc.faulty = True
        vc.push(worm(2)[0])
        with pytest.raises(OverflowError):
            vc.push(worm(2)[1])
