"""System tests for the runtime fault-campaign engine.

The load-bearing contracts:

* **equivalence** — an empty schedule is bit-identical to a fault-free
  run, and a schedule firing entirely at cycle 0 is bit-identical to
  the same faults applied statically before wiring, on both schedulers;
* **conservation** — under ANY schedule every generated packet ends as
  exactly one of delivered / dropped-with-reason, and the activity and
  full-sweep schedulers agree bit-for-bit (Hypothesis-driven below);
* **reactions** — mid-run kills salvage buffered worms, sever committed
  routes, and classify end-of-run survivors; transients heal.
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.config import SimulationConfig
from repro.core.simulator import (
    DeadlockError,
    DrainTimeoutError,
    Simulator,
    run_simulation,
)
from repro.core.types import DropReason, NodeId
from repro.faults import (
    Component,
    ComponentFault,
    FaultEvent,
    FaultSchedule,
)
from repro.harness.export import result_record

from .conftest import small_config

ARCHITECTURES = ("generic", "path_sensitive", "roco")


def center_kill(cycle, duration=None):
    """A VA kill at the mesh centre — critical on every architecture."""
    return FaultSchedule.at_cycle(
        cycle, [ComponentFault(NodeId(1, 1), Component.VA, "row")], duration
    )


def assert_conserved(result):
    assert result.conserved, (
        f"leaked packets: generated={result.generated_packets} "
        f"delivered={result.total_delivered} dropped={result.total_dropped} "
        f"reasons={result.drops_by_reason}"
    )


class TestScheduleEquivalence:
    @pytest.mark.parametrize("router", ARCHITECTURES)
    @pytest.mark.parametrize("full_sweep", [False, True])
    def test_empty_schedule_is_fault_free_run(self, router, full_sweep):
        config = small_config(router=router)
        plain = run_simulation(config, full_sweep=full_sweep)
        empty = run_simulation(
            config, schedule=FaultSchedule([]), full_sweep=full_sweep
        )
        assert result_record(plain) == result_record(empty)

    @pytest.mark.parametrize("router", ARCHITECTURES)
    @pytest.mark.parametrize("full_sweep", [False, True])
    def test_cycle_zero_schedule_matches_static_injection(
        self, router, full_sweep
    ):
        config = small_config(router=router)
        faults = [ComponentFault(NodeId(1, 1), Component.VA, "row")]
        runtime = run_simulation(
            config,
            schedule=FaultSchedule.at_cycle(0, faults),
            full_sweep=full_sweep,
        )
        static = run_simulation(config, faults=faults, full_sweep=full_sweep)
        assert result_record(runtime) == result_record(static)

    @pytest.mark.parametrize("router", ARCHITECTURES)
    def test_schedulers_agree_on_midrun_campaign(self, router):
        config = small_config(router=router)
        schedule = center_kill(cycle=120)
        active = run_simulation(config, schedule=schedule)
        sweep = run_simulation(config, schedule=schedule, full_sweep=True)
        assert result_record(active) == result_record(sweep)

    def test_schedulers_agree_on_transient_campaign(self):
        config = small_config()
        schedule = center_kill(cycle=120, duration=150)
        active = run_simulation(config, schedule=schedule)
        sweep = run_simulation(config, schedule=schedule, full_sweep=True)
        assert result_record(active) == result_record(sweep)


class TestConservation:
    @pytest.mark.parametrize("router", ARCHITECTURES)
    def test_midrun_kill_conserves_packets(self, router):
        result = run_simulation(
            small_config(router=router), schedule=center_kill(cycle=120)
        )
        assert_conserved(result)
        assert result.generated_packets > 0

    def test_multi_fault_campaign_conserves(self):
        schedule = FaultSchedule(
            [
                FaultEvent(80, ComponentFault(NodeId(1, 1), Component.VA, "row")),
                FaultEvent(
                    160, ComponentFault(NodeId(2, 2), Component.CROSSBAR, "column")
                ),
                FaultEvent(
                    240,
                    ComponentFault(NodeId(0, 2), Component.BUFFER, "row"),
                    duration=100,
                ),
            ]
        )
        result = run_simulation(small_config(), schedule=schedule)
        assert_conserved(result)

    def test_reasons_only_from_the_enum(self):
        result = run_simulation(small_config(), schedule=center_kill(cycle=100))
        valid = {reason.value for reason in DropReason}
        assert set(result.drops_by_reason) <= valid


# One small Hypothesis sweep: random schedule against a random seed,
# checking conservation AND scheduler bit-identity in one property.
schedule_params = st.fixed_dictionaries(
    {
        "router": st.sampled_from(ARCHITECTURES),
        "seed": st.integers(1, 1_000),
        "fault_count": st.integers(1, 3),
        "fault_seed": st.integers(1, 1_000),
        "mtbf": st.sampled_from([60.0, 200.0]),
        "duration": st.sampled_from([None, 120]),
    }
)


@settings(
    max_examples=12,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(params=schedule_params)
def test_conservation_under_random_schedules(params):
    config = SimulationConfig(
        width=4,
        height=4,
        router=params["router"],
        injection_rate=0.08,
        warmup_packets=10,
        measure_packets=80,
        max_cycles=20_000,
        seed=params["seed"],
    )
    nodes = [NodeId(x, y) for y in range(4) for x in range(4)]
    schedule = FaultSchedule.sampled(
        nodes,
        count=params["fault_count"],
        seed=params["fault_seed"],
        mtbf=params["mtbf"],
        critical=True,
        duration=params["duration"],
        start_cycle=50,
    )
    active = run_simulation(config, schedule=schedule)
    assert_conserved(active)
    sweep = run_simulation(config, schedule=schedule, full_sweep=True)
    assert result_record(active) == result_record(sweep)
    assert active.drops_by_reason == sweep.drops_by_reason


class TestRuntimeReactions:
    def test_midrun_kill_salvages_with_fault_reasons(self):
        """A kill while traffic flows produces fault-attributed drops."""
        result = run_simulation(
            small_config(injection_rate=0.2, measure_packets=300),
            schedule=center_kill(cycle=150),
        )
        assert_conserved(result)
        fault_reasons = {
            DropReason.BUFFERED_IN_DEAD.value,
            DropReason.ROUTE_SEVERED.value,
            DropReason.ARRIVED_AT_DEAD.value,
            DropReason.STALL_TIMEOUT.value,
            DropReason.UNREACHABLE.value,
        }
        assert fault_reasons & set(result.drops_by_reason), (
            f"expected fault-attributed drops, got {result.drops_by_reason}"
        )

    def test_transient_outperforms_permanent(self):
        config = small_config(injection_rate=0.15, measure_packets=300)
        permanent = run_simulation(config, schedule=center_kill(cycle=150))
        transient = run_simulation(
            config, schedule=center_kill(cycle=150, duration=120)
        )
        assert_conserved(permanent)
        assert_conserved(transient)
        assert transient.total_delivered >= permanent.total_delivered

    def test_faults_recorded_on_result(self):
        schedule = center_kill(cycle=100)
        result = run_simulation(small_config(), schedule=schedule)
        assert [f for f in result.faults] == [e.fault for e in schedule]

    @pytest.mark.parametrize("router", ARCHITECTURES)
    def test_campaign_after_drain_still_terminates(self, router):
        """Faults striking after traffic finished must not wedge the run."""
        result = run_simulation(
            small_config(router=router, injection_rate=0.05,
                         warmup_packets=5, measure_packets=30),
            schedule=center_kill(cycle=15_000),
        )
        assert_conserved(result)


class TestDrainTimeoutCensus:
    """Satellite: typed drain-timeout error with a stranded-packet census."""

    def _wedge(self):
        """A run guaranteed to stall without the fault-timeout escape."""
        config = small_config(
            router="generic",
            injection_rate=0.2,
            warmup_packets=10,
            measure_packets=120,
            drain_timeout=250,
        )
        simulator = Simulator(
            config,
            faults=[ComponentFault(NodeId(1, 1), Component.VA, "row")],
        )
        # Disown the fault so neither the per-packet stall drop nor the
        # paper's inactivity rule fires: the run must hard-stall, which
        # is exactly the condition the census exists to explain.
        simulator.network.has_faults = False
        return simulator

    def test_raises_typed_error_with_census(self):
        simulator = self._wedge()
        with pytest.raises(DrainTimeoutError) as excinfo:
            simulator.run()
        error = excinfo.value
        assert isinstance(error, DeadlockError)
        census = error.census
        assert census.outstanding > 0
        assert census.per_node
        assert sum(census.per_node.values()) > 0
        assert census.oldest_age > 0
        assert census.dead_modules.get(NodeId(1, 1)) == ("node",)

    def test_census_rendered_into_message(self):
        simulator = self._wedge()
        with pytest.raises(DrainTimeoutError) as excinfo:
            simulator.run()
        message = str(excinfo.value)
        assert "no progress" in message
        assert "outstanding" in message
        assert "(1,1)" in message
