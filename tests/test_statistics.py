"""Unit tests for the statistics collector."""

from repro.core.statistics import (
    ActivityCounters,
    ContentionCounters,
    StatsCollector,
)
from repro.core.types import NodeId, Packet


def packet(pid=0, src=(0, 0), dest=(2, 1)):
    return Packet(
        pid=pid,
        src=NodeId(*src),
        dest=NodeId(*dest),
        size=4,
        created_cycle=0,
    )


class TestWarmupGating:
    def test_warmup_packets_not_counted(self):
        stats = StatsCollector()
        assert stats.packet_created(packet()) is False
        assert stats.injected_packets == 0

    def test_measured_packets_counted(self):
        stats = StatsCollector()
        stats.start_measurement(cycle=100)
        assert stats.packet_created(packet()) is True
        assert stats.injected_packets == 1

    def test_delivery_only_counts_measured(self):
        stats = StatsCollector()
        stats.start_measurement(0)
        p = packet()
        p.delivered_cycle = 30
        stats.packet_delivered(p, measured=False)
        assert stats.delivered_packets == 0
        stats.packet_delivered(p, measured=True)
        assert stats.delivered_packets == 1
        assert stats.latencies == [30]

    def test_tick_counts_only_while_measuring(self):
        stats = StatsCollector()
        stats.tick()
        stats.start_measurement(5)
        stats.tick()
        stats.tick()
        assert stats.measured_cycles == 2


class TestDerivedMetrics:
    def test_completion_probability(self):
        stats = StatsCollector()
        stats.start_measurement(0)
        for pid in range(4):
            stats.packet_created(packet(pid))
        delivered = packet(0)
        delivered.delivered_cycle = 10
        stats.packet_delivered(delivered, True)
        stats.packet_dropped(packet(1), True)
        assert stats.completion_probability == 0.25
        assert stats.dropped_packets == 1

    def test_completion_is_fail_safe_with_no_traffic(self):
        # Zero injected packets proves nothing delivered: completion is
        # 0.0, not a vacuous perfect score, and the summary says so.
        stats = StatsCollector()
        assert stats.completion_probability == 0.0
        assert stats.measurement_started is False
        assert stats.summary()["measurement_started"] is False

    def test_measurement_started_once_injected(self):
        stats = StatsCollector()
        stats.start_measurement(0)
        stats.packet_created(packet())
        assert stats.measurement_started is True
        assert stats.summary()["measurement_started"] is True

    def test_average_hops(self):
        stats = StatsCollector()
        stats.start_measurement(0)
        p = packet(dest=(3, 1))
        p.hops = 4  # the links the head actually crossed
        stats.packet_created(p)
        p.delivered_cycle = 9
        stats.packet_delivered(p, True)
        assert stats.average_hops == 4.0

    def test_hops_fallback_reports_real_traversals_not_distance(self):
        # A detoured worm crossed more links than the Manhattan minimum;
        # the fallback must report the packet's counted traversals.
        stats = StatsCollector()
        stats.start_measurement(0)
        p = packet(dest=(2, 1))  # minimal distance 3
        p.hops = 5
        stats.packet_created(p)
        p.delivered_cycle = 12
        stats.packet_delivered(p, True)
        assert stats.average_hops == 5.0

    def test_throughput_normalised_per_node(self):
        stats = StatsCollector(num_nodes=4)
        stats.start_measurement(0)
        for _ in range(10):
            stats.tick()
            stats.flit_delivered(True)
        assert stats.throughput_flits_per_node_cycle == 10 / 10 / 4

    def test_summary_keys(self):
        summary = StatsCollector().summary()
        assert {
            "average_latency",
            "completion_probability",
            "delivered_packets",
        } <= set(summary)


class TestContentionCounters:
    def test_probabilities(self):
        c = ContentionCounters(
            row_requests=10, row_contended=4, column_requests=5, column_contended=1
        )
        assert c.row_probability == 0.4
        assert c.column_probability == 0.2
        assert c.overall_probability == 5 / 15

    def test_zero_requests(self):
        c = ContentionCounters()
        assert c.row_probability == 0.0
        assert c.overall_probability == 0.0


class TestActivityCounters:
    def test_merged(self):
        a = ActivityCounters(buffer_writes=2, link_flits=3)
        b = ActivityCounters(buffer_writes=5, early_ejections=1)
        merged = a.merged(b)
        assert merged.buffer_writes == 7
        assert merged.link_flits == 3
        assert merged.early_ejections == 1
