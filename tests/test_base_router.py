"""Unit tests for the shared router machinery (base pipeline mechanics)."""

import pytest

from repro.core.channel import LINK_DELAY
from repro.core.config import SimulationConfig
from repro.core.network import Network
from repro.core.types import NodeId, Packet, make_packet_flits
from repro.routers.base import EJECT


def network(router="roco", **overrides):
    params = {
        "width": 4,
        "height": 4,
        "router": router,
        "warmup_packets": 0,
        "measure_packets": 10,
    }
    params.update(overrides)
    net = Network(SimulationConfig(**params))
    net.wire()
    net.stats.start_measurement(0)
    return net


def inject_worm(net, src, dest, pid=0, size=2):
    """Place a worm directly into an injection VC, bypassing the Source."""
    router = net.routers[src]
    packet = Packet(pid=pid, src=src, dest=dest, size=size, created_cycle=0)
    packet.measured = True
    net.stats.packet_created(packet)
    vc, route = router.injection_vc_for(packet)
    vc.claim(packet.pid)
    flits = make_packet_flits(packet)
    flits[0].route = route
    for flit in flits:
        vc.reserve_slot(net.cycle)
        vc.push(flit)
        flit.arrival = -1  # pretend it arrived earlier (RC already done)
    vc.active_pid = packet.pid
    vc.release_owner()
    # The Source wakes the router on every injection push; a direct VC
    # push must do the same or the activity scheduler never steps it.
    router.wake()
    return packet, vc


def run_cycles(net, count, start=0):
    for c in range(start, start + count):
        net.step(c)
    return start + count


class TestPipelineTiming:
    def test_one_hop_worm_delivery(self):
        """head: alloc c0, ST c1, arrive+eject c1+LINK_DELAY."""
        net = network("roco")
        packet, _ = inject_worm(net, NodeId(0, 0), NodeId(1, 0), size=2)
        run_cycles(net, 10)
        assert packet.delivered_cycle == 2 + LINK_DELAY

    def test_generic_ejection_costs_extra_cycles(self):
        net_roco = network("roco")
        p_roco, _ = inject_worm(net_roco, NodeId(0, 0), NodeId(1, 0), size=2)
        run_cycles(net_roco, 12)

        net_gen = network("generic")
        p_gen, _ = inject_worm(net_gen, NodeId(0, 0), NodeId(1, 0), size=2)
        run_cycles(net_gen, 12)
        assert p_gen.delivered_cycle > p_roco.delivered_cycle

    def test_flits_depart_back_to_back(self):
        """A 4-flit worm streams at one flit per cycle once started."""
        net = network("roco")
        packet, _ = inject_worm(net, NodeId(0, 0), NodeId(2, 0), size=4)
        run_cycles(net, 20)
        # tail trails head by exactly size-1 cycles on an uncontended path
        assert packet.delivered_cycle is not None
        assert packet.flits_delivered == 4


class TestEarlyEjection:
    def test_early_eject_never_buffers_at_destination(self):
        net = network("roco")
        packet, _ = inject_worm(net, NodeId(0, 0), NodeId(1, 0), size=2)
        run_cycles(net, 10)
        dest_router = net.routers[NodeId(1, 0)]
        assert net.stats.activity.early_ejections == 2
        assert all(vc.empty for vc in dest_router.all_vcs())

    def test_eject_target_is_sentinel(self):
        net = network("roco")
        _, vc = inject_worm(net, NodeId(0, 0), NodeId(1, 0), size=2)
        net.step(0)  # allocation happens
        assert vc.out_vc is EJECT


class TestOwnershipHandover:
    def test_downstream_vc_owned_until_tail_launch(self):
        net = network("roco")
        packet, vc = inject_worm(net, NodeId(0, 0), NodeId(2, 0), size=3)
        net.step(0)
        target = vc.out_vc
        assert target.owner_pid == packet.pid
        run_cycles(net, 12, start=1)
        assert target.owner_pid is None
        assert packet.delivered_cycle is not None


class TestPurgeAndDrop:
    def test_drop_purges_and_restores_credits(self):
        net = network("roco")
        net.has_faults = True
        packet, vc = inject_worm(net, NodeId(0, 0), NodeId(3, 0), size=4)
        run_cycles(net, 3)  # worm is mid-flight
        net.drop_packet(packet, net.cycle)
        run_cycles(net, 20, start=3)
        final = net.cycle + 5
        for router in net.routers.values():
            for v in router.all_vcs():
                assert v.empty
                assert v.owner_pid is None
                assert v.credits(final) == v.effective_depth

    def test_stall_timeout_drops_packet(self):
        net = network("roco", fault_drop_timeout=10)
        net.has_faults = True
        # Kill the row module of the transit node: the eastbound worm
        # stalls at (1,0) and must be discarded after the timeout.
        net.routers[NodeId(2, 0)].row.dead = True
        net.wire()
        packet, _ = inject_worm(net, NodeId(0, 0), NodeId(3, 0), size=2)
        run_cycles(net, 60)
        assert packet.dropped_cycle is not None
        assert packet.delivered_cycle is None

    def test_no_drops_in_fault_free_network(self):
        net = network("roco", fault_drop_timeout=1)
        packet, _ = inject_worm(net, NodeId(0, 0), NodeId(3, 3), size=2)
        run_cycles(net, 40)
        assert packet.dropped_cycle is None
        assert packet.delivered_cycle is not None


class TestAcceptFlit:
    def test_dropped_in_flight_flit_refunds_slot(self):
        net = network("roco")
        net.has_faults = True
        packet, vc = inject_worm(net, NodeId(0, 0), NodeId(2, 0), size=4)
        net.step(0)
        net.step(1)  # first flit launched, now on the wire
        target = vc.out_vc
        before = target.credits(2) + target.occupancy
        net.drop_packet(packet, 1)
        run_cycles(net, 10, start=2)
        assert target.credits(net.cycle + 5) == target.effective_depth
