"""Golden-stats regression tests.

``tests/fixtures/golden_stats.json`` pins the full result record of six
small reference runs (4x4 mesh, low load, one seed, all three routers
under XY and adaptive routing).  Any behavioural change to the
simulator — router pipelines, allocation, routing, energy accounting —
shows up here as a diff against the recorded numbers.  Every record is
checked under both the activity-driven scheduler and the
``full_sweep=True`` reference schedule, so the fixture also acts as a
cross-scheduler equivalence anchor.

The tolerances are deliberately tight: the simulator is deterministic,
so the only slack granted is floating-point noise (1e-9 relative) in
case summation order ever changes legitimately.  If a change is
*intended* to alter results, regenerate the fixture (see the module
docstring of the fixture's ``config`` block for the exact parameters)
and call the change out in review.
"""

import json
from pathlib import Path

import pytest

from repro.core.config import SimulationConfig
from repro.core.simulator import run_simulation
from repro.harness.export import result_record

FIXTURE = Path(__file__).parent / "fixtures" / "golden_stats.json"

#: Relative tolerance for float fields; integers must match exactly.
REL_TOL = 1e-9


def load_fixture() -> dict:
    return json.loads(FIXTURE.read_text())


GOLDEN = load_fixture()


@pytest.mark.parametrize(
    "full_sweep", [False, True], ids=["active-scheduler", "full-sweep"]
)
@pytest.mark.parametrize("key", sorted(GOLDEN["records"]))
def test_run_matches_golden_record(key, full_sweep):
    router, routing = key.split("/")
    config = SimulationConfig(router=router, routing=routing, **GOLDEN["config"])
    record = result_record(run_simulation(config, full_sweep=full_sweep))
    expected = GOLDEN["records"][key]
    assert set(record) == set(expected), "exported fields changed; regenerate fixture"
    for field, want in expected.items():
        got = record[field]
        if isinstance(want, float) and isinstance(got, float):
            assert got == pytest.approx(want, rel=REL_TOL, abs=1e-12), field
        else:
            assert got == want, field


def test_fixture_covers_all_routers_and_routings():
    keys = set(GOLDEN["records"])
    assert keys == {
        f"{router}/{routing}"
        for router in ("generic", "path_sensitive", "roco")
        for routing in ("xy", "adaptive")
    }


def test_golden_runs_are_healthy():
    """The pinned runs must stay meaningful: full delivery, no faults."""
    for key, record in GOLDEN["records"].items():
        assert record["completion_probability"] == 1.0, key
        assert record["dropped_packets"] == 0, key
        assert record["num_faults"] == 0, key
