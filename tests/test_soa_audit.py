"""Audit-engine integration for the struct-of-arrays backend.

The SoA engine has no per-cycle observer hook, so ``audit=True`` with
``backend="soa"`` must refuse with a documented error instead of
silently skipping checks.  The supported path is the state bridge:
export an :class:`~repro.core.soa.state.SoAState` mid-run, decode it
into an object-model simulator, and run the full invariant battery
there.  These tests prove both halves — a decoded snapshot is *clean*
under every default checker, and seeded corruptions of the decoded
state trip exactly the invariant they violate (mirroring the live-run
corruption matrix in ``tests/test_audit.py``).
"""

from __future__ import annotations

import pytest

from repro.audit import AuditEngine, InvariantViolation, default_checkers
from repro.core.config import SimulationConfig
from repro.core.simulator import run_simulation
from repro.core.soa import BackendUnsupportedError
from repro.core.soa.engine import SoASimulator
from repro.core.soa.state import decode_state, encode_state, run_cycles


def decoded_state(cycles: int = 60, **overrides):
    """A mid-run SoA state decoded into an auditable object simulator.

    Returns ``(sim, cycle)`` where ``cycle`` is the snapshot's cycle
    (the last one executed).  The default rate is high enough that the
    network holds buffered worms, same-packet queue pairs, empty VCs
    and live output ports — every corruption below finds a target.
    """
    params = {
        "width": 4,
        "height": 4,
        "router": "roco",
        "routing": "xy",
        "traffic": "uniform",
        "injection_rate": 0.45,
        "warmup_packets": 30,
        "measure_packets": 150,
        "max_cycles": 20_000,
        "seed": 11,
    }
    params.update(overrides)
    config = SimulationConfig(**params)
    source = SoASimulator(config)
    run_cycles(source, cycles)
    state = encode_state(source)
    return decode_state(state, config), state.cycle


def each_vc(network):
    for node, router in network.routers.items():
        for vc in router.all_vcs():
            yield node, router, vc


def audit_corrupted(corrupt) -> InvariantViolation:
    """Decode a snapshot, corrupt it, and run one audited check pass."""
    sim, cycle = decoded_state()
    assert corrupt(sim.network), "corruption found no target in the snapshot"
    engine = AuditEngine(sim)
    with pytest.raises(InvariantViolation) as excinfo:
        engine.run_checks(cycle)
    return excinfo.value


class TestEngineRefusal:
    def test_audit_flag_raises_documented_error(self):
        config = SimulationConfig(
            width=4, height=4, router="roco", audit=True, backend="soa"
        )
        with pytest.raises(BackendUnsupportedError) as excinfo:
            run_simulation(config)
        assert excinfo.value.feature == "audit=True"
        # The error must point at the supported workflow.
        assert "SoAState" in str(excinfo.value)

    def test_refusal_happens_before_any_simulation(self):
        config = SimulationConfig(
            width=4, height=4, router="roco", audit=True, backend="soa"
        )
        with pytest.raises(BackendUnsupportedError):
            SoASimulator(config)


class TestDecodedSnapshotIsClean:
    def test_full_battery_passes_on_decoded_state(self):
        sim, cycle = decoded_state()
        engine = AuditEngine(sim)
        engine.run_checks(cycle)
        assert engine.checks_run == len(default_checkers())
        assert engine.cycles_audited == 1

    @pytest.mark.parametrize("router", ["roco", "generic"])
    @pytest.mark.parametrize("cycles", [1, 35, 90])
    def test_clean_across_routers_and_depths(self, router, cycles):
        sim, cycle = decoded_state(cycles=cycles, router=router)
        AuditEngine(sim).run_checks(cycle)

    def test_consecutive_checks_track_continuity(self):
        """Back-to-back passes arm the flit-location continuity checker
        (it needs adjacent snapshots); stepping the decoded network one
        cycle in between must keep it clean."""
        sim, cycle = decoded_state()
        engine = AuditEngine(sim)
        engine.run_checks(cycle)
        sim.network.step(cycle + 1)
        engine.run_checks(cycle + 1)
        assert engine.cycles_audited == 2


class TestCorruptedSnapshotIsCaught:
    def test_stolen_flit_breaks_conservation(self):
        def steal(network):
            for _, _, vc in each_vc(network):
                if vc.queue:
                    vc.queue.popleft()
                    vc._available += 1  # keep the credit sum balanced
                    return True
            return False

        assert audit_corrupted(steal).invariant == "conservation"

    def test_leaked_credit_breaks_credit_sum(self):
        def leak(network):
            for _, _, vc in each_vc(network):
                if vc.queue:
                    vc._available -= 1
                    return True
            return False

        assert audit_corrupted(leak).invariant == "credit"

    def test_swapped_flits_break_worm_order(self):
        def swap(network):
            for _, _, vc in each_vc(network):
                queue = vc.queue
                if len(queue) >= 2 and queue[0].packet.pid == queue[1].packet.pid:
                    queue[0], queue[1] = queue[1], queue[0]
                    return True
            return False

        assert audit_corrupted(swap).invariant == "wormhole-order"

    def test_stale_dead_flag_breaks_handshake(self):
        def flip(network):
            for router in network.routers.values():
                for port in router.outputs.values():
                    if port.downstream is not None and not port.dead:
                        port.dead = True
                        return True
            return False

        assert audit_corrupted(flip).invariant == "handshake"

    def test_duplicated_flit_is_caught(self):
        def duplicate(network):
            donor = None
            for _, _, vc in each_vc(network):
                if vc.queue:
                    donor = vc.queue[0]
                    break
            if donor is None:
                return False
            for _, _, vc in each_vc(network):
                if not vc.queue and not vc.dead:
                    vc.queue.append(donor)
                    vc._available -= 1
                    return True
            return False

        violation = audit_corrupted(duplicate)
        assert violation.invariant == "location"
        assert "duplicated" in violation.message

    def test_teleported_flit_breaks_location_continuity(self):
        """Continuity needs a previous snapshot: check clean at ``c``,
        move a buffered flit two hops, then check at ``c + 1``."""
        sim, cycle = decoded_state()
        engine = AuditEngine(sim)
        engine.run_checks(cycle)
        network = sim.network

        def teleport():
            prev = engine.prev_snapshot
            for _, _, vc in each_vc(network):
                if not vc.queue:
                    continue
                flit = vc.queue[0]
                old = prev.locations.get((flit.packet.pid, flit.seq))
                if old is None:
                    continue
                for other, router in network.routers.items():
                    if abs(other.x - old.x) + abs(other.y - old.y) < 2:
                        continue
                    for target in router.all_vcs():
                        if not target.queue and not target.dead:
                            vc.queue.popleft()
                            vc._available += 1
                            target.queue.append(flit)
                            target._available -= 1
                            return True
            return False

        assert teleport(), "teleport found no target in the snapshot"
        with pytest.raises(InvariantViolation) as excinfo:
            engine.run_checks(cycle + 1)
        assert excinfo.value.invariant == "location"
        assert "jumped" in excinfo.value.message
