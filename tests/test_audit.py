"""Tests for the runtime invariant audit engine.

The positive half checks that audited runs are clean and bit-identical
to unaudited ones; the negative half seeds one deliberate corruption per
checker through the network's end-of-cycle observer hook (which the
engine chains, corruptor first) and asserts the right invariant fires.
"""

import pytest

from repro.arbiters.mirror import MirrorAllocator, MirrorGrant
from repro.audit import AuditEngine, InvariantViolation, default_checkers
from repro.core.config import RouterConfig
from repro.core.simulator import DeadlockError, Simulator, run_simulation
from repro.core.types import NodeId
from repro.faults.schedule import FaultSchedule

from .conftest import small_config


def audited_sim(**overrides) -> Simulator:
    overrides.setdefault("audit", True)
    return Simulator(small_config(**overrides))


class _CorruptOnce:
    """Observer fixture: applies one corruption, then stands down.

    Installed as ``network.on_cycle_stepped`` *before* ``run()`` so the
    audit engine chains it first and checks the corrupted state in the
    same cycle.  ``action(network)`` returns True once it found a target
    and corrupted it.
    """

    def __init__(self, action, min_cycle: int = 5) -> None:
        self.action = action
        self.min_cycle = min_cycle
        self.fired = False

    def __call__(self, cycle: int, stepped) -> None:
        if self.fired or cycle < self.min_cycle:
            return
        self.fired = bool(self.action())


def run_corrupted(sim: Simulator, action, min_cycle: int = 5) -> InvariantViolation:
    sim.network.on_cycle_stepped = _CorruptOnce(action, min_cycle)
    with pytest.raises(InvariantViolation) as excinfo:
        sim.run()
    return excinfo.value


def each_vc(network):
    for node, router in network.routers.items():
        for vc in router.all_vcs():
            yield node, router, vc


class TestCleanRuns:
    def test_audited_run_is_clean_and_counts_cycles(self):
        sim = audited_sim(measure_packets=80, warmup_packets=20)
        result = sim.run()
        assert result.delivered_packets > 0
        assert sim.audit.cycles_audited > 0
        assert sim.audit.checks_run == sim.audit.cycles_audited * len(
            default_checkers()
        )

    def test_audit_does_not_perturb_results(self):
        plain = run_simulation(small_config(measure_packets=80, warmup_packets=20))
        audited = run_simulation(
            small_config(measure_packets=80, warmup_packets=20, audit=True)
        )
        assert audited.cycles == plain.cycles
        assert audited.average_latency == plain.average_latency
        assert audited.average_hops == plain.average_hops
        assert audited.delivered_packets == plain.delivered_packets
        assert audited.throughput == plain.throughput

    def test_audit_interval_thins_checks(self):
        sim = audited_sim(measure_packets=60)
        sim.audit.interval = 7
        result = sim.run()
        assert 0 < sim.audit.cycles_audited <= result.cycles // 7 + 1

    def test_disabled_config_builds_no_engine(self):
        sim = Simulator(small_config(measure_packets=40))
        assert sim.audit is None

    def test_attach_chains_existing_observer(self):
        sim = audited_sim(measure_packets=40)
        seen = []
        sim.network.on_cycle_stepped = lambda cycle, stepped: seen.append(cycle)
        sim.run()
        assert seen, "pre-installed observer must keep firing under audit"
        assert sim.audit.cycles_audited > 0

    def test_attach_is_idempotent(self):
        sim = audited_sim(measure_packets=40)
        sim.audit.attach()
        sim.audit.attach()
        sim.run()  # a double hook would recurse or double-count

    @pytest.mark.parametrize("full_sweep", [False, True])
    def test_audited_fault_campaign_holds(self, full_sweep):
        nodes = [NodeId(x, y) for y in range(4) for x in range(4)]
        schedule = FaultSchedule.sampled(
            nodes,
            count=2,
            seed=3,
            mtbf=150.0,
            critical=True,
            router_config=RouterConfig.for_architecture("roco"),
        )
        sim = Simulator(
            small_config(audit=True, routing="xy-yx", injection_rate=0.15),
            schedule=schedule,
            full_sweep=full_sweep,
        )
        try:
            sim.run()
        except DeadlockError:
            pass  # a faulty run may legally fail to drain
        assert sim.audit.cycles_audited > 0


class TestCorruptionIsCaught:
    def test_stolen_flit_breaks_conservation(self):
        sim = audited_sim()

        def steal():
            for _, _, vc in each_vc(sim.network):
                if vc.queue:
                    vc.queue.popleft()
                    vc._available += 1  # keep the credit sum balanced
                    return True
            return False

        violation = run_corrupted(sim, steal)
        assert violation.invariant == "conservation"

    def test_leaked_credit_breaks_credit_sum(self):
        sim = audited_sim()

        def leak():
            for _, _, vc in each_vc(sim.network):
                if vc.queue:
                    vc._available -= 1
                    return True
            return False

        violation = run_corrupted(sim, leak)
        assert violation.invariant == "credit"

    def test_swapped_flits_break_worm_order(self):
        sim = audited_sim(injection_rate=0.2)

        def swap():
            for _, _, vc in each_vc(sim.network):
                queue = vc.queue
                if len(queue) >= 2 and queue[0].packet.pid == queue[1].packet.pid:
                    queue[0], queue[1] = queue[1], queue[0]
                    return True
            return False

        violation = run_corrupted(sim, swap)
        assert violation.invariant == "wormhole-order"

    def test_stale_dead_flag_breaks_handshake(self):
        sim = audited_sim()

        def flip():
            for router in sim.network.routers.values():
                for port in router.outputs.values():
                    if port.downstream is not None and not port.dead:
                        port.dead = True
                        return True
            return False

        violation = run_corrupted(sim, flip)
        assert violation.invariant == "handshake"

    def test_duplicated_flit_is_caught_in_snapshot(self):
        sim = audited_sim()

        def duplicate():
            donor = None
            for _, _, vc in each_vc(sim.network):
                if vc.queue:
                    donor = vc.queue[0]
                    break
            if donor is None:
                return False
            for _, _, vc in each_vc(sim.network):
                if not vc.queue and not vc.dead:
                    vc.queue.append(donor)
                    vc._available -= 1
                    return True
            return False

        violation = run_corrupted(sim, duplicate)
        assert violation.invariant == "location"
        assert "duplicated" in violation.message

    def test_teleported_flit_breaks_location_continuity(self):
        sim = audited_sim()

        def teleport():
            # Move a buffered flit to a router two hops from where the
            # previous snapshot saw it; the continuity check must fire.
            prev = sim.audit.prev_snapshot
            if prev is None:
                return False
            network = sim.network
            for _, _, vc in each_vc(network):
                if not vc.queue:
                    continue
                flit = vc.queue[0]
                old = prev.locations.get((flit.packet.pid, flit.seq))
                if old is None:
                    continue
                for other, router in network.routers.items():
                    if abs(other.x - old.x) + abs(other.y - old.y) < 2:
                        continue
                    for target in router.all_vcs():
                        if not target.queue and not target.dead:
                            vc.queue.popleft()
                            vc._available += 1
                            target.queue.append(flit)
                            target._available -= 1
                            return True
            return False

        violation = run_corrupted(sim, teleport)
        assert violation.invariant == "location"
        assert "jumped" in violation.message

    def test_violation_quotes_the_packet_journey(self):
        sim = audited_sim()

        def steal():
            for _, _, vc in each_vc(sim.network):
                if vc.queue:
                    vc.queue.popleft()
                    vc._available += 1
                    return True
            return False

        violation = run_corrupted(sim, steal, min_cycle=20)
        if violation.pid is not None:
            assert f"packet {violation.pid}" in violation.excerpt


class _ForgingAllocator(MirrorAllocator):
    """Emits a grant for a (port, slot) nobody requested."""

    def allocate(self, requests):
        grants = super().allocate(requests)
        if len(grants) == 1:
            port = 1 - grants[0].port
            slot = 1 - grants[0].direction_slot
            if not requests[port][slot][0]:
                return grants + [MirrorGrant(port, slot, 0)]
        return grants


class _LazyAllocator(MirrorAllocator):
    """Serves one passage when the maximal matching serves two."""

    def allocate(self, requests):
        return super().allocate(requests)[:1]


def _sabotage_allocators(sim: Simulator, allocator_cls) -> None:
    vcs = sim.config.router_config.vcs_per_port
    for router in sim.network.routers.values():
        for module in router.modules.values():
            module.allocator = allocator_cls(vcs)


class TestMatchingChecker:
    def test_forged_grant_is_caught(self):
        sim = audited_sim()
        _sabotage_allocators(sim, _ForgingAllocator)
        with pytest.raises(InvariantViolation) as excinfo:
            sim.run()
        assert excinfo.value.invariant == "matching"
        assert "forged" in excinfo.value.message

    def test_dropped_grant_breaks_maximality(self):
        sim = audited_sim(injection_rate=0.3)
        _sabotage_allocators(sim, _LazyAllocator)
        with pytest.raises(InvariantViolation) as excinfo:
            sim.run()
        assert excinfo.value.invariant == "matching"
        assert "maximal" in excinfo.value.message


class TestFinalCheck:
    def test_leaked_outstanding_fails_final_check(self):
        sim = audited_sim(measure_packets=40)
        sim.run()
        sim._outstanding = 1
        with pytest.raises(InvariantViolation) as excinfo:
            sim.audit.final_check(sim.network.cycle)
        assert excinfo.value.invariant == "conservation"

    def test_unbalanced_drop_reasons_fail_final_check(self):
        sim = audited_sim(measure_packets=40)
        sim.run()
        sim.network.stats.drops_by_reason["phantom"] = 3
        with pytest.raises(InvariantViolation) as excinfo:
            sim.audit.final_check(sim.network.cycle)
        assert "drop reasons" in excinfo.value.message


class TestEngineConstruction:
    def test_interval_validated(self):
        sim = Simulator(small_config(measure_packets=40))
        with pytest.raises(ValueError):
            AuditEngine(sim, interval=0)
