"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import pytest

from repro.core.config import SimulationConfig
from repro.core.simulator import SimulationResult, run_simulation


def small_config(**overrides) -> SimulationConfig:
    """A 4x4 mesh configuration sized for fast unit-level runs."""
    params = {
        "width": 4,
        "height": 4,
        "router": "roco",
        "routing": "xy",
        "traffic": "uniform",
        "injection_rate": 0.10,
        "warmup_packets": 30,
        "measure_packets": 150,
        "max_cycles": 20_000,
        "seed": 7,
    }
    params.update(overrides)
    return SimulationConfig(**params)


def run_small(**overrides) -> SimulationResult:
    return run_simulation(small_config(**overrides))


@pytest.fixture(scope="session")
def baseline_results() -> dict[str, SimulationResult]:
    """One small fault-free run per architecture, shared across tests."""
    return {
        router: run_small(router=router)
        for router in ("generic", "path_sensitive", "roco")
    }
