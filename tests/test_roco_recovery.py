"""Unit tests for RoCo's hardware-recycling recovery behaviours (Section 4)."""

import pytest

from repro.core.config import SimulationConfig
from repro.core.network import Network
from repro.core.simulator import run_simulation
from repro.core.types import NodeId
from repro.faults import Component, ComponentFault, apply_faults
from repro.routers.roco.path_set import COLUMN, ROW

from .conftest import small_config
from .test_base_router import inject_worm, run_cycles


def faulty_network(fault, **overrides):
    params = {
        "width": 4,
        "height": 4,
        "router": "roco",
        "warmup_packets": 0,
        "measure_packets": 10,
    }
    params.update(overrides)
    net = Network(SimulationConfig(**params))
    apply_faults(net, [fault])
    net.wire()
    net.stats.start_measurement(0)
    return net


class TestDoubleRouting:
    def test_rc_fault_delays_heads_by_one_cycle(self):
        clean = faulty_network(
            ComponentFault(NodeId(1, 0), Component.SA, module=COLUMN)
        )
        # The column SA fault does not touch the row path used below.
        p_clean, _ = inject_worm(clean, NodeId(0, 0), NodeId(3, 0), size=2)
        run_cycles(clean, 30)

        rc = faulty_network(ComponentFault(NodeId(1, 0), Component.RC, module=ROW))
        p_rc, _ = inject_worm(rc, NodeId(0, 0), NodeId(3, 0), size=2)
        run_cycles(rc, 30)

        assert p_clean.delivered_cycle is not None
        assert p_rc.delivered_cycle is not None
        # Exactly one transit router (1,0) pays the double-routing cycle.
        assert p_rc.delivered_cycle == p_clean.delivered_cycle + 1

    def test_rc_fault_does_not_lose_traffic(self):
        net = faulty_network(ComponentFault(NodeId(1, 1), Component.RC, module=ROW))
        packet, _ = inject_worm(net, NodeId(0, 1), NodeId(3, 1), size=4)
        run_cycles(net, 40)
        assert packet.delivered_cycle is not None


class TestVirtualQueuing:
    def test_faulty_buffer_still_carries_traffic(self):
        fault = ComponentFault(
            NodeId(1, 0), Component.BUFFER, module=ROW, vc_position=0
        )
        net = faulty_network(fault)
        packet, _ = inject_worm(net, NodeId(0, 0), NodeId(3, 0), size=4)
        run_cycles(net, 60)
        assert packet.delivered_cycle is not None

    def test_virtual_queuing_penalty_on_faulty_vc(self):
        """Flits entering the degraded buffer wait out the handshake."""
        fault = ComponentFault(
            NodeId(1, 0), Component.BUFFER, module=ROW, vc_position=0
        )
        net = faulty_network(fault)
        router = net.routers[NodeId(1, 0)]
        faulty = [vc for vc in router.all_vcs() if vc.faulty]
        assert len(faulty) == 1
        packet, _ = inject_worm(net, NodeId(0, 0), NodeId(3, 0), size=1)
        run_cycles(net, 60)
        assert packet.delivered_cycle is not None

    def test_full_run_with_buffer_faults_completes(self):
        faults = [
            ComponentFault(NodeId(1, 1), Component.BUFFER, module=ROW, vc_position=i)
            for i in range(2)
        ]
        config = small_config(router="roco", measure_packets=150)
        result = run_simulation(config, faults=faults)
        assert result.completion_probability == 1.0


class TestSAOffloading:
    def test_sa_degraded_module_still_delivers(self):
        fault = ComponentFault(NodeId(1, 0), Component.SA, module=ROW)
        net = faulty_network(fault)
        packet, _ = inject_worm(net, NodeId(0, 0), NodeId(3, 0), size=4)
        run_cycles(net, 80)
        assert packet.delivered_cycle is not None

    def test_sa_degradation_costs_latency(self):
        config = small_config(router="roco", injection_rate=0.15, measure_packets=200)
        clean = run_simulation(config)
        faults = [
            ComponentFault(NodeId(x, y), Component.SA, module=ROW)
            for x, y in ((1, 1), (2, 1), (1, 2), (2, 2))
        ]
        degraded = run_simulation(config, faults=faults)
        assert degraded.completion_probability == 1.0
        assert degraded.average_latency > clean.average_latency


class TestModuleIsolation:
    def test_row_fault_keeps_column_service(self):
        """The paper's headline: partial operation in one dimension."""
        fault = ComponentFault(NodeId(1, 1), Component.CROSSBAR, module=ROW)
        net = faulty_network(fault)
        packet, _ = inject_worm(net, NodeId(1, 0), NodeId(1, 3), size=4)
        run_cycles(net, 40)
        assert packet.delivered_cycle is not None

    def test_row_fault_blocks_row_transit(self):
        fault = ComponentFault(NodeId(1, 0), Component.CROSSBAR, module=ROW)
        net = faulty_network(fault, fault_drop_timeout=15)
        packet, _ = inject_worm(net, NodeId(0, 0), NodeId(3, 0), size=2)
        run_cycles(net, 80)
        assert packet.delivered_cycle is None
        assert packet.dropped_cycle is not None

    def test_destination_with_dead_module_still_ejects(self):
        fault = ComponentFault(NodeId(2, 0), Component.VA, module=ROW)
        net = faulty_network(fault)
        # Approach from the north: the column module and early ejection
        # at (2,0) are untouched by the row-module fault.
        packet, _ = inject_worm(net, NodeId(2, 3), NodeId(2, 0), size=2)
        run_cycles(net, 40)
        assert packet.delivered_cycle is not None
