"""Determinism regression tests.

The caching and parallel layers lean on one guarantee: a simulation is
a pure function of its configuration — the simulator's only RNG is
seeded from ``config.seed`` and no global state leaks between runs.
These tests pin that guarantee for every router architecture.
"""

import pytest

from repro.core.config import SimulationConfig
from repro.core.simulator import run_simulation
from repro.harness.export import result_record

ROUTERS = ("generic", "path_sensitive", "roco")


def config(router: str, routing: str = "xy", seed: int = 11) -> SimulationConfig:
    return SimulationConfig(
        width=4,
        height=4,
        router=router,
        routing=routing,
        traffic="uniform",
        injection_rate=0.15,
        warmup_packets=40,
        measure_packets=260,
        max_cycles=30_000,
        seed=seed,
    )


@pytest.mark.parametrize("router", ROUTERS)
def test_same_seed_same_result(router):
    """Two runs of one config agree on every exported field."""
    first = run_simulation(config(router))
    second = run_simulation(config(router))
    assert result_record(first) == result_record(second)
    # Distribution shape, not just the mean.
    assert first.latency.p50 == second.latency.p50
    assert first.latency.p95 == second.latency.p95
    assert first.latency.p99 == second.latency.p99
    assert first.cycles == second.cycles


@pytest.mark.parametrize("router", ROUTERS)
@pytest.mark.parametrize("routing", ("xy", "xy-yx", "adaptive"))
def test_same_seed_same_stats_across_routings(router, routing):
    a = run_simulation(config(router, routing=routing))
    b = run_simulation(config(router, routing=routing))
    assert a.average_latency == b.average_latency
    assert a.throughput == b.throughput
    assert a.delivered_packets == b.delivered_packets
    assert a.energy_per_packet_nj == b.energy_per_packet_nj


@pytest.mark.parametrize("router", ROUTERS)
def test_different_seeds_differ(router):
    """Sanity: the seed actually reaches the traffic generator."""
    a = run_simulation(config(router, seed=11))
    b = run_simulation(config(router, seed=12))
    assert (a.average_latency, a.cycles) != (b.average_latency, b.cycles)
