"""Tests for the instrumentation probes and heatmaps."""

import pytest

from repro.core.simulator import Simulator
from repro.core.types import NodeId
from repro.faults import Component, ComponentFault
from repro.instrumentation import (
    ActivityProbe,
    DropProbe,
    LatencyMatrixProbe,
    LinkUtilizationProbe,
    render_grid,
    render_legend,
    render_shaded,
)

from .conftest import small_config


@pytest.fixture(scope="module")
def probed_run():
    sim = Simulator(small_config(injection_rate=0.15, measure_packets=300))
    links = LinkUtilizationProbe(sim)
    latency = LatencyMatrixProbe(sim)
    drops = DropProbe(sim)
    result = sim.run()
    return sim, links, latency, drops, result


class TestLinkUtilization:
    def test_utilizations_bounded(self, probed_run):
        _, links, *_ = probed_run
        for (node, direction), util in links.utilization().items():
            assert 0.0 <= util <= 1.0, (node, direction)

    def test_traffic_flowed_somewhere(self, probed_run):
        _, links, *_ = probed_run
        assert any(u > 0 for u in links.utilization().values())

    def test_hottest_links_sorted(self, probed_run):
        _, links, *_ = probed_run
        hottest = links.hottest_links(4)
        utils = [u for *_, u in hottest]
        assert utils == sorted(utils, reverse=True)

    def test_node_throughput_covers_mesh(self, probed_run):
        _, links, *_ = probed_run
        throughput = links.node_throughput()
        assert len(throughput) == 16


class TestLatencyMatrix:
    def test_matrix_populated(self, probed_run):
        *_, latency, _, result = probed_run
        matrix = latency.matrix()
        assert matrix
        total = sum(len(v) for v in latency._samples.values())
        assert total == result.delivered_packets

    def test_per_source_positive(self, probed_run):
        *_, latency, _, _ = probed_run
        for node, value in latency.per_source().items():
            assert value > 0

    def test_worst_pairs_sorted(self, probed_run):
        *_, latency, _, _ = probed_run
        worst = latency.worst_pairs(3)
        values = [v for *_, v in worst]
        assert values == sorted(values, reverse=True)

    def test_distance_correlates_with_latency(self, probed_run):
        """Longer paths must not be faster on average."""
        *_, latency, _, _ = probed_run
        by_hops = {}
        for (src, dest), mean in latency.matrix().items():
            hops = abs(src.x - dest.x) + abs(src.y - dest.y)
            by_hops.setdefault(hops, []).append(mean)
        averages = {h: sum(v) / len(v) for h, v in by_hops.items()}
        hops = sorted(averages)
        assert averages[hops[0]] < averages[hops[-1]]


class TestDropProbe:
    def test_no_drops_in_clean_run(self, probed_run):
        *_, drops, result = probed_run
        assert not drops.records
        assert result.dropped_packets == 0

    def test_drops_recorded_in_faulty_run(self):
        faults = [ComponentFault(NodeId(1, 1), Component.CROSSBAR)]
        sim = Simulator(
            small_config(
                router="generic", injection_rate=0.15, measure_packets=200
            ),
            faults=faults,
        )
        probe = DropProbe(sim)
        result = sim.run()
        assert result.dropped_packets > 0
        assert len(probe.records) >= result.dropped_packets
        assert all(r.age >= 0 for r in probe.records)
        assert probe.drops_by_destination()


class TestActivityProbe:
    @pytest.fixture(scope="class")
    def activity_run(self):
        sim = Simulator(small_config())
        probe = ActivityProbe(sim)
        result = sim.run()
        return sim, probe, result

    def test_observes_every_cycle(self, activity_run):
        _, probe, result = activity_run
        assert probe.cycles_observed == result.scheduler.cycles

    def test_duty_cycle_matches_scheduler_counters(self, activity_run):
        _, probe, result = activity_run
        duty = probe.duty_cycle()
        assert 0.0 < duty < 1.0
        assert duty == pytest.approx(result.scheduler.duty_cycle)

    def test_steps_per_node_match_router_counters(self, activity_run):
        sim, probe, result = activity_run
        assert sum(probe.steps_per_node.values()) == result.scheduler.router_steps
        for node, router in sim.network.routers.items():
            assert probe.steps_per_node.get(node, 0) == router.steps_taken

    def test_peak_bounded_by_mesh_size(self, activity_run):
        sim, probe, _ = activity_run
        assert 0 < probe.peak_active() <= len(sim.network.routers)
        assert probe.idle_cycles() + sum(
            1 for n in probe.active_counts if n
        ) == probe.cycles_observed

    def test_hottest_nodes_sorted(self, activity_run):
        _, probe, _ = activity_run
        hottest = probe.hottest_nodes(4)
        counts = [c for _, c in hottest]
        assert counts == sorted(counts, reverse=True)

    def test_second_observer_rejected(self, activity_run):
        sim, *_ = activity_run
        with pytest.raises(RuntimeError):
            ActivityProbe(sim)

    def test_full_sweep_duty_is_one(self):
        sim = Simulator(small_config(measure_packets=60), full_sweep=True)
        probe = ActivityProbe(sim)
        sim.run()
        assert probe.duty_cycle() == 1.0
        assert probe.idle_cycles() == 0
        assert probe.peak_active() == len(sim.network.routers)


class TestHeatmaps:
    VALUES = {NodeId(x, y): float(x + y) for x in range(3) for y in range(3)}

    def test_render_grid_shape(self):
        text = render_grid(self.VALUES, 3, 3)
        assert len(text.splitlines()) == 3
        assert "4.00" in text

    def test_render_grid_missing_marker(self):
        text = render_grid({NodeId(0, 0): 1.0}, 2, 2)
        assert "-" in text

    def test_render_shaded_extremes(self):
        text = render_shaded(self.VALUES, 3, 3)
        lines = text.splitlines()
        assert lines[0][0] == " "  # value 0 -> idle shade
        assert lines[-1][-1] == "@"  # max value -> full shade

    def test_render_legend(self):
        assert "0.0" in render_legend(2.5) and "2.50" in render_legend(2.5)
