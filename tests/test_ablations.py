"""Tests for the ablation configuration switches."""

from repro.arbiters.mirror import MirrorAllocator
from repro.arbiters.sequential import SequentialAllocator
from repro.core.config import RouterConfig, SimulationConfig
from repro.core.network import Network
from repro.core.simulator import run_simulation
from repro.core.types import NodeId

from .conftest import small_config


def config_with(**router_overrides):
    rc = RouterConfig.for_architecture("roco", **router_overrides)
    return small_config(router="roco", router_config=rc, measure_packets=150)


class TestMirrorSwitch:
    def test_default_uses_mirror(self):
        net = Network(SimulationConfig(width=3, height=3, router="roco"))
        module = net.routers[NodeId(1, 1)].row
        assert isinstance(module.allocator, MirrorAllocator)

    def test_ablation_uses_sequential(self):
        rc = RouterConfig.for_architecture("roco", mirror_allocation=False)
        net = Network(
            SimulationConfig(width=3, height=3, router="roco", router_config=rc)
        )
        module = net.routers[NodeId(1, 1)].row
        assert isinstance(module.allocator, SequentialAllocator)

    def test_ablated_network_still_delivers(self):
        result = run_simulation(config_with(mirror_allocation=False))
        assert result.completion_probability == 1.0


class TestLookaheadSwitch:
    def test_disabling_lookahead_adds_latency(self):
        with_la = run_simulation(config_with(lookahead_routing=True))
        without = run_simulation(config_with(lookahead_routing=False))
        assert without.completion_probability == 1.0
        assert without.average_latency > with_la.average_latency

    def test_path_sensitive_honours_flag_too(self):
        rc_on = RouterConfig.for_architecture("path_sensitive")
        rc_off = RouterConfig.for_architecture(
            "path_sensitive", lookahead_routing=False
        )
        on = run_simulation(
            small_config(
                router="path_sensitive", router_config=rc_on, measure_packets=150
            )
        )
        off = run_simulation(
            small_config(
                router="path_sensitive", router_config=rc_off, measure_packets=150
            )
        )
        assert off.average_latency > on.average_latency
