"""Chaos-harness tests: fault injection is deterministic, and sweeps
run under chaos converge bit-identical to fault-free runs.

The pooled cells here spawn real worker processes and inject real
faults (``os._exit``, sleeps); they are kept small (3x3 mesh, short
runs) so the whole file stays in CI-smoke territory.  The full grid
lives behind ``python -m repro chaos --grid`` (the CI chaos-smoke job).
"""

import pytest

from repro.core.config import SimulationConfig
from repro.harness.chaos import (
    CRASH_EXIT_CODE,
    ChaosConfig,
    ChaosRule,
    ChaosTransientError,
    chaos_execute,
    run_chaos_grid,
)
from repro.harness.parallel import ParallelExecutor, SimJob, is_failure_record
from repro.harness.resilient import (
    CorruptResultError,
    RetryPolicy,
    validate_record,
)

BASE = {
    "width": 3,
    "height": 3,
    "warmup_packets": 10,
    "measure_packets": 60,
    "injection_rate": 0.08,
}


def jobs_for(seeds=(1, 2, 3)):
    return [
        SimJob.of(SimulationConfig(**BASE, seed=seed)) for seed in seeds
    ]


FAST = RetryPolicy(backoff_base=0.0, max_retries=3)


class TestChaosRules:
    def test_rule_matching_by_index_and_attempt(self):
        config = ChaosConfig(
            rules=(
                ChaosRule(kind="transient", indices=(1,), attempts=(0,)),
                ChaosRule(kind="crash", indices=(2,), attempts=None),
            )
        )
        assert config.rule_for(0, 0) is None
        assert config.rule_for(1, 0).kind == "transient"
        assert config.rule_for(1, 1) is None  # attempt 1 not targeted
        assert config.rule_for(2, 0).kind == "crash"
        assert config.rule_for(2, 5).kind == "crash"  # poison: every attempt

    def test_first_matching_rule_wins(self):
        config = ChaosConfig(
            rules=(
                ChaosRule(kind="transient", indices=(0,), attempts=(0,)),
                ChaosRule(kind="crash", indices=None, attempts=(0,)),
            )
        )
        assert config.rule_for(0, 0).kind == "transient"
        assert config.rule_for(1, 0).kind == "crash"

    def test_indices_none_matches_all(self):
        config = ChaosConfig(
            rules=(ChaosRule(kind="transient", indices=None, attempts=(0,)),)
        )
        for index in range(5):
            assert config.rule_for(index, 0) is not None


class TestChaosExecuteSerial:
    """Serial stand-ins: faults surface as typed exceptions."""

    def job(self):
        return jobs_for(seeds=(1,))[0]

    def test_clean_execution_matches_direct_run(self):
        direct = ParallelExecutor().run_jobs([self.job()])[0]
        chaotic = chaos_execute(self.job(), 0, 0, ChaosConfig(rules=()))
        assert chaotic == direct

    def test_transient_raises_chaos_error(self):
        chaos = ChaosConfig(
            rules=(ChaosRule(kind="transient", indices=(0,), attempts=(0,)),)
        )
        with pytest.raises(ChaosTransientError):
            chaos_execute(self.job(), 0, 0, chaos)
        # Attempt 1 is clean — the fault is injected exactly once.
        record = chaos_execute(self.job(), 0, 1, chaos)
        validate_record(record)

    def test_crash_raises_worker_crash_standin_serially(self):
        from repro.harness.resilient import WorkerCrashError

        chaos = ChaosConfig(
            rules=(ChaosRule(kind="crash", indices=(0,), attempts=(0,)),)
        )
        with pytest.raises(WorkerCrashError):
            chaos_execute(self.job(), 0, 0, chaos)

    def test_hang_raises_timeout_standin_serially(self):
        from repro.harness.resilient import JobTimeoutError

        chaos = ChaosConfig(
            rules=(ChaosRule(kind="hang", indices=(0,), attempts=(0,)),)
        )
        with pytest.raises(JobTimeoutError):
            chaos_execute(self.job(), 0, 0, chaos)

    def test_corrupt_tampers_named_fields(self):
        chaos = ChaosConfig(
            rules=(
                ChaosRule(
                    kind="corrupt",
                    indices=(0,),
                    attempts=(0,),
                    fields=("average_latency",),
                ),
            )
        )
        record = chaos_execute(self.job(), 0, 0, chaos)
        with pytest.raises(CorruptResultError):
            validate_record(record)

    def test_crash_exit_code_is_distinctive(self):
        assert CRASH_EXIT_CODE == 87


class TestChaosConvergence:
    """The headline property: chaos-ridden sweeps converge bit-identical."""

    @pytest.fixture(scope="class")
    def baseline(self):
        return ParallelExecutor().run_jobs(jobs_for())

    def test_serial_mixed_chaos_converges(self, baseline):
        chaos = ChaosConfig(
            rules=(
                ChaosRule(kind="transient", indices=(0,), attempts=(0,)),
                ChaosRule(kind="crash", indices=(1,), attempts=(0,)),
                ChaosRule(
                    kind="corrupt",
                    indices=(2,),
                    attempts=(0,),
                    fields=("average_latency",),
                ),
            )
        )
        executor = ParallelExecutor(policy=FAST, chaos=chaos)
        assert executor.run_jobs(jobs_for()) == baseline
        stats = executor.last_stats
        assert stats.retries == 3
        assert stats.failures == 0
        assert stats.worker_crashes == 1
        assert stats.corrupt_results == 1

    def test_pooled_mixed_chaos_converges(self, baseline):
        chaos = ChaosConfig(
            rules=(
                ChaosRule(kind="crash", indices=(0,), attempts=(0,)),
                ChaosRule(kind="transient", indices=(2,), attempts=(0,)),
            )
        )
        policy = RetryPolicy(
            backoff_base=0.0,
            max_retries=3,
            heartbeat_interval=0.2,
            heartbeat_timeout=10.0,
        )
        executor = ParallelExecutor(workers=2, policy=policy, chaos=chaos)
        assert executor.run_jobs(jobs_for()) == baseline
        assert executor.last_stats.failures == 0
        assert executor.last_stats.retries == 2

    def test_poison_job_quarantined_survivors_identical(self, baseline):
        chaos = ChaosConfig(
            rules=(ChaosRule(kind="crash", indices=(1,), attempts=None),)
        )
        policy = RetryPolicy(backoff_base=0.0, max_retries=2)
        executor = ParallelExecutor(policy=policy, chaos=chaos)
        records = executor.run_jobs(jobs_for())
        assert records[0] == baseline[0]
        assert records[2] == baseline[2]
        assert is_failure_record(records[1])
        assert records[1]["kind"] == "retries-exhausted"


class TestChaosGrid:
    def test_quick_grid_serial_only(self, capsys):
        import sys

        exit_code = run_chaos_grid(workers=1, quick=True, stream=sys.stderr)
        assert exit_code == 0
        err = capsys.readouterr().err
        assert "converged" in err
        assert "MISMATCH" not in err
