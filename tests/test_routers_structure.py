"""Structural unit tests for the three router architectures."""

import pytest

from repro.core.config import SimulationConfig
from repro.core.network import Network
from repro.core.types import Direction, NodeId, Packet
from repro.routers import EJECT, RoCoRouter
from repro.routers.generic import GENERIC_PORTS
from repro.routers.path_sensitive import QUADRANTS, quadrant_of
from repro.routers.roco.router import classify_vc


def network(router="roco", routing="xy", k=4):
    net = Network(SimulationConfig(width=k, height=k, router=router, routing=routing))
    net.wire()
    return net


def packet(src, dest, pid=0):
    return Packet(pid=pid, src=src, dest=dest, size=4, created_cycle=0)


class TestGenericStructure:
    def test_fifteen_vcs(self):
        net = network("generic")
        router = net.routers[NodeId(1, 1)]
        assert len(router.all_vcs()) == 5 * 3

    def test_ports_cover_all_directions(self):
        net = network("generic")
        router = net.routers[NodeId(1, 1)]
        assert set(router.ports) == set(GENERIC_PORTS)

    def test_border_router_has_fewer_outputs(self):
        net = network("generic")
        corner = net.routers[NodeId(0, 0)]
        assert set(corner.outputs) == {Direction.EAST, Direction.SOUTH}

    def test_vc_candidates_exposes_input_port(self):
        net = network("generic")
        router = net.routers[NodeId(1, 1)]
        cands = router.vc_candidates(Direction.WEST, packet(NodeId(0, 1), NodeId(3, 1)))
        assert len(cands) == 3
        assert all(route is None for _, route in cands)

    def test_escape_only_returns_vc0(self):
        net = network("generic", routing="adaptive")
        router = net.routers[NodeId(1, 1)]
        cands = router.vc_candidates(
            Direction.WEST, packet(NodeId(0, 1), NodeId(3, 3)), escape_only=True
        )
        assert len(cands) == 1
        assert cands[0][0].escape

    def test_dead_router_admits_nothing(self):
        net = network("generic")
        router = net.routers[NodeId(1, 1)]
        router.dead = True
        assert (
            router.vc_candidates(
                Direction.WEST, packet(NodeId(0, 1), NodeId(3, 1))
            )
            == []
        )
        assert router.injection_vc_for(packet(NodeId(1, 1), NodeId(3, 1))) is None


class TestPathSensitiveStructure:
    def test_twelve_vcs_in_four_sets(self):
        net = network("path_sensitive")
        router = net.routers[NodeId(1, 1)]
        assert len(router.all_vcs()) == 12
        assert set(router.path_sets) == set(QUADRANTS)

    def test_early_ejection_candidate(self):
        net = network("path_sensitive")
        router = net.routers[NodeId(2, 2)]
        cands = router.vc_candidates(Direction.WEST, packet(NodeId(0, 2), NodeId(2, 2)))
        assert cands == [(EJECT, Direction.LOCAL)]

    def test_candidates_land_in_destination_quadrant(self):
        net = network("path_sensitive")
        router = net.routers[NodeId(1, 1)]
        p = packet(NodeId(0, 1), NodeId(3, 3))  # dest is SE of (1,1)
        for vc, route in router.vc_candidates(Direction.WEST, p):
            assert vc.vc_class == "SE"

    def test_quadrant_of_diagonals(self):
        assert quadrant_of(NodeId(2, 2), NodeId(3, 1)) == "NE"
        assert quadrant_of(NodeId(2, 2), NodeId(0, 0)) == "NW"
        assert quadrant_of(NodeId(2, 2), NodeId(3, 3)) == "SE"
        assert quadrant_of(NodeId(2, 2), NodeId(1, 3)) == "SW"

    def test_quadrant_of_axis_respects_arrival(self):
        """A pure-South flit arriving from the West must use SE."""
        assert quadrant_of(NodeId(2, 2), NodeId(2, 3), Direction.WEST) == "SE"
        assert quadrant_of(NodeId(2, 2), NodeId(2, 3), Direction.EAST) == "SW"
        assert quadrant_of(NodeId(2, 2), NodeId(2, 0), Direction.WEST) == "NE"
        assert quadrant_of(NodeId(2, 2), NodeId(2, 0), Direction.EAST) == "NW"

    def test_quadrant_of_self_rejected(self):
        with pytest.raises(ValueError):
            quadrant_of(NodeId(1, 1), NodeId(1, 1))

    def test_every_minimal_arrival_admissible(self):
        """Any (arrival, destination) pair minimal routing can produce
        must find an admitting VC (a flit arriving from the North is
        travelling south, so its destination cannot lie further north)."""
        net = network("path_sensitive")
        router = net.routers[NodeId(1, 1)]
        node = router.node
        feasible = {
            Direction.NORTH: lambda d: d.y > node.y
            or (d.y == node.y and d.x != node.x),
            Direction.SOUTH: lambda d: d.y < node.y
            or (d.y == node.y and d.x != node.x),
            Direction.WEST: lambda d: d.x > node.x
            or (d.x == node.x and d.y != node.y),
            Direction.EAST: lambda d: d.x < node.x
            or (d.x == node.x and d.y != node.y),
        }
        for arrival, ok in feasible.items():
            for dest in net.nodes:
                if dest == node or not ok(dest):
                    continue
                p = packet(node.neighbor(arrival), dest)
                cands = router.vc_candidates(arrival, p)
                assert cands, f"no admission from {arrival.name} to {dest}"


class TestRoCoStructure:
    def test_twelve_vcs_two_modules(self):
        net = network("roco")
        router = net.routers[NodeId(1, 1)]
        assert len(router.all_vcs()) == 12
        assert len(router.row.all_vcs()) == 6
        assert len(router.column.all_vcs()) == 6

    def test_module_for(self):
        net = network("roco")
        router = net.routers[NodeId(1, 1)]
        assert router.module_for(Direction.EAST) is router.row
        assert router.module_for(Direction.WEST) is router.row
        assert router.module_for(Direction.NORTH) is router.column
        assert router.module_for(Direction.SOUTH) is router.column

    def test_classify_vc(self):
        assert classify_vc(Direction.WEST, Direction.EAST) == "dx"
        assert classify_vc(Direction.WEST, Direction.SOUTH) == "txy"
        assert classify_vc(Direction.NORTH, Direction.SOUTH) == "dy"
        assert classify_vc(Direction.NORTH, Direction.EAST) == "tyx"
        assert classify_vc(Direction.LOCAL, Direction.EAST) == "injxy"
        assert classify_vc(Direction.LOCAL, Direction.NORTH) == "injyx"

    def test_early_ejection_candidate(self):
        net = network("roco")
        router = net.routers[NodeId(2, 2)]
        cands = router.vc_candidates(
            Direction.NORTH, packet(NodeId(2, 0), NodeId(2, 2))
        )
        assert cands == [(EJECT, Direction.LOCAL)]

    def test_guided_queuing_commits_route(self):
        """Every candidate pairs a VC with the committed route here."""
        net = network("roco")
        router = net.routers[NodeId(1, 1)]
        p = packet(NodeId(0, 1), NodeId(3, 1))  # straight East
        cands = router.vc_candidates(Direction.WEST, p)
        assert cands
        for vc, route in cands:
            assert route is Direction.EAST
            assert vc.vc_class == "dx"

    def test_turning_flit_goes_to_column_module(self):
        net = network("roco")
        router = net.routers[NodeId(2, 2)]
        p = packet(NodeId(0, 2), NodeId(2, 3))  # turns south here
        cands = router.vc_candidates(Direction.WEST, p)
        assert cands
        for vc, route in cands:
            assert route is Direction.SOUTH
            assert vc.vc_class == "txy"

    def test_injection_commits_first_direction(self):
        net = network("roco")
        router = net.routers[NodeId(1, 1)]
        vc, route = router.injection_vc_for(packet(NodeId(1, 1), NodeId(3, 1)))
        assert vc.vc_class == "injxy"
        assert route is Direction.EAST
        vc, route = router.injection_vc_for(packet(NodeId(1, 1), NodeId(1, 3)))
        assert vc.vc_class == "injyx"
        assert route is Direction.SOUTH

    def test_dead_module_removes_candidates(self):
        net = network("roco")
        router = net.routers[NodeId(1, 1)]
        router.row.dead = True
        p = packet(NodeId(0, 1), NodeId(3, 1))  # needs the row module
        assert router.vc_candidates(Direction.WEST, p) == []
        # Column traffic still admitted.
        q = packet(NodeId(1, 0), NodeId(1, 3))
        assert router.vc_candidates(Direction.NORTH, q)

    def test_dead_module_blocks_injection_of_that_dimension(self):
        net = network("roco")
        router = net.routers[NodeId(1, 1)]
        router.row.dead = True
        p = packet(NodeId(1, 1), NodeId(3, 1))  # XY: must start in X
        assert not router.injection_possible(p)
        q = packet(NodeId(1, 1), NodeId(1, 3))  # same column: starts in Y
        assert router.injection_possible(q)

    def test_early_ejection_survives_dead_module(self):
        """Graceful degradation: arrivals still eject with one module dead."""
        net = network("roco")
        router = net.routers[NodeId(2, 2)]
        router.row.dead = True
        cands = router.vc_candidates(
            Direction.NORTH, packet(NodeId(2, 0), NodeId(2, 2))
        )
        assert cands == [(EJECT, Direction.LOCAL)]
