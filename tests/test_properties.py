"""Property-based system tests over randomised small simulations.

These drive the whole simulator with hypothesis-chosen parameters and
check the invariants that must hold for ANY configuration: conservation
of flits, bounded credits, per-worm flit ordering and full delivery in
fault-free networks.
"""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.config import SimulationConfig
from repro.core.simulator import Simulator
from repro.core.types import is_worm_tail

sim_params = st.fixed_dictionaries(
    {
        "router": st.sampled_from(["generic", "path_sensitive", "roco"]),
        "routing": st.sampled_from(["xy", "xy-yx", "adaptive"]),
        "traffic": st.sampled_from(["uniform", "transpose", "neighbor"]),
        "injection_rate": st.sampled_from([0.05, 0.12, 0.2]),
        "seed": st.integers(1, 10_000),
        "flits_per_packet": st.sampled_from([1, 2, 4]),
    }
)


def build(params):
    return Simulator(
        SimulationConfig(
            width=3,
            height=3,
            warmup_packets=10,
            measure_packets=60,
            max_cycles=20_000,
            **params,
        )
    )


@given(sim_params)
@settings(max_examples=25, deadline=None, suppress_health_check=[HealthCheck.too_slow])
def test_fault_free_networks_deliver_everything(params):
    sim = build(params)
    result = sim.run()
    assert result.completion_probability == 1.0
    assert result.dropped_packets == 0


@given(sim_params)
@settings(max_examples=15, deadline=None, suppress_health_check=[HealthCheck.too_slow])
def test_flit_conservation_and_empty_buffers(params):
    sim = build(params)
    result = sim.run()
    stats = sim.network.stats
    assert stats.delivered_flits == result.delivered_packets * params[
        "flits_per_packet"
    ]
    for router in sim.network.routers.values():
        for vc in router.all_vcs():
            assert vc.empty
            assert vc.owner_pid is None
            assert vc.expected == 0


@given(sim_params)
@settings(max_examples=15, deadline=None, suppress_health_check=[HealthCheck.too_slow])
def test_credits_restored_after_drain(params):
    sim = build(params)
    sim.run()
    final_cycle = sim.network.cycle + 10
    for router in sim.network.routers.values():
        for vc in router.all_vcs():
            assert vc.credits(final_cycle) == vc.effective_depth


@given(sim_params)
@settings(max_examples=15, deadline=None, suppress_health_check=[HealthCheck.too_slow])
def test_worms_arrive_in_order_and_complete(params):
    """Track per-packet flit arrival: sequential seqs, tail last."""
    sim = build(params)
    arrivals: dict[int, list[int]] = {}
    original_eject = sim.network.eject

    def spying_eject(flit, node, cycle, early):
        arrivals.setdefault(flit.packet.pid, []).append(flit.seq)
        original_eject(flit, node, cycle, early)

    sim.network.eject = spying_eject
    sim.run()
    assert arrivals
    for pid, seqs in arrivals.items():
        assert seqs == sorted(seqs), f"packet {pid} flits out of order"
        assert seqs == list(range(params["flits_per_packet"]))


@given(sim_params)
@settings(max_examples=15, deadline=None, suppress_health_check=[HealthCheck.too_slow])
def test_packet_conservation_at_measurement_boundaries(params):
    """Injected == delivered + dropped + in-flight, at every boundary.

    The simulator reports progress at fixed cycle boundaries; at each
    one we audit the books: every packet ever generated is either
    delivered, dropped, or still in flight — and the flits physically
    resident in the system (source queues plus VC buffers) never exceed
    the flits of in-flight packets.
    """
    sim = build(params)
    delivered: list = []
    dropped: list = []
    sim.delivery_listeners.append(delivered.append)
    sim.drop_listeners.append(dropped.append)
    boundaries = 0

    def audit(cycle, generated, outstanding):
        nonlocal boundaries
        boundaries += 1
        assert generated == len(delivered) + len(dropped) + outstanding
        resident = sum(source.backlog for source in sim.sources.values())
        for router in sim.network.routers.values():
            for vc in router.all_vcs():
                resident += len(vc.queue)
        assert resident <= outstanding * params["flits_per_packet"]

    result = sim.run(progress=audit, progress_every=25)
    assert boundaries > 0, "run too short to cross a measurement boundary"
    # Termination is the last boundary: everything is accounted for and
    # nothing is left resident anywhere.
    assert result.injected_packets == result.delivered_packets
    assert len(delivered) == sim._generated
    assert not dropped
    assert sum(source.backlog for source in sim.sources.values()) == 0


@given(sim_params, st.integers(0, 2))
@settings(max_examples=12, deadline=None, suppress_health_check=[HealthCheck.too_slow])
def test_latency_at_least_pipeline_minimum(params, _pad):
    """No packet can beat 3 cycles/hop + serialization physics."""
    sim = build(params)
    done = []
    sim.network.on_packet_delivered = lambda p: (
        sim._on_packet_done(p),
        done.append(p),
    )[0]
    sim.run()
    for p in done:
        hops = abs(p.dest.x - p.src.x) + abs(p.dest.y - p.src.y)
        assert p.latency >= 3 * hops + (p.size - 1)
