"""Tests for the analytical performance model, cross-validated against
the simulator."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.analysis.model import (
    average_hops_uniform,
    bisection_saturation_rate,
    center_link_load,
    expected_saturation_rate,
    zero_load_latency,
)

from .conftest import run_small


class TestHopFormula:
    @given(st.integers(2, 10))
    def test_matches_bruteforce(self, k):
        total = 0
        count = 0
        for sx in range(k):
            for sy in range(k):
                for dx in range(k):
                    for dy in range(k):
                        if (sx, sy) == (dx, dy):
                            continue
                        total += abs(sx - dx) + abs(sy - dy)
                        count += 1
        assert average_hops_uniform(k) == pytest.approx(total / count)

    def test_known_value_8x8(self):
        assert average_hops_uniform(8) == pytest.approx(16 / 3)

    def test_rejects_tiny_mesh(self):
        with pytest.raises(ValueError):
            average_hops_uniform(1)


class TestZeroLoadLatency:
    def test_generic_pays_rc_and_ejection(self):
        generic = zero_load_latency("generic", 8)
        roco = zero_load_latency("roco", 8)
        assert generic.total > roco.total
        assert generic.total - roco.total == pytest.approx(generic.hops + 2)

    def test_lookahead_routers_identical(self):
        assert zero_load_latency("roco", 8).total == pytest.approx(
            zero_load_latency("path_sensitive", 8).total
        )

    def test_unknown_architecture(self):
        with pytest.raises(ValueError):
            zero_load_latency("hexagonal", 8)

    @pytest.mark.parametrize("router", ["generic", "path_sensitive", "roco"])
    def test_simulator_matches_model_at_low_load(self, router):
        """The headline cross-validation: unloaded simulation latency
        must land within ~15% of the closed-form pipeline estimate."""
        estimate = zero_load_latency(router, k=4)
        result = run_small(router=router, injection_rate=0.02, measure_packets=120)
        assert result.average_latency == pytest.approx(estimate.total, rel=0.15)


class TestSaturation:
    def test_bisection_bound(self):
        assert bisection_saturation_rate(8) == pytest.approx(0.5)
        assert bisection_saturation_rate(4) == pytest.approx(1.0)

    def test_expected_rate_below_bound(self):
        assert expected_saturation_rate(8) < bisection_saturation_rate(8)

    def test_simulator_unsaturated_below_estimate(self):
        """At half the estimated saturation rate the network must accept
        the offered load (throughput tracks injection)."""
        rate = expected_saturation_rate(4) / 2
        result = run_small(injection_rate=rate, measure_packets=400)
        assert result.completion_probability == 1.0
        assert result.average_latency < 3 * zero_load_latency("roco", 4).total

    def test_center_link_load_scales(self):
        assert center_link_load(8, 0.4) == pytest.approx(0.8)
        assert center_link_load(8, 0.2) < center_link_load(8, 0.4)
