"""Tests for the parallel executor and its result cache.

The contract under test (docs/parallel-execution.md):

* parallel execution returns record-for-record the same output as
  serial execution, in the same order;
* a warm cache serves a repeated run with zero new simulations;
* cache keys are stable for equal jobs and sensitive to any
  simulation-relevant difference (config fields, faults).
"""

import json
import random

import pytest

from repro.core.config import RouterConfig, SimulationConfig
from repro.core.simulator import run_simulation
from repro.core.types import NodeId
from repro.faults.injector import random_faults
from repro.harness.export import result_record
from repro.harness.parallel import (
    CACHE_VERSION,
    ParallelExecutor,
    ResultCache,
    SimJob,
    execute_job,
    job_key,
    resolve_workers,
)
from repro.harness.sweeps import Sweep

BASE = {
    "width": 3,
    "height": 3,
    "warmup_packets": 10,
    "measure_packets": 60,
    "injection_rate": 0.08,
}

SWEEP_AXES = {"router": ["generic", "roco"], "seed": [1, 2]}


def small_config(**overrides) -> SimulationConfig:
    params = dict(BASE)
    params.update(overrides)
    return SimulationConfig(**params)


class TestSerialParallelEquivalence:
    def test_sweep_records_identical_serial_vs_two_workers(self):
        """The tentpole proof: workers=2 is bit-identical to serial."""
        serial = Sweep(axes=SWEEP_AXES, base=BASE).run()
        parallel = Sweep(axes=SWEEP_AXES, base=BASE).run(workers=2)
        assert parallel == serial

    def test_executor_preserves_job_order(self):
        configs = [small_config(seed=s) for s in (5, 3, 9)]
        records = ParallelExecutor(workers=2).run_configs(configs)
        assert [r["seed"] for r in records] == [5, 3, 9]

    def test_execute_job_matches_direct_simulation(self):
        config = small_config(seed=4)
        assert execute_job(SimJob.of(config)) == result_record(
            run_simulation(small_config(seed=4))
        )


class TestResultCache:
    def test_repeated_run_simulates_nothing(self, tmp_path):
        cache = ResultCache(tmp_path)
        executor = ParallelExecutor(cache=cache)
        sweep = Sweep(axes=SWEEP_AXES, base=BASE)
        first = sweep.run(executor=executor)
        assert executor.simulations_run == sweep.size
        assert cache.hits == 0 and cache.stores == sweep.size

        second = sweep.run(executor=executor)
        assert executor.simulations_run == sweep.size  # zero new simulations
        assert cache.hits == sweep.size
        assert executor.last_stats.simulated == 0
        assert executor.last_stats.cache_hits == sweep.size
        assert second == first

    def test_cache_shared_across_executors(self, tmp_path):
        config = small_config()
        ParallelExecutor(cache=ResultCache(tmp_path)).run_configs([config])
        fresh = ParallelExecutor(cache=ResultCache(tmp_path))
        records = fresh.run_configs([small_config()])
        assert fresh.simulations_run == 0
        assert records == [result_record(run_simulation(small_config()))]

    def test_cached_record_equals_fresh_record(self, tmp_path):
        """A round-trip through JSON does not perturb any field."""
        cache = ResultCache(tmp_path)
        executor = ParallelExecutor(cache=cache)
        (first,) = executor.run_configs([small_config()])
        (cached,) = executor.run_configs([small_config()])
        assert cached == first

    def test_partial_cache_only_simulates_new_points(self, tmp_path):
        cache = ResultCache(tmp_path)
        executor = ParallelExecutor(cache=cache)
        executor.run_configs([small_config(seed=1)])
        executor.run_configs([small_config(seed=1), small_config(seed=2)])
        assert executor.simulations_run == 2
        assert cache.hits == 1

    def test_corrupt_entry_is_a_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        job = SimJob.of(small_config())
        cache.path_for(job_key(job)).write_text("{ not json")
        assert cache.lookup(job_key(job)) is None
        assert cache.misses == 1

    def test_stale_version_is_a_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        job = SimJob.of(small_config())
        cache.path_for(job_key(job)).write_text(
            json.dumps({"version": CACHE_VERSION + 1, "record": {}})
        )
        assert cache.lookup(job_key(job)) is None


class TestJobKeys:
    def test_equal_jobs_equal_keys(self):
        assert job_key(SimJob.of(small_config())) == job_key(
            SimJob.of(small_config())
        )

    @pytest.mark.parametrize(
        "override",
        [
            {"seed": 2},
            {"injection_rate": 0.09},
            {"router": "generic"},
            {"routing": "adaptive"},
            {"traffic": "transpose"},
            {"measure_packets": 61},
            {"width": 4},
        ],
    )
    def test_any_config_change_changes_key(self, override):
        assert job_key(SimJob.of(small_config(**override))) != job_key(
            SimJob.of(small_config())
        )

    def test_router_config_changes_key(self):
        tweaked = small_config(
            router_config=RouterConfig.for_architecture("roco", mirror_allocation=False)
        )
        assert job_key(SimJob.of(tweaked)) != job_key(SimJob.of(small_config()))

    def test_faults_change_key(self):
        nodes = [NodeId(x, y) for y in range(3) for x in range(3)]
        faults = random_faults(nodes, 1, random.Random(3), critical=True)
        assert job_key(SimJob.of(small_config(), faults)) != job_key(
            SimJob.of(small_config())
        )


class TestProgressAndWorkers:
    def test_progress_reports_every_job_including_cache_hits(self, tmp_path):
        calls = []
        cache = ResultCache(tmp_path)
        executor = ParallelExecutor(
            cache=cache,
            progress=lambda done, total, record: calls.append((done, total)),
        )
        configs = [small_config(seed=s) for s in (1, 2)]
        executor.run_configs(configs)
        executor.run_configs(configs)
        assert calls == [(1, 2), (2, 2), (1, 2), (2, 2)]

    def test_resolve_workers(self):
        assert resolve_workers(None) == 1
        assert resolve_workers(1) == 1
        assert resolve_workers(3) == 3
        assert resolve_workers(0) >= 1
        with pytest.raises(ValueError):
            resolve_workers(-1)

    def test_faulty_jobs_run_through_executor(self):
        nodes = [NodeId(x, y) for y in range(3) for x in range(3)]
        faults = random_faults(nodes, 1, random.Random(7), critical=False)
        job = SimJob.of(small_config(), faults)
        (record,) = ParallelExecutor().run_jobs([job])
        assert record["num_faults"] == 1
        direct = result_record(run_simulation(small_config(), faults=list(faults)))
        assert record == direct
