"""Tests for the parallel executor and its result cache.

The contract under test (docs/parallel-execution.md):

* parallel execution returns record-for-record the same output as
  serial execution, in the same order;
* a warm cache serves a repeated run with zero new simulations;
* cache keys are stable for equal jobs and sensitive to any
  simulation-relevant difference (config fields, faults).
"""

import io
import json
import os
import random
import sys
import types
from pathlib import Path

import pytest

from repro.core.config import RouterConfig, SimulationConfig
from repro.core.simulator import run_simulation
from repro.core.types import NodeId
from repro.faults.injector import random_faults
from repro.harness.export import result_record
from repro.harness.parallel import (
    CACHE_VERSION,
    ExecutionStats,
    NestedPoolFallbackWarning,
    ParallelExecutor,
    ProgressPrinter,
    ResultCache,
    SimJob,
    _spawn_supported,
    execute_job,
    job_key,
    pool_fallback_reason,
    resolve_workers,
)
from repro.harness.sweeps import Sweep

BASE = {
    "width": 3,
    "height": 3,
    "warmup_packets": 10,
    "measure_packets": 60,
    "injection_rate": 0.08,
}

SWEEP_AXES = {"router": ["generic", "roco"], "seed": [1, 2]}


def small_config(**overrides) -> SimulationConfig:
    params = dict(BASE)
    params.update(overrides)
    return SimulationConfig(**params)


class TestSerialParallelEquivalence:
    def test_sweep_records_identical_serial_vs_two_workers(self):
        """The tentpole proof: workers=2 is bit-identical to serial."""
        serial = Sweep(axes=SWEEP_AXES, base=BASE).run()
        parallel = Sweep(axes=SWEEP_AXES, base=BASE).run(workers=2)
        assert parallel == serial

    def test_executor_preserves_job_order(self):
        configs = [small_config(seed=s) for s in (5, 3, 9)]
        records = ParallelExecutor(workers=2).run_configs(configs)
        assert [r["seed"] for r in records] == [5, 3, 9]

    def test_execute_job_matches_direct_simulation(self):
        config = small_config(seed=4)
        assert execute_job(SimJob.of(config)) == result_record(
            run_simulation(small_config(seed=4))
        )


class TestResultCache:
    def test_repeated_run_simulates_nothing(self, tmp_path):
        cache = ResultCache(tmp_path)
        executor = ParallelExecutor(cache=cache)
        sweep = Sweep(axes=SWEEP_AXES, base=BASE)
        first = sweep.run(executor=executor)
        assert executor.simulations_run == sweep.size
        assert cache.hits == 0 and cache.stores == sweep.size

        second = sweep.run(executor=executor)
        assert executor.simulations_run == sweep.size  # zero new simulations
        assert cache.hits == sweep.size
        assert executor.last_stats.simulated == 0
        assert executor.last_stats.cache_hits == sweep.size
        assert second == first

    def test_cache_shared_across_executors(self, tmp_path):
        config = small_config()
        ParallelExecutor(cache=ResultCache(tmp_path)).run_configs([config])
        fresh = ParallelExecutor(cache=ResultCache(tmp_path))
        records = fresh.run_configs([small_config()])
        assert fresh.simulations_run == 0
        assert records == [result_record(run_simulation(small_config()))]

    def test_cached_record_equals_fresh_record(self, tmp_path):
        """A round-trip through JSON does not perturb any field."""
        cache = ResultCache(tmp_path)
        executor = ParallelExecutor(cache=cache)
        (first,) = executor.run_configs([small_config()])
        (cached,) = executor.run_configs([small_config()])
        assert cached == first

    def test_partial_cache_only_simulates_new_points(self, tmp_path):
        cache = ResultCache(tmp_path)
        executor = ParallelExecutor(cache=cache)
        executor.run_configs([small_config(seed=1)])
        executor.run_configs([small_config(seed=1), small_config(seed=2)])
        assert executor.simulations_run == 2
        assert cache.hits == 1

    def test_corrupt_entry_is_a_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        job = SimJob.of(small_config())
        cache.path_for(job_key(job)).write_text("{ not json")
        assert cache.lookup(job_key(job)) is None
        assert cache.misses == 1

    def test_corrupt_entry_quarantined_and_counted(self, tmp_path):
        """Satellite: corrupt entries move to ``<key>.corrupt`` and the
        slot is rebuilt by the next store instead of missing forever."""
        cache = ResultCache(tmp_path)
        job = SimJob.of(small_config())
        key = job_key(job)
        cache.path_for(key).write_text("{ not json")
        assert cache.lookup(key) is None
        assert cache.corrupt == 1
        quarantined = tmp_path / f"{key}.corrupt"
        assert quarantined.exists()
        assert quarantined.read_text() == "{ not json"  # evidence kept
        assert "1 corrupt (quarantined)" in cache.summary()
        # The slot is free again: a store + lookup round-trips.
        executor = ParallelExecutor(cache=cache)
        (record,) = executor.run_jobs([job])
        assert cache.lookup(key) == record
        assert cache.corrupt == 1  # no further quarantines

    def test_non_object_entry_quarantined(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.path_for("somekey").write_text("[1, 2, 3]")
        assert cache.lookup("somekey") is None
        assert cache.corrupt == 1

    def test_stale_version_is_a_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        job = SimJob.of(small_config())
        cache.path_for(job_key(job)).write_text(
            json.dumps({"version": CACHE_VERSION + 1, "record": {}})
        )
        assert cache.lookup(job_key(job)) is None
        assert cache.corrupt == 0  # stale, not corrupt: no quarantine

    def test_store_tmp_names_unique_per_writer(self, tmp_path):
        """Satellite: concurrent stores of one key cannot share a tmp
        file — names embed the pid and a per-process counter."""
        cache = ResultCache(tmp_path)
        seen = []
        original_replace = Path.replace

        def spy_replace(self, target):
            if self.suffix == ".tmp":
                seen.append(self.name)
            return original_replace(self, target)

        with pytest.MonkeyPatch.context() as patch:
            patch.setattr(Path, "replace", spy_replace)
            cache.store("samekey", {"a": 1})
            cache.store("samekey", {"a": 2})
        assert len(seen) == 2
        assert seen[0] != seen[1]
        assert all(name.startswith(f"samekey.{os.getpid()}.") for name in seen)
        assert list(tmp_path.glob("*.tmp")) == []
        assert cache.lookup("samekey") == {"a": 2}

    def test_failed_store_leaves_no_tmp_litter(self, tmp_path):
        cache = ResultCache(tmp_path)
        with pytest.raises(TypeError):
            cache.store("key", {"bad": object()})  # not JSON-serialisable
        assert list(tmp_path.glob("*.tmp")) == []
        assert cache.stores == 0


class TestJobKeys:
    def test_equal_jobs_equal_keys(self):
        assert job_key(SimJob.of(small_config())) == job_key(
            SimJob.of(small_config())
        )

    @pytest.mark.parametrize(
        "override",
        [
            {"seed": 2},
            {"injection_rate": 0.09},
            {"router": "generic"},
            {"routing": "adaptive"},
            {"traffic": "transpose"},
            {"measure_packets": 61},
            {"width": 4},
        ],
    )
    def test_any_config_change_changes_key(self, override):
        assert job_key(SimJob.of(small_config(**override))) != job_key(
            SimJob.of(small_config())
        )

    def test_router_config_changes_key(self):
        tweaked = small_config(
            router_config=RouterConfig.for_architecture("roco", mirror_allocation=False)
        )
        assert job_key(SimJob.of(tweaked)) != job_key(SimJob.of(small_config()))

    def test_faults_change_key(self):
        nodes = [NodeId(x, y) for y in range(3) for x in range(3)]
        faults = random_faults(nodes, 1, random.Random(3), critical=True)
        assert job_key(SimJob.of(small_config(), faults)) != job_key(
            SimJob.of(small_config())
        )


class TestProgressAndWorkers:
    def test_progress_reports_every_job_including_cache_hits(self, tmp_path):
        calls = []
        cache = ResultCache(tmp_path)
        executor = ParallelExecutor(
            cache=cache,
            progress=lambda done, total, record: calls.append((done, total)),
        )
        configs = [small_config(seed=s) for s in (1, 2)]
        executor.run_configs(configs)
        executor.run_configs(configs)
        assert calls == [(1, 2), (2, 2), (1, 2), (2, 2)]

    def test_resolve_workers(self):
        assert resolve_workers(None) == 1
        assert resolve_workers(1) == 1
        assert resolve_workers(3) == 3
        assert resolve_workers(0) >= 1
        with pytest.raises(ValueError):
            resolve_workers(-1)

    def test_spawn_supported_under_pytest(self):
        # pytest's __main__ has an importable spec, so real pools work.
        assert _spawn_supported() is True

    @pytest.mark.parametrize(
        "fake_main",
        [
            None,  # no __main__ module at all (embedded interpreter)
            types.ModuleType("__main__"),  # REPL / python -c: no file
        ],
    )
    def test_spawn_unsupported_without_importable_main(
        self, monkeypatch, fake_main
    ):
        if fake_main is None:
            monkeypatch.delitem(sys.modules, "__main__", raising=False)
        else:
            fake_main.__spec__ = None
            monkeypatch.setitem(sys.modules, "__main__", fake_main)
        assert _spawn_supported() is False

    def test_spawn_unsupported_main_file_missing(self, monkeypatch, tmp_path):
        fake_main = types.ModuleType("__main__")
        fake_main.__spec__ = None
        fake_main.__file__ = str(tmp_path / "vanished.py")
        monkeypatch.setitem(sys.modules, "__main__", fake_main)
        assert _spawn_supported() is False

    def test_unspawnable_parent_falls_back_to_serial(self, monkeypatch):
        """Satellite: workers=2 from a REPL-like parent runs serial with
        an explicit warning and still produces identical records."""
        serial = ParallelExecutor().run_configs([small_config(seed=1)])
        fake_main = types.ModuleType("__main__")
        fake_main.__spec__ = None
        monkeypatch.setitem(sys.modules, "__main__", fake_main)
        executor = ParallelExecutor(workers=2)
        with pytest.warns(NestedPoolFallbackWarning, match="spawn entry point"):
            records = executor.run_configs([small_config(seed=1)])
        assert records == serial
        assert executor.simulations_run == 1

    def test_unspawnable_parent_serial_fallback_with_policy(self, monkeypatch):
        from repro.harness.resilient import RetryPolicy

        serial = ParallelExecutor().run_configs([small_config(seed=1)])
        fake_main = types.ModuleType("__main__")
        fake_main.__spec__ = None
        monkeypatch.setitem(sys.modules, "__main__", fake_main)
        executor = ParallelExecutor(
            workers=2, policy=RetryPolicy(backoff_base=0.0)
        )
        with pytest.warns(NestedPoolFallbackWarning, match="spawn entry point"):
            records = executor.run_configs([small_config(seed=1)])
        assert records == serial
        assert executor.last_stats.simulated == 1

    def test_daemonic_context_falls_back_to_inline(self, monkeypatch):
        """Satellite: a pool requested from inside a daemonic worker
        (where children are forbidden) degrades to inline execution with
        a structured warning instead of crashing, and the records stay
        identical to serial ones."""
        from repro.harness import parallel as parallel_module

        serial = ParallelExecutor().run_configs([small_config(seed=1)])
        monkeypatch.setattr(
            parallel_module, "_in_daemonic_process", lambda: True
        )
        executor = ParallelExecutor(workers=2)
        with pytest.warns(
            NestedPoolFallbackWarning, match="daemonic worker context"
        ):
            records = executor.run_configs([small_config(seed=1)])
        assert records == serial
        assert executor.simulations_run == 1

    def test_daemonic_fallback_with_policy(self, monkeypatch):
        from repro.harness import parallel as parallel_module
        from repro.harness.resilient import RetryPolicy

        serial = ParallelExecutor().run_configs([small_config(seed=1)])
        monkeypatch.setattr(
            parallel_module, "_in_daemonic_process", lambda: True
        )
        executor = ParallelExecutor(
            workers=2, policy=RetryPolicy(backoff_base=0.0)
        )
        with pytest.warns(
            NestedPoolFallbackWarning, match="daemonic worker context"
        ):
            records = executor.run_configs([small_config(seed=1)])
        assert records == serial
        assert executor.last_stats.simulated == 1

    def test_no_fallback_warning_in_normal_runs(self, recwarn):
        ParallelExecutor(workers=1).run_configs([small_config(seed=1)])
        assert not [
            w
            for w in recwarn.list
            if issubclass(w.category, NestedPoolFallbackWarning)
        ]

    def test_pool_fallback_reason_single_worker_is_none(self):
        assert pool_fallback_reason(1) is None
        assert pool_fallback_reason(0) is None

    def test_progress_finish_zero_jobs(self):
        """Satellite: an empty sweep says so — no '0/0', no '0 ok,
        0 failed, 0 retried'."""
        stream = io.StringIO()
        printer = ProgressPrinter(stream=stream)
        printer.finish(ExecutionStats(total=0))
        out = stream.getvalue()
        assert out == "[sweep] finished: no jobs to run\n"
        assert "0/0" not in out and "retried" not in out

    def test_progress_finish_all_cached(self):
        """Satellite: a 100%-cached rerun reports the cache explicitly
        instead of pretending simulations happened."""
        stream = io.StringIO()
        printer = ProgressPrinter(stream=stream)
        printer.finish(ExecutionStats(total=4, cache_hits=4, simulated=0))
        out = stream.getvalue()
        assert out == "[sweep] finished: all 4 served from cache, 0 simulated\n"
        assert "failed" not in out and "retried" not in out

    def test_progress_finish_all_cached_with_resumed(self):
        stream = io.StringIO()
        printer = ProgressPrinter(stream=stream)
        printer.finish(
            ExecutionStats(total=4, cache_hits=4, simulated=0, resumed=2)
        )
        assert (
            stream.getvalue()
            == "[sweep] finished: all 4 served from cache, 0 simulated"
            " (2 resumed)\n"
        )

    def test_progress_finish_clean_run_omits_zero_counters(self):
        stream = io.StringIO()
        printer = ProgressPrinter(stream=stream)
        printer.finish(ExecutionStats(total=3, simulated=3))
        assert stream.getvalue() == "[sweep] finished: 3 ok\n"

    def test_progress_finish_keeps_failure_breakdown(self):
        stream = io.StringIO()
        printer = ProgressPrinter(stream=stream)
        printer.finish(
            ExecutionStats(total=3, simulated=3, failures=1, retries=2)
        )
        assert (
            stream.getvalue()
            == "[sweep] finished: 2 ok, 1 failed, 2 retried\n"
        )

    def test_faulty_jobs_run_through_executor(self):
        nodes = [NodeId(x, y) for y in range(3) for x in range(3)]
        faults = random_faults(nodes, 1, random.Random(7), critical=False)
        job = SimJob.of(small_config(), faults)
        (record,) = ParallelExecutor().run_jobs([job])
        assert record["num_faults"] == 1
        direct = result_record(run_simulation(small_config(), faults=list(faults)))
        assert record == direct
