"""Tests for the delta-debugging shrinker and reproducer files."""

import json
from dataclasses import replace

import pytest

from repro.audit import InvariantViolation, load_reproducer, save_reproducer, shrink
from repro.audit.cli import audit_main
from repro.audit.shrink import config_from_payload, reproducer_payload
from repro.core.simulator import DeadlockError, Simulator
from repro.core.types import NodeId
from repro.faults.injector import ComponentFault
from repro.faults.model import Component
from repro.faults.schedule import FaultEvent, FaultSchedule

from .conftest import small_config


def _credit_corruptor_run(config, schedule):
    """A RunFn whose failure comes from a fixture, not the simulator.

    The trigger is size-independent (first cycle >= 5 with any buffered
    flit loses a credit), so every shrunken candidate that still carries
    traffic past cycle 5 keeps failing.
    """
    sim = Simulator(replace(config, audit=True), schedule=schedule)
    state = {"done": False}

    def corrupt(cycle, stepped):
        if state["done"] or cycle < 5:
            return
        for router in sim.network.routers.values():
            for vc in router.all_vcs():
                if vc.queue:
                    vc._available -= 1
                    state["done"] = True
                    return

    sim.network.on_cycle_stepped = corrupt
    try:
        sim.run()
    except InvariantViolation as violation:
        return violation
    except DeadlockError:
        return None
    return None


def _schedule(cycles) -> FaultSchedule:
    return FaultSchedule(
        [
            FaultEvent(
                cycle=c,
                fault=ComponentFault(node=NodeId(1, 1), component=Component.SA),
            )
            for c in cycles
        ]
    )


class TestShrink:
    def test_rejects_non_failing_scenario(self):
        with pytest.raises(ValueError):
            shrink(small_config(), run_fn=lambda config, schedule: None)

    def test_shrinks_packets_and_cycles(self):
        config = small_config(
            measure_packets=400, warmup_packets=50, injection_rate=0.1
        )
        result = shrink(config, run_fn=_credit_corruptor_run)
        assert result.violation.invariant == "credit"
        assert result.total_packets <= 50
        assert result.config.warmup_packets == 0
        assert result.config.max_cycles <= result.violation.cycle + 1
        assert result.runs <= 128

    def test_ddmin_isolates_the_culprit_event(self):
        # Synthetic runner: the failure needs exactly the cycle-42 event.
        def run_fn(config, schedule):
            events = schedule.events if schedule is not None else ()
            if any(e.cycle == 42 for e in events):
                return InvariantViolation("credit", 50, "synthetic")
            return None

        schedule = _schedule([10, 20, 30, 42, 55, 60])
        result = shrink(small_config(), schedule, run_fn=run_fn)
        assert result.schedule is not None
        assert [e.cycle for e in result.schedule.events] == [42]
        assert result.config.measure_packets == 1
        assert result.config.max_cycles == 51

    def test_schedule_dropped_when_failure_is_fault_free(self):
        def run_fn(config, schedule):
            return InvariantViolation("credit", 9, "always fails")

        result = shrink(small_config(), _schedule([10, 20]), run_fn=run_fn)
        assert result.schedule is None


class TestReproducerFiles:
    def _violation(self) -> InvariantViolation:
        return InvariantViolation(
            "credit", 12, "sum off by one", node=NodeId(1, 2), pid=7
        )

    def test_round_trip(self, tmp_path):
        path = tmp_path / "repro.json"
        config = small_config(measure_packets=25, warmup_packets=0)
        schedule = _schedule([8])
        save_reproducer(path, config, schedule, self._violation())
        loaded_config, loaded_schedule, recorded = load_reproducer(path)
        assert loaded_config.audit is True
        assert replace(loaded_config, audit=False) == config
        assert [e.cycle for e in loaded_schedule.events] == [8]
        assert recorded["invariant"] == "credit"
        assert recorded["cycle"] == 12
        assert recorded["node"] == [1, 2]
        assert recorded["pid"] == 7

    def test_round_trip_without_schedule(self, tmp_path):
        path = tmp_path / "repro.json"
        save_reproducer(path, small_config(), None, self._violation())
        _, loaded_schedule, _ = load_reproducer(path)
        assert loaded_schedule is None

    def test_wrong_schema_rejected(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"schema": "not-a-reproducer"}))
        with pytest.raises(ValueError):
            load_reproducer(path)

    def test_config_payload_round_trip_keeps_router_config(self):
        config = small_config()
        payload = reproducer_payload(config, None, self._violation())
        assert config_from_payload(payload["config"]) == config


class TestAuditCli:
    def test_single_clean_run_exits_zero(self, capsys):
        code = audit_main(
            ["--size", "4", "--rate", "0.1", "--packets", "60", "--warmup", "10"]
        )
        assert code == 0
        assert "all invariants held" in capsys.readouterr().err

    def test_replay_of_clean_reproducer_exits_one(self, tmp_path, capsys):
        path = tmp_path / "repro.json"
        save_reproducer(
            path,
            small_config(measure_packets=40, warmup_packets=0),
            None,
            InvariantViolation("credit", 12, "synthetic"),
        )
        code = audit_main(["--replay", str(path)])
        assert code == 1
        assert "did not reproduce" in capsys.readouterr().err

    def test_bad_interval_rejected(self):
        assert audit_main(["--interval", "0"]) == 2

    def test_replay_and_grid_are_exclusive(self, tmp_path):
        path = tmp_path / "r.json"
        path.write_text("{}")
        assert audit_main(["--replay", str(path), "--grid"]) == 2
