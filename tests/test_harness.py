"""Tests for the experiment harness and report rendering."""

import pytest

from repro.core.types import RoutingMode
from repro.harness import (
    SCALES,
    ExperimentScale,
    averaged_point,
    fault_population,
    figure2,
    mesh_nodes,
    report,
    run_point,
    table1,
    table2,
)

TINY = ExperimentScale(
    name="tiny",
    width=4,
    height=4,
    warmup_packets=30,
    measure_packets=120,
    seeds=(1, 2),
    rates=(0.05, 0.15),
    contention_rates=(0.10,),
    max_cycles=20_000,
)


class TestScalesAndPoints:
    def test_registered_scales(self):
        assert {"quick", "standard", "paper"} <= set(SCALES)

    def test_run_point(self):
        result = run_point("roco", RoutingMode.XY, "uniform", 0.1, TINY)
        assert result.completion_probability == 1.0

    def test_averaged_point_over_seeds(self):
        point = averaged_point("roco", RoutingMode.XY, "uniform", 0.1, TINY)
        assert point["average_latency"] > 0
        assert point["completion_probability"] == 1.0
        singles = [
            run_point("roco", RoutingMode.XY, "uniform", 0.1, TINY, seed=s)
            for s in TINY.seeds
        ]
        expected = sum(r.average_latency for r in singles) / len(singles)
        assert point["average_latency"] == pytest.approx(expected)

    def test_mesh_nodes(self):
        nodes = mesh_nodes(TINY)
        assert len(nodes) == 16

    def test_fault_population_deterministic_and_shared(self):
        a = fault_population(TINY, 2, critical=True, seed=1)
        b = fault_population(TINY, 2, critical=True, seed=1)
        assert a == b
        c = fault_population(TINY, 2, critical=True, seed=2)
        assert a != c

    def test_fault_point(self):
        faults = {s: fault_population(TINY, 1, True, s) for s in TINY.seeds}
        point = averaged_point(
            "roco", RoutingMode.XY, "uniform", 0.1, TINY, faults_per_seed=faults
        )
        assert 0 < point["completion_probability"] <= 1.0


class TestStructuralFigures:
    def test_table1_has_all_modes(self):
        data = table1()
        assert set(data) == {"xy", "xy-yx", "adaptive"}
        for summary in data.values():
            assert sum(len(v) for v in summary.values()) == 12

    def test_table2_values(self):
        t = table2()
        assert t["generic"] == pytest.approx(0.043, abs=5e-4)
        assert t["roco"] == 0.25

    def test_figure2(self):
        assert len(figure2(3)) == 4


class TestReportRendering:
    def test_render_table(self):
        text = report.render_table(["a", "b"], [[1, 2.5], ["x", "y"]], title="T")
        assert "T" in text and "2.500" in text and "x" in text

    def test_render_table1(self):
        text = report.render_table1(table1())
        assert "Injxy" in text and "tyx" in text

    def test_render_table2(self):
        text = report.render_table2(table2())
        assert "0.250" in text

    def test_render_curves(self):
        text = report.render_curves(
            {"roco": [(0.1, 20.0), (0.2, 25.0)], "generic": [(0.1, 26.0), (0.2, 33.0)]}
        )
        assert "roco" in text and "25.00" in text

    def test_render_fault_figure(self):
        data = {"xy": {"roco": {1: 0.95, 2: 0.9}, "generic": {1: 0.8, 2: 0.7}}}
        text = report.render_fault_figure(data, "Figure 11")
        assert "0.950" in text and "xy" in text

    def test_render_figure13(self):
        data = {"uniform": {"generic": 1.0, "roco": 0.8}}
        text = report.render_figure13(data)
        assert "uniform" in text and "0.800" in text

    def test_render_figure14(self):
        data = {
            "critical": {
                "roco": {1: {"pef": 50.0, "latency": 30.0}},
                "generic": {1: {"pef": 90.0, "latency": 40.0}},
            }
        }
        text = report.render_figure14(data)
        assert "50.0|30.0" in text
