"""Unit and property tests for the routing algorithms."""

import random

from hypothesis import given
from hypothesis import strategies as st

from repro.core.types import Direction, NodeId, Packet, RoutingMode
from repro.routing import (
    AdaptiveRouting,
    XYRouting,
    XYYXRouting,
    choose_variant,
    make_routing,
    path_nodes_xy,
    path_nodes_yx,
    productive_directions,
    xy_direction,
    yx_direction,
)

nodes = st.builds(NodeId, st.integers(0, 7), st.integers(0, 7))


def packet(src, dest, yx_first=False):
    return Packet(
        pid=0, src=src, dest=dest, size=4, created_cycle=0, yx_first=yx_first
    )


class TestDirectionHelpers:
    def test_xy_corrects_x_first(self):
        assert xy_direction(NodeId(0, 0), NodeId(3, 3)) is Direction.EAST
        assert xy_direction(NodeId(3, 0), NodeId(3, 3)) is Direction.SOUTH
        assert xy_direction(NodeId(3, 3), NodeId(3, 3)) is Direction.LOCAL

    def test_yx_corrects_y_first(self):
        assert yx_direction(NodeId(0, 0), NodeId(3, 3)) is Direction.SOUTH
        assert yx_direction(NodeId(0, 3), NodeId(3, 3)) is Direction.EAST

    @given(nodes, nodes)
    def test_productive_directions_reduce_distance(self, a, b):
        dirs = productive_directions(a, b)
        if a == b:
            assert dirs == (Direction.LOCAL,)
            return
        for d in dirs:
            n = a.neighbor(d)
            assert abs(n.x - b.x) + abs(n.y - b.y) == (
                abs(a.x - b.x) + abs(a.y - b.y) - 1
            )

    @given(nodes, nodes)
    def test_path_lengths_are_manhattan(self, a, b):
        manhattan = abs(a.x - b.x) + abs(a.y - b.y)
        assert len(path_nodes_xy(a, b)) == manhattan + 1
        assert len(path_nodes_yx(a, b)) == manhattan + 1

    @given(nodes, nodes)
    def test_paths_share_endpoints(self, a, b):
        for path in (path_nodes_xy(a, b), path_nodes_yx(a, b)):
            assert path[0] == a and path[-1] == b


class TestAlgorithms:
    def test_factory(self):
        assert isinstance(make_routing("xy"), XYRouting)
        assert isinstance(make_routing(RoutingMode.XY_YX), XYYXRouting)
        assert isinstance(make_routing("adaptive"), AdaptiveRouting)

    @given(nodes, nodes)
    def test_xy_single_candidate(self, a, b):
        (d,) = XYRouting().candidates(a, packet(a, b))
        assert d is xy_direction(a, b)

    @given(nodes, nodes, st.booleans())
    def test_xyyx_follows_variant(self, a, b, yx):
        (d,) = XYYXRouting().candidates(a, packet(a, b, yx_first=yx))
        expected = yx_direction(a, b) if yx else xy_direction(a, b)
        assert d is expected

    @given(nodes, nodes)
    def test_adaptive_candidates_are_minimal(self, a, b):
        dirs = AdaptiveRouting().candidates(a, packet(a, b))
        assert set(dirs) == set(productive_directions(a, b))

    @given(nodes, nodes)
    def test_adaptive_escape_listed_first(self, a, b):
        dirs = AdaptiveRouting().candidates(a, packet(a, b))
        assert dirs[0] is xy_direction(a, b)

    @given(nodes, nodes)
    def test_following_xy_reaches_destination(self, a, b):
        algo = XYRouting()
        cur, hops = a, 0
        while cur != b:
            (d,) = algo.candidates(cur, packet(a, b))
            cur = cur.neighbor(d)
            hops += 1
            assert hops <= 20
        assert hops == abs(a.x - b.x) + abs(a.y - b.y)


class TestVariantChoice:
    def test_unbiased_without_faults(self):
        rng = random.Random(1)
        picks = [
            choose_variant(NodeId(0, 0), NodeId(3, 3), rng) for _ in range(400)
        ]
        assert 120 < sum(picks) < 280

    def test_avoids_blocked_xy_path(self):
        rng = random.Random(1)
        blocked = {NodeId(3, 0)}  # on the XY path of (0,0)->(5,0)? no: same row
        # Block the XY turn row instead: XY path of (0,0)->(3,3) passes (3,0).
        yx = choose_variant(
            NodeId(0, 0), NodeId(3, 3), rng, is_node_blocked=lambda n: n in blocked
        )
        assert yx is True

    def test_avoids_blocked_yx_path(self):
        rng = random.Random(1)
        blocked = {NodeId(0, 3)}  # on the YX path of (0,0)->(3,3)
        yx = choose_variant(
            NodeId(0, 0), NodeId(3, 3), rng, is_node_blocked=lambda n: n in blocked
        )
        assert yx is False

    def test_both_blocked_falls_back_to_coin(self):
        rng = random.Random(2)
        blocked = {NodeId(3, 0), NodeId(0, 3)}
        picks = {
            choose_variant(
                NodeId(0, 0),
                NodeId(3, 3),
                rng,
                is_node_blocked=lambda n: n in blocked,
            )
            for _ in range(50)
        }
        assert picks == {True, False}
