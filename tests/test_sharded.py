"""Sharded mesh execution: bit-identity, supervision and the ledger.

The contract mirrors the SoA backend's (tests/test_backend_conformance):
inside the envelope a sharded run must be *bit-identical* to the
single-process reference — same result record, same packet accounting,
same scheduler telemetry — and outside it the engine must refuse
loudly while the reference path stays untouched.  On top of that the
tile protocol adds its own failure surface: boundary messages, worker
crashes and the cross-shard conservation ledger, each exercised here
with deterministic chaos hooks.
"""

from __future__ import annotations

import itertools
from dataclasses import replace

import pytest

from repro.audit.sharded import ShardInvariantViolation
from repro.core.config import SimulationConfig, parse_shards
from repro.core.simulator import Simulator, run_simulation
from repro.core.soa.errors import BackendUnsupportedError, ensure_supported
from repro.core.types import NodeId
from repro.faults import Component, ComponentFault
from repro.harness.parallel import config_payload
from repro.harness.sharded import (
    ShardPlan,
    ShardUnsupportedError,
    ShardedExecutionError,
    _ChaosHooks,
    _split_extent,
    build_generation_schedule,
    compare_records,
    ensure_sharded_supported,
    run_sharded_simulation,
)


def grid_config(**overrides) -> SimulationConfig:
    params = {
        "width": 8,
        "height": 8,
        "router": "roco",
        "routing": "xy",
        "traffic": "uniform",
        "injection_rate": 0.15,
        "warmup_packets": 40,
        "measure_packets": 140,
        "seed": 11,
    }
    params.update(overrides)
    return SimulationConfig(**params)


def assert_identical(config, shards, *, full_sweep=False, inline=True):
    reference = Simulator(config, full_sweep=full_sweep).run()
    sharded = run_sharded_simulation(
        config, shards, full_sweep=full_sweep, inline=inline
    )
    mismatches = compare_records(reference, sharded)
    assert mismatches == []
    return reference, sharded


# ----------------------------------------------------------------------
# Bit-identity
# ----------------------------------------------------------------------

EQUIVALENCE_CELLS = sorted(
    itertools.product(("roco", "generic"), (False, True))
)


@pytest.mark.parametrize("router,full_sweep", EQUIVALENCE_CELLS)
def test_8x8_2x2_bit_identical_across_scheduler_grid(router, full_sweep):
    config = grid_config(router=router)
    assert_identical(config, (2, 2), full_sweep=full_sweep)


@pytest.mark.parametrize("router", ["roco", "generic"])
def test_4x4_1x2_bit_identical(router):
    config = grid_config(
        width=4, height=4, router=router, warmup_packets=20,
        measure_packets=80,
    )
    assert_identical(config, (1, 2))


@pytest.mark.parametrize("routing", ["xy-yx", "adaptive"])
def test_routing_modes_bit_identical(routing):
    config = grid_config(routing=routing)
    assert_identical(config, (2, 2))


def test_transpose_traffic_bit_identical():
    config = grid_config(traffic="transpose", injection_rate=0.1)
    assert_identical(config, (2, 1))


def test_process_driver_bit_identical():
    """The real worker-process path (spawn, pipes) matches too."""
    config = grid_config(warmup_packets=20, measure_packets=80)
    assert_identical(config, (2, 2), inline=False)


def test_tile_scheduler_counters_reported():
    config = grid_config(width=4, height=4, warmup_packets=10,
                         measure_packets=40)
    result = run_sharded_simulation(config, (2, 2), inline=True)
    assert len(result.tile_scheduler) == 4
    assert sum(c.router_steps for c in result.tile_scheduler) == \
        result.scheduler.router_steps
    reference = Simulator(config).run()
    assert reference.tile_scheduler == []


def test_run_simulation_dispatches_on_config_shards():
    config = grid_config(width=4, height=4, warmup_packets=10,
                         measure_packets=40, shards="2x2")
    assert config.shards == (2, 2)
    result = run_simulation(config)
    assert len(result.tile_scheduler) == 4
    reference = run_simulation(replace(config, shards=None))
    assert compare_records(reference, result) == []


def test_shards_1x1_is_the_reference_path():
    config = grid_config(width=4, height=4, warmup_packets=10,
                         measure_packets=40)
    reference = Simulator(config).run()
    sharded = run_sharded_simulation(config, (1, 1))
    assert compare_records(reference, sharded) == []
    assert sharded.tile_scheduler == []


# ----------------------------------------------------------------------
# Planning and the envelope
# ----------------------------------------------------------------------


def test_split_extent_balanced():
    assert _split_extent(8, 2) == [(0, 4), (4, 8)]
    assert _split_extent(7, 2) == [(0, 4), (4, 7)]
    assert _split_extent(9, 3) == [(0, 3), (3, 6), (6, 9)]
    spans = _split_extent(17, 4)
    assert spans[0] == (0, 5)
    assert spans[-1][1] == 17
    assert max(b - a for a, b in spans) - min(b - a for a, b in spans) <= 1


def test_plan_rects_tile_the_mesh():
    plan = ShardPlan.plan(grid_config(), (2, 2))
    covered = set()
    for rect in plan.rects:
        nodes = set(rect.nodes())
        assert not covered & nodes
        covered |= nodes
    assert len(covered) == 64
    assert plan.tile_of(0, 0) == 0
    assert plan.tile_of(7, 7) == 3


def test_plan_waves_are_anti_diagonal():
    plan = ShardPlan.plan(
        grid_config(width=12, height=12), (3, 3)
    )
    assert plan.waves == ((0,), (1, 3), (2, 4, 6), (5, 7), (8,))


def test_plan_rejects_one_wide_tiles():
    with pytest.raises(ShardUnsupportedError):
        ShardPlan.plan(grid_config(width=4, height=4), (4, 1))
    with pytest.raises(ShardUnsupportedError):
        ShardPlan.plan(grid_config(width=4, height=4), (1, 4))
    # 2-wide is the minimum, and is fine.
    ShardPlan.plan(grid_config(width=4, height=4), (2, 2))


def test_parse_shards():
    assert parse_shards("2x2") == (2, 2)
    assert parse_shards("1x4") == (1, 4)
    assert parse_shards((3, 2)) == (3, 2)
    assert parse_shards([2, 1]) == (2, 1)
    for bad in ("2", "x2", "2x", "2x2x2", "ax2", 4, (0, 2), (2,)):
        with pytest.raises(ValueError):
            parse_shards(bad)


def test_config_normalises_shards():
    assert grid_config(shards="2x4").shards == (2, 4)
    assert grid_config(shards=None).shards is None
    with pytest.raises(ValueError):
        grid_config(shards="nope")


def test_envelope_rejections():
    base = grid_config()
    with pytest.raises(ShardUnsupportedError):
        ensure_sharded_supported(replace(base, router="path_sensitive"))
    with pytest.raises(ShardUnsupportedError):
        ensure_sharded_supported(
            replace(base, router="generic", topology="torus")
        )
    with pytest.raises(ShardUnsupportedError):
        ensure_sharded_supported(replace(base, backend="soa"))
    with pytest.raises(ShardUnsupportedError):
        ensure_sharded_supported(base, traffic=object())
    fault = ComponentFault(NodeId(0, 0), Component.BUFFER)
    with pytest.raises(ShardUnsupportedError):
        ensure_sharded_supported(base, faults=[fault])
    # In-envelope config passes.
    ensure_sharded_supported(base)


def test_shard_unsupported_is_fatal_to_the_resilient_executor():
    """ShardUnsupportedError must ride the BackendUnsupportedError
    taxonomy so retry policies treat an envelope rejection as fatal."""
    assert issubclass(ShardUnsupportedError, BackendUnsupportedError)


def test_soa_backend_rejects_sharded_configs():
    config = grid_config(shards="2x2", backend="object")
    with pytest.raises(BackendUnsupportedError, match="shards"):
        ensure_supported(replace(config, backend="soa"))


# ----------------------------------------------------------------------
# Traffic oracle
# ----------------------------------------------------------------------


def test_oracle_replays_reference_generation():
    config = grid_config(width=4, height=4, warmup_packets=15,
                         measure_packets=45)
    entries, measure_start = build_generation_schedule(config)
    assert len(entries) == config.total_packets
    # pids are creation order.
    assert [e[3] for e in entries] == list(range(len(entries)))
    # Cycles are non-decreasing.
    cycles = [e[0] for e in entries]
    assert cycles == sorted(cycles)
    # The warmup-th creation flips measurement and is itself measured.
    measured_flags = [e[7] for e in entries]
    assert measured_flags[: config.warmup_packets] == \
        [False] * config.warmup_packets
    assert all(measured_flags[config.warmup_packets:])
    assert entries[config.warmup_packets][0] == measure_start
    # The oracle-driven run injects exactly the measured population.
    result = run_sharded_simulation(config, (2, 2), inline=True)
    assert result.injected_packets == config.measure_packets


def test_oracle_xyyx_variant_draws():
    config = grid_config(routing="xy-yx", width=4, height=4,
                         warmup_packets=10, measure_packets=40)
    entries, _ = build_generation_schedule(config)
    assert any(e[6] for e in entries)
    assert any(not e[6] for e in entries)
    xy_entries, _ = build_generation_schedule(replace(config, routing="xy"))
    assert not any(e[6] for e in xy_entries)


# ----------------------------------------------------------------------
# The conservation ledger and chaos hooks
# ----------------------------------------------------------------------


def audit_config(**overrides):
    return grid_config(
        width=4, height=4, warmup_packets=10, measure_packets=60,
        injection_rate=0.25, audit=True, **overrides,
    )


def test_ledger_clean_run_checks_every_cycle():
    config = audit_config()
    reference = Simulator(config).run()
    sharded = run_sharded_simulation(config, (2, 2), inline=True)
    assert compare_records(reference, sharded) == []


def test_dropped_boundary_flit_trips_flit_conservation():
    config = audit_config()
    with pytest.raises(ShardInvariantViolation) as excinfo:
        run_sharded_simulation(
            config, (2, 2), inline=True,
            _chaos=_ChaosHooks(drop_flit=1),
        )
    assert excinfo.value.invariant in ("flit-conservation",
                                       "boundary-transit")


def test_slow_tile_stalls_but_stays_identical():
    """Lookahead is conservative: a slow neighbour delays the wave but
    cannot change what any tile observes."""
    config = grid_config(width=4, height=4, warmup_packets=10,
                         measure_packets=40)
    reference = Simulator(config).run()
    sharded = run_sharded_simulation(
        config, (2, 2),
        _chaos=_ChaosHooks(slow_tile=(1, 0.002)),
    )
    assert compare_records(reference, sharded) == []


def test_worker_crash_surfaces_structured_failure():
    config = grid_config(width=4, height=4, warmup_packets=10,
                         measure_packets=40)
    with pytest.raises(ShardedExecutionError) as excinfo:
        run_sharded_simulation(
            config, (2, 2),
            _chaos=_ChaosHooks(kill_tile=(2, 5)),
        )
    failure = excinfo.value.failure
    assert failure.index == 2
    assert failure.kind == "fatal"
    assert failure.error_type == "ShardWorkerCrash"


def test_worker_exception_surfaces_structured_failure():
    """An in-worker exception is relayed with its type name, not a
    crash; the inline driver raises it directly."""
    config = grid_config(width=4, height=4, warmup_packets=10,
                         measure_packets=40, shards=(3, 1))
    with pytest.raises(ShardUnsupportedError):
        # 4 columns / 3 tiles -> a 1-wide tile; planner rejects before
        # any worker spawns.
        run_sharded_simulation(config)


# ----------------------------------------------------------------------
# Cache keys
# ----------------------------------------------------------------------


def test_cache_key_stable_without_shards_and_distinct_with():
    config = grid_config()
    payload = config_payload(config)
    assert "shards" not in payload
    sharded_payload = config_payload(replace(config, shards=(2, 2)))
    assert sharded_payload["shards"] == [2, 2]
    assert payload != sharded_payload
