"""Tests for result serialization (JSON/CSV export)."""

import csv
import json

import pytest

from repro.harness.export import (
    RESULT_FIELDS,
    read_json,
    result_record,
    write_csv,
    write_json,
)

from .conftest import run_small


@pytest.fixture(scope="module")
def results():
    return [
        run_small(router="roco", measure_packets=100),
        run_small(router="generic", measure_packets=100),
    ]


class TestRecord:
    def test_contains_all_fields(self, results):
        record = result_record(results[0])
        assert set(record) == set(RESULT_FIELDS)

    def test_values_roundtrip_config(self, results):
        record = result_record(results[0])
        assert record["router"] == "roco"
        assert record["routing"] == "xy"
        assert record["width"] == 4
        assert record["num_faults"] == 0

    def test_metrics_match_result(self, results):
        record = result_record(results[0])
        assert record["average_latency"] == results[0].average_latency
        assert record["pef"] == results[0].pef

    def test_record_is_json_serialisable(self, results):
        json.dumps(result_record(results[0]))


class TestJson:
    def test_write_and_read(self, results, tmp_path):
        path = write_json(results, tmp_path / "runs.json")
        loaded = read_json(path)
        assert len(loaded) == 2
        assert {r["router"] for r in loaded} == {"roco", "generic"}

    def test_values_preserved(self, results, tmp_path):
        path = write_json(results, tmp_path / "runs.json")
        loaded = read_json(path)
        assert loaded[0]["average_latency"] == pytest.approx(
            results[0].average_latency
        )


class TestCsv:
    def test_write_csv(self, results, tmp_path):
        path = write_csv(results, tmp_path / "runs.csv")
        with path.open() as handle:
            rows = list(csv.DictReader(handle))
        assert len(rows) == 2
        assert rows[0]["router"] == "roco"
        assert float(rows[1]["average_latency"]) == pytest.approx(
            results[1].average_latency
        )

    def test_header_order(self, results, tmp_path):
        path = write_csv(results, tmp_path / "runs.csv")
        header = path.read_text().splitlines()[0]
        assert header == ",".join(RESULT_FIELDS)
