"""Unit tests for deterministic fault schedules (repro.faults.schedule)."""

import pytest

from repro.core.config import RouterConfig
from repro.core.types import NodeId
from repro.faults import (
    CRITICAL_FAULT_COMPONENTS,
    Component,
    ComponentFault,
    FaultEvent,
    FaultSchedule,
    module_vc_count,
)


def nodes_4x4():
    return [NodeId(x, y) for y in range(4) for x in range(4)]


def nodes_8x8():
    return [NodeId(x, y) for y in range(8) for x in range(8)]


def fault_at(x, y, component=Component.VA, module="row"):
    return ComponentFault(NodeId(x, y), component, module=module)


class TestFaultEvent:
    def test_negative_cycle_rejected(self):
        with pytest.raises(ValueError, match="cycle"):
            FaultEvent(-1, fault_at(0, 0))

    def test_nonpositive_duration_rejected(self):
        with pytest.raises(ValueError, match="duration"):
            FaultEvent(5, fault_at(0, 0), duration=0)

    def test_permanent_event_has_no_clear_cycle(self):
        event = FaultEvent(10, fault_at(0, 0))
        assert not event.transient
        assert event.clear_cycle is None

    def test_transient_event_clears_after_duration(self):
        event = FaultEvent(10, fault_at(0, 0), duration=25)
        assert event.transient
        assert event.clear_cycle == 35


class TestFaultSchedule:
    def test_events_sorted_by_cycle_stably(self):
        a = FaultEvent(50, fault_at(0, 0))
        b = FaultEvent(10, fault_at(1, 0))
        c = FaultEvent(50, fault_at(2, 0))
        schedule = FaultSchedule([a, b, c])
        assert [e.cycle for e in schedule] == [10, 50, 50]
        # Same-cycle events keep construction order (a before c).
        assert schedule.events[1] is a
        assert schedule.events[2] is c

    def test_at_cycle_stamps_all_faults(self):
        faults = [fault_at(0, 0), fault_at(1, 1)]
        schedule = FaultSchedule.at_cycle(100, faults, duration=10)
        assert len(schedule) == 2
        assert all(e.cycle == 100 and e.duration == 10 for e in schedule)

    def test_empty_schedule_is_falsy(self):
        assert not FaultSchedule([])
        assert len(FaultSchedule([])) == 0

    def test_equality_and_hash(self):
        one = FaultSchedule.at_cycle(5, [fault_at(0, 0)])
        two = FaultSchedule.at_cycle(5, [fault_at(0, 0)])
        assert one == two
        assert hash(one) == hash(two)
        assert one != FaultSchedule.at_cycle(6, [fault_at(0, 0)])

    def test_topology_event_cycles_filters_noncritical(self):
        schedule = FaultSchedule(
            [
                FaultEvent(10, fault_at(0, 0, Component.VA)),
                FaultEvent(20, fault_at(1, 0, Component.RC)),
                FaultEvent(30, fault_at(2, 0, Component.CROSSBAR)),
                FaultEvent(40, fault_at(3, 0, Component.BUFFER)),
            ]
        )
        assert schedule.topology_event_cycles == (10, 30)


class TestSampledSchedules:
    def test_same_seed_same_schedule(self):
        kwargs = dict(count=5, seed=42, mtbf=500.0)
        one = FaultSchedule.sampled(nodes_4x4(), **kwargs)
        two = FaultSchedule.sampled(nodes_4x4(), **kwargs)
        assert one == two
        assert len(one) == 5

    def test_different_seeds_differ(self):
        one = FaultSchedule.sampled(nodes_4x4(), count=5, seed=1, mtbf=500.0)
        two = FaultSchedule.sampled(nodes_4x4(), count=5, seed=2, mtbf=500.0)
        assert one != two

    def test_arrivals_strictly_increase(self):
        schedule = FaultSchedule.sampled(nodes_4x4(), count=8, seed=3, mtbf=100.0)
        cycles = [e.cycle for e in schedule]
        assert cycles == sorted(cycles)
        assert all(b > a for a, b in zip(cycles, cycles[1:]))

    def test_horizon_truncates(self):
        schedule = FaultSchedule.sampled(
            nodes_8x8(), count=50, seed=4, mtbf=1000.0, horizon=2000
        )
        assert all(e.cycle <= 2000 for e in schedule)
        assert len(schedule) < 50

    def test_weibull_shape_changes_arrivals(self):
        expo = FaultSchedule.sampled(nodes_4x4(), count=5, seed=5, mtbf=500.0)
        weib = FaultSchedule.sampled(
            nodes_4x4(), count=5, seed=5, mtbf=500.0, weibull_shape=3.0
        )
        assert [e.cycle for e in expo] != [e.cycle for e in weib]

    def test_duration_makes_events_transient(self):
        schedule = FaultSchedule.sampled(
            nodes_4x4(), count=3, seed=6, mtbf=200.0, duration=50
        )
        assert all(e.transient and e.duration == 50 for e in schedule)

    def test_critical_population_only_critical_components(self):
        schedule = FaultSchedule.sampled(
            nodes_4x4(), count=10, seed=7, mtbf=100.0, critical=True
        )
        assert all(
            e.fault.component in CRITICAL_FAULT_COMPONENTS for e in schedule
        )

    def test_validation(self):
        with pytest.raises(ValueError, match="count"):
            FaultSchedule.sampled(nodes_4x4(), count=-1, seed=1, mtbf=100.0)
        with pytest.raises(ValueError, match="mtbf"):
            FaultSchedule.sampled(nodes_4x4(), count=1, seed=1, mtbf=0.0)
        with pytest.raises(ValueError, match="weibull_shape"):
            FaultSchedule.sampled(
                nodes_4x4(), count=1, seed=1, mtbf=100.0, weibull_shape=-2.0
            )


class TestVcPositionBound:
    """Satellite: sampled VC positions follow the router configuration."""

    def test_default_config_keeps_historic_bound(self):
        assert module_vc_count() == 6
        assert module_vc_count(RouterConfig()) == 6

    def test_bound_scales_with_vcs_per_port(self):
        assert module_vc_count(RouterConfig(vcs_per_port=2)) == 4
        assert module_vc_count(RouterConfig(vcs_per_port=5)) == 10

    def test_sampled_positions_respect_router_config(self):
        config = RouterConfig(vcs_per_port=2)
        schedule = FaultSchedule.sampled(
            nodes_8x8(),
            count=40,
            seed=11,
            mtbf=10.0,
            critical=False,
            router_config=config,
        )
        buffer_faults = [
            e for e in schedule if e.fault.component is Component.BUFFER
        ]
        assert buffer_faults, "expected some buffer faults in a big sample"
        assert all(0 <= e.fault.vc_position < 4 for e in buffer_faults)


class TestSerialization:
    def test_payload_round_trip(self):
        schedule = FaultSchedule(
            [
                FaultEvent(10, fault_at(0, 0, Component.VA)),
                FaultEvent(
                    20,
                    ComponentFault(
                        NodeId(2, 3), Component.BUFFER, module="column",
                        vc_position=3,
                    ),
                    duration=75,
                ),
            ]
        )
        assert FaultSchedule.from_payload(schedule.to_payload()) == schedule

    def test_json_round_trip(self, tmp_path):
        schedule = FaultSchedule.sampled(
            nodes_4x4(), count=4, seed=9, mtbf=300.0, duration=20
        )
        path = tmp_path / "schedule.json"
        schedule.to_json(path)
        assert FaultSchedule.from_json(path) == schedule

    def test_malformed_payload_rejected(self):
        with pytest.raises(ValueError, match="malformed"):
            FaultSchedule.from_payload([{"cycle": 5}])
