"""Unit tests for the mesh network container."""

import pytest

from repro.core.config import SimulationConfig
from repro.core.network import Network
from repro.core.types import Direction, NodeId, Packet
from repro.faults import Component, ComponentFault, apply_faults
from repro.routers.roco.path_set import ROW


def network(router="roco", faults=None, **overrides):
    params = {"width": 4, "height": 4, "router": router}
    params.update(overrides)
    net = Network(SimulationConfig(**params))
    if faults:
        apply_faults(net, faults)
    net.wire()
    return net


class TestTopology:
    def test_node_count(self):
        assert len(network().routers) == 16
        assert len(network(width=3, height=5).routers) == 15

    def test_in_mesh(self):
        net = network()
        assert net.in_mesh(NodeId(0, 0)) and net.in_mesh(NodeId(3, 3))
        assert not net.in_mesh(NodeId(-1, 0))
        assert not net.in_mesh(NodeId(0, 4))

    def test_wiring_connects_neighbours(self):
        net = network()
        router = net.routers[NodeId(1, 1)]
        east = router.outputs[Direction.EAST]
        assert east.downstream is net.routers[NodeId(2, 1)]
        assert east.input_dir is Direction.WEST

    def test_border_ports_absent(self):
        net = network()
        corner = net.routers[NodeId(3, 3)]
        assert set(corner.outputs) == {Direction.NORTH, Direction.WEST}


class TestDeliveryBookkeeping:
    def test_eject_counts_flits_and_packet(self):
        net = network()
        net.stats.start_measurement(0)
        packet = Packet(
            pid=1, src=NodeId(0, 0), dest=NodeId(1, 0), size=2, created_cycle=0
        )
        packet.measured = True
        net.stats.packet_created(packet)
        from repro.core.types import make_packet_flits

        flits = make_packet_flits(packet)
        net.eject(flits[0], packet.dest, cycle=10, early=True)
        assert packet.delivered_cycle is None
        net.eject(flits[1], packet.dest, cycle=11, early=True)
        assert packet.delivered_cycle == 11
        assert net.stats.delivered_packets == 1
        assert net.stats.activity.early_ejections == 2

    def test_drop_marks_and_purges(self):
        net = network()
        net.stats.start_measurement(0)
        packet = Packet(
            pid=2, src=NodeId(0, 0), dest=NodeId(3, 3), size=4, created_cycle=0
        )
        packet.measured = True
        net.stats.packet_created(packet)
        net.drop_packet(packet, cycle=50)
        assert packet.dropped_cycle == 50
        assert net.stats.dropped_packets == 1
        # Dropping again is a no-op.
        net.drop_packet(packet, cycle=60)
        assert packet.dropped_cycle == 50
        assert net.stats.dropped_packets == 1

    def test_eject_ignores_dropped_packets(self):
        net = network()
        packet = Packet(
            pid=3, src=NodeId(0, 0), dest=NodeId(1, 1), size=1, created_cycle=0
        )
        packet.dropped_cycle = 5
        from repro.core.types import make_packet_flits

        net.eject(make_packet_flits(packet)[0], packet.dest, 10, early=False)
        assert packet.delivered_cycle is None


class TestFaultQueries:
    def test_can_transit_healthy(self):
        net = network()
        assert net.can_transit(NodeId(1, 1), Direction.EAST)

    def test_roco_dead_module_blocks_one_dimension(self):
        net = network(
            "roco",
            faults=[ComponentFault(NodeId(1, 1), Component.CROSSBAR, module=ROW)],
        )
        assert not net.can_transit(NodeId(1, 1), Direction.EAST)
        assert not net.can_transit(NodeId(1, 1), Direction.WEST)
        assert net.can_transit(NodeId(1, 1), Direction.NORTH)
        assert net.node_blocked(NodeId(1, 1))

    def test_generic_dead_node_blocks_everything(self):
        net = network(
            "generic", faults=[ComponentFault(NodeId(2, 2), Component.SA)]
        )
        for d in (Direction.NORTH, Direction.EAST, Direction.SOUTH, Direction.WEST):
            assert not net.can_transit(NodeId(2, 2), d)
        assert net.node_blocked(NodeId(2, 2))

    def test_apply_faults_after_wire_raises(self):
        net = network("roco")
        with pytest.raises(RuntimeError, match="before Network.wire"):
            apply_faults(
                net, [ComponentFault(NodeId(1, 1), Component.VA, module=ROW)]
            )

    def test_wire_after_faults_marks_dead_ports(self):
        net = Network(SimulationConfig(width=4, height=4, router="generic"))
        apply_faults(net, [ComponentFault(NodeId(1, 0), Component.VA)])
        net.wire()
        west_neighbor = net.routers[NodeId(0, 0)]
        assert west_neighbor.outputs[Direction.EAST].dead
