"""Unit tests for the evaluation metrics (latency summaries, EDP, PEF)."""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.metrics import (
    LatencySummary,
    PEFBreakdown,
    energy_delay_product,
    pef,
    percentile,
    power_delay_product,
)


class TestPercentile:
    def test_median_of_odd(self):
        assert percentile([1, 2, 3], 0.5) == 2

    def test_interpolation(self):
        assert percentile([10, 20], 0.5) == 15.0

    def test_extremes(self):
        data = sorted([4, 8, 15, 16, 23, 42])
        assert percentile(data, 0.0) == 4
        assert percentile(data, 1.0) == 42

    def test_empty(self):
        assert percentile([], 0.9) == 0.0

    def test_invalid_quantile(self):
        with pytest.raises(ValueError):
            percentile([1], 1.5)

    @given(st.lists(st.integers(0, 1000), min_size=1, max_size=50))
    def test_bounded_by_min_max(self, samples):
        ordered = sorted(samples)
        for q in (0.1, 0.5, 0.9):
            assert ordered[0] <= percentile(ordered, q) <= ordered[-1]


class TestLatencySummary:
    def test_from_samples(self):
        s = LatencySummary.from_samples([10, 20, 30, 40])
        assert s.count == 4
        assert s.mean == 25.0
        assert s.maximum == 40

    def test_empty_samples(self):
        s = LatencySummary.from_samples([])
        assert s.count == 0 and s.mean == 0.0

    def test_percentiles_ordered(self):
        s = LatencySummary.from_samples(list(range(1, 101)))
        assert s.p50 <= s.p95 <= s.p99 <= s.maximum


class TestPEF:
    def test_edp(self):
        assert energy_delay_product(20.0, 0.8) == pytest.approx(16.0)

    def test_pdp(self):
        assert power_delay_product(2.0, 30.0) == pytest.approx(60.0)

    def test_pef_reduces_to_edp_when_fault_free(self):
        """Section 5.3: completion = 1 makes PEF equal EDP."""
        assert pef(20.0, 0.8, 1.0) == energy_delay_product(20.0, 0.8)

    def test_pef_penalises_lost_packets(self):
        assert pef(20.0, 0.8, 0.5) == pytest.approx(2 * pef(20.0, 0.8, 1.0))

    def test_zero_completion_is_infinite(self):
        assert math.isinf(pef(20.0, 0.8, 0.0))

    def test_invalid_completion(self):
        with pytest.raises(ValueError):
            pef(20.0, 0.8, 1.5)

    def test_breakdown(self):
        b = PEFBreakdown(
            average_latency=30.0,
            energy_per_packet_nj=0.8,
            completion_probability=0.8,
        )
        assert b.edp == pytest.approx(24.0)
        assert b.value == pytest.approx(30.0)

    @given(
        st.floats(1.0, 1e3),
        st.floats(1e-3, 10.0),
        st.floats(0.01, 1.0),
    )
    def test_pef_monotone_in_each_ingredient(self, lat, energy, completion):
        base = pef(lat, energy, completion)
        assert pef(lat * 2, energy, completion) > base
        assert pef(lat, energy * 2, completion) > base
        assert pef(lat, energy, completion / 2) > base
